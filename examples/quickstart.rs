//! Quickstart: the paper's running example (Fig. 1 / Example 1), end to
//! end.
//!
//! A user table `S` lists departments and their heads, with most heads
//! missing. The lake holds three tables: `T1` (team sizes), `T2` (2022
//! staffing — outdated, "Tom Riddle" has left), and `T3` (2024 staffing).
//! The discovery task: *find the top table containing ("HR", "Firenze") in
//! a row and overlapping the department column, but NOT containing ("IT",
//! "Tom Riddle")* — the answer must be `T3`.
//!
//! Run with: `cargo run --release --example quickstart`

use blend::{Blend, Combiner, Plan, Seeker};
use blend_common::{Table, TableId};
use blend_lake::DataLake;
use blend_storage::EngineKind;

fn main() {
    // --- the lake (Fig. 1) -------------------------------------------------
    let t1 = Table::from_csv(
        TableId(0),
        "T1 (team sizes)",
        "Team,Size\n\
         Finance,31\nMarketing,28\nHR,33\nIT,92\nSales,80\n",
    )
    .expect("valid CSV");
    let t2 = Table::from_csv(
        TableId(1),
        "T2 (2022 staffing)",
        "Lead,Year,Team\n\
         Tom Riddle,2022,IT\nDraco Malfoy,2022,Marketing\nHarry Potter,2022,Finance\n\
         Cho Chang,2022,R&D\nLuna Lovegood,2022,Sales\nFirenze,2022,HR\n",
    )
    .expect("valid CSV");
    let t3 = Table::from_csv(
        TableId(2),
        "T3 (2024 staffing)",
        "Lead,Year,Team\n\
         Ronald Weasley,2024,IT\nDraco Malfoy,2024,Marketing\nHarry Potter,2024,Finance\n\
         Cho Chang,2024,R&D\nLuna Lovegood,2024,Sales\nFirenze,2024,HR\n",
    )
    .expect("valid CSV");
    let lake = DataLake::new("fig1", vec![t1, t2, t3]);

    // --- offline phase: build the unified AllTables index ------------------
    let system = Blend::from_lake(&lake, EngineKind::Column);
    let fact = system.fact_table();
    println!(
        "indexed {} tables into {} AllTables rows ({} engine, ~{} KiB)\n",
        lake.len(),
        fact.len(),
        fact.engine(),
        fact.size_bytes() / 1024
    );

    // --- the find_dep_heads plan (paper Fig. 2a) ----------------------------
    let mut plan = Plan::new();
    plan.add_seeker(
        "p_examples",
        Seeker::mc(vec![vec!["HR".into(), "Firenze".into()]]),
        10,
    )
    .unwrap();
    plan.add_seeker(
        "n_examples",
        Seeker::mc(vec![vec!["IT".into(), "Tom Riddle".into()]]),
        10,
    )
    .unwrap();
    plan.add_combiner(
        "exclude",
        Combiner::Difference,
        10,
        &["p_examples", "n_examples"],
    )
    .unwrap();
    plan.add_seeker(
        "dep",
        Seeker::sc(
            ["HR", "Marketing", "Finance", "IT", "R&D", "Sales"]
                .map(String::from)
                .to_vec(),
        ),
        10,
    )
    .unwrap();
    plan.add_combiner("intersect", Combiner::Intersect, 10, &["exclude", "dep"])
        .unwrap();

    // --- optimized execution ------------------------------------------------
    let (hits, report) = system.execute_with_report(&plan).expect("plan runs");

    println!("execution trace (optimizer on):");
    for op in &report.ops {
        println!(
            "  {:<12} {:<10} {:>8.1?}  results={}{}{}",
            op.id,
            op.op,
            op.runtime,
            op.n_results,
            if op.injected { "  [rewritten]" } else { "" },
            op.sql
                .as_deref()
                .filter(|s| !s.is_empty())
                .map(|s| format!("\n      SQL: {}", &s[..s.len().min(100)]))
                .unwrap_or_default(),
        );
    }

    println!("\ntop tables for filling in S.Head:");
    for hit in &hits {
        println!(
            "  {} -> {} (score {:.3})",
            hit.table,
            lake.table(hit.table).name,
            hit.score
        );
    }
    assert_eq!(hits[0].table, TableId(2), "the up-to-date answer is T3");
    println!("\n=> T3 (2024 staffing) is the correct, up-to-date source. ✔");
}

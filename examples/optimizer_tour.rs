//! A tour of BLEND's plan optimizer: rules, learned cost model, and SQL
//! rewriting — with the B-NO (no-optimizer) configuration as the control.
//!
//! Builds a Gittables-like lake, trains the cost models (paper §VII-B),
//! then executes the same intersection plan optimized and un-optimized,
//! printing the execution traces side by side.
//!
//! Run with: `cargo run --release --example optimizer_tour`

use std::time::Instant;

use blend::{Blend, Combiner, Plan, Seeker};
use blend_lake::web::{generate, WebLakeConfig};
use blend_lake::workloads;
use blend_storage::EngineKind;

fn main() {
    let lake = generate(&WebLakeConfig::gittables_like(0.15));
    println!("lake: {} tables", lake.len());

    let mut system = Blend::from_lake(&lake, EngineKind::Column);

    // Offline: train the per-seeker-type cost models on sampled queries.
    let t0 = Instant::now();
    system.train_cost_models(&lake, 24, 0xC0575);
    println!(
        "cost-model training took {:.2?} (fully trained: {})\n",
        t0.elapsed(),
        system.cost_models().fully_trained()
    );

    // A mixed plan: an expensive MC seeker, a broad SC seeker, and a narrow
    // SC seeker, intersected.
    let mc = workloads::mc_queries(&lake, 1, 2, 6, 42).remove(0);
    let broad = workloads::sc_queries(&lake, &[60], 1, 43)
        .remove(0)
        .1
        .remove(0);
    let narrow = workloads::sc_queries(&lake, &[6], 1, 44)
        .remove(0)
        .1
        .remove(0);

    let mut plan = Plan::new();
    plan.add_seeker("mc", Seeker::mc(mc.rows), 10).unwrap();
    plan.add_seeker("broad_sc", Seeker::sc(broad), 10).unwrap();
    plan.add_seeker("narrow_sc", Seeker::sc(narrow), 10)
        .unwrap();
    plan.add_combiner(
        "goal",
        Combiner::Intersect,
        10,
        &["mc", "broad_sc", "narrow_sc"],
    )
    .unwrap();

    for optimize in [false, true] {
        system.set_optimize(optimize);
        let (hits, report) = system.execute_with_report(&plan).expect("plan runs");
        println!(
            "--- {} (total {:.2?}, {} result tables) ---",
            if optimize {
                "BLEND (optimized)"
            } else {
                "B-NO (naive order)"
            },
            report.total,
            hits.len()
        );
        for op in &report.ops {
            println!(
                "  {:<10} {:<9} {:>9.1?}  out={:<4}{}",
                op.id,
                op.op,
                op.runtime,
                op.n_results,
                if op.injected {
                    " [TableId filter injected]"
                } else {
                    ""
                }
            );
        }
        println!();
    }
    println!("The optimized run executes the cheap seeker first and narrows every later scan.");
}

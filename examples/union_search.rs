//! Union search on a SANTOS-like benchmark: BLEND's declarative plan
//! (one SC seeker per column + a Counter combiner) versus the Starmie-style
//! semantic baseline, scored against planted ground truth.
//!
//! Reproduces the *shape* of paper Table VI at example scale: the semantic
//! baseline shines at small k (it finds low-overlap cluster mates), while
//! BLEND's syntactic plan holds precision at larger k.
//!
//! Run with: `cargo run --release --example union_search`

use std::collections::HashSet;
use std::time::Instant;

use blend::{tasks, Blend};
use blend_common::stats::{precision_at_k, recall_at_k};
use blend_common::TableId;
use blend_lake::union_bench::{generate, UnionBenchConfig};
use blend_starmie::{StarmieConfig, StarmieIndex};
use blend_storage::EngineKind;

fn main() {
    let cfg = UnionBenchConfig::santos_like(0.2);
    println!("generating `{}` union benchmark ...", cfg.name);
    let bench = generate(&cfg);
    let stats = bench.lake.stats();
    println!(
        "  {} tables / {} columns / {} rows; {} queries with ground truth\n",
        stats.tables,
        stats.columns,
        stats.rows,
        bench.queries.len()
    );

    // BLEND: offline indexing, then one union-search plan per query.
    let t0 = Instant::now();
    let system = Blend::from_lake(&bench.lake, EngineKind::Column);
    println!("BLEND indexing took {:.2?}", t0.elapsed());

    // Starmie: embed columns + HNSW.
    let t0 = Instant::now();
    let starmie = StarmieIndex::build(&bench.lake, StarmieConfig::default());
    println!("Starmie indexing took {:.2?}\n", t0.elapsed());

    let k = 10usize;
    let per_column_k = 100usize;
    let mut blend_p = 0.0;
    let mut blend_r = 0.0;
    let mut starmie_p = 0.0;
    let mut starmie_r = 0.0;
    let mut blend_time = std::time::Duration::ZERO;
    let mut starmie_time = std::time::Duration::ZERO;

    for q in &bench.queries {
        let query_table = bench.lake.table(*q);
        let gt: HashSet<TableId> = bench.ground_truth[q].iter().copied().collect();

        let t0 = Instant::now();
        let plan = tasks::union_search(query_table, k, per_column_k).expect("plan");
        let hits = system.execute(&plan).expect("execution");
        blend_time += t0.elapsed();
        let retrieved: Vec<TableId> = hits
            .iter()
            .map(|h| h.table)
            .filter(|t| t != q) // benchmark protocol: skip the query itself
            .collect();
        blend_p += precision_at_k(&retrieved, &gt, k);
        blend_r += recall_at_k(&retrieved, &gt, k);

        let t0 = Instant::now();
        let s_hits = starmie.query(query_table, k);
        starmie_time += t0.elapsed();
        let retrieved: Vec<TableId> = s_hits.iter().map(|(t, _)| *t).collect();
        starmie_p += precision_at_k(&retrieved, &gt, k);
        starmie_r += recall_at_k(&retrieved, &gt, k);
    }

    let n = bench.queries.len() as f64;
    println!(
        "union search quality @ k={k} over {} queries:",
        bench.queries.len()
    );
    println!(
        "  BLEND   P@{k}={:.2}  R@{k}={:.2}  total query time {:.2?}",
        blend_p / n,
        blend_r / n,
        blend_time
    );
    println!(
        "  Starmie P@{k}={:.2}  R@{k}={:.2}  total query time {:.2?}",
        starmie_p / n,
        starmie_r / n,
        starmie_time
    );
    println!("\n(see `cargo run -p blend-bench --release --bin table6` for the full sweep)");
}

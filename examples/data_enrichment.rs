//! Data enrichment for machine learning: impute missing values and discover
//! a correlated feature — the paper's headline ML-enrichment scenario
//! (intro + §VIII-B.3/B.5) as one program.
//!
//! We hold a sales-like table with (city, region) pairs, half the regions
//! missing, plus a numeric KPI per city. The pipeline:
//!
//! 1. **Imputation plan** (`MC ∩ SC`): find lake tables containing our
//!    complete (city, region) examples in one row *and* the cities with
//!    missing regions — a functional-dependency source to fill the gaps.
//! 2. **Correlation plan** (`C`): find lake tables with a column that
//!    correlates with the KPI when joined on city — a new ML feature.
//!
//! Run with: `cargo run --release --example data_enrichment`

use blend::{tasks, Blend, Plan, Seeker};
use blend_common::{Column, Table, TableId, Value};
use blend_lake::DataLake;
use blend_storage::EngineKind;
use rand::{Rng, SeedableRng};

/// Build a small synthetic "city statistics" lake with one table that can
/// impute our regions and one table with a correlated indicator.
fn build_lake() -> (DataLake, Vec<String>, Vec<f64>) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xE17);
    let cities: Vec<String> = (0..40).map(|i| format!("city-{i:02}")).collect();
    let regions = ["north", "south", "east", "west"];
    let kpi: Vec<f64> = (0..40).map(|_| rng.random_range(10.0..500.0)).collect();

    let mut tables = Vec::new();

    // A gazetteer: city -> region (the imputation source).
    tables.push(
        Table::new(
            TableId(0),
            "gazetteer",
            vec![
                Column::new(
                    "city",
                    cities
                        .iter()
                        .map(|c| Value::Text(c.clone()))
                        .collect::<Vec<_>>(),
                ),
                Column::new(
                    "region",
                    (0..40)
                        .map(|i| Value::Text(regions[i % 4].into()))
                        .collect::<Vec<_>>(),
                ),
            ],
        )
        .unwrap(),
    );

    // An indicator table: city -> population (correlates with the KPI).
    tables.push(
        Table::new(
            TableId(1),
            "population",
            vec![
                Column::new(
                    "city",
                    cities
                        .iter()
                        .map(|c| Value::Text(c.clone()))
                        .collect::<Vec<_>>(),
                ),
                Column::new(
                    "population",
                    kpi.iter()
                        .map(|k| Value::Float(k * 1000.0 + rng.random_range(-500.0..500.0)))
                        .collect::<Vec<_>>(),
                ),
            ],
        )
        .unwrap(),
    );

    // Distractor tables: unrelated vocab + uncorrelated numbers.
    for t in 0..20u32 {
        let n = rng.random_range(20..40);
        tables.push(
            Table::new(
                TableId(2 + t),
                format!("noise-{t}"),
                vec![
                    Column::new(
                        "k",
                        (0..n)
                            .map(|i| Value::Text(format!("n{t}-{i}")))
                            .collect::<Vec<_>>(),
                    ),
                    Column::new(
                        "v",
                        (0..n)
                            .map(|_| Value::Float(rng.random_range(0.0..1.0)))
                            .collect::<Vec<_>>(),
                    ),
                ],
            )
            .unwrap(),
        );
    }

    (DataLake::new("city-stats", tables), cities, kpi)
}

fn main() {
    let (lake, cities, kpi) = build_lake();
    let system = Blend::from_lake(&lake, EngineKind::Column);
    println!("lake `{}`: {} tables indexed\n", lake.name, lake.len());

    // ---- 1. imputation: first 5 (city, region) pairs are known ------------
    let examples: Vec<(String, String)> = cities[..5]
        .iter()
        .map(|c| {
            let region =
                ["north", "south", "east", "west"][cities.iter().position(|x| x == c).unwrap() % 4];
            (c.clone(), region.to_string())
        })
        .collect();
    let missing: Vec<String> = cities[5..].to_vec();

    let plan = tasks::imputation(&examples, &missing, 5).expect("plan");
    let (hits, report) = system.execute_with_report(&plan).expect("imputation plan");
    println!("imputation sources (MC ∩ SC), {:?} total:", report.total);
    for h in &hits {
        println!(
            "  {} -> `{}` (score {:.3})",
            h.table,
            lake.table(h.table).name,
            h.score
        );
    }
    assert_eq!(hits[0].table, TableId(0), "gazetteer must win");

    // ---- 2. correlated feature discovery ----------------------------------
    let mut plan = Plan::new();
    plan.add_seeker("corr", Seeker::c(cities.clone(), kpi.clone()), 5)
        .unwrap();
    let hits = system.execute(&plan).expect("correlation plan");
    println!("\ncorrelated feature candidates (C seeker):");
    for h in &hits {
        println!(
            "  {} -> `{}` (|QCR| {:.3})",
            h.table,
            lake.table(h.table).name,
            h.score
        );
    }
    assert_eq!(hits[0].table, TableId(1), "population must win");

    println!("\n=> enrich the sales table by joining `gazetteer` (regions) and `population` (feature). ✔");
}

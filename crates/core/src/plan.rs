//! Discovery plans: the user-facing composition API (paper Fig. 2a) and its
//! DAG representation (Fig. 2b).
//!
//! The grammar (paper §IV-C):
//!
//! ```text
//! expression ::= seeker(Q) | combiner(expression(,expression)+)
//! seeker     ::= KW | SC | MC | C
//! combiner   ::= ∩ | ∪ | \ | Counter
//! ```

use blend_common::{BlendError, FxHashMap, FxHashSet, Result};

/// An atomic search operator.
#[derive(Debug, Clone, PartialEq)]
pub enum Seeker {
    /// Single-column join search: tables with a column overlapping `values`.
    Sc { values: Vec<String> },
    /// Keyword search: overlap counted table-wide.
    Kw { keywords: Vec<String> },
    /// Multi-column join search: tables containing the composite-key rows.
    Mc { rows: Vec<Vec<String>> },
    /// Correlation search: tables joinable on `keys` with a column
    /// correlating with `target` (aligned by position).
    C { keys: Vec<String>, target: Vec<f64> },
}

impl Seeker {
    /// SC seeker from values (normalization applied at execution).
    pub fn sc(values: Vec<String>) -> Self {
        Seeker::Sc { values }
    }

    /// KW seeker from keywords.
    pub fn kw(keywords: Vec<String>) -> Self {
        Seeker::Kw { keywords }
    }

    /// MC seeker from composite-key rows (all rows must share an arity ≥2).
    pub fn mc(rows: Vec<Vec<String>>) -> Self {
        Seeker::Mc { rows }
    }

    /// Correlation seeker from an aligned (keys, target) pair.
    pub fn c(keys: Vec<String>, target: Vec<f64>) -> Self {
        Seeker::C { keys, target }
    }

    /// Operator label used in reports and rule ranking.
    pub fn label(&self) -> &'static str {
        match self {
            Seeker::Sc { .. } => "SC",
            Seeker::Kw { .. } => "KW",
            Seeker::Mc { .. } => "MC",
            Seeker::C { .. } => "C",
        }
    }

    /// Validate operator-specific input constraints.
    pub fn validate(&self) -> Result<()> {
        match self {
            Seeker::Sc { values } if values.is_empty() => Err(BlendError::InvalidInput(
                "SC seeker needs at least one value".into(),
            )),
            Seeker::Kw { keywords } if keywords.is_empty() => Err(BlendError::InvalidInput(
                "KW seeker needs at least one keyword".into(),
            )),
            Seeker::Mc { rows } => {
                if rows.is_empty() {
                    return Err(BlendError::InvalidInput("MC seeker needs rows".into()));
                }
                let arity = rows[0].len();
                if arity < 2 {
                    return Err(BlendError::InvalidInput(
                        "MC seeker needs a composite key of ≥2 columns".into(),
                    ));
                }
                if rows.iter().any(|r| r.len() != arity) {
                    return Err(BlendError::InvalidInput(
                        "MC seeker rows must share one arity".into(),
                    ));
                }
                Ok(())
            }
            Seeker::C { keys, target } => {
                if keys.len() != target.len() {
                    return Err(BlendError::InvalidInput(format!(
                        "C seeker: {} keys vs {} target values",
                        keys.len(),
                        target.len()
                    )));
                }
                if keys.len() < 2 {
                    return Err(BlendError::InvalidInput(
                        "C seeker needs at least two observations".into(),
                    ));
                }
                Ok(())
            }
            _ => Ok(()),
        }
    }
}

/// A set operator over table collections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Combiner {
    /// Tables present in every input.
    Intersect,
    /// Tables present in any input.
    Union,
    /// Tables in the first input but not the second (arity exactly 2).
    Difference,
    /// Tables ranked by how many inputs contain them.
    Counter,
}

impl Combiner {
    /// Operator label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            Combiner::Intersect => "Intersect",
            Combiner::Union => "Union",
            Combiner::Difference => "Difference",
            Combiner::Counter => "Counter",
        }
    }
}

/// A plan node.
#[derive(Debug, Clone)]
pub enum Node {
    Seeker {
        seeker: Seeker,
        k: usize,
    },
    Combiner {
        combiner: Combiner,
        k: usize,
        inputs: Vec<String>,
    },
}

/// A discovery plan: named nodes forming a DAG (edges = combiner inputs).
#[derive(Debug, Clone, Default)]
pub struct Plan {
    /// Insertion-ordered nodes.
    order: Vec<String>,
    nodes: FxHashMap<String, Node>,
}

impl Plan {
    /// Empty plan.
    pub fn new() -> Self {
        Plan::default()
    }

    /// Add a seeker under a unique id.
    pub fn add_seeker(&mut self, id: &str, seeker: Seeker, k: usize) -> Result<&mut Self> {
        seeker.validate()?;
        self.insert(id, Node::Seeker { seeker, k })?;
        Ok(self)
    }

    /// Add a combiner under a unique id, referencing input node ids.
    pub fn add_combiner(
        &mut self,
        id: &str,
        combiner: Combiner,
        k: usize,
        inputs: &[&str],
    ) -> Result<&mut Self> {
        match combiner {
            Combiner::Difference if inputs.len() != 2 => {
                return Err(BlendError::PlanInvalid(
                    "Difference takes exactly two inputs".into(),
                ))
            }
            Combiner::Intersect | Combiner::Union if inputs.len() < 2 => {
                return Err(BlendError::PlanInvalid(format!(
                    "{} needs at least two inputs",
                    combiner.label()
                )))
            }
            Combiner::Counter if inputs.is_empty() => {
                return Err(BlendError::PlanInvalid("Counter needs inputs".into()))
            }
            _ => {}
        }
        self.insert(
            id,
            Node::Combiner {
                combiner,
                k,
                inputs: inputs.iter().map(|s| s.to_string()).collect(),
            },
        )?;
        Ok(self)
    }

    fn insert(&mut self, id: &str, node: Node) -> Result<()> {
        if self.nodes.contains_key(id) {
            return Err(BlendError::PlanInvalid(format!("duplicate node id `{id}`")));
        }
        self.order.push(id.to_string());
        self.nodes.insert(id.to_string(), node);
        Ok(())
    }

    /// Node accessor.
    pub fn node(&self, id: &str) -> Option<&Node> {
        self.nodes.get(id)
    }

    /// Node ids in insertion order.
    pub fn node_ids(&self) -> &[String] {
        &self.order
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True when the plan has no nodes.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Number of consumers of each node (used by the rewriter: only nodes
    /// with a single consumer may receive injected predicates).
    pub fn consumers(&self) -> FxHashMap<&str, usize> {
        let mut out: FxHashMap<&str, usize> = FxHashMap::default();
        for id in &self.order {
            out.entry(id.as_str()).or_insert(0);
            if let Some(Node::Combiner { inputs, .. }) = self.nodes.get(id) {
                for i in inputs {
                    *out.entry(i.as_str()).or_insert(0) += 1;
                }
            }
        }
        out
    }

    /// Validate the plan and return the sink node id.
    ///
    /// Checks: non-empty, all referenced inputs exist, no cycles, exactly
    /// one sink (a node no other node consumes).
    pub fn validate(&self) -> Result<&str> {
        if self.is_empty() {
            return Err(BlendError::PlanInvalid("empty plan".into()));
        }
        // References exist.
        for id in &self.order {
            if let Some(Node::Combiner { inputs, .. }) = self.nodes.get(id) {
                for i in inputs {
                    if !self.nodes.contains_key(i) {
                        return Err(BlendError::PlanInvalid(format!(
                            "node `{id}` references unknown input `{i}`"
                        )));
                    }
                    if i == id {
                        return Err(BlendError::PlanInvalid(format!(
                            "node `{id}` references itself"
                        )));
                    }
                }
            }
        }
        // Acyclicity via DFS with colors.
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Grey,
            Black,
        }
        let mut color: FxHashMap<&str, Color> = self
            .order
            .iter()
            .map(|s| (s.as_str(), Color::White))
            .collect();
        fn dfs<'a>(
            plan: &'a Plan,
            id: &'a str,
            color: &mut FxHashMap<&'a str, Color>,
        ) -> Result<()> {
            color.insert(id, Color::Grey);
            if let Some(Node::Combiner { inputs, .. }) = plan.nodes.get(id) {
                for i in inputs {
                    match color.get(i.as_str()) {
                        Some(Color::Grey) => {
                            return Err(BlendError::PlanInvalid(format!(
                                "cycle through node `{i}`"
                            )))
                        }
                        Some(Color::White) => dfs(plan, i.as_str(), color)?,
                        _ => {}
                    }
                }
            }
            color.insert(id, Color::Black);
            Ok(())
        }
        for id in &self.order {
            if color[id.as_str()] == Color::White {
                dfs(self, id, &mut color)?;
            }
        }
        // Exactly one sink.
        let consumed: FxHashSet<&str> = self
            .order
            .iter()
            .filter_map(|id| match self.nodes.get(id) {
                Some(Node::Combiner { inputs, .. }) => Some(inputs),
                _ => None,
            })
            .flatten()
            .map(String::as_str)
            .collect();
        let sinks: Vec<&str> = self
            .order
            .iter()
            .map(String::as_str)
            .filter(|id| !consumed.contains(id))
            .collect();
        match sinks.as_slice() {
            [one] => Ok(one),
            [] => Err(BlendError::PlanInvalid("no sink node (cycle?)".into())),
            many => Err(BlendError::PlanInvalid(format!(
                "plan has {} sinks ({}); compose them with a combiner",
                many.len(),
                many.join(", ")
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sc() -> Seeker {
        Seeker::sc(vec!["a".into()])
    }

    #[test]
    fn example_1_plan_validates() {
        // The find_dep_heads plan from paper Fig. 2a.
        let mut p = Plan::new();
        p.add_seeker(
            "p_examples",
            Seeker::mc(vec![vec!["hr".into(), "firenze".into()]]),
            10,
        )
        .unwrap();
        p.add_seeker(
            "n_examples",
            Seeker::mc(vec![vec!["it".into(), "tom riddle".into()]]),
            10,
        )
        .unwrap();
        p.add_combiner(
            "exclude",
            Combiner::Difference,
            10,
            &["p_examples", "n_examples"],
        )
        .unwrap();
        p.add_seeker("dep", Seeker::sc(vec!["hr".into(), "it".into()]), 10)
            .unwrap();
        p.add_combiner("intersect", Combiner::Intersect, 10, &["exclude", "dep"])
            .unwrap();
        assert_eq!(p.validate().unwrap(), "intersect");
        assert_eq!(p.len(), 5);
    }

    #[test]
    fn duplicate_ids_rejected() {
        let mut p = Plan::new();
        p.add_seeker("x", sc(), 5).unwrap();
        assert!(p.add_seeker("x", sc(), 5).is_err());
    }

    #[test]
    fn unknown_input_rejected() {
        let mut p = Plan::new();
        p.add_seeker("a", sc(), 5).unwrap();
        p.add_combiner("c", Combiner::Counter, 5, &["a", "ghost"])
            .unwrap();
        assert!(p.validate().is_err());
    }

    #[test]
    fn difference_arity_enforced() {
        let mut p = Plan::new();
        p.add_seeker("a", sc(), 5).unwrap();
        assert!(p
            .add_combiner("d", Combiner::Difference, 5, &["a"])
            .is_err());
    }

    #[test]
    fn intersect_needs_two() {
        let mut p = Plan::new();
        p.add_seeker("a", sc(), 5).unwrap();
        assert!(p.add_combiner("i", Combiner::Intersect, 5, &["a"]).is_err());
    }

    #[test]
    fn multiple_sinks_rejected() {
        let mut p = Plan::new();
        p.add_seeker("a", sc(), 5).unwrap();
        p.add_seeker("b", sc(), 5).unwrap();
        let err = p.validate().unwrap_err();
        assert!(err.to_string().contains("2 sinks"));
    }

    #[test]
    fn self_reference_rejected() {
        let mut p = Plan::new();
        p.add_seeker("a", sc(), 5).unwrap();
        p.add_combiner("c", Combiner::Counter, 5, &["a", "c"])
            .unwrap();
        assert!(p.validate().is_err());
    }

    #[test]
    fn cycle_rejected() {
        let mut p = Plan::new();
        p.add_seeker("s", sc(), 5).unwrap();
        p.add_combiner("c1", Combiner::Counter, 5, &["s", "c2"])
            .unwrap();
        p.add_combiner("c2", Combiner::Counter, 5, &["c1"]).unwrap();
        assert!(p.validate().is_err());
    }

    #[test]
    fn seeker_input_validation() {
        assert!(Seeker::sc(vec![]).validate().is_err());
        assert!(Seeker::mc(vec![vec!["one".into()]]).validate().is_err());
        assert!(
            Seeker::mc(vec![vec!["a".into(), "b".into()], vec!["c".into()]])
                .validate()
                .is_err()
        );
        assert!(Seeker::c(vec!["k".into()], vec![1.0, 2.0])
            .validate()
            .is_err());
        assert!(Seeker::c(vec!["k1".into(), "k2".into()], vec![1.0, 2.0])
            .validate()
            .is_ok());
    }

    #[test]
    fn consumers_counts_fanout() {
        let mut p = Plan::new();
        p.add_seeker("a", sc(), 5).unwrap();
        p.add_seeker("b", sc(), 5).unwrap();
        p.add_combiner("c1", Combiner::Intersect, 5, &["a", "b"])
            .unwrap();
        p.add_combiner("c2", Combiner::Counter, 5, &["a", "c1"])
            .unwrap();
        let consumers = p.consumers();
        assert_eq!(consumers["a"], 2);
        assert_eq!(consumers["b"], 1);
        assert_eq!(consumers["c1"], 1);
        assert_eq!(consumers["c2"], 0);
    }
}

//! Learning-based cost estimation (paper §VII-B).
//!
//! One linear regression per seeker type over the paper's three features —
//! query cardinality, number of columns, and average frequency of the query
//! values in the database (for MC: the *product* of per-column average
//! frequencies, mirroring the join the SQL performs) — plus a bias term.
//! Training samples queries from the installed lake, measures actual
//! runtimes, and fits ordinary least squares. Untrained types fall back to
//! an analytic heuristic so ranking always works.

use std::time::Instant;

use rand::{Rng, SeedableRng};

use blend_common::stats::ols;
use blend_common::text;
use blend_lake::DataLake;

use crate::plan::Seeker;
use crate::seekers;
use crate::Blend;

/// The paper's three features.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeekerFeatures {
    /// Number of query values (`|Q|`).
    pub cardinality: f64,
    /// Number of columns in `Q`.
    pub n_cols: f64,
    /// Average frequency of query values in the database.
    pub avg_freq: f64,
}

impl SeekerFeatures {
    /// Design-matrix row `[1, |Q|, cols, freq]`.
    pub fn row(&self) -> Vec<f64> {
        vec![1.0, self.cardinality, self.n_cols, self.avg_freq]
    }
}

/// A trained linear model.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearModel {
    /// Weights for `[1, |Q|, cols, freq]`.
    pub weights: [f64; 4],
}

impl LinearModel {
    /// Predicted runtime (µs); clamped at zero.
    pub fn predict(&self, f: &SeekerFeatures) -> f64 {
        let r = f.row();
        self.weights
            .iter()
            .zip(&r)
            .map(|(w, x)| w * x)
            .sum::<f64>()
            .max(0.0)
    }
}

/// Per-type model set. `None` = untrained, use the heuristic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CostModelSet {
    pub sc: Option<LinearModel>,
    pub kw: Option<LinearModel>,
    pub mc: Option<LinearModel>,
    pub c: Option<LinearModel>,
}

impl CostModelSet {
    fn for_seeker(&self, s: &Seeker) -> &Option<LinearModel> {
        match s {
            Seeker::Sc { .. } => &self.sc,
            Seeker::Kw { .. } => &self.kw,
            Seeker::Mc { .. } => &self.mc,
            Seeker::C { .. } => &self.c,
        }
    }

    /// True when every type has a trained model.
    pub fn fully_trained(&self) -> bool {
        self.sc.is_some() && self.kw.is_some() && self.mc.is_some() && self.c.is_some()
    }
}

/// Compute features against the installed index (exact frequencies from
/// the engine's catalog — postings lengths).
pub fn features(blend: &Blend, seeker: &Seeker) -> SeekerFeatures {
    let fact = blend.fact_table();
    let freq_of = |values: &[String]| -> f64 {
        if values.is_empty() {
            return 0.0;
        }
        let total: usize = values
            .iter()
            .map(|v| fact.posting_len(&text::normalize(v)))
            .sum();
        total as f64 / values.len() as f64
    };
    match seeker {
        Seeker::Sc { values } => SeekerFeatures {
            cardinality: values.len() as f64,
            n_cols: 1.0,
            avg_freq: freq_of(values),
        },
        Seeker::Kw { keywords } => SeekerFeatures {
            cardinality: keywords.len() as f64,
            n_cols: 1.0,
            avg_freq: freq_of(keywords),
        },
        Seeker::Mc { rows } => {
            let arity = rows.first().map_or(0, Vec::len);
            let mut freq_product = 1.0f64;
            for c in 0..arity {
                let col: Vec<String> = rows.iter().map(|r| r[c].clone()).collect();
                // The SQL joins per-column index hits, so frequencies
                // multiply (paper §VII-B).
                freq_product *= freq_of(&col).max(1e-3);
            }
            SeekerFeatures {
                cardinality: (rows.len() * arity) as f64,
                n_cols: arity as f64,
                avg_freq: freq_product,
            }
        }
        Seeker::C { keys, .. } => SeekerFeatures {
            cardinality: keys.len() as f64,
            n_cols: 2.0,
            avg_freq: freq_of(keys),
        },
    }
}

/// Estimated relative runtime of a seeker: trained model when available,
/// else the analytic fallback `(1 + |Q|·avg_freq) · type_factor` matching
/// the complexity analysis of §VII-B.
pub fn estimate(blend: &Blend, seeker: &Seeker, models: &CostModelSet) -> f64 {
    let f = features(blend, seeker);
    if let Some(model) = models.for_seeker(seeker) {
        return model.predict(&f);
    }
    let type_factor = match seeker {
        Seeker::Kw { .. } => 1.0,
        Seeker::Sc { .. } => 1.0,
        Seeker::C { .. } => 3.0,
        Seeker::Mc { .. } => 4.0,
    };
    (1.0 + f.cardinality * f.avg_freq.max(0.5)) * type_factor
}

/// Offline training (paper: "randomly sample 1000 input Qs ... execute the
/// seekers independently and measure the execution runtime").
pub fn train(blend: &Blend, lake: &DataLake, samples_per_type: usize, seed: u64) -> CostModelSet {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut set = CostModelSet::default();

    // SC / KW: column-sampled value sets of mixed sizes.
    let sizes = [3usize, 8, 20, 50];
    let sc_qs = blend_lake::workloads::sc_queries(
        lake,
        &sizes,
        samples_per_type.div_ceil(sizes.len()),
        seed,
    );
    let mut sc_rows = Vec::new();
    let mut sc_y = Vec::new();
    let mut kw_rows = Vec::new();
    let mut kw_y = Vec::new();
    for (_, queries) in &sc_qs {
        for q in queries {
            let s = Seeker::sc(q.clone());
            if let Some((f, t)) = measure(blend, &s) {
                sc_rows.push(f.row());
                sc_y.push(t);
            }
            let s = Seeker::kw(q.clone());
            if let Some((f, t)) = measure(blend, &s) {
                kw_rows.push(f.row());
                kw_y.push(t);
            }
        }
    }
    set.sc = ols(&sc_rows, &sc_y, 1e-6).map(to_model);
    set.kw = ols(&kw_rows, &kw_y, 1e-6).map(to_model);

    // MC: sampled composite keys.
    let mut mc_rows = Vec::new();
    let mut mc_y = Vec::new();
    for q in blend_lake::workloads::mc_queries(lake, samples_per_type, 2, 6, seed ^ 0x4D43) {
        let s = Seeker::mc(q.rows);
        if let Some((f, t)) = measure(blend, &s) {
            mc_rows.push(f.row());
            mc_y.push(t);
        }
    }
    set.mc = ols(&mc_rows, &mc_y, 1e-6).map(to_model);

    // C: categorical-key/numeric-target pairs sampled from the lake.
    let mut c_rows = Vec::new();
    let mut c_y = Vec::new();
    let mut guard = 0;
    while c_rows.len() < samples_per_type && guard < samples_per_type * 100 {
        guard += 1;
        let t = &lake.tables[rng.random_range(0..lake.len())];
        let Some((keys, target)) = sample_corr_query(t) else {
            continue;
        };
        let s = Seeker::c(keys, target);
        if s.validate().is_err() {
            continue;
        }
        if let Some((f, t)) = measure(blend, &s) {
            c_rows.push(f.row());
            c_y.push(t);
        }
    }
    set.c = ols(&c_rows, &c_y, 1e-6).map(to_model);

    set
}

fn to_model(w: Vec<f64>) -> LinearModel {
    LinearModel {
        weights: [w[0], w[1], w[2], w[3]],
    }
}

fn measure(blend: &Blend, seeker: &Seeker) -> Option<(SeekerFeatures, f64)> {
    let f = features(blend, seeker);
    let start = Instant::now();
    let run = seekers::run(blend, seeker, 10, None, &blend_parallel::Interrupt::never()).ok()?;
    let micros = start.elapsed().as_secs_f64() * 1e6;
    let _ = run;
    Some((f, micros))
}

/// Extract an aligned (categorical keys, numeric target) pair from a table.
fn sample_corr_query(t: &blend_common::Table) -> Option<(Vec<String>, Vec<f64>)> {
    use blend_common::ColumnType;
    let cat = t
        .columns
        .iter()
        .position(|c| c.column_type() == ColumnType::Categorical)?;
    let num = t
        .columns
        .iter()
        .position(|c| c.column_type() == ColumnType::Numeric)?;
    let mut keys = Vec::new();
    let mut target = Vec::new();
    for r in 0..t.n_rows() {
        if let (Some(k), Some(v)) = (t.cell(r, cat).normalized(), t.cell(r, num).as_f64()) {
            keys.push(k.into_owned());
            target.push(v);
        }
    }
    if keys.len() >= 3 {
        Some((keys, target))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blend_storage::EngineKind;

    fn lake() -> DataLake {
        blend_lake::web::generate(&blend_lake::WebLakeConfig {
            name: "cm".into(),
            n_tables: 40,
            rows: (8, 20),
            cols: (3, 5),
            vocab: 300,
            zipf_s: 1.0,
            numeric_col_ratio: 0.4,
            null_ratio: 0.0,
            seed: 4,
        })
    }

    #[test]
    fn features_reflect_query_shape() {
        let lake = lake();
        let blend = Blend::from_lake(&lake, EngineKind::Column);
        let f = features(&blend, &Seeker::sc(vec!["v0".into(), "v1".into()]));
        assert_eq!(f.cardinality, 2.0);
        assert_eq!(f.n_cols, 1.0);
        assert!(f.avg_freq > 0.0, "zipf head values occur");
        let fm = features(&blend, &Seeker::mc(vec![vec!["v0".into(), "v1".into()]]));
        assert_eq!(fm.n_cols, 2.0);
    }

    #[test]
    fn unknown_values_have_zero_frequency() {
        let lake = lake();
        let blend = Blend::from_lake(&lake, EngineKind::Column);
        let f = features(&blend, &Seeker::sc(vec!["never-in-lake".into()]));
        assert_eq!(f.avg_freq, 0.0);
    }

    #[test]
    fn model_prediction_is_linear() {
        let m = LinearModel {
            weights: [10.0, 2.0, 0.0, 1.0],
        };
        let f = SeekerFeatures {
            cardinality: 5.0,
            n_cols: 1.0,
            avg_freq: 3.0,
        };
        assert_eq!(m.predict(&f), 10.0 + 10.0 + 3.0);
        // Clamped at zero.
        let neg = LinearModel {
            weights: [-100.0, 0.0, 0.0, 0.0],
        };
        assert_eq!(neg.predict(&f), 0.0);
    }

    #[test]
    fn training_produces_usable_models() {
        let lake = lake();
        let blend = Blend::from_lake(&lake, EngineKind::Column);
        let set = train(&blend, &lake, 8, 1);
        // SC/KW/MC must train on this lake; C depends on numeric columns
        // (present at ratio 0.4, so it should too).
        assert!(set.sc.is_some());
        assert!(set.kw.is_some());
        assert!(set.mc.is_some());
        // Predictions are finite and non-negative.
        if let Some(m) = &set.sc {
            let f = features(&blend, &Seeker::sc(vec!["v0".into()]));
            let p = m.predict(&f);
            assert!(p.is_finite() && p >= 0.0);
        }
    }

    #[test]
    fn heuristic_orders_by_frequency_when_untrained() {
        let lake = lake();
        let blend = Blend::from_lake(&lake, EngineKind::Column);
        let models = CostModelSet::default();
        let rare = estimate(&blend, &Seeker::sc(vec!["v299".into()]), &models);
        let frequent = estimate(
            &blend,
            &Seeker::sc(vec!["v0".into(), "v1".into(), "v2".into()]),
            &models,
        );
        assert!(frequent > rare);
    }
}

//! The two-phase plan optimizer (paper §VII-B).
//!
//! Execution groups (EGs) — maximal sets of inputs feeding one Intersection
//! combiner — are the only reorderable units: Difference is
//! non-commutative, Union and Counter gain nothing from ordering. Within an
//! EG, seekers are ranked by:
//!
//! 1. **Rules** ([`rules`]): KW first, MC last, SC before C — derived from
//!    the operators' index-scan complexity;
//! 2. **Learned cost model** ([`costmodel`]): a per-type linear regression
//!    over `[1, |Q|, #columns, avg value frequency]` breaks ties between
//!    same-type seekers.
//!
//! The ranking decides which seeker runs first; the executor then injects
//! each finished seeker's table ids into the next one's SQL (see
//! [`crate::seekers::Injected`]).

pub mod costmodel;
pub mod rules;

use crate::plan::Seeker;
use crate::Blend;

/// Rank seekers of one execution group: returns indices into `seekers` in
/// the order they should execute.
pub fn rank_execution_group(blend: &Blend, seekers: &[&Seeker]) -> Vec<usize> {
    let models = blend.cost_models();
    let mut keyed: Vec<(u8, f64, usize)> = seekers
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let rule = rules::type_priority(s);
            let cost = costmodel::estimate(blend, s, &models);
            (rule, cost, i)
        })
        .collect();
    keyed.sort_by(|a, b| {
        a.0.cmp(&b.0)
            .then_with(|| a.1.total_cmp(&b.1))
            .then_with(|| a.2.cmp(&b.2))
    });
    keyed.into_iter().map(|(_, _, i)| i).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use blend_storage::EngineKind;

    fn tiny_blend() -> Blend {
        let lake = blend_lake::web::generate(&blend_lake::WebLakeConfig {
            name: "opt".into(),
            n_tables: 20,
            rows: (5, 10),
            cols: (2, 4),
            vocab: 100,
            zipf_s: 1.0,
            numeric_col_ratio: 0.3,
            null_ratio: 0.0,
            seed: 2,
        });
        Blend::from_lake(&lake, EngineKind::Column)
    }

    #[test]
    fn rules_dominate_across_types() {
        let blend = tiny_blend();
        let kw = Seeker::kw(vec!["v1".into()]);
        let sc = Seeker::sc(vec!["v1".into(), "v2".into()]);
        let c = Seeker::c(vec!["v1".into(), "v2".into()], vec![1.0, 2.0]);
        let mc = Seeker::mc(vec![vec!["v1".into(), "v2".into()]]);
        // Adversarial order in, rule order out.
        let order = rank_execution_group(&blend, &[&mc, &c, &sc, &kw]);
        let labels: Vec<&str> = order
            .iter()
            .map(|&i| [&mc, &c, &sc, &kw][i].label())
            .collect();
        assert_eq!(labels, vec!["KW", "SC", "C", "MC"]);
    }

    #[test]
    fn same_type_ranked_by_cost() {
        let blend = tiny_blend();
        // v0 is the Zipf head (frequent); a small rare query must run first
        // under the fallback heuristic (cardinality x frequency).
        let cheap = Seeker::sc(vec!["v99".into()]);
        let pricey = Seeker::sc(vec![
            "v0".into(),
            "v1".into(),
            "v2".into(),
            "v3".into(),
            "v4".into(),
            "v5".into(),
        ]);
        let order = rank_execution_group(&blend, &[&pricey, &cheap]);
        assert_eq!(order, vec![1, 0]);
    }

    #[test]
    fn ranking_is_deterministic() {
        let blend = tiny_blend();
        let a = Seeker::sc(vec!["v1".into()]);
        let b = Seeker::sc(vec!["v1".into()]);
        // Identical seekers: stable original order.
        assert_eq!(rank_execution_group(&blend, &[&a, &b]), vec![0, 1]);
    }
}

//! Rule-based seeker ranking (paper §VII-B):
//!
//! * **Rule 1** — the keyword operator always executes first: one index
//!   scan, tiny `|Q|` (`O(n·|Q|)` with the smallest `|Q|`).
//! * **Rule 2** — the MC seeker always executes last: `x` index scans plus
//!   `x−1` hash joins plus application-level validation.
//! * **Rule 3** — SC is prioritized over C: C adds a second scan for the
//!   numeric candidates and a join (`O(3·n·|Q|)` vs `O(n·|Q|)`).

use crate::plan::Seeker;

/// Rule priority: lower executes earlier.
pub fn type_priority(seeker: &Seeker) -> u8 {
    match seeker {
        Seeker::Kw { .. } => 0, // Rule 1
        Seeker::Sc { .. } => 1, // Rule 3: SC before C
        Seeker::C { .. } => 2,
        Seeker::Mc { .. } => 3, // Rule 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priorities_encode_the_three_rules() {
        let kw = type_priority(&Seeker::kw(vec!["k".into()]));
        let sc = type_priority(&Seeker::sc(vec!["v".into()]));
        let c = type_priority(&Seeker::c(vec!["a".into(), "b".into()], vec![1.0, 2.0]));
        let mc = type_priority(&Seeker::mc(vec![vec!["a".into(), "b".into()]]));
        assert!(kw < sc, "Rule 1: KW first");
        assert!(sc < c, "Rule 3: SC before C");
        assert!(c < mc && sc < mc && kw < mc, "Rule 2: MC last");
    }
}

//! Prebuilt complex discovery tasks (paper §VII-A and §VIII-B).
//!
//! Each function assembles a [`Plan`] exactly the way the paper describes —
//! these are the "5–8 lines of BLEND code" counted against the federated
//! baselines' application code in Table III.

use blend_common::{Result, Table};

use crate::plan::{Combiner, Plan, Seeker};

/// Add one SC seeker per non-empty query-table column (node ids `colN`),
/// returning the seeker ids. The building block of union search and the
/// multi-objective plan (paper Listing 4, lines 6-7).
pub fn add_column_seekers(
    plan: &mut Plan,
    query: &Table,
    per_column_k: usize,
) -> Result<Vec<String>> {
    let mut ids = Vec::new();
    for (ci, col) in query.columns.iter().enumerate() {
        let values: Vec<String> = col
            .values
            .iter()
            .filter_map(|v| v.normalized().map(|n| n.into_owned()))
            .collect();
        if values.is_empty() {
            continue;
        }
        let id = format!("col{ci}");
        plan.add_seeker(&id, Seeker::sc(values), per_column_k)?;
        ids.push(id);
    }
    Ok(ids)
}

/// Union search (paper §VII-A): one SC seeker per query-table column with a
/// generous per-seeker k, aggregated by a Counter combiner with the final
/// k — "tables become relevant when multiple columns are considered in
/// combination".
pub fn union_search(query: &Table, k: usize, per_column_k: usize) -> Result<Plan> {
    // LOC-BEGIN(blend_union_search)
    let mut plan = Plan::new();
    let ids = add_column_seekers(&mut plan, query, per_column_k)?;
    let refs: Vec<&str> = ids.iter().map(String::as_str).collect();
    plan.add_combiner("counter", Combiner::Counter, k, &refs)?;
    // LOC-END(blend_union_search)
    Ok(plan)
}

/// Example-based data imputation (paper §VIII-B.3): an MC seeker over the
/// complete example rows intersected with an SC seeker over the incomplete
/// keys — tables covering both can fill the missing values.
pub fn imputation(examples: &[(String, String)], queries: &[String], k: usize) -> Result<Plan> {
    // LOC-BEGIN(blend_imputation)
    let mut plan = Plan::new();
    plan.add_seeker(
        "examples",
        Seeker::mc(
            examples
                .iter()
                .map(|(a, b)| vec![a.clone(), b.clone()])
                .collect(),
        ),
        k,
    )?;
    plan.add_seeker("query", Seeker::sc(queries.to_vec()), k)?;
    plan.add_combiner(
        "intersection",
        Combiner::Intersect,
        k,
        &["examples", "query"],
    )?;
    // LOC-END(blend_imputation)
    Ok(plan)
}

/// Discovery with negative examples (paper §VIII-B.2): tables joinable with
/// the positive composite keys but free of the negative ones.
pub fn negative_examples(
    positives: &[Vec<String>],
    negatives: &[Vec<String>],
    k: usize,
) -> Result<Plan> {
    // LOC-BEGIN(blend_negative_examples)
    let mut plan = Plan::new();
    plan.add_seeker("p_examples", Seeker::mc(positives.to_vec()), k)?;
    plan.add_seeker("n_examples", Seeker::mc(negatives.to_vec()), k)?;
    plan.add_combiner(
        "exclude",
        Combiner::Difference,
        k,
        &["p_examples", "n_examples"],
    )?;
    // LOC-END(blend_negative_examples)
    Ok(plan)
}

/// Multicollinearity-aware feature discovery (paper §VIII-B.4): find
/// columns correlating with the target but *not* with any existing feature.
/// One correlation seeker per check, chained with Difference combiners,
/// finally intersected with a joinability seeker over the key values.
pub fn feature_discovery(
    keys: &[String],
    target: &[f64],
    existing_features: &[Vec<f64>],
    k: usize,
) -> Result<Plan> {
    // LOC-BEGIN(blend_feature_discovery)
    let mut plan = Plan::new();
    plan.add_seeker("c_target", Seeker::c(keys.to_vec(), target.to_vec()), k)?;
    let mut current = "c_target".to_string();
    for (fi, feature) in existing_features.iter().enumerate() {
        let c_id = format!("c_feature{fi}");
        plan.add_seeker(&c_id, Seeker::c(keys.to_vec(), feature.clone()), k)?;
        let d_id = format!("no_collinear{fi}");
        plan.add_combiner(&d_id, Combiner::Difference, k, &[&current, &c_id])?;
        current = d_id;
    }
    plan.add_seeker("joinable", Seeker::sc(keys.to_vec()), k)?;
    plan.add_combiner("result", Combiner::Intersect, k, &[&current, "joinable"])?;
    // LOC-END(blend_feature_discovery)
    Ok(plan)
}

/// Multi-objective discovery (paper Listing 4 without the imputation
/// sub-plan, as evaluated in §VIII-B.5): keyword search + union search +
/// correlation search, aggregated by a Union combiner.
pub fn multi_objective(
    keywords: &[String],
    query: &Table,
    joinkey: &[String],
    target: &[f64],
    k: usize,
    per_column_k: usize,
) -> Result<Plan> {
    // LOC-BEGIN(blend_multi_objective)
    let mut plan = Plan::new();
    // Keyword search (Listing 4, line 4).
    plan.add_seeker("kw", Seeker::kw(keywords.to_vec()), k)?;
    // Union search sub-plan (lines 6-8).
    let col_ids = add_column_seekers(&mut plan, query, per_column_k)?;
    let refs: Vec<&str> = col_ids.iter().map(String::as_str).collect();
    plan.add_combiner("counter", Combiner::Counter, k, &refs)?;
    // Correlation search (line 14).
    plan.add_seeker(
        "correlation",
        Seeker::c(joinkey.to_vec(), target.to_vec()),
        k,
    )?;
    // Results aggregation (line 16).
    plan.add_combiner(
        "union",
        Combiner::Union,
        4 * k,
        &["kw", "counter", "correlation"],
    )?;
    // LOC-END(blend_multi_objective)
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use blend_common::{Column, TableId, Value};

    fn query_table() -> Table {
        Table::new(
            TableId(0),
            "q",
            vec![
                Column::new("a", vec!["x", "y"]),
                Column::new("b", vec!["1", "2"]),
                Column::new("empty", vec![Value::Null, Value::Null]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn union_search_shape() {
        let p = union_search(&query_table(), 10, 100).unwrap();
        // Two non-empty columns -> 2 SC seekers + counter; empty column
        // skipped.
        assert_eq!(p.len(), 3);
        assert_eq!(p.validate().unwrap(), "counter");
    }

    #[test]
    fn imputation_shape() {
        let p = imputation(
            &[("k1".into(), "v1".into()), ("k2".into(), "v2".into())],
            &["k3".into(), "k4".into()],
            10,
        )
        .unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(p.validate().unwrap(), "intersection");
    }

    #[test]
    fn negative_examples_shape() {
        let p = negative_examples(
            &[vec!["a".into(), "b".into()]],
            &[vec!["c".into(), "d".into()]],
            10,
        )
        .unwrap();
        assert_eq!(p.validate().unwrap(), "exclude");
    }

    #[test]
    fn feature_discovery_chains_differences() {
        let keys: Vec<String> = (0..5).map(|i| format!("k{i}")).collect();
        let target = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let features = vec![vec![5.0, 4.0, 3.0, 2.0, 1.0], vec![1.0, 1.0, 2.0, 2.0, 3.0]];
        let p = feature_discovery(&keys, &target, &features, 10).unwrap();
        // c_target + 2 c_features + 2 differences + joinable + intersect.
        assert_eq!(p.len(), 7);
        assert_eq!(p.validate().unwrap(), "result");
    }

    #[test]
    fn multi_objective_shape() {
        let keys: Vec<String> = (0..4).map(|i| format!("k{i}")).collect();
        let p = multi_objective(
            &["alpha".into()],
            &query_table(),
            &keys,
            &[1.0, 2.0, 3.0, 4.0],
            10,
            100,
        )
        .unwrap();
        assert_eq!(p.validate().unwrap(), "union");
        // kw + 2 cols + counter + correlation + union.
        assert_eq!(p.len(), 6);
    }

    #[test]
    fn empty_query_table_fails() {
        let t = Table::new(TableId(0), "e", vec![]).unwrap();
        assert!(union_search(&t, 5, 50).is_err());
    }
}

//! # BLEND — a unified data discovery system
//!
//! Reproduction of *"BLEND: A Unified Data Discovery System"* (ICDE 2025).
//! BLEND lets a user compose a **discovery plan** from low-level operators
//! and executes it, optimized, against a single unified index:
//!
//! * **Seekers** ([`plan::Seeker`]) — atomic search operators returning
//!   top-k tables: single-column join (`SC`), keyword (`KW`), multi-column
//!   join (`MC`), and correlation (`C`). Every seeker compiles to SQL over
//!   the `AllTables` fact table (paper Listings 1–3).
//! * **Combiners** ([`plan::Combiner`]) — set operators over seeker
//!   results: intersection, union, difference, counter.
//! * **The optimizer** ([`optimizer`]) — identifies reorderable execution
//!   groups, ranks seekers with complexity rules plus a learned per-type
//!   cost model, and **rewrites** later seekers' SQL with the table ids
//!   produced by earlier ones (`TableId [NOT] IN (...)`), letting the
//!   database engine's access-path selection exploit the shrunken search
//!   space.
//!
//! ```
//! use blend::{Blend, Plan, Seeker, Combiner};
//! use blend_storage::EngineKind;
//! # use blend_lake::web::{generate, WebLakeConfig};
//! # let lake = generate(&WebLakeConfig{ name: "doc".into(), n_tables: 20,
//! #     rows: (5, 10), cols: (2, 3), vocab: 50, zipf_s: 1.0,
//! #     numeric_col_ratio: 0.3, null_ratio: 0.0, seed: 1 });
//! let system = Blend::from_lake(&lake, EngineKind::Column);
//!
//! let mut plan = Plan::new();
//! plan.add_seeker("pos", Seeker::mc(vec![
//!     vec!["v1".into(), "v2".into()],
//! ]), 10).unwrap();
//! plan.add_seeker("dep", Seeker::sc(vec!["v1".into(), "v3".into()]), 10).unwrap();
//! plan.add_combiner("both", Combiner::Intersect, 10, &["pos", "dep"]).unwrap();
//!
//! let hits = system.execute(&plan).unwrap();
//! # let _ = hits;
//! ```

pub mod combiners;
pub mod exec;
pub mod optimizer;
pub mod plan;
pub mod seekers;
pub mod tasks;

use std::sync::Arc;

use blend_common::Result;
use blend_lake::DataLake;
use blend_sql::SqlEngine;
use blend_storage::{EngineKind, FactTable};

pub use combiners::TableHit;
pub use exec::{ExecutionReport, OpExecution};
pub use optimizer::costmodel::{CostModelSet, SeekerFeatures};
pub use plan::{Combiner, Plan, Seeker};

pub use blend_parallel::{CancellationToken, Deadline, Interrupt, ParallelCtx};

/// How seekers inside an execution group are ordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderingMode {
    /// Rule + cost-model ranking (the full optimizer).
    Ranked,
    /// Keep the plan's input order (with rewriting still active). This is
    /// the "Rand" configuration of paper Table IV when the caller shuffles
    /// the plan's inputs.
    PlanOrder,
}

/// System-wide options.
#[derive(Debug, Clone)]
pub struct BlendOptions {
    /// Enable the plan optimizer (ordering + SQL rewriting).
    /// `false` reproduces the paper's "B-NO" configuration.
    pub optimize: bool,
    /// Seeker ordering policy when the optimizer is on.
    pub ordering: OrderingMode,
    /// Correlation sampling size `h` (paper default 256). Chosen at query
    /// time — the flexibility the paper highlights over the QCR baseline.
    pub h: usize,
    /// Minimum candidate matches for a correlation score to count.
    pub corr_min_matches: usize,
}

impl Default for BlendOptions {
    fn default() -> Self {
        BlendOptions {
            optimize: true,
            ordering: OrderingMode::Ranked,
            h: 256,
            corr_min_matches: 3,
        }
    }
}

/// The BLEND system: SQL engine over `AllTables` + optimizer state.
pub struct Blend {
    engine: SqlEngine,
    options: BlendOptions,
    cost_models: parking_lot::RwLock<CostModelSet>,
    /// Shared worker-pool context. One `Arc` serves the whole system: plan
    /// execution hands it (through the SQL engine) to every seeker query,
    /// so all seekers of a plan draw from a single thread budget.
    parallel: Arc<ParallelCtx>,
}

impl Blend {
    /// Attach BLEND to an already-built fact table.
    pub fn new(fact: Arc<dyn FactTable>) -> Self {
        Blend::with_options(fact, BlendOptions::default())
    }

    /// Attach with explicit options.
    pub fn with_options(fact: Arc<dyn FactTable>, options: BlendOptions) -> Self {
        // The engine already carries the process-shared context
        // (`ParallelCtx::shared_from_env`); reuse its Arc rather than
        // constructing a second one — exactly one pool exists per process.
        let engine = SqlEngine::with_alltables(fact);
        let parallel = engine.parallel_ctx().clone();
        Blend {
            engine,
            options,
            cost_models: parking_lot::RwLock::new(CostModelSet::default()),
            parallel,
        }
    }

    /// The shared parallel-execution context seeker queries run with.
    pub fn parallel_ctx(&self) -> Arc<ParallelCtx> {
        self.parallel.clone()
    }

    /// Install a different parallel-execution context (e.g. a fixed thread
    /// budget for benchmarks, or [`ParallelCtx::sequential`]).
    pub fn set_parallel(&mut self, ctx: Arc<ParallelCtx>) {
        self.parallel = ctx.clone();
        self.engine.set_parallel(ctx);
    }

    /// Index a lake (offline phase, Fig. 2e) and attach to it.
    pub fn from_lake(lake: &DataLake, kind: EngineKind) -> Self {
        let fact = blend_index::IndexBuilder::new().build(&lake.tables, kind);
        Blend::new(fact)
    }

    /// Re-index a (possibly changed) lake and swap the rebuilt `AllTables`
    /// into the live catalog. In-flight queries finish against the
    /// snapshot they planned with; every query planned after the swap sees
    /// the new table. The swap advances the engine's catalog generation,
    /// so serving-tier result caches keyed on `SqlEngine::generation` can
    /// never serve a pre-rebuild result to a post-rebuild query.
    pub fn rebuild_from_lake(&self, lake: &DataLake, kind: EngineKind) {
        let fact = blend_index::IndexBuilder::new().build(&lake.tables, kind);
        self.engine.replace_table("alltables", fact);
    }

    /// Index a lake with pre-shuffled rows — the "BLEND (rand)" variant.
    pub fn from_lake_shuffled(lake: &DataLake, kind: EngineKind, seed: u64) -> Self {
        let builder = blend_index::IndexBuilder::with_options(blend_index::IndexOptions {
            shuffle_rows: true,
            seed,
            ..Default::default()
        });
        Blend::new(builder.build(&lake.tables, kind))
    }

    /// The underlying SQL engine (tests, experiments).
    pub fn engine(&self) -> &SqlEngine {
        &self.engine
    }

    /// The `AllTables` handle.
    pub fn fact_table(&self) -> Arc<dyn FactTable> {
        self.engine
            .database()
            .alltables()
            .expect("BLEND always registers AllTables")
    }

    /// Current options.
    pub fn options(&self) -> &BlendOptions {
        &self.options
    }

    /// Mutate options (used by experiments to toggle the optimizer).
    pub fn set_optimize(&mut self, on: bool) {
        self.options.optimize = on;
    }

    /// Switch the seeker ordering policy (Table IV's Rand/BLEND split).
    pub fn set_ordering(&mut self, mode: OrderingMode) {
        self.options.ordering = mode;
    }

    /// Install a trained cost model set.
    pub fn set_cost_models(&self, models: CostModelSet) {
        *self.cost_models.write() = models;
    }

    /// Snapshot of the current cost models.
    pub fn cost_models(&self) -> CostModelSet {
        self.cost_models.read().clone()
    }

    /// Train the per-seeker-type cost models on queries sampled from the
    /// given lake (offline, paper §VII-B "learning-based cost estimation").
    pub fn train_cost_models(&self, lake: &DataLake, samples_per_type: usize, seed: u64) {
        let models = optimizer::costmodel::train(self, lake, samples_per_type, seed);
        self.set_cost_models(models);
    }

    /// Execute a plan, returning the sink node's top-k tables.
    pub fn execute(&self, plan: &Plan) -> Result<Vec<TableHit>> {
        self.execute_with_report(plan).map(|(h, _)| h)
    }

    /// Execute a plan with per-operator telemetry.
    pub fn execute_with_report(&self, plan: &Plan) -> Result<(Vec<TableHit>, ExecutionReport)> {
        exec::execute(self, plan)
    }

    /// Execute a plan under a cancellation/deadline [`Interrupt`]. Checked
    /// at every seeker boundary and inside every SQL phase; an interrupted
    /// plan returns `BlendError::{Cancelled, Timeout}` with no partial hits.
    pub fn execute_interruptible(
        &self,
        plan: &Plan,
        interrupt: Interrupt,
    ) -> Result<(Vec<TableHit>, ExecutionReport)> {
        exec::execute_interruptible(self, plan, interrupt)
    }
}

//! Plan execution (paper Fig. 2c/2d): EG-ordered evaluation with SQL
//! rewriting.
//!
//! The executor walks the DAG from the sink. Combiner semantics decide how
//! much optimization is legal:
//!
//! * **Intersection** — all inputs form an execution group. Combiner inputs
//!   (dependencies) are evaluated first; seeker inputs are ranked by the
//!   optimizer and executed sequentially, each receiving the intersection
//!   of all previously completed inputs as a `TableId IN (...)` injection.
//! * **Difference** — the subtrahend executes first; the minuend seeker is
//!   rewritten with `TableId NOT IN (...)`.
//! * **Union / Counter** — inputs are independent; no rewriting (paper
//!   §VII-B: "Union: no rewriting").
//!
//! A node consumed by more than one combiner never receives injections
//! (the injected predicate would leak into the other consumer); it executes
//! once, un-rewritten, and is memoized. With the optimizer disabled
//! ("B-NO") every input is evaluated independently in plan order.
//!
//! Every seeker executed from a plan shares the system's one
//! [`ParallelCtx`](crate::ParallelCtx) (handed down through
//! [`Blend::engine`]): seekers run sequentially in EG order — their SQL is
//! data-dependent on earlier results — while each seeker's scan, join, and
//! GROUP BY phases fan out across the shared worker pool.

use std::time::{Duration, Instant};

use blend_common::{FxHashMap, FxHashSet, Result};
use blend_parallel::Interrupt;

use crate::combiners::{self, TableHit};
use crate::optimizer;
use crate::plan::{Combiner, Node, Plan, Seeker};
use crate::seekers::{self, Injected, McStats};
use crate::Blend;

/// Telemetry for one executed operator.
#[derive(Debug, Clone)]
pub struct OpExecution {
    /// Plan node id.
    pub id: String,
    /// Operator label (`SC`, `KW`, `MC`, `C`, `Intersect`, ...).
    pub op: String,
    /// Wall-clock runtime of this operator.
    pub runtime: Duration,
    /// Executed SQL (seekers only, post-rewriting).
    pub sql: Option<String>,
    /// Whether an intermediate-result predicate was injected.
    pub injected: bool,
    /// Result size (tables).
    pub n_results: usize,
    /// MC filter statistics, when applicable.
    pub mc_stats: Option<McStats>,
}

/// Whole-plan telemetry, in execution order.
#[derive(Debug, Clone, Default)]
pub struct ExecutionReport {
    pub ops: Vec<OpExecution>,
    pub total: Duration,
    pub optimized: bool,
    /// Span-tree profile of the whole plan: one child per executed
    /// operator (`seeker:SC`, `combine:Intersect`, ...), with each
    /// seeker's SQL execution tree (scan → join → group) nested inside.
    /// `None` when observability is disabled ([`blend_obs::enabled`]).
    pub profile: Option<blend_obs::Profile>,
}

impl ExecutionReport {
    /// Execution order of seeker node ids (Table IV checks this).
    pub fn seeker_order(&self) -> Vec<&str> {
        self.ops
            .iter()
            .filter(|o| matches!(o.op.as_str(), "SC" | "KW" | "MC" | "C"))
            .map(|o| o.id.as_str())
            .collect()
    }

    /// Aggregate MC statistics across the plan.
    pub fn mc_totals(&self) -> McStats {
        let mut total = McStats::default();
        for op in &self.ops {
            if let Some(s) = op.mc_stats {
                total.candidates += s.candidates;
                total.validated += s.validated;
            }
        }
        total
    }
}

struct Ctx<'a> {
    blend: &'a Blend,
    plan: &'a Plan,
    /// Consumer counts: nodes with >1 consumer are never injected.
    consumers: FxHashMap<String, usize>,
    memo: FxHashMap<String, Vec<TableHit>>,
    report: ExecutionReport,
    interrupt: Interrupt,
}

/// Execute a validated plan.
pub fn execute(blend: &Blend, plan: &Plan) -> Result<(Vec<TableHit>, ExecutionReport)> {
    execute_interruptible(blend, plan, Interrupt::never())
}

/// Execute a validated plan under a cancellation/deadline [`Interrupt`].
///
/// The interrupt is checked at every seeker boundary (before each plan node
/// evaluates) and is threaded into every seeker's SQL execution, so a
/// cancelled or expired plan unwinds with a typed
/// `BlendError::{Cancelled, Timeout}` and no partial hit list.
pub fn execute_interruptible(
    blend: &Blend,
    plan: &Plan,
    interrupt: Interrupt,
) -> Result<(Vec<TableHit>, ExecutionReport)> {
    let sink = plan.validate()?.to_string();
    let consumers: FxHashMap<String, usize> = plan
        .consumers()
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect();
    let mut ctx = Ctx {
        blend,
        plan,
        consumers,
        memo: FxHashMap::default(),
        report: ExecutionReport {
            optimized: blend.options().optimize,
            ..Default::default()
        },
        interrupt,
    };
    let trace = blend_obs::trace_begin("plan");
    let start = Instant::now();
    let hits = eval(&mut ctx, &sink, None)?;
    ctx.report.total = start.elapsed();
    ctx.report.profile = trace.finish();
    Ok((hits, ctx.report))
}

/// Table ids of a hit list.
fn tables_of(hits: &[TableHit]) -> Vec<u32> {
    hits.iter().map(|h| h.table.0).collect()
}

fn intersect_sets(acc: Option<Vec<u32>>, next: &[TableHit]) -> Vec<u32> {
    match acc {
        None => tables_of(next),
        Some(prev) => {
            let set: FxHashSet<u32> = next.iter().map(|h| h.table.0).collect();
            prev.into_iter().filter(|t| set.contains(t)).collect()
        }
    }
}

fn eval(ctx: &mut Ctx<'_>, id: &str, injected: Option<Injected>) -> Result<Vec<TableHit>> {
    // Seeker boundary: a cancelled/expired plan stops before starting the
    // next operator instead of running the whole DAG to completion.
    ctx.interrupt.check()?;
    // Injections are only legal for single-consumer nodes; the caller
    // guarantees it, but memoization must stay injection-free.
    if injected.is_none() {
        if let Some(hit) = ctx.memo.get(id) {
            return Ok(hit.clone());
        }
    }
    let node = ctx
        .plan
        .node(id)
        .ok_or_else(|| blend_common::BlendError::PlanInvalid(format!("unknown node `{id}`")))?
        .clone();

    let hits = match node {
        Node::Seeker { seeker, k } => {
            let span = blend_obs::span_owned(format!("seeker:{}", seeker.label()));
            span.attr_str("node", id);
            if injected.is_some() {
                span.attr_str("injected", "true");
            }
            let start = Instant::now();
            let run = seekers::run(ctx.blend, &seeker, k, injected.as_ref(), &ctx.interrupt)?;
            span.attr_u64("results", run.hits.len() as u64);
            drop(span);
            ctx.report.ops.push(OpExecution {
                id: id.to_string(),
                op: seeker.label().to_string(),
                runtime: start.elapsed(),
                sql: Some(run.sql),
                injected: injected.is_some(),
                n_results: run.hits.len(),
                mc_stats: run.mc_stats,
            });
            run.hits
        }
        Node::Combiner {
            combiner,
            k,
            inputs,
        } => {
            let results = if ctx.blend.options().optimize {
                eval_inputs_optimized(ctx, combiner, &inputs)?
            } else {
                // B-NO: independent evaluation in plan order.
                let mut rs = Vec::with_capacity(inputs.len());
                for i in &inputs {
                    rs.push(eval(ctx, i, None)?);
                }
                rs
            };
            let span = blend_obs::span_owned(format!("combine:{}", combiner.label()));
            span.attr_str("node", id);
            let start = Instant::now();
            let combined = combiners::apply(combiner, &results, k);
            span.attr_u64("results", combined.len() as u64);
            drop(span);
            ctx.report.ops.push(OpExecution {
                id: id.to_string(),
                op: combiner.label().to_string(),
                runtime: start.elapsed(),
                sql: None,
                injected: false,
                n_results: combined.len(),
                mc_stats: None,
            });
            combined
        }
    };

    if injected.is_none() {
        ctx.memo.insert(id.to_string(), hits.clone());
    }
    Ok(hits)
}

/// Can this node receive an injected predicate? Single-consumer seekers
/// only.
fn injectable(ctx: &Ctx<'_>, id: &str) -> bool {
    matches!(ctx.plan.node(id), Some(Node::Seeker { .. }))
        && ctx.consumers.get(id).copied().unwrap_or(0) <= 1
        && !ctx.memo.contains_key(id)
}

/// Optimized evaluation of one combiner's inputs. Returns results aligned
/// with `inputs` order (combiner semantics are order-sensitive for
/// Difference).
fn eval_inputs_optimized(
    ctx: &mut Ctx<'_>,
    combiner: Combiner,
    inputs: &[String],
) -> Result<Vec<Vec<TableHit>>> {
    match combiner {
        Combiner::Intersect => {
            // Dependencies (combiners, shared nodes) first...
            let mut results: Vec<Option<Vec<TableHit>>> = vec![None; inputs.len()];
            let mut acc: Option<Vec<u32>> = None;
            let mut pending: Vec<usize> = Vec::new();
            for (i, input) in inputs.iter().enumerate() {
                if injectable(ctx, input) {
                    pending.push(i);
                } else {
                    let r = eval(ctx, input, None)?;
                    acc = Some(intersect_sets(acc, &r));
                    results[i] = Some(r);
                }
            }
            // ...then ranked seekers, each filtered by everything finished.
            let seekers: Vec<&Seeker> = pending
                .iter()
                .map(|&i| match ctx.plan.node(&inputs[i]) {
                    Some(Node::Seeker { seeker, .. }) => seeker,
                    _ => unreachable!("injectable() checked the node kind"),
                })
                .collect();
            let order = match ctx.blend.options().ordering {
                crate::OrderingMode::Ranked => optimizer::rank_execution_group(ctx.blend, &seekers),
                // Rewriting without reordering (Table IV's "Rand" arm when
                // the caller shuffles plan inputs).
                crate::OrderingMode::PlanOrder => (0..seekers.len()).collect(),
            };
            for oi in order {
                let input_idx = pending[oi];
                let inject = acc.clone().map(Injected::In);
                let r = eval(ctx, &inputs[input_idx], inject)?;
                acc = Some(intersect_sets(acc, &r));
                results[input_idx] = Some(r);
            }
            Ok(results
                .into_iter()
                .map(|r| r.expect("all filled"))
                .collect())
        }
        Combiner::Difference => {
            // Subtrahend first; minuend gets NOT IN (paper Example 1).
            let sub = eval(ctx, &inputs[1], None)?;
            let minuend = if injectable(ctx, &inputs[0]) {
                eval(ctx, &inputs[0], Some(Injected::NotIn(tables_of(&sub))))?
            } else {
                eval(ctx, &inputs[0], None)?
            };
            Ok(vec![minuend, sub])
        }
        Combiner::Union | Combiner::Counter => {
            let mut rs = Vec::with_capacity(inputs.len());
            for i in inputs {
                rs.push(eval(ctx, i, None)?);
            }
            Ok(rs)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blend_common::TableId;
    use blend_storage::EngineKind;

    /// The paper's Fig. 1 lake: S wants up-to-date department heads.
    /// T1 (id 0) = team sizes, T2 (id 1) = 2022 staff with Tom Riddle,
    /// T3 (id 2) = 2024 staff.
    fn fig1_blend(optimize: bool) -> Blend {
        use blend_common::{Column, Table};
        let t1 = Table::new(
            TableId(0),
            "T1-sizes",
            vec![
                Column::new("team", vec!["Finance", "Marketing", "HR", "IT", "Sales"]),
                Column::new("size", vec![31i64, 28, 33, 92, 80]),
            ],
        )
        .unwrap();
        let staff = |year: i64, it_lead: &str| {
            vec![
                Column::new(
                    "lead",
                    vec![
                        it_lead,
                        "Draco Malfoy",
                        "Harry Potter",
                        "Cho Chang",
                        "Luna Lovegood",
                        "Firenze",
                    ],
                ),
                Column::new("year", vec![year; 6]),
                Column::new(
                    "team",
                    vec!["IT", "Marketing", "Finance", "R&D", "Sales", "HR"],
                ),
            ]
        };
        let t2 = Table::new(TableId(1), "T2-2022", staff(2022, "Tom Riddle")).unwrap();
        let t3 = Table::new(TableId(2), "T3-2024", staff(2024, "Ronald Weasley")).unwrap();
        let lake = blend_lake::DataLake::new("fig1", vec![t1, t2, t3]);
        let mut blend = Blend::from_lake(&lake, EngineKind::Column);
        blend.set_optimize(optimize);
        blend
    }

    /// Paper Example 1 as a plan: tables containing ("hr","firenze") in a
    /// row, overlapping the department column, *without* ("it","tom
    /// riddle") — the answer must be T3.
    fn example1_plan() -> Plan {
        let mut p = Plan::new();
        p.add_seeker(
            "p_examples",
            Seeker::mc(vec![vec!["HR".into(), "Firenze".into()]]),
            10,
        )
        .unwrap();
        p.add_seeker(
            "n_examples",
            Seeker::mc(vec![vec!["IT".into(), "Tom Riddle".into()]]),
            10,
        )
        .unwrap();
        p.add_combiner(
            "exclude",
            Combiner::Difference,
            10,
            &["p_examples", "n_examples"],
        )
        .unwrap();
        p.add_seeker(
            "dep",
            Seeker::sc(vec![
                "HR".into(),
                "Marketing".into(),
                "Finance".into(),
                "IT".into(),
                "R&D".into(),
                "Sales".into(),
            ]),
            10,
        )
        .unwrap();
        p.add_combiner("intersect", Combiner::Intersect, 10, &["exclude", "dep"])
            .unwrap();
        p
    }

    #[test]
    fn example_1_answer_is_t3() {
        for optimize in [true, false] {
            let blend = fig1_blend(optimize);
            let hits = blend.execute(&example1_plan()).unwrap();
            let ids: Vec<u32> = hits.iter().map(|h| h.table.0).collect();
            assert_eq!(ids, vec![2], "optimize={optimize}: expected T3 only");
        }
    }

    #[test]
    fn intermediate_sets_match_paper_walkthrough() {
        // rs1 = {T2, T3}; rs2 = {T2}; rs3 = {T1, T2, T3} (paper Example 1).
        let blend = fig1_blend(false);
        let run = |p: &Plan| {
            blend
                .execute(p)
                .unwrap()
                .iter()
                .map(|h| h.table.0)
                .collect::<std::collections::BTreeSet<u32>>()
        };
        let mut p1 = Plan::new();
        p1.add_seeker(
            "q",
            Seeker::mc(vec![vec!["HR".into(), "Firenze".into()]]),
            10,
        )
        .unwrap();
        assert_eq!(run(&p1), [1u32, 2].into_iter().collect());
        let mut p2 = Plan::new();
        p2.add_seeker(
            "q",
            Seeker::mc(vec![vec!["IT".into(), "Tom Riddle".into()]]),
            10,
        )
        .unwrap();
        assert_eq!(run(&p2), [1u32].into_iter().collect());
        let mut p3 = Plan::new();
        p3.add_seeker(
            "q",
            Seeker::sc(vec![
                "HR".into(),
                "Marketing".into(),
                "Finance".into(),
                "IT".into(),
                "R&D".into(),
                "Sales".into(),
            ]),
            10,
        )
        .unwrap();
        assert_eq!(run(&p3), [0u32, 1, 2].into_iter().collect());
    }

    #[test]
    fn optimizer_injects_and_preserves_output() {
        // Theorem 1: the optimizer must not alter the output.
        let optimized = fig1_blend(true);
        let naive = fig1_blend(false);
        let plan = example1_plan();
        let (h1, r1) = optimized.execute_with_report(&plan).unwrap();
        let (h2, r2) = naive.execute_with_report(&plan).unwrap();
        let set1: std::collections::BTreeSet<u32> = h1.iter().map(|h| h.table.0).collect();
        let set2: std::collections::BTreeSet<u32> = h2.iter().map(|h| h.table.0).collect();
        assert_eq!(set1, set2);
        assert!(r1.optimized && !r2.optimized);
        // The optimized run must actually inject at least once (the MC
        // minuend gets NOT IN, the second intersect seeker gets IN).
        assert!(r1.ops.iter().any(|o| o.injected));
        assert!(r2.ops.iter().all(|o| !o.injected));
    }

    #[test]
    fn intersection_ranks_sc_before_mc() {
        let blend = fig1_blend(true);
        let mut p = Plan::new();
        p.add_seeker(
            "mc",
            Seeker::mc(vec![vec!["HR".into(), "Firenze".into()]]),
            10,
        )
        .unwrap();
        p.add_seeker("sc", Seeker::sc(vec!["HR".into(), "IT".into()]), 10)
            .unwrap();
        p.add_combiner("i", Combiner::Intersect, 10, &["mc", "sc"])
            .unwrap();
        let (_, report) = blend.execute_with_report(&p).unwrap();
        assert_eq!(report.seeker_order(), vec!["sc", "mc"]);
        // And the MC seeker ran with an injected filter.
        let mc_op = report.ops.iter().find(|o| o.id == "mc").unwrap();
        assert!(mc_op.injected);
        assert!(mc_op.sql.as_deref().unwrap().contains("TableId IN"));
    }

    #[test]
    fn shared_nodes_are_not_injected() {
        let blend = fig1_blend(true);
        let mut p = Plan::new();
        p.add_seeker("shared", Seeker::sc(vec!["HR".into()]), 10)
            .unwrap();
        p.add_seeker("other", Seeker::sc(vec!["IT".into()]), 10)
            .unwrap();
        p.add_combiner("i", Combiner::Intersect, 10, &["shared", "other"])
            .unwrap();
        p.add_combiner("u", Combiner::Union, 10, &["shared", "i"])
            .unwrap();
        let (_, report) = blend.execute_with_report(&p).unwrap();
        let shared_ops: Vec<&OpExecution> =
            report.ops.iter().filter(|o| o.id == "shared").collect();
        // Executed exactly once (memoized), never injected.
        assert_eq!(shared_ops.len(), 1);
        assert!(!shared_ops[0].injected);
    }

    #[test]
    fn empty_intersection_short_circuits() {
        let blend = fig1_blend(true);
        let mut p = Plan::new();
        p.add_seeker(
            "none",
            Seeker::sc(vec!["value-that-does-not-exist".into()]),
            10,
        )
        .unwrap();
        p.add_seeker(
            "mc",
            Seeker::mc(vec![vec!["HR".into(), "Firenze".into()]]),
            10,
        )
        .unwrap();
        p.add_combiner("i", Combiner::Intersect, 10, &["none", "mc"])
            .unwrap();
        let (hits, report) = blend.execute_with_report(&p).unwrap();
        assert!(hits.is_empty());
        // The MC seeker must have been skipped (empty SQL = short circuit).
        let mc_op = report.ops.iter().find(|o| o.id == "mc").unwrap();
        assert_eq!(mc_op.sql.as_deref(), Some(""));
        assert_eq!(mc_op.n_results, 0);
    }

    #[test]
    fn difference_subtrahend_runs_first_under_optimizer() {
        let blend = fig1_blend(true);
        let mut p = Plan::new();
        p.add_seeker(
            "pos",
            Seeker::mc(vec![vec!["HR".into(), "Firenze".into()]]),
            10,
        )
        .unwrap();
        p.add_seeker(
            "neg",
            Seeker::mc(vec![vec!["IT".into(), "Tom Riddle".into()]]),
            10,
        )
        .unwrap();
        p.add_combiner("d", Combiner::Difference, 10, &["pos", "neg"])
            .unwrap();
        let (hits, report) = blend.execute_with_report(&p).unwrap();
        assert_eq!(report.seeker_order(), vec!["neg", "pos"]);
        let pos_op = report.ops.iter().find(|o| o.id == "pos").unwrap();
        assert!(pos_op.sql.as_deref().unwrap().contains("NOT IN (1)"));
        let ids: Vec<u32> = hits.iter().map(|h| h.table.0).collect();
        assert_eq!(ids, vec![2]);
    }

    #[test]
    fn correlation_seeker_finds_size_table() {
        // Team sizes in T1 correlate with nothing here, but the seeker must
        // at least run end-to-end and return T1 for a size-like target.
        let blend = fig1_blend(true);
        let mut p = Plan::new();
        // Query: departments with a target roughly proportional to T1 sizes.
        p.add_seeker(
            "corr",
            Seeker::c(
                vec![
                    "finance".into(),
                    "marketing".into(),
                    "hr".into(),
                    "it".into(),
                    "sales".into(),
                ],
                vec![30.0, 29.0, 32.0, 95.0, 78.0],
            ),
            5,
        )
        .unwrap();
        let hits = blend.execute(&p).unwrap();
        assert!(!hits.is_empty());
        assert_eq!(hits[0].table, TableId(0), "T1 holds the size column");
        assert!(hits[0].score > 0.5, "score {}", hits[0].score);
    }
}

//! Seeker implementations (paper Section VI): SQL generation over
//! `AllTables` plus the application-level phases of MC and C.

use blend_common::{stats::mean, text, FxHashMap, FxHashSet, Result, TableId};
use blend_index::Xash;
use blend_parallel::Interrupt;
use blend_sql::{ExecPath, ResultSet, SqlValue};

use crate::combiners::TableHit;
use crate::plan::Seeker;
use crate::Blend;

/// Placeholder the rewriter replaces with an injected TableId predicate
/// (paper §VII-B "query rewriting"). Present in every seeker template.
pub const TID_PLACEHOLDER: &str = "/*$TID$*/";

/// A predicate injected by the optimizer from intermediate results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Injected {
    /// `AND TableId IN (...)` — intersection rewriting.
    In(Vec<u32>),
    /// `AND TableId NOT IN (...)` — difference rewriting.
    NotIn(Vec<u32>),
}

impl Injected {
    /// Render the SQL fragment replacing [`TID_PLACEHOLDER`].
    pub fn fragment(&self) -> String {
        match self {
            // An empty intersection can never match; `run()` short-circuits
            // before rendering, but the fragment must still be valid SQL
            // (`IN ()` is not), so render a never-true predicate.
            Injected::In(ids) if ids.is_empty() => "AND 1 = 0".to_string(),
            Injected::In(ids) => format!("AND TableId IN ({})", join_ids(ids)),
            Injected::NotIn(ids) if ids.is_empty() => String::new(),
            Injected::NotIn(ids) => format!("AND TableId NOT IN ({})", join_ids(ids)),
        }
    }
}

fn join_ids(ids: &[u32]) -> String {
    let mut s = String::with_capacity(ids.len() * 4);
    for (i, id) in ids.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&id.to_string());
    }
    s
}

/// Append an already-normalized value as a SQL string literal with `'`
/// escaping (normalization matches the indexer's cell normalization).
fn push_quoted(out: &mut String, norm: &str) {
    out.reserve(norm.len() + 2);
    out.push('\'');
    for c in norm.chars() {
        if c == '\'' {
            out.push('\'');
        }
        out.push(c);
    }
    out.push('\'');
}

fn join_values(values: &[String]) -> String {
    // Deduplicate on the normalized value and render the quoted literal
    // straight into the output — one allocation per distinct value instead
    // of a rendered literal plus a seen-set clone per input.
    let mut s = String::new();
    let mut seen: FxHashSet<String> = FxHashSet::default();
    for v in values {
        let norm = text::normalize(v);
        if seen.contains(&norm) {
            continue;
        }
        if !s.is_empty() {
            s.push(',');
        }
        push_quoted(&mut s, &norm);
        seen.insert(norm);
    }
    s
}

/// One executed seeker: its SQL, hits, and MC bookkeeping.
#[derive(Debug, Clone)]
pub struct SeekerRun {
    /// The SQL sent to the engine (post-rewriting).
    pub sql: String,
    /// Ranked results.
    pub hits: Vec<TableHit>,
    /// MC filter-phase statistics (None for other seekers): candidate rows
    /// after the super-key filter and rows surviving exact validation —
    /// the TP/FP numbers of paper Table V.
    pub mc_stats: Option<McStats>,
}

/// MC candidate bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct McStats {
    /// Candidate rows emitted by the SQL phase + super-key filter.
    pub candidates: usize,
    /// Candidates passing exact alignment validation (true positives).
    pub validated: usize,
}

impl McStats {
    /// Filter precision (Table V definition).
    pub fn precision(&self) -> f64 {
        if self.candidates == 0 {
            0.0
        } else {
            self.validated as f64 / self.candidates as f64
        }
    }
}

/// Render the SQL template(s) of a seeker (pre-injection). Exposed for the
/// documentation tests and the LOC experiment.
pub fn seeker_sql(seeker: &Seeker, k: usize, h: usize) -> String {
    match seeker {
        Seeker::Sc { values } => sc_sql(values, k, false),
        Seeker::Kw { keywords } => sc_sql(keywords, k, true),
        Seeker::Mc { rows } => mc_sql(rows),
        Seeker::C { keys, target } => c_sql(keys, target, h),
    }
}

/// Listing 1 (extended with an explicit score column and table-granularity
/// over-fetch; see module docs). `table_wide` drops ColumnId from GROUP BY,
/// turning SC into KW.
fn sc_sql(values: &[String], k: usize, table_wide: bool) -> String {
    let group = if table_wide {
        "TableId"
    } else {
        "TableId, ColumnId"
    };
    // Over-fetch: several (table, column) groups may share a table.
    let fetch = k.saturating_mul(4).saturating_add(8);
    format!(
        "SELECT TableId AS t, COUNT(DISTINCT CellValue) AS score FROM AllTables \
         WHERE CellValue IN ({vals}) {TID_PLACEHOLDER} \
         GROUP BY {group} \
         ORDER BY score DESC \
         LIMIT {fetch}",
        vals = join_values(values),
    )
}

/// Listing 2, generalized to any arity, with explicit projection so the
/// application phase can read values/columns/super keys by label.
fn mc_sql(rows: &[Vec<String>]) -> String {
    let arity = rows.first().map_or(0, Vec::len);
    // Per-column value lists.
    let mut col_values: Vec<Vec<String>> = vec![Vec::new(); arity];
    for row in rows {
        for (c, v) in row.iter().enumerate() {
            col_values[c].push(v.clone());
        }
    }
    let mut proj = vec![
        "q0.TableId AS tid".to_string(),
        "q0.RowId AS rid".to_string(),
        "q0.SuperKey AS sk".to_string(),
    ];
    for c in 0..arity {
        proj.push(format!("q{c}.CellValue AS v{c}"));
        proj.push(format!("q{c}.ColumnId AS c{c}"));
    }
    let mut sql = format!(
        "SELECT {} FROM (SELECT * FROM AllTables WHERE CellValue IN ({}) {TID_PLACEHOLDER}) AS q0",
        proj.join(", "),
        join_values(&col_values[0]),
    );
    for (c, vals) in col_values.iter().enumerate().skip(1) {
        sql.push_str(&format!(
            " INNER JOIN (SELECT * FROM AllTables WHERE CellValue IN ({})) AS q{c} \
             ON q0.TableId = q{c}.TableId AND q0.RowId = q{c}.RowId",
            join_values(vals),
        ));
    }
    sql
}

/// Listing 3: the correlation seeker with the in-SQL QCR score
/// `ABS((2*SUM(concordant)-COUNT(*))/COUNT(*))`. The `k0`/`k1` key split
/// happens here, before query generation, exactly as the paper describes.
fn c_sql(keys: &[String], target: &[f64], h: usize) -> String {
    let m = mean(target).unwrap_or(0.0);
    let mut k0 = Vec::new();
    let mut k1 = Vec::new();
    for (k, t) in keys.iter().zip(target) {
        if *t < m {
            k0.push(k.clone());
        } else {
            k1.push(k.clone());
        }
    }
    format!(
        "SELECT keys.TableId AS t, keys.ColumnId AS kc, nums.ColumnId AS nc, \
         ABS((2 * SUM(((keys.CellValue IN ({k0}) AND nums.Quadrant = 0) OR \
         (keys.CellValue IN ({k1}) AND nums.Quadrant = 1))::int) - COUNT(*)) / COUNT(*)) AS score, \
         COUNT(*) AS n \
         FROM (SELECT * FROM AllTables WHERE RowId < {h} AND CellValue IN ({all}) {TID_PLACEHOLDER}) keys \
         INNER JOIN (SELECT * FROM AllTables WHERE RowId < {h} AND Quadrant IS NOT NULL) nums \
         ON keys.TableId = nums.TableId AND keys.RowId = nums.RowId \
         AND keys.ColumnId <> nums.ColumnId \
         GROUP BY keys.TableId, nums.ColumnId, keys.ColumnId \
         ORDER BY score DESC",
        k0 = join_values(&k0),
        k1 = join_values(&k1),
        all = join_values(keys),
    )
}

/// Execute a seeker against the BLEND engine.
pub fn run(
    blend: &Blend,
    seeker: &Seeker,
    k: usize,
    injected: Option<&Injected>,
    interrupt: &Interrupt,
) -> Result<SeekerRun> {
    // Short-circuit: an empty intersection filter can never match.
    if let Some(Injected::In(ids)) = injected {
        if ids.is_empty() {
            return Ok(SeekerRun {
                sql: String::new(),
                hits: Vec::new(),
                mc_stats: matches!(seeker, Seeker::Mc { .. }).then(McStats::default),
            });
        }
    }
    let template = seeker_sql(seeker, k, blend.options().h);
    let fragment = injected.map(Injected::fragment).unwrap_or_default();
    let sql = template.replace(TID_PLACEHOLDER, &fragment);

    let rs = blend
        .engine()
        .execute_interruptible(&sql, ExecPath::Auto, interrupt.clone())
        .map(|(rs, _)| rs)?;
    let (hits, mc_stats) = match seeker {
        Seeker::Sc { .. } | Seeker::Kw { .. } => (dedup_table_scores(&rs, k), None),
        Seeker::Mc { rows } => {
            let (hits, stats) = mc_postprocess(&rs, rows, k);
            (hits, Some(stats))
        }
        Seeker::C { .. } => (
            c_postprocess(&rs, k, blend.options().corr_min_matches),
            None,
        ),
    };
    Ok(SeekerRun {
        sql,
        hits,
        mc_stats,
    })
}

/// Keep the best score per table, preserving descending order; cut to `k`.
fn dedup_table_scores(rs: &ResultSet, k: usize) -> Vec<TableHit> {
    let (Some(t), Some(s)) = (rs.col("t"), rs.col("score")) else {
        return Vec::new();
    };
    let mut seen: FxHashSet<u32> = FxHashSet::default();
    let mut out = Vec::new();
    for row in &rs.rows {
        let (Some(table), Some(score)) = (row[t].as_i64(), row[s].as_f64()) else {
            continue;
        };
        if seen.insert(table as u32) {
            out.push(TableHit {
                table: TableId(table as u32),
                score,
            });
            if out.len() >= k {
                break;
            }
        }
    }
    out
}

/// MC application phase, per the paper's two steps: (1) the super key of
/// each candidate row prunes rows that cannot hold any full query row
/// (bloom subset test, no value comparisons); (2) exact match validation
/// checks that a matched value combination is an actual query row
/// (alignment). TP/FP are counted per candidate row (Table V).
fn mc_postprocess(rs: &ResultSet, rows: &[Vec<String>], k: usize) -> (Vec<TableHit>, McStats) {
    let arity = rows.first().map_or(0, Vec::len);
    // Normalized query rows for the super-key filter and exact validation.
    let query_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| r.iter().map(|v| text::normalize(v)).collect())
        .collect();
    let query_row_set: FxHashSet<&[String]> = query_rows.iter().map(Vec::as_slice).collect();

    let tid = rs.col("tid");
    let rid = rs.col("rid");
    let sk = rs.col("sk");
    let (Some(tid), Some(rid), Some(sk)) = (tid, rid, sk) else {
        return (Vec::new(), McStats::default());
    };
    // A malformed result set (missing value/column projections) yields an
    // empty hit list rather than crashing the engine.
    let vcols: Option<Vec<usize>> = (0..arity).map(|c| rs.col(&format!("v{c}"))).collect();
    let ccols: Option<Vec<usize>> = (0..arity).map(|c| rs.col(&format!("c{c}"))).collect();
    let (Some(vcols), Some(ccols)) = (vcols, ccols) else {
        return (Vec::new(), McStats::default());
    };

    // Gather per candidate row: its super key and the matched combinations.
    struct Candidate {
        superkey: u128,
        combos: Vec<Vec<String>>,
    }
    let mut candidates: FxHashMap<(u32, u32), Candidate> = FxHashMap::default();
    'tuples: for row in &rs.rows {
        let (Some(t), Some(r)) = (row[tid].as_i64(), row[rid].as_i64()) else {
            continue;
        };
        // Alignment needs the values to come from distinct columns.
        let mut cset = FxHashSet::default();
        for &c in &ccols {
            let Some(cid) = row[c].as_i64() else {
                continue 'tuples;
            };
            if !cset.insert(cid) {
                continue 'tuples;
            }
        }
        let values: Vec<String> = vcols
            .iter()
            .map(|&c| match &row[c] {
                SqlValue::Text(s) => s.to_string(),
                other => other.to_string(),
            })
            .collect();
        let superkey = match row[sk] {
            SqlValue::U128(v) => v,
            _ => continue,
        };
        candidates
            .entry((t as u32, r as u32))
            .or_insert_with(|| Candidate {
                superkey,
                combos: Vec::new(),
            })
            .combos
            .push(values);
    }

    let mut stats = McStats::default();
    let mut joinable: FxHashMap<u32, FxHashSet<u32>> = FxHashMap::default();
    for ((t, r), cand) in candidates {
        // Super-key bloom filter: some full query row may be present.
        let passes = query_rows
            .iter()
            .any(|qr| Xash::may_contain_all(cand.superkey, qr.iter().map(String::as_str)));
        if !passes {
            continue;
        }
        stats.candidates += 1;
        // Exact match validation on the aligned combinations.
        if cand
            .combos
            .iter()
            .any(|combo| query_row_set.contains(combo.as_slice()))
        {
            stats.validated += 1;
            joinable.entry(t).or_default().insert(r);
        }
    }

    let mut topk = blend_common::topk::TopK::new(k);
    for (t, rows) in joinable {
        topk.push(
            rows.len() as f64,
            t as u64,
            TableHit {
                table: TableId(t),
                score: rows.len() as f64,
            },
        );
    }
    (
        topk.into_sorted().into_iter().map(|(_, h)| h).collect(),
        stats,
    )
}

/// C application phase: drop under-supported triplets, keep the best
/// |QCR| per table, cut to `k`.
fn c_postprocess(rs: &ResultSet, k: usize, min_matches: usize) -> Vec<TableHit> {
    let (Some(t), Some(s), Some(n)) = (rs.col("t"), rs.col("score"), rs.col("n")) else {
        return Vec::new();
    };
    let mut best: FxHashMap<u32, f64> = FxHashMap::default();
    for row in &rs.rows {
        let (Some(table), Some(score), Some(support)) =
            (row[t].as_i64(), row[s].as_f64(), row[n].as_i64())
        else {
            continue;
        };
        if (support as usize) < min_matches {
            continue;
        }
        let e = best.entry(table as u32).or_insert(f64::MIN);
        if score > *e {
            *e = score;
        }
    }
    let mut topk = blend_common::topk::TopK::new(k);
    for (table, score) in best {
        topk.push(
            score,
            table as u64,
            TableHit {
                table: TableId(table),
                score,
            },
        );
    }
    topk.into_sorted().into_iter().map(|(_, h)| h).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sql_templates_contain_placeholder() {
        let seekers = [
            Seeker::sc(vec!["a".into()]),
            Seeker::kw(vec!["a".into()]),
            Seeker::mc(vec![vec!["a".into(), "b".into()]]),
            Seeker::c(vec!["k1".into(), "k2".into()], vec![1.0, 2.0]),
        ];
        for s in seekers {
            let sql = seeker_sql(&s, 10, 64);
            assert!(sql.contains(TID_PLACEHOLDER), "{sql}");
        }
    }

    #[test]
    fn injected_fragments() {
        assert_eq!(
            Injected::In(vec![1, 2, 3]).fragment(),
            "AND TableId IN (1,2,3)"
        );
        assert_eq!(
            Injected::NotIn(vec![7]).fragment(),
            "AND TableId NOT IN (7)"
        );
        // Empty NOT IN is a no-op (filters nothing out).
        assert_eq!(Injected::NotIn(vec![]).fragment(), "");
        // Empty IN is usually short-circuited in `run()`, but the fragment
        // must still be valid SQL on its own: a never-true predicate.
        assert_eq!(Injected::In(vec![]).fragment(), "AND 1 = 0");
    }

    #[test]
    fn mc_postprocess_tolerates_malformed_result_sets() {
        use blend_sql::ResultSet;
        let rows = vec![vec!["a".to_string(), "b".to_string()]];
        // Missing the v0/c0 projections entirely.
        let rs = ResultSet {
            columns: vec!["tid".into(), "rid".into(), "sk".into()],
            rows: vec![vec![
                SqlValue::Int(1),
                SqlValue::Int(0),
                SqlValue::U128(0xFF),
            ]],
        };
        let (hits, stats) = mc_postprocess(&rs, &rows, 10);
        assert!(hits.is_empty());
        assert_eq!(stats, McStats::default());

        // Missing the id columns.
        let rs = ResultSet {
            columns: vec!["v0".into()],
            rows: vec![vec![SqlValue::from("a")]],
        };
        let (hits, stats) = mc_postprocess(&rs, &rows, 10);
        assert!(hits.is_empty());
        assert_eq!(stats, McStats::default());
    }

    #[test]
    fn values_are_normalized_escaped_and_deduped() {
        let sql = sc_sql(
            &["O'Brien".into(), "  O'BRIEN ".into(), "x".into()],
            5,
            false,
        );
        assert!(sql.contains("'o''brien'"), "{sql}");
        // Deduplicated after normalization.
        assert_eq!(sql.matches("o''brien").count(), 1);
    }

    #[test]
    fn kw_groups_table_wide() {
        let sc = sc_sql(&["a".into()], 5, false);
        let kw = sc_sql(&["a".into()], 5, true);
        assert!(sc.contains("GROUP BY TableId, ColumnId"));
        assert!(kw.contains("GROUP BY TableId "));
        assert!(!kw.contains("ColumnId"));
    }

    #[test]
    fn mc_sql_joins_per_column() {
        let sql = mc_sql(&[
            vec!["hr".into(), "firenze".into()],
            vec!["it".into(), "riddle".into()],
        ]);
        assert!(sql.contains("AS q0"));
        assert!(sql.contains("AS q1"));
        assert!(sql.contains("q0.RowId = q1.RowId"));
        assert!(sql.contains("'hr'") && sql.contains("'it'"));
        // First column list holds first components, second the second.
        let q0_part = &sql[..sql.find("INNER JOIN").unwrap()];
        assert!(q0_part.contains("'hr'") && q0_part.contains("'it'"));
        assert!(!q0_part.contains("'firenze'"));
    }

    #[test]
    fn c_sql_splits_keys_by_target_mean() {
        // mean = 2.0: k below -> k0, k at/above -> k1.
        let sql = c_sql(&["low".into(), "high".into()], &[1.0, 3.0], 128);
        let k0_pos = sql.find("'low'").unwrap();
        let k1_pos = sql.find("'high'").unwrap();
        let q0 = sql.find("Quadrant = 0").unwrap();
        let q1 = sql.find("Quadrant = 1").unwrap();
        assert!(k0_pos < q0 && q0 < k1_pos && k1_pos < q1, "{sql}");
        assert!(sql.contains("RowId < 128"));
        assert!(sql.contains("keys.ColumnId <> nums.ColumnId"));
    }
}

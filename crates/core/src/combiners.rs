//! Combiner implementations (paper §IV-B): set operations over ranked
//! table collections.
//!
//! Ranking semantics (the paper leaves per-combiner ordering to the
//! implementation; ours is deterministic and documented):
//!
//! * **Intersect** — tables present in every input, ranked by mean input
//!   rank (best average position first);
//! * **Union** — all tables, ranked by their best (lowest) rank across
//!   inputs;
//! * **Difference** — first input's order, minus the second input's tables;
//! * **Counter** — ranked by the number of inputs containing the table
//!   (descending), ties by mean rank.

use blend_common::{FxHashMap, FxHashSet, TableId};

use crate::plan::Combiner;

/// One ranked result table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TableHit {
    pub table: TableId,
    /// Seeker-specific score (overlap count, joinable rows, |QCR|) or the
    /// combiner's aggregate (see module docs).
    pub score: f64,
}

/// Apply a combiner to its inputs' ranked hit lists, producing at most `k`
/// hits.
pub fn apply(combiner: Combiner, inputs: &[Vec<TableHit>], k: usize) -> Vec<TableHit> {
    match combiner {
        Combiner::Intersect => intersect(inputs, k),
        Combiner::Union => union(inputs, k),
        Combiner::Difference => difference(inputs, k),
        Combiner::Counter => counter(inputs, k),
    }
}

fn intersect(inputs: &[Vec<TableHit>], k: usize) -> Vec<TableHit> {
    let Some(first) = inputs.first() else {
        return Vec::new();
    };
    // rank maps per input.
    let ranks: Vec<FxHashMap<TableId, usize>> = inputs
        .iter()
        .map(|hits| hits.iter().enumerate().map(|(i, h)| (h.table, i)).collect())
        .collect();
    let mut topk = blend_common::topk::TopK::new(k);
    for h in first {
        if let Some(rank_sum) = ranks
            .iter()
            .map(|r| r.get(&h.table).copied())
            .try_fold(0usize, |acc, r| r.map(|r| acc + r))
        {
            let mean_rank = rank_sum as f64 / inputs.len() as f64;
            // Higher score = better = lower mean rank.
            topk.push(
                -mean_rank,
                h.table.0 as u64,
                TableHit {
                    table: h.table,
                    score: 1.0 / (1.0 + mean_rank),
                },
            );
        }
    }
    topk.into_sorted().into_iter().map(|(_, h)| h).collect()
}

fn union(inputs: &[Vec<TableHit>], k: usize) -> Vec<TableHit> {
    let mut best_rank: FxHashMap<TableId, usize> = FxHashMap::default();
    for hits in inputs {
        for (i, h) in hits.iter().enumerate() {
            let e = best_rank.entry(h.table).or_insert(usize::MAX);
            *e = (*e).min(i);
        }
    }
    let mut topk = blend_common::topk::TopK::new(k);
    for (t, rank) in best_rank {
        topk.push(
            -(rank as f64),
            t.0 as u64,
            TableHit {
                table: t,
                score: 1.0 / (1.0 + rank as f64),
            },
        );
    }
    topk.into_sorted().into_iter().map(|(_, h)| h).collect()
}

fn difference(inputs: &[Vec<TableHit>], k: usize) -> Vec<TableHit> {
    let (Some(keep), Some(remove)) = (inputs.first(), inputs.get(1)) else {
        return Vec::new();
    };
    let removed: FxHashSet<TableId> = remove.iter().map(|h| h.table).collect();
    keep.iter()
        .filter(|h| !removed.contains(&h.table))
        .take(k)
        .copied()
        .collect()
}

fn counter(inputs: &[Vec<TableHit>], k: usize) -> Vec<TableHit> {
    let mut freq: FxHashMap<TableId, (usize, usize)> = FxHashMap::default(); // (count, rank sum)
    for hits in inputs {
        for (i, h) in hits.iter().enumerate() {
            let e = freq.entry(h.table).or_insert((0, 0));
            e.0 += 1;
            e.1 += i;
        }
    }
    let mut topk = blend_common::topk::TopK::new(k);
    for (t, (count, rank_sum)) in freq {
        // Frequency dominates; mean rank breaks ties (scaled to < 1).
        let mean_rank = rank_sum as f64 / count as f64;
        let score = count as f64 + 1.0 / (2.0 + mean_rank);
        topk.push(
            score,
            t.0 as u64,
            TableHit {
                table: t,
                score: count as f64,
            },
        );
    }
    topk.into_sorted().into_iter().map(|(_, h)| h).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hits(ids: &[u32]) -> Vec<TableHit> {
        ids.iter()
            .enumerate()
            .map(|(i, &id)| TableHit {
                table: TableId(id),
                score: 100.0 - i as f64,
            })
            .collect()
    }

    fn ids(hits: &[TableHit]) -> Vec<u32> {
        hits.iter().map(|h| h.table.0).collect()
    }

    #[test]
    fn intersect_keeps_common_tables() {
        let a = hits(&[1, 2, 3, 4]);
        let b = hits(&[3, 1, 9]);
        let out = apply(Combiner::Intersect, &[a, b], 10);
        // 1: ranks (0,1) mean 0.5; 3: ranks (2,0) mean 1.0.
        assert_eq!(ids(&out), vec![1, 3]);
    }

    #[test]
    fn intersect_is_commutative_on_sets() {
        let a = hits(&[5, 6, 7]);
        let b = hits(&[7, 5]);
        let ab: FxHashSet<u32> = ids(&apply(Combiner::Intersect, &[a.clone(), b.clone()], 10))
            .into_iter()
            .collect();
        let ba: FxHashSet<u32> = ids(&apply(Combiner::Intersect, &[b, a], 10))
            .into_iter()
            .collect();
        assert_eq!(ab, ba);
    }

    #[test]
    fn union_prefers_best_rank() {
        let a = hits(&[1, 2]);
        let b = hits(&[3]);
        let out = apply(Combiner::Union, &[a, b], 10);
        // Ranks: 1->0, 3->0, 2->1; ties by table id.
        assert_eq!(ids(&out), vec![1, 3, 2]);
    }

    #[test]
    fn difference_preserves_first_order_and_is_noncommutative() {
        let a = hits(&[1, 2, 3]);
        let b = hits(&[2]);
        assert_eq!(
            ids(&apply(Combiner::Difference, &[a.clone(), b.clone()], 10)),
            vec![1, 3]
        );
        assert_eq!(
            ids(&apply(Combiner::Difference, &[b, a], 10)),
            Vec::<u32>::new()
        );
    }

    #[test]
    fn counter_ranks_by_frequency() {
        let a = hits(&[1, 2, 3]);
        let b = hits(&[2, 3]);
        let c = hits(&[3]);
        let out = apply(Combiner::Counter, &[a, b, c], 10);
        assert_eq!(ids(&out), vec![3, 2, 1]);
        assert_eq!(out[0].score, 3.0);
        assert_eq!(out[2].score, 1.0);
    }

    #[test]
    fn k_truncates() {
        let a = hits(&[1, 2, 3, 4, 5]);
        let b = hits(&[1, 2, 3, 4, 5]);
        assert_eq!(
            apply(Combiner::Intersect, &[a.clone(), b.clone()], 2).len(),
            2
        );
        assert_eq!(apply(Combiner::Union, &[a.clone(), b.clone()], 3).len(), 3);
        assert_eq!(apply(Combiner::Counter, &[a, b], 1).len(), 1);
    }

    #[test]
    fn empty_inputs() {
        assert!(apply(Combiner::Intersect, &[], 5).is_empty());
        assert!(apply(Combiner::Union, &[vec![], vec![]], 5).is_empty());
        assert!(apply(Combiner::Difference, &[vec![]], 5).is_empty());
        let only = hits(&[4]);
        assert_eq!(
            ids(&apply(Combiner::Difference, &[only, vec![]], 5)),
            vec![4]
        );
    }
}

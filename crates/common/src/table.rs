//! In-memory relational tables and the identifiers used throughout the
//! unified index.

use serde::{Deserialize, Serialize};

use crate::value::Value;

/// Identifier of a table inside a data lake (dense, 0-based).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct TableId(pub u32);

/// Identifier of a column within its table (0-based position).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ColumnId(pub u32);

/// Identifier of a row within its table (0-based position).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct RowId(pub u32);

impl std::fmt::Display for TableId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Inferred column type, used to decide which cells receive quadrant bits
/// and which columns the correlation ground truth considers numerical.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ColumnType {
    /// ≥ 80% of non-null cells parse as numbers.
    Numeric,
    /// Everything else.
    Categorical,
}

/// A named column of values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Column {
    /// Header name (may be empty for headerless web tables).
    pub name: String,
    /// Cell values, one per row.
    pub values: Vec<Value>,
}

impl Column {
    /// Create a column from anything convertible to values.
    pub fn new<N: Into<String>, V: Into<Value>>(name: N, values: Vec<V>) -> Self {
        Column {
            name: name.into(),
            values: values.into_iter().map(Into::into).collect(),
        }
    }

    /// Infer the column type. A column is numeric when at least 80% of its
    /// non-null cells have a numeric view; empty columns are categorical.
    pub fn column_type(&self) -> ColumnType {
        let mut non_null = 0usize;
        let mut numeric = 0usize;
        for v in &self.values {
            if !v.is_null() {
                non_null += 1;
                if v.as_f64().is_some() {
                    numeric += 1;
                }
            }
        }
        if non_null > 0 && numeric * 5 >= non_null * 4 {
            ColumnType::Numeric
        } else {
            ColumnType::Categorical
        }
    }

    /// Mean of the numeric cells, if any. This is the per-column average the
    /// quadrant bit compares against (paper Section V).
    pub fn numeric_mean(&self) -> Option<f64> {
        let mut sum = 0.0;
        let mut n = 0usize;
        for v in &self.values {
            if let Some(f) = v.as_f64() {
                sum += f;
                n += 1;
            }
        }
        if n == 0 {
            None
        } else {
            Some(sum / n as f64)
        }
    }
}

/// An in-memory lake table.
///
/// Tables are column-major (matching the generators and the indexer's access
/// pattern) but expose row accessors for the operators that validate value
/// alignment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    /// Lake-wide identifier.
    pub id: TableId,
    /// Human-readable name (dataset/file name).
    pub name: String,
    /// Columns; all must share the same length.
    pub columns: Vec<Column>,
}

impl Table {
    /// Build a table, checking that all columns have equal length.
    pub fn new<N: Into<String>>(id: TableId, name: N, columns: Vec<Column>) -> crate::Result<Self> {
        if let Some(first) = columns.first() {
            let n = first.values.len();
            if let Some(bad) = columns.iter().find(|c| c.values.len() != n) {
                return Err(crate::BlendError::InvalidInput(format!(
                    "column `{}` has {} rows, expected {}",
                    bad.name,
                    bad.values.len(),
                    n
                )));
            }
        }
        Ok(Table {
            id,
            name: name.into(),
            columns,
        })
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.columns.first().map_or(0, |c| c.values.len())
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.columns.len()
    }

    /// Cell accessor (column-major storage).
    pub fn cell(&self, row: usize, col: usize) -> &Value {
        &self.columns[col].values[row]
    }

    /// Iterate over one row's cells.
    pub fn row(&self, row: usize) -> impl Iterator<Item = &Value> {
        self.columns.iter().map(move |c| &c.values[row])
    }

    /// Index of the column with the given (exact) name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Total number of non-null cells (the number of index entries the table
    /// contributes to `AllTables`).
    pub fn non_null_cells(&self) -> usize {
        self.columns
            .iter()
            .map(|c| c.values.iter().filter(|v| !v.is_null()).count())
            .sum()
    }

    /// Parse a simple CSV string (comma-separated, first line is the header,
    /// no quoting — the lake generators never emit commas inside fields).
    /// Provided so examples can load small hand-written tables.
    pub fn from_csv(id: TableId, name: &str, csv: &str) -> crate::Result<Self> {
        let mut lines = csv.lines().filter(|l| !l.trim().is_empty());
        let header = lines
            .next()
            .ok_or_else(|| crate::BlendError::InvalidInput("empty CSV".into()))?;
        let names: Vec<&str> = header.split(',').map(str::trim).collect();
        let mut columns: Vec<Column> = names
            .iter()
            .map(|n| Column {
                name: n.to_string(),
                values: Vec::new(),
            })
            .collect();
        for (lineno, line) in lines.enumerate() {
            let fields: Vec<&str> = line.split(',').collect();
            if fields.len() != columns.len() {
                return Err(crate::BlendError::InvalidInput(format!(
                    "CSV row {} has {} fields, expected {}",
                    lineno + 2,
                    fields.len(),
                    columns.len()
                )));
            }
            for (c, field) in columns.iter_mut().zip(fields) {
                c.values.push(Value::parse(field));
            }
        }
        Table::new(id, name, columns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dept_table() -> Table {
        Table::from_csv(
            TableId(0),
            "S",
            "Dep.,Head\nHR,Firenze\nMarketing,\nFinance,\nIT,\nR&D,\nSales,\n",
        )
        .unwrap()
    }

    #[test]
    fn csv_parsing_shapes() {
        let t = dept_table();
        assert_eq!(t.n_rows(), 6);
        assert_eq!(t.n_cols(), 2);
        assert_eq!(t.cell(0, 0), &Value::Text("HR".into()));
        assert!(t.cell(1, 1).is_null());
        assert_eq!(t.column_index("Head"), Some(1));
    }

    #[test]
    fn mismatched_columns_rejected() {
        let r = Table::new(
            TableId(0),
            "bad",
            vec![
                Column::new("a", vec![1i64, 2]),
                Column::new("b", vec![1i64]),
            ],
        );
        assert!(r.is_err());
    }

    #[test]
    fn csv_row_arity_checked() {
        let r = Table::from_csv(TableId(0), "bad", "a,b\n1,2\n3\n");
        assert!(r.is_err());
    }

    #[test]
    fn column_type_inference() {
        let nums = Column::new("n", vec![Value::Int(1), Value::Null, Value::Float(2.5)]);
        assert_eq!(nums.column_type(), ColumnType::Numeric);
        let mixed = Column::new(
            "m",
            vec![
                Value::Text("a".into()),
                Value::Int(1),
                Value::Text("b".into()),
            ],
        );
        assert_eq!(mixed.column_type(), ColumnType::Categorical);
        // Numbers stored as text still count as numeric.
        let texty = Column::new(
            "t",
            vec![Value::Text("10".into()), Value::Text("20".into())],
        );
        assert_eq!(texty.column_type(), ColumnType::Numeric);
    }

    #[test]
    fn numeric_mean_ignores_nulls_and_text() {
        let c = Column::new(
            "n",
            vec![
                Value::Int(2),
                Value::Null,
                Value::Int(4),
                Value::Text("x".into()),
            ],
        );
        assert_eq!(c.numeric_mean(), Some(3.0));
        let empty = Column::new("e", Vec::<Value>::new());
        assert_eq!(empty.numeric_mean(), None);
    }

    #[test]
    fn non_null_cells_counts() {
        assert_eq!(dept_table().non_null_cells(), 7);
    }

    #[test]
    fn row_iteration() {
        let t = dept_table();
        let r0: Vec<String> = t.row(0).map(|v| v.to_string()).collect();
        assert_eq!(r0, vec!["HR", "Firenze"]);
    }
}

//! Bounded top-k selection.
//!
//! Every seeker and several baselines finish with "return the k best items
//! by score, ties broken deterministically". A bounded binary heap keeps
//! that O(n log k) instead of sorting the full candidate set.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An item with an `f64` score and a deterministic tiebreak key.
#[derive(Debug, Clone)]
struct Entry<T> {
    score: f64,
    tiebreak: u64,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp_key() == other.cmp_key()
    }
}
impl<T> Eq for Entry<T> {}

impl<T> Entry<T> {
    /// Min-heap key: lowest score (then highest tiebreak) at the top, so the
    /// heap root is always the current k-th best candidate.
    fn cmp_key(&self) -> (std::cmp::Reverse<u64>, f64) {
        (std::cmp::Reverse(self.tiebreak), self.score)
    }
}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the *worst* entry is at the
        // root and can be evicted.
        other
            .score
            .total_cmp(&self.score)
            .then_with(|| self.tiebreak.cmp(&other.tiebreak))
    }
}

/// Collects the top `k` items by score (descending), breaking ties by the
/// *smallest* tiebreak key (typically a table id), which keeps results
/// deterministic across runs and storage engines.
#[derive(Debug, Clone)]
pub struct TopK<T> {
    k: usize,
    heap: BinaryHeap<Entry<T>>,
}

impl<T> TopK<T> {
    /// New collector for `k` items. `k == 0` collects nothing;
    /// `usize::MAX` collects everything.
    pub fn new(k: usize) -> Self {
        TopK {
            k,
            // Capacity hint only; unbounded k must not overflow or
            // pre-allocate absurdly.
            heap: BinaryHeap::with_capacity(k.saturating_add(1).min(4096)),
        }
    }

    /// Offer an item.
    pub fn push(&mut self, score: f64, tiebreak: u64, item: T) {
        if self.k == 0 {
            return;
        }
        if self.heap.len() < self.k {
            self.heap.push(Entry {
                score,
                tiebreak,
                item,
            });
            return;
        }
        // Evict the current worst if strictly beaten (or tied with a larger
        // tiebreak key).
        let worst = self.heap.peek().expect("non-empty");
        let beats = score > worst.score || (score == worst.score && tiebreak < worst.tiebreak);
        if beats {
            self.heap.pop();
            self.heap.push(Entry {
                score,
                tiebreak,
                item,
            });
        }
    }

    /// Current number of collected items.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing has been collected.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Lowest score currently kept; `None` until `k` items are held. Useful
    /// as a pruning threshold in search loops.
    pub fn threshold(&self) -> Option<f64> {
        if self.heap.len() < self.k {
            None
        } else {
            self.heap.peek().map(|e| e.score)
        }
    }

    /// Finish, returning `(score, item)` sorted best-first.
    pub fn into_sorted(self) -> Vec<(f64, T)> {
        let mut v: Vec<Entry<T>> = self.heap.into_vec();
        v.sort_by(|a, b| {
            b.score
                .total_cmp(&a.score)
                .then_with(|| a.tiebreak.cmp(&b.tiebreak))
        });
        v.into_iter().map(|e| (e.score, e.item)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_best_k() {
        let mut t = TopK::new(3);
        for (i, s) in [5.0, 1.0, 9.0, 3.0, 7.0].into_iter().enumerate() {
            t.push(s, i as u64, i);
        }
        let out = t.into_sorted();
        let scores: Vec<f64> = out.iter().map(|(s, _)| *s).collect();
        assert_eq!(scores, vec![9.0, 7.0, 5.0]);
    }

    #[test]
    fn ties_broken_by_smallest_key() {
        let mut t = TopK::new(2);
        t.push(1.0, 30, "c");
        t.push(1.0, 10, "a");
        t.push(1.0, 20, "b");
        let out = t.into_sorted();
        let items: Vec<&str> = out.iter().map(|(_, i)| *i).collect();
        assert_eq!(items, vec!["a", "b"]);
    }

    #[test]
    fn zero_k_collects_nothing() {
        let mut t = TopK::new(0);
        t.push(1.0, 0, ());
        assert!(t.is_empty());
        assert!(t.into_sorted().is_empty());
    }

    #[test]
    fn threshold_appears_when_full() {
        let mut t = TopK::new(2);
        assert_eq!(t.threshold(), None);
        t.push(5.0, 0, ());
        assert_eq!(t.threshold(), None);
        t.push(3.0, 1, ());
        assert_eq!(t.threshold(), Some(3.0));
        t.push(4.0, 2, ());
        assert_eq!(t.threshold(), Some(4.0));
    }

    #[test]
    fn matches_full_sort_on_random_input() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let items: Vec<(f64, u64)> = (0..500u64)
            .map(|i| (rng.random_range(0..100) as f64, i))
            .collect();
        let mut t = TopK::new(25);
        for &(s, i) in &items {
            t.push(s, i, i);
        }
        let fast: Vec<u64> = t.into_sorted().into_iter().map(|(_, i)| i).collect();
        let mut slow = items.clone();
        slow.sort_by(|a, b| b.0.total_cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
        let slow: Vec<u64> = slow.into_iter().take(25).map(|(_, i)| i).collect();
        assert_eq!(fast, slow);
    }
}

//! Shared foundations for the BLEND data-discovery reproduction.
//!
//! This crate contains the pieces every other crate in the workspace builds
//! on:
//!
//! * [`value`] — the dynamically typed cell [`value::Value`] stored in lake
//!   tables, plus parsing and normalization rules shared by the indexer and
//!   the SQL engine.
//! * [`table`] — in-memory relational tables ([`table::Table`],
//!   [`table::Column`]) and the identifier newtypes (`TableId`, `ColumnId`,
//!   `RowId`) that appear in the unified `AllTables` index.
//! * [`hash`] — an FxHash-style fast hasher and hash-map/set aliases used on
//!   hot paths (the guide-recommended replacement for SipHash).
//! * [`text`] — cell normalization and tokenization.
//! * [`stats`] — means, Pearson correlation, ordinary least squares (used by
//!   BLEND's learned cost model) and ranking metrics (P@k, recall, MAP).
//! * [`topk`] — a small bounded max-/min-heap for top-k selection.
//! * [`zipf`] — a seeded Zipf sampler for the synthetic lake generators.
//! * [`error`] — the shared [`error::BlendError`] type.

pub mod alloc;
pub mod error;
pub mod hash;
pub mod stats;
pub mod table;
pub mod text;
pub mod topk;
pub mod value;
pub mod zipf;

pub use alloc::{try_reserve, try_reserve_exact, try_vec_with_capacity, try_zeroed_vec};
pub use error::{BlendError, Result};
pub use hash::{mix128, mix128x8, mix64, mix64x8, FxHashMap, FxHashSet, FxHasher, MIX_LANES};
pub use table::{Column, ColumnId, ColumnType, RowId, Table, TableId};
pub use value::Value;

//! Cell normalization and tokenization shared by the indexer, the SQL
//! engine's string comparisons, and the embedding encoder.

use std::borrow::Cow;

/// Normalize a raw cell string: trim, lowercase, collapse whitespace runs to
/// a single space.
///
/// Returns a borrowed slice when the input is already normalized, avoiding an
/// allocation on the (common) clean-data path.
pub fn normalize_cow(s: &str) -> Cow<'_, str> {
    let trimmed = s.trim();
    let needs_work = trimmed
        .chars()
        .any(|c| c.is_ascii_uppercase() || c.is_whitespace() && c != ' ')
        || trimmed.contains("  ")
        || trimmed.len() != s.len();
    if !needs_work {
        return Cow::Borrowed(trimmed);
    }
    let mut out = String::with_capacity(trimmed.len());
    let mut last_space = false;
    for c in trimmed.chars() {
        if c.is_whitespace() {
            if !last_space {
                out.push(' ');
                last_space = true;
            }
        } else {
            last_space = false;
            if c.is_ascii_uppercase() {
                out.push(c.to_ascii_lowercase());
            } else {
                out.push(c);
            }
        }
    }
    Cow::Owned(out)
}

/// Owned convenience wrapper over [`normalize_cow`].
pub fn normalize(s: &str) -> String {
    normalize_cow(s).into_owned()
}

/// Split a normalized cell into word tokens (alphanumeric runs).
pub fn tokens(s: &str) -> impl Iterator<Item = &str> {
    s.split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
}

/// Character trigrams of a token, used by the embedding encoder to give
/// lexically close values nearby vectors.
pub fn trigrams(token: &str) -> Vec<String> {
    let chars: Vec<char> = token.chars().collect();
    if chars.len() < 3 {
        return vec![token.to_string()];
    }
    chars.windows(3).map(|w| w.iter().collect()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_borrows_when_clean() {
        assert!(matches!(normalize_cow("already clean"), Cow::Borrowed(_)));
        assert!(matches!(normalize_cow("Needs Work"), Cow::Owned(_)));
    }

    #[test]
    fn normalize_collapses_whitespace_and_case() {
        assert_eq!(normalize("  Tom \t Riddle\n"), "tom riddle");
        assert_eq!(normalize("HR"), "hr");
        assert_eq!(normalize(""), "");
    }

    #[test]
    fn normalize_preserves_non_ascii() {
        assert_eq!(normalize("Universität  Hannover"), "universität hannover");
    }

    #[test]
    fn tokens_split_on_punctuation() {
        let ts: Vec<&str> = tokens("new-york city, ny 2024").collect();
        assert_eq!(ts, vec!["new", "york", "city", "ny", "2024"]);
    }

    #[test]
    fn trigrams_of_short_tokens_are_the_token() {
        assert_eq!(trigrams("ab"), vec!["ab".to_string()]);
        assert_eq!(trigrams("abcd"), vec!["abc".to_string(), "bcd".to_string()]);
    }

    #[test]
    fn normalize_idempotent() {
        let once = normalize("  A  B ");
        assert_eq!(normalize(&once), once);
    }
}

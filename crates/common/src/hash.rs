//! FxHash-style fast hashing.
//!
//! The default `SipHash` used by `std::collections::HashMap` is
//! collision-resistant but slow for the short string and integer keys that
//! dominate BLEND's hot paths (posting-list probes, candidate maps keyed by
//! `(TableId, RowId)`). Following the Rust performance guide we use the Fx
//! algorithm (the hasher used inside rustc): a single multiply-xor round per
//! word. HashDoS is not a concern for an analytical system operating on its
//! own index.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the Firefox/rustc Fx hash.
const SEED64: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// A fast, non-cryptographic hasher (Fx algorithm).
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED64);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf) ^ rem.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `HashMap` with the Fx hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` with the Fx hasher.
pub type FxHashSet<K> = std::collections::HashSet<K, BuildHasherDefault<FxHasher>>;

/// Hash an arbitrary byte slice to 64 bits with the Fx algorithm.
#[inline]
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = FxHasher::default();
    h.write(bytes);
    h.finish()
}

/// Hash a string to 64 bits. Used by sketch indexes (QCR) and embeddings.
#[inline]
pub fn hash_str(s: &str) -> u64 {
    hash_bytes(s.as_bytes())
}

/// Combine two 64-bit hashes into one (order-sensitive).
#[inline]
pub fn combine(a: u64, b: u64) -> u64 {
    (a.rotate_left(ROTATE) ^ b).wrapping_mul(SEED64)
}

/// A cheap deterministic 64→64 bit mixer (splitmix64 finalizer). Handy when a
/// second independent hash of an already-hashed key is required, and the
/// per-key hash of the flat join/group tables (one packed `u64` key per row,
/// no `Hasher` state to thread through).
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Mix a packed 128-bit key down to 64 well-distributed bits: the wide-key
/// counterpart of [`mix64`] used by the flat join/group tables when 3–4 u32
/// key columns are packed into one `u128`. Both halves go through the
/// splitmix finalizer so every input bit reaches every output bit.
#[inline]
pub fn mix128(x: u128) -> u64 {
    mix64(x as u64 ^ mix64((x >> 64) as u64))
}

/// Batch width of [`mix64x8`]/[`mix128x8`].
pub const MIX_LANES: usize = 8;

/// [`mix64`] over 8 packed keys at once. The finalizer is applied
/// stage-by-stage across the whole array — four short independent loops —
/// so the auto-vectorizer can widen each stage instead of fighting the
/// cross-stage dependency of the fused scalar form. Produces exactly
/// `x.map(mix64)`; the batched hash entry points in `blend_sql::hashtable`
/// rely on that equivalence for parity.
#[inline]
pub fn mix64x8(mut x: [u64; 8]) -> [u64; 8] {
    for v in &mut x {
        *v = v.wrapping_add(0x9e37_79b9_7f4a_7c15);
    }
    for v in &mut x {
        *v = (*v ^ (*v >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    }
    for v in &mut x {
        *v = (*v ^ (*v >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    }
    for v in &mut x {
        *v ^= *v >> 31;
    }
    x
}

/// [`mix128`] over 8 packed keys at once: both halves run through
/// [`mix64x8`], preserving `x.map(mix128)` exactly.
#[inline]
pub fn mix128x8(x: [u128; 8]) -> [u64; 8] {
    let mut hi = [0u64; 8];
    let mut lo = [0u64; 8];
    for i in 0..8 {
        hi[i] = (x[i] >> 64) as u64;
        lo[i] = x[i] as u64;
    }
    let h = mix64x8(hi);
    let mut t = [0u64; 8];
    for i in 0..8 {
        t[i] = lo[i] ^ h[i];
    }
    mix64x8(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(hash_str("hello"), hash_str("hello"));
        assert_ne!(hash_str("hello"), hash_str("hellp"));
    }

    #[test]
    fn chunked_writes_differ_from_single_write_consistently() {
        // Same input must hash identically regardless of how callers obtained
        // the bytes.
        let a = hash_bytes(b"abcdefghijklmnop");
        let b = hash_bytes(b"abcdefghijklmnop");
        assert_eq!(a, b);
    }

    #[test]
    fn short_inputs_distinguished_by_length() {
        // The tail padding mixes in the remainder length, so prefixes of the
        // zero block do not collide trivially.
        assert_ne!(hash_bytes(&[0u8; 1]), hash_bytes(&[0u8; 2]));
        assert_ne!(hash_bytes(&[0u8; 7]), hash_bytes(&[0u8; 8]));
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<&str, u32> = FxHashMap::default();
        m.insert("a", 1);
        assert_eq!(m["a"], 1);
        let mut s: FxHashSet<u64> = FxHashSet::default();
        s.insert(42);
        assert!(s.contains(&42));
    }

    #[test]
    fn mix64_is_a_bijection_probe() {
        // splitmix finalizer should not map distinct small inputs together.
        let outs: std::collections::HashSet<u64> = (0..10_000u64).map(mix64).collect();
        assert_eq!(outs.len(), 10_000);
    }

    #[test]
    fn combine_is_order_sensitive() {
        assert_ne!(combine(1, 2), combine(2, 1));
    }

    #[test]
    fn batched_mixers_match_scalar_exactly() {
        let xs64: [u64; 8] = [0, 1, u64::MAX, 42, 1 << 63, 0x9e37, 7, u64::MAX - 1];
        assert_eq!(mix64x8(xs64), xs64.map(mix64));
        let xs128: [u128; 8] = [
            0,
            1,
            u128::MAX,
            42 << 64,
            1 << 127,
            (7u128 << 64) | 9,
            u64::MAX as u128,
            u128::MAX - 1,
        ];
        assert_eq!(mix128x8(xs128), xs128.map(mix128));
    }
}

//! The dynamically typed cell value stored in lake tables.

use std::borrow::Cow;
use std::cmp::Ordering;
use std::fmt;

use serde::{Deserialize, Serialize};

/// A single table cell.
///
/// Lake tables are schemaless in practice (web tables, open-data CSVs), so a
/// cell can be missing, textual, numeric, or boolean. The unified index
/// stores the *normalized textual form* of every non-null cell (see
/// [`Value::normalized`]), plus a quadrant bit for numeric cells.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// SQL NULL / missing cell.
    Null,
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Boolean.
    Bool(bool),
    /// Free text.
    Text(String),
}

impl Value {
    /// Parse a raw string (e.g. a CSV field) into the most specific value.
    ///
    /// Empty strings and common null markers become [`Value::Null`].
    pub fn parse(raw: &str) -> Value {
        let t = raw.trim();
        if t.is_empty() {
            return Value::Null;
        }
        match t.to_ascii_lowercase().as_str() {
            "null" | "nan" | "n/a" | "na" | "none" | "-" => return Value::Null,
            "true" => return Value::Bool(true),
            "false" => return Value::Bool(false),
            _ => {}
        }
        if let Ok(i) = t.parse::<i64>() {
            return Value::Int(i);
        }
        if let Ok(f) = t.parse::<f64>() {
            if f.is_finite() {
                return Value::Float(f);
            }
        }
        Value::Text(t.to_string())
    }

    /// True if the value is NULL.
    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view of the value, if it has one.
    ///
    /// Text that parses as a number is treated as numeric: lake tables
    /// routinely store numbers as strings, and both the quadrant computation
    /// and the correlation ground truth must see through that.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Bool(b) => Some(*b as i64 as f64),
            Value::Text(s) => {
                let t = s.trim();
                if t.is_empty() {
                    None
                } else {
                    t.parse::<f64>().ok().filter(|f| f.is_finite())
                }
            }
            Value::Null => None,
        }
    }

    /// The normalized textual form indexed in `AllTables.CellValue`.
    ///
    /// Normalization follows the DataXFormer-style inverted index: trim,
    /// lowercase, collapse internal whitespace. Integers and floats render in
    /// a canonical form so `"42"`, `42` and `42.0` share a postings list.
    /// Returns `None` for NULLs, which are never indexed.
    pub fn normalized(&self) -> Option<Cow<'_, str>> {
        match self {
            Value::Null => None,
            Value::Int(i) => Some(Cow::Owned(i.to_string())),
            Value::Float(f) => Some(Cow::Owned(fmt_float(*f))),
            Value::Bool(b) => Some(Cow::Borrowed(if *b { "true" } else { "false" })),
            Value::Text(s) => Some(crate::text::normalize_cow(s)),
        }
    }

    /// Total ordering used by ORDER BY and sorting ground truths: NULLs
    /// first, then numerics by value, then booleans, then text.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Int(_) | Value::Float(_) => 1,
                Value::Bool(_) => 2,
                Value::Text(_) => 3,
            }
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
            (Value::Int(a), Value::Float(b)) => (*a as f64).total_cmp(b),
            (Value::Float(a), Value::Int(b)) => a.total_cmp(&(*b as f64)),
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Text(a), Value::Text(b)) => a.cmp(b),
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }
}

/// Canonical float formatting: integral floats render without the fraction
/// (matching how `42.0` appears as `"42"` in a lake CSV).
fn fmt_float(f: f64) -> String {
    if f.fract() == 0.0 && f.abs() < 1e15 {
        format!("{}", f as i64)
    } else {
        format!("{f}")
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{}", fmt_float(*x)),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Text(s) => write!(f, "{s}"),
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Text(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Text(s)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_detects_types() {
        assert_eq!(Value::parse("42"), Value::Int(42));
        assert_eq!(Value::parse(" 42 "), Value::Int(42));
        assert_eq!(Value::parse("4.5"), Value::Float(4.5));
        assert_eq!(Value::parse("true"), Value::Bool(true));
        assert_eq!(Value::parse(""), Value::Null);
        assert_eq!(Value::parse("N/A"), Value::Null);
        assert_eq!(Value::parse("Berlin"), Value::Text("Berlin".into()));
    }

    #[test]
    fn infinity_is_text_not_float() {
        // "inf" parses as f64::INFINITY but we refuse non-finite numerics.
        assert!(matches!(Value::parse("inf"), Value::Text(_)));
    }

    #[test]
    fn as_f64_sees_through_text() {
        assert_eq!(Value::Text("3.5".into()).as_f64(), Some(3.5));
        assert_eq!(Value::Text("abc".into()).as_f64(), None);
        assert_eq!(Value::Int(7).as_f64(), Some(7.0));
        assert_eq!(Value::Null.as_f64(), None);
    }

    #[test]
    fn normalized_is_canonical_across_numeric_forms() {
        assert_eq!(Value::Int(42).normalized().unwrap(), "42");
        assert_eq!(Value::Float(42.0).normalized().unwrap(), "42");
        assert_eq!(Value::Text(" 42".into()).normalized().unwrap(), "42");
        assert_eq!(
            Value::Text("  Tom   Riddle ".into()).normalized().unwrap(),
            "tom riddle"
        );
        assert!(Value::Null.normalized().is_none());
    }

    #[test]
    fn total_cmp_orders_across_types() {
        let mut vs = vec![
            Value::Text("b".into()),
            Value::Int(3),
            Value::Null,
            Value::Float(1.5),
            Value::Bool(true),
        ];
        vs.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(
            vs,
            vec![
                Value::Null,
                Value::Float(1.5),
                Value::Int(3),
                Value::Bool(true),
                Value::Text("b".into()),
            ]
        );
    }

    #[test]
    fn display_roundtrips_ints() {
        assert_eq!(Value::Int(-7).to_string(), "-7");
        assert_eq!(Value::Float(2.5).to_string(), "2.5");
        assert_eq!(Value::Float(2.0).to_string(), "2");
    }
}

//! Seeded Zipf sampling for the synthetic lake generators.
//!
//! Web-table corpora have heavily skewed value distributions: a few values
//! ("usa", "2022", "male") occur in millions of cells while the long tail is
//! nearly unique. Posting-list skew is what makes the paper's runtime curves
//! (Fig. 5) and the optimizer's frequency feature meaningful, so the
//! generators sample cell values from a Zipf distribution.

use rand::Rng;

/// A Zipf(`n`, `s`) sampler over ranks `0..n` using a precomputed inverse
/// CDF table (O(log n) per sample, exact).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a sampler over `n` ranks with exponent `s` (s=0 is uniform,
    /// s≈1 matches natural-language-like skew).
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf over empty domain");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 1..=n {
            acc += 1.0 / (rank as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // Guard against floating-point round-off in the last bucket.
        *cdf.last_mut().expect("n > 0") = 1.0;
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Draw a rank in `0..n` (rank 0 is the most frequent).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        match self.cdf.binary_search_by(|p| p.total_cmp(&u)) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn uniform_when_s_is_zero() {
        let z = Zipf::new(10, 0.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut counts = [0usize; 10];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((1500..2500).contains(&c), "non-uniform: {counts:?}");
        }
    }

    #[test]
    fn skewed_when_s_is_one() {
        let z = Zipf::new(100, 1.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut counts = vec![0usize; 100];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        // Rank 0 should dominate rank 50 by roughly 50x under Zipf(1).
        assert!(
            counts[0] > counts[50] * 10,
            "{} vs {}",
            counts[0],
            counts[50]
        );
    }

    #[test]
    fn samples_in_range() {
        let z = Zipf::new(3, 1.2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 3);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let z = Zipf::new(50, 1.0);
        let a: Vec<usize> = {
            let mut rng = rand::rngs::StdRng::seed_from_u64(9);
            (0..100).map(|_| z.sample(&mut rng)).collect()
        };
        let b: Vec<usize> = {
            let mut rng = rand::rngs::StdRng::seed_from_u64(9);
            (0..100).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}

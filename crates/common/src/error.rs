//! Shared error type for the BLEND workspace.

use std::fmt;

/// Workspace-wide result alias.
pub type Result<T> = std::result::Result<T, BlendError>;

/// Errors raised anywhere in the BLEND stack.
///
/// The variants are deliberately coarse: each carries a human-readable
/// message naming the failing component, mirroring how a database surfaces
/// errors to clients.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlendError {
    /// SQL text could not be tokenized or parsed.
    SqlParse(String),
    /// A well-formed query referenced something that does not exist or used
    /// an unsupported construct.
    SqlPlan(String),
    /// A runtime failure while executing a physical plan.
    SqlExec(String),
    /// A discovery plan failed validation (cycle, bad arity, unknown node).
    PlanInvalid(String),
    /// An operator received malformed input (e.g. MC seeker with one column).
    InvalidInput(String),
    /// Index construction failed.
    Index(String),
    /// I/O wrapper (kept as a string so the error stays `Clone + Eq`).
    Io(String),
    /// A request's deadline expired before it finished (while queued,
    /// waiting for admission, or mid-execution).
    Timeout(String),
    /// A request was cancelled cooperatively via its cancellation token.
    Cancelled(String),
    /// The serving tier shed the request: the bounded queue was full.
    Overloaded(String),
    /// A memory reservation failed after the full degradation ladder
    /// (cache reclaim → narrowed parallelism → sequential) was exhausted,
    /// or an OS-level allocation failed. The request's partials were
    /// discarded; the engine stays serviceable.
    MemoryExceeded(String),
}

impl fmt::Display for BlendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlendError::SqlParse(m) => write!(f, "SQL parse error: {m}"),
            BlendError::SqlPlan(m) => write!(f, "SQL planning error: {m}"),
            BlendError::SqlExec(m) => write!(f, "SQL execution error: {m}"),
            BlendError::PlanInvalid(m) => write!(f, "invalid discovery plan: {m}"),
            BlendError::InvalidInput(m) => write!(f, "invalid input: {m}"),
            BlendError::Index(m) => write!(f, "index error: {m}"),
            BlendError::Io(m) => write!(f, "I/O error: {m}"),
            BlendError::Timeout(m) => write!(f, "deadline exceeded: {m}"),
            BlendError::Cancelled(m) => write!(f, "cancelled: {m}"),
            BlendError::Overloaded(m) => write!(f, "overloaded: {m}"),
            BlendError::MemoryExceeded(m) => write!(f, "memory budget exceeded: {m}"),
        }
    }
}

impl std::error::Error for BlendError {}

impl From<std::io::Error> for BlendError {
    fn from(e: std::io::Error) -> Self {
        BlendError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_component_and_message() {
        let e = BlendError::SqlParse("unexpected token `FROM`".into());
        assert_eq!(e.to_string(), "SQL parse error: unexpected token `FROM`");
        let e = BlendError::PlanInvalid("cycle detected".into());
        assert!(e.to_string().contains("cycle detected"));
    }

    #[test]
    fn serving_variants_display_their_component() {
        assert_eq!(
            BlendError::Timeout("queued 5ms past deadline".into()).to_string(),
            "deadline exceeded: queued 5ms past deadline"
        );
        assert_eq!(
            BlendError::Cancelled("client went away".into()).to_string(),
            "cancelled: client went away"
        );
        assert_eq!(
            BlendError::Overloaded("queue full (depth 4)".into()).to_string(),
            "overloaded: queue full (depth 4)"
        );
        assert_eq!(
            BlendError::MemoryExceeded("join_build wanted 64 KiB".into()).to_string(),
            "memory budget exceeded: join_build wanted 64 KiB"
        );
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let e: BlendError = io.into();
        assert!(matches!(e, BlendError::Io(_)));
        assert!(e.to_string().contains("missing"));
    }
}

//! Numeric utilities: correlation, the QCR statistic, ordinary least squares
//! (BLEND's learned cost model), and the retrieval-quality metrics used by
//! the evaluation harness (P@k, recall@k, MAP@k).

/// Arithmetic mean; `None` for empty input.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

/// Pearson correlation coefficient of two equal-length slices.
///
/// Returns `None` when either side has zero variance or fewer than two
/// observations. This is the exact statistic the QCR quadrant sketch
/// approximates; the correlation ground truth uses it directly.
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        let dx = x - mx;
        let dy = y - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        None
    } else {
        Some(sxy / (sxx * syy).sqrt())
    }
}

/// The Quadrant Count Ratio statistic (Holmes 2001), the linear-correlation
/// estimator both the QCR index and BLEND's correlation seeker compute:
/// `QCR = (n_I + n_III - n_II - n_IV) / N`, where observations fall in
/// quadrant I/III when both coordinates are on the same side of their means.
pub fn qcr(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.is_empty() {
        return None;
    }
    let mx = mean(xs)?;
    let my = mean(ys)?;
    let mut concordant = 0i64;
    for (x, y) in xs.iter().zip(ys) {
        // The paper's cell-level formulation: Quadrant = (value >= mean).
        let qx = *x >= mx;
        let qy = *y >= my;
        if qx == qy {
            concordant += 1;
        } else {
            concordant -= 1;
        }
    }
    Some(concordant as f64 / xs.len() as f64)
}

/// Ordinary least squares via normal equations with ridge damping.
///
/// Solves `argmin_w ||X w - y||^2 + lambda ||w||^2` for a small feature
/// count (BLEND's cost model uses 4 features). Returns the weight vector.
/// `rows` are feature vectors; all must share the same length.
// Index-based loops keep the matrix algebra readable.
#[allow(clippy::needless_range_loop)]
pub fn ols(rows: &[Vec<f64>], y: &[f64], lambda: f64) -> Option<Vec<f64>> {
    let n = rows.len();
    if n == 0 || n != y.len() {
        return None;
    }
    let d = rows[0].len();
    if d == 0 || rows.iter().any(|r| r.len() != d) {
        return None;
    }
    // Accumulate X^T X (d x d) and X^T y (d).
    let mut xtx = vec![vec![0.0f64; d]; d];
    let mut xty = vec![0.0f64; d];
    for (r, &yi) in rows.iter().zip(y) {
        for i in 0..d {
            xty[i] += r[i] * yi;
            for j in i..d {
                xtx[i][j] += r[i] * r[j];
            }
        }
    }
    for i in 0..d {
        for j in 0..i {
            xtx[i][j] = xtx[j][i];
        }
        xtx[i][i] += lambda;
    }
    solve_gauss(xtx, xty)
}

/// Gaussian elimination with partial pivoting for the tiny systems OLS
/// produces. Returns `None` for singular systems.
#[allow(clippy::needless_range_loop)]
fn solve_gauss(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let d = b.len();
    for col in 0..d {
        // Pivot.
        let pivot = (col..d).max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        // Eliminate below.
        for row in col + 1..d {
            let f = a[row][col] / a[col][col];
            if f == 0.0 {
                continue;
            }
            for k in col..d {
                a[row][k] -= f * a[col][k];
            }
            b[row] -= f * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; d];
    for col in (0..d).rev() {
        let mut s = b[col];
        for k in col + 1..d {
            s -= a[col][k] * x[k];
        }
        x[col] = s / a[col][col];
    }
    Some(x)
}

/// Precision@k: fraction of the first `k` retrieved items that are relevant.
pub fn precision_at_k<T: Eq + std::hash::Hash>(
    retrieved: &[T],
    relevant: &std::collections::HashSet<T>,
    k: usize,
) -> f64 {
    if k == 0 {
        return 0.0;
    }
    let top = retrieved.iter().take(k);
    let hits = top.filter(|t| relevant.contains(t)).count();
    hits as f64 / k.min(retrieved.len()).max(1) as f64
}

/// Recall@k: fraction of relevant items found in the first `k` retrieved.
pub fn recall_at_k<T: Eq + std::hash::Hash>(
    retrieved: &[T],
    relevant: &std::collections::HashSet<T>,
    k: usize,
) -> f64 {
    if relevant.is_empty() {
        return 0.0;
    }
    let hits = retrieved
        .iter()
        .take(k)
        .filter(|t| relevant.contains(t))
        .count();
    hits as f64 / relevant.len() as f64
}

/// Average precision@k of one query (the summand of MAP@k).
pub fn average_precision_at_k<T: Eq + std::hash::Hash>(
    retrieved: &[T],
    relevant: &std::collections::HashSet<T>,
    k: usize,
) -> f64 {
    if relevant.is_empty() {
        return 0.0;
    }
    let mut hits = 0usize;
    let mut sum = 0.0;
    for (i, t) in retrieved.iter().take(k).enumerate() {
        if relevant.contains(t) {
            hits += 1;
            sum += hits as f64 / (i + 1) as f64;
        }
    }
    if hits == 0 {
        0.0
    } else {
        sum / hits.min(relevant.len()) as f64
    }
}

/// One-sample z-test against a null proportion, as run in paper §VIII-C.4 to
/// show the optimizer beats a random ordering. Returns `(z, p_two_sided)`.
pub fn proportion_z_test(p_hat: f64, p0: f64, n: usize) -> (f64, f64) {
    let se = (p0 * (1.0 - p0) / n as f64).sqrt();
    let z = (p_hat - p0) / se;
    (z, 2.0 * (1.0 - normal_cdf(z.abs())))
}

/// Standard normal CDF via the Abramowitz–Stegun erf approximation.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    // Abramowitz & Stegun 7.1.26, max abs error 1.5e-7.
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn pearson_perfect_and_inverse() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        let neg = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&xs, &neg).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_zero_variance_is_none() {
        assert!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]).is_none());
    }

    #[test]
    fn qcr_tracks_correlation_sign() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x + 1.0).collect();
        assert!((qcr(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = xs.iter().map(|x| -x).collect();
        assert!((qcr(&xs, &neg).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn qcr_near_zero_for_independent() {
        // Deterministic "independent" pattern: y alternates regardless of x.
        let xs: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let ys: Vec<f64> = (0..1000).map(|i| (i % 2) as f64).collect();
        assert!(qcr(&xs, &ys).unwrap().abs() < 0.1);
    }

    #[test]
    fn ols_recovers_linear_model() {
        // y = 2 + 3a - b, exactly.
        let rows: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![1.0, i as f64, (i * i % 7) as f64])
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| 2.0 + 3.0 * r[1] - r[2]).collect();
        let w = ols(&rows, &y, 0.0).unwrap();
        assert!((w[0] - 2.0).abs() < 1e-8, "{w:?}");
        assert!((w[1] - 3.0).abs() < 1e-8);
        assert!((w[2] + 1.0).abs() < 1e-8);
    }

    #[test]
    fn ols_singular_returns_none_without_ridge() {
        // Two identical columns -> singular normal equations.
        let rows = vec![vec![1.0, 1.0], vec![2.0, 2.0], vec![3.0, 3.0]];
        let y = vec![1.0, 2.0, 3.0];
        assert!(ols(&rows, &y, 0.0).is_none());
        // Ridge damping makes it solvable.
        assert!(ols(&rows, &y, 1e-6).is_some());
    }

    #[test]
    fn retrieval_metrics() {
        let retrieved = vec![1, 2, 3, 4, 5];
        let relevant: HashSet<i32> = [1, 3, 9].into_iter().collect();
        assert!((precision_at_k(&retrieved, &relevant, 5) - 0.4).abs() < 1e-12);
        assert!((recall_at_k(&retrieved, &relevant, 5) - 2.0 / 3.0).abs() < 1e-12);
        // AP: hits at ranks 1 and 3 -> (1/1 + 2/3)/2.
        let ap = average_precision_at_k(&retrieved, &relevant, 5);
        assert!((ap - (1.0 + 2.0 / 3.0) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn precision_with_short_result_list() {
        let retrieved = vec![1];
        let relevant: HashSet<i32> = [1].into_iter().collect();
        // Only one item retrieved; it is relevant.
        assert!((precision_at_k(&retrieved, &relevant, 10) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn z_test_matches_paper_figures() {
        // Paper §VIII-C.4: p_hat=0.86, p0=0.5, n=4000 => z ≈ 45.6, p ≈ 0.
        let (z, p) = proportion_z_test(0.86, 0.5, 4000);
        assert!((z - 45.54).abs() < 0.2, "z={z}");
        assert!(p < 1e-9);
    }

    #[test]
    fn normal_cdf_sane() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!(normal_cdf(3.0) > 0.998);
        assert!(normal_cdf(-3.0) < 0.002);
    }
}

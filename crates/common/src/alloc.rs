//! Fallible allocation helpers.
//!
//! Hot operators (hashtable build, radix scatter, selection vectors) size
//! their arrays up front. A bare `Vec::with_capacity` aborts the process
//! when the OS refuses the allocation; these wrappers route the failure
//! through `try_reserve` so it surfaces as a typed
//! [`BlendError::MemoryExceeded`] instead — the same error the byte-budget
//! governor raises, so callers have exactly one out-of-memory path to
//! handle.

use crate::error::{BlendError, Result};

/// Allocate a fresh `Vec` with exactly `n` slots of capacity, surfacing an
/// OS-level allocation failure as `MemoryExceeded` (tagged with the
/// requesting `site`).
pub fn try_vec_with_capacity<T>(n: usize, site: &str) -> Result<Vec<T>> {
    let mut v = Vec::new();
    try_reserve_exact(&mut v, n, site)?;
    Ok(v)
}

/// Allocate a zero-filled `Vec<T>` of length `n` fallibly.
pub fn try_zeroed_vec<T: Clone + Default>(n: usize, site: &str) -> Result<Vec<T>> {
    let mut v = try_vec_with_capacity(n, site)?;
    v.resize(n, T::default());
    Ok(v)
}

/// `Vec::reserve` that surfaces failure as `MemoryExceeded`.
pub fn try_reserve<T>(v: &mut Vec<T>, additional: usize, site: &str) -> Result<()> {
    v.try_reserve(additional)
        .map_err(|_| oom(site, additional * std::mem::size_of::<T>()))
}

/// `Vec::reserve_exact` that surfaces failure as `MemoryExceeded`.
pub fn try_reserve_exact<T>(v: &mut Vec<T>, additional: usize, site: &str) -> Result<()> {
    v.try_reserve_exact(additional)
        .map_err(|_| oom(site, additional * std::mem::size_of::<T>()))
}

fn oom(site: &str, bytes: usize) -> BlendError {
    BlendError::MemoryExceeded(format!("allocation of {bytes} bytes failed at {site}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn successful_reservations_behave_like_with_capacity() {
        let v: Vec<u32> = try_vec_with_capacity(64, "test").unwrap();
        assert!(v.capacity() >= 64);
        assert!(v.is_empty());
        let z: Vec<u64> = try_zeroed_vec(8, "test").unwrap();
        assert_eq!(z, vec![0u64; 8]);
    }

    #[test]
    fn absurd_reservation_is_typed_not_abort() {
        // isize::MAX bytes can never be reserved; must come back typed.
        let err = try_vec_with_capacity::<u64>(usize::MAX / 16, "join_build").unwrap_err();
        assert!(matches!(&err, BlendError::MemoryExceeded(m) if m.contains("join_build")));
    }

    #[test]
    fn reserve_on_existing_vec() {
        let mut v = vec![1u32, 2];
        try_reserve(&mut v, 100, "sel").unwrap();
        assert!(v.capacity() >= 102);
        assert!(try_reserve_exact(&mut v, usize::MAX / 8, "sel").is_err());
    }
}

//! The bounded serving queue.
//!
//! See the crate docs for the lifecycle and the cancellation protocol.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Instant;

use blend_common::{BlendError, Result};
use blend_obs::AttrValue;
use blend_parallel::{CancellationToken, Deadline, Interrupt};
use blend_sql::{ExecPath, QueryReport, ResultSet, ServingStats, SqlEngine};

use crate::faults::{FaultAction, FaultPlan, SITE_DEQUEUE, SITE_EXEC};

/// Serving-tier metric cells (`blend_serve_*`), process-global across
/// every queue. Unlike [`ServeStats::submitted`] (accepted requests
/// only), `blend_serve_submitted_total` counts every submission attempt,
/// so the counter identity `shed + ok + timeouts + cancellations +
/// failures == submitted` holds at any quiesce point.
struct ServeMetrics {
    submitted: Arc<blend_obs::Counter>,
    shed: Arc<blend_obs::Counter>,
    ok: Arc<blend_obs::Counter>,
    timeouts: Arc<blend_obs::Counter>,
    cancellations: Arc<blend_obs::Counter>,
    failures: Arc<blend_obs::Counter>,
    /// Requests accepted and not yet dequeued.
    queue_depth: Arc<blend_obs::Gauge>,
    /// Time from accept to dequeue, for requests that reached a server.
    queue_wait: Arc<blend_obs::Histogram>,
    /// Execution time (admission wait included) of dequeued requests.
    exec_time: Arc<blend_obs::Histogram>,
}

fn serve_metrics() -> &'static ServeMetrics {
    static METRICS: OnceLock<ServeMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = blend_obs::registry();
        ServeMetrics {
            submitted: r.counter("blend_serve_submitted_total"),
            shed: r.counter("blend_serve_outcomes_total{outcome=\"shed\"}"),
            ok: r.counter("blend_serve_outcomes_total{outcome=\"ok\"}"),
            timeouts: r.counter("blend_serve_outcomes_total{outcome=\"timeout\"}"),
            cancellations: r.counter("blend_serve_outcomes_total{outcome=\"cancelled\"}"),
            failures: r.counter("blend_serve_outcomes_total{outcome=\"failed\"}"),
            queue_depth: r.gauge("blend_serve_queue_depth"),
            queue_wait: r.histogram("blend_serve_queue_wait_nanos"),
            exec_time: r.histogram("blend_serve_exec_nanos"),
        }
    })
}

/// Serving-tier knobs.
#[derive(Debug)]
pub struct ServeConfig {
    /// Maximum queued (not yet dequeued) requests; submissions beyond this
    /// are shed immediately with `BlendError::Overloaded`.
    pub depth: usize,
    /// Serving threads. `0` means requests queue but never execute (useful
    /// for deterministic shedding tests); they resolve on shutdown.
    pub workers: usize,
    /// Fault-injection plan applied at the serving sites.
    pub faults: FaultPlan,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            depth: 32,
            workers: 2,
            faults: FaultPlan::none(),
        }
    }
}

/// Aggregate serving counters (monotonic since queue creation).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests shed at submission because the queue was full.
    pub shed: u64,
    /// Requests that completed with a result.
    pub ok: u64,
    /// Requests that resolved `Err(Timeout)`.
    pub timeouts: u64,
    /// Requests that resolved `Err(Cancelled)`.
    pub cancellations: u64,
    /// Requests that resolved with any other error (incl. poisoned).
    pub failures: u64,
}

#[derive(Default)]
struct StatCells {
    submitted: AtomicU64,
    shed: AtomicU64,
    ok: AtomicU64,
    timeouts: AtomicU64,
    cancellations: AtomicU64,
    failures: AtomicU64,
}

/// One queued request. The ticket and the serving thread share it.
struct Request {
    sql: String,
    path: ExecPath,
    interrupt: Interrupt,
    enqueued: Instant,
    outcome: Mutex<Option<Result<(ResultSet, QueryReport)>>>,
    done: Condvar,
}

impl Request {
    fn resolve(&self, result: Result<(ResultSet, QueryReport)>) {
        let mut slot = self.outcome.lock().unwrap_or_else(|e| e.into_inner());
        // First resolution wins; a request is resolved exactly once, but be
        // defensive rather than clobbering a delivered result.
        if slot.is_none() {
            *slot = Some(result);
            self.done.notify_all();
        }
    }
}

/// Handle to a submitted request. [`Ticket::wait`] blocks until the request
/// resolves; [`Ticket::cancel`] trips its cancellation token.
pub struct Ticket {
    req: Arc<Request>,
}

impl Ticket {
    /// Cooperatively cancel the request. The next check site (queued-state
    /// check, admission wait, phase boundary, or inner loop) observes the
    /// token and the ticket resolves `Err(Cancelled)` — unless the request
    /// already completed.
    pub fn cancel(&self) {
        self.req.interrupt.token().cancel();
    }

    /// This request's cancellation token (shareable across threads).
    pub fn token(&self) -> CancellationToken {
        self.req.interrupt.token().clone()
    }

    /// Block until the request resolves. Every accepted request resolves:
    /// served requests when execution finishes (or is interrupted), queued
    /// requests at the latest on queue shutdown.
    pub fn wait(self) -> Result<(ResultSet, QueryReport)> {
        let mut slot = self.req.outcome.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(outcome) = slot.take() {
                return outcome;
            }
            slot = self.req.done.wait(slot).unwrap_or_else(|e| e.into_inner());
        }
    }
}

struct QueueState {
    queue: VecDeque<Arc<Request>>,
    shutdown: bool,
}

struct Core {
    engine: Arc<SqlEngine>,
    state: Mutex<QueueState>,
    nonempty: Condvar,
    depth: usize,
    faults: FaultPlan,
    stats: StatCells,
}

/// A bounded, deadline-aware request queue in front of a [`SqlEngine`].
///
/// `submit` never blocks: it sheds with `Err(Overloaded)` when the bound is
/// hit. Serving threads pop requests, drop ones whose deadline expired
/// while queued, acquire one admission token as their execution slot
/// (blocking *under the request's deadline* via
/// [`blend_parallel::Admission::acquire_within`]), and execute with the
/// request's [`Interrupt`] scoped onto the shared
/// [`blend_parallel::ParallelCtx`]. Dropping the queue shuts it down:
/// serving threads drain, and never-served requests resolve
/// `Err(Cancelled)`.
pub struct ServeQueue {
    core: Arc<Core>,
    handles: Vec<JoinHandle<()>>,
}

impl ServeQueue {
    /// Spawn the serving threads for `engine` with the given config.
    pub fn new(engine: Arc<SqlEngine>, config: ServeConfig) -> ServeQueue {
        let core = Arc::new(Core {
            engine,
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            nonempty: Condvar::new(),
            depth: config.depth.max(1),
            faults: config.faults,
            stats: StatCells::default(),
        });
        let handles = (0..config.workers)
            .map(|i| {
                let core = core.clone();
                std::thread::Builder::new()
                    .name(format!("blend-serve-{i}"))
                    .spawn(move || serve_loop(&core))
                    .expect("spawn serving thread")
            })
            .collect();
        ServeQueue { core, handles }
    }

    /// Submit a SQL request with a deadline. Returns `Err(Overloaded)`
    /// without blocking when the queue is at capacity.
    pub fn submit(&self, sql: &str, deadline: Deadline) -> Result<Ticket> {
        self.submit_path(sql, ExecPath::Auto, deadline)
    }

    /// [`submit`](Self::submit) with an explicit executor choice.
    pub fn submit_path(&self, sql: &str, path: ExecPath, deadline: Deadline) -> Result<Ticket> {
        let req = Arc::new(Request {
            sql: sql.to_string(),
            path,
            interrupt: Interrupt::new(CancellationToken::new(), deadline),
            enqueued: Instant::now(),
            outcome: Mutex::new(None),
            done: Condvar::new(),
        });
        let m = serve_metrics();
        m.submitted.inc();
        {
            let mut st = self.core.state.lock().unwrap_or_else(|e| e.into_inner());
            if st.shutdown {
                m.cancellations.inc();
                return Err(BlendError::Cancelled("serve queue shut down".into()));
            }
            if st.queue.len() >= self.core.depth {
                self.core.stats.shed.fetch_add(1, Ordering::Relaxed);
                m.shed.inc();
                return Err(BlendError::Overloaded(format!(
                    "serve queue full ({} queued, depth {})",
                    st.queue.len(),
                    self.core.depth
                )));
            }
            st.queue.push_back(req.clone());
        }
        self.core.stats.submitted.fetch_add(1, Ordering::Relaxed);
        m.queue_depth.inc();
        self.core.nonempty.notify_one();
        Ok(Ticket { req })
    }

    /// Snapshot of the aggregate counters.
    pub fn stats(&self) -> ServeStats {
        let s = &self.core.stats;
        ServeStats {
            submitted: s.submitted.load(Ordering::Relaxed),
            shed: s.shed.load(Ordering::Relaxed),
            ok: s.ok.load(Ordering::Relaxed),
            timeouts: s.timeouts.load(Ordering::Relaxed),
            cancellations: s.cancellations.load(Ordering::Relaxed),
            failures: s.failures.load(Ordering::Relaxed),
        }
    }

    /// Currently queued (accepted, not yet dequeued) requests.
    pub fn queued(&self) -> usize {
        self.core
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .queue
            .len()
    }
}

impl Drop for ServeQueue {
    fn drop(&mut self) {
        {
            let mut st = self.core.state.lock().unwrap_or_else(|e| e.into_inner());
            st.shutdown = true;
        }
        self.core.nonempty.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
        // With zero workers (or if a thread died), queued requests remain;
        // resolve them so no ticket waits forever.
        let leftovers: Vec<Arc<Request>> = {
            let mut st = self.core.state.lock().unwrap_or_else(|e| e.into_inner());
            st.queue.drain(..).collect()
        };
        let m = serve_metrics();
        for req in leftovers {
            // Count the shutdown resolution like any other cancellation so
            // the outcome counters keep summing to submissions.
            self.core
                .stats
                .cancellations
                .fetch_add(1, Ordering::Relaxed);
            m.cancellations.inc();
            m.queue_depth.dec();
            req.resolve(Err(BlendError::Cancelled("serve queue shut down".into())));
        }
    }
}

fn serve_loop(core: &Core) {
    loop {
        let req = {
            let mut st = core.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(req) = st.queue.pop_front() {
                    break req;
                }
                if st.shutdown {
                    return;
                }
                st = core.nonempty.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        };
        let m = serve_metrics();
        m.queue_depth.dec();
        let queue_wait = req.enqueued.elapsed();
        m.queue_wait.record(queue_wait.as_nanos() as u64);
        let mut poisoned = apply_faults(core, SITE_DEQUEUE, &req);

        let exec_start = Instant::now();
        let result = serve_one(core, &req, &mut poisoned);
        let exec = exec_start.elapsed();
        m.exec_time.record(exec.as_nanos() as u64);

        let s = &core.stats;
        let result = match result {
            Ok((rs, mut report)) => {
                s.ok.fetch_add(1, Ordering::Relaxed);
                m.ok.inc();
                report.serving = Some(ServingStats {
                    queue_wait_nanos: queue_wait.as_nanos() as u64,
                    exec_nanos: exec.as_nanos() as u64,
                    outcome: "ok".into(),
                });
                // Fold the serving view into the unified profile: the root
                // span is the engine's execution; queue wait precedes it.
                if let Some(profile) = report.profile.as_mut() {
                    profile.root.attrs.push((
                        "queue_wait_nanos".to_string(),
                        AttrValue::U64(queue_wait.as_nanos() as u64),
                    ));
                    profile
                        .root
                        .attrs
                        .push(("outcome".to_string(), AttrValue::Str("ok".into())));
                }
                Ok((rs, report))
            }
            Err(e) => {
                match &e {
                    BlendError::Timeout(_) => {
                        s.timeouts.fetch_add(1, Ordering::Relaxed);
                        m.timeouts.inc();
                    }
                    BlendError::Cancelled(_) => {
                        s.cancellations.fetch_add(1, Ordering::Relaxed);
                        m.cancellations.inc();
                    }
                    _ => {
                        s.failures.fetch_add(1, Ordering::Relaxed);
                        m.failures.inc();
                    }
                };
                Err(e)
            }
        };
        req.resolve(result);
    }
}

/// Run one request to a typed outcome. Never unwinds: a poisoned (or
/// otherwise panicking) execution is caught and surfaced as `Err(SqlExec)`.
fn serve_one(core: &Core, req: &Request, poisoned: &mut bool) -> Result<(ResultSet, QueryReport)> {
    // A request that expired or was cancelled while queued never executes.
    req.interrupt.check()?;

    // The execution slot: one admission token held for the whole request,
    // acquired under the request's own deadline. Under overload this is
    // where queued requests time out instead of piling onto the pool.
    let admission = core.engine.parallel_ctx().admission().clone();
    let _slot = admission.acquire_within(1, &req.interrupt)?;

    *poisoned |= apply_faults(core, SITE_EXEC, req);
    let poison = *poisoned;

    let engine = core.engine.clone();
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        if poison {
            panic!("injected poison fault");
        }
        engine.execute_interruptible(&req.sql, req.path, req.interrupt.clone())
    }));
    match outcome {
        Ok(result) => result,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "unknown panic".into());
            Err(BlendError::SqlExec(format!("request panicked: {msg}")))
        }
    }
}

/// Apply this site's fault actions to `req`. Returns true if a `Poison`
/// fired (the caller panics at the execution site, inside `catch_unwind`).
fn apply_faults(core: &Core, site: &str, req: &Request) -> bool {
    let mut poison = false;
    for action in core.faults.fire(site) {
        match action {
            FaultAction::Delay(d) => std::thread::sleep(d),
            FaultAction::Cancel => req.interrupt.token().cancel(),
            FaultAction::Poison => poison = true,
        }
    }
    poison
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{FaultAction, SITE_EXEC};
    use blend_parallel::ParallelCtx;
    use blend_storage::{build_engine, EngineKind, FactRow};
    use std::time::Duration;

    fn test_engine() -> Arc<SqlEngine> {
        let mut rows = Vec::new();
        for t in 0..3u32 {
            for r in 0..4u32 {
                let sk = 1u128 << (t * 8 + r);
                rows.push(FactRow::new(
                    &format!("v{}", (t + r) % 5),
                    t,
                    0,
                    r,
                    sk,
                    None,
                ));
                rows.push(FactRow::new(&r.to_string(), t, 1, r, sk, Some(r % 2 == 0)));
            }
        }
        let fact = build_engine(EngineKind::Column, rows);
        Arc::new(SqlEngine::with_alltables(fact).with_parallel(Arc::new(ParallelCtx::sequential())))
    }

    const SQL: &str = "SELECT TableId, RowId, CellValue FROM AllTables \
                       ORDER BY TableId, RowId, CellValue LIMIT 5";

    #[test]
    fn serves_and_records_telemetry() {
        let queue = ServeQueue::new(test_engine(), ServeConfig::default());
        let ticket = queue.submit(SQL, Deadline::none()).unwrap();
        let (rs, report) = ticket.wait().unwrap();
        assert_eq!(rs.len(), 5);
        let serving = report.serving.expect("serving telemetry attached");
        assert_eq!(serving.outcome, "ok");
        assert!(serving.exec_nanos > 0);
        let stats = queue.stats();
        assert_eq!((stats.submitted, stats.ok, stats.shed), (1, 1, 0));
    }

    #[test]
    fn sheds_when_full_and_resolves_queued_on_shutdown() {
        let queue = ServeQueue::new(
            test_engine(),
            ServeConfig {
                depth: 2,
                workers: 0, // nothing drains: shedding is deterministic
                faults: FaultPlan::none(),
            },
        );
        let t1 = queue.submit(SQL, Deadline::none()).unwrap();
        let t2 = queue.submit(SQL, Deadline::none()).unwrap();
        let shed = queue.submit(SQL, Deadline::none());
        assert!(
            matches!(&shed, Err(BlendError::Overloaded(_))),
            "third submit must shed"
        );
        assert_eq!(queue.stats().shed, 1);
        drop(queue);
        for t in [t1, t2] {
            assert!(matches!(t.wait(), Err(BlendError::Cancelled(_))));
        }
    }

    #[test]
    fn expired_deadline_resolves_timeout_without_executing() {
        let queue = ServeQueue::new(test_engine(), ServeConfig::default());
        let ticket = queue.submit(SQL, Deadline::after(Duration::ZERO)).unwrap();
        assert!(matches!(ticket.wait(), Err(BlendError::Timeout(_))));
        assert_eq!(queue.stats().timeouts, 1);
    }

    #[test]
    fn cancelled_ticket_resolves_cancelled() {
        let queue = ServeQueue::new(
            test_engine(),
            ServeConfig {
                depth: 4,
                workers: 0,
                faults: FaultPlan::none(),
            },
        );
        let ticket = queue.submit(SQL, Deadline::none()).unwrap();
        ticket.cancel();
        // No workers: resolution happens at shutdown, but the token is
        // already tripped so a (hypothetical) late worker would refuse it.
        assert!(ticket.req.interrupt.token().is_cancelled());
    }

    #[test]
    fn poisoned_request_fails_but_thread_survives() {
        let queue = ServeQueue::new(
            test_engine(),
            ServeConfig {
                depth: 8,
                workers: 1,
                // Poison the first exec, leave the rest alone.
                faults: FaultPlan::none().with(SITE_EXEC, FaultAction::Poison, 1_000_000),
            },
        );
        let bad = queue.submit(SQL, Deadline::none()).unwrap();
        let err = bad.wait().unwrap_err();
        assert!(
            matches!(&err, BlendError::SqlExec(m) if m.contains("panicked")),
            "poisoned request surfaces a typed error: {err}"
        );
        // Same serving thread keeps serving (every=1_000_000 only hits once).
        let ok = queue.submit(SQL, Deadline::none()).unwrap();
        assert!(ok.wait().is_ok(), "serving thread died after poison");
        assert_eq!(queue.stats().failures, 1);
    }
}

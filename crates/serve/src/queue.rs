//! The bounded serving queue.
//!
//! See the crate docs for the lifecycle, the cancellation protocol, and
//! the coalescing/caching contract.

use std::collections::hash_map::Entry;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use blend_common::{BlendError, FxHashMap, Result};
use blend_obs::AttrValue;
use blend_parallel::{CancellationToken, Deadline, Interrupt};
use blend_sql::{ExecPath, QueryFingerprint, QueryReport, ResultSet, ServingStats, SqlEngine};

use crate::cache::{cache_bytes_from_env, cache_metrics, CacheKey, CachedResult, ResultCache};
use crate::faults::{FaultAction, FaultPlan, SITE_CACHE, SITE_COALESCE, SITE_DEQUEUE, SITE_EXEC};

/// Serving-tier metric cells (`blend_serve_*`), process-global across
/// every queue. Unlike [`ServeStats::submitted`] (accepted requests
/// only), `blend_serve_submitted_total` counts every submission attempt,
/// so the counter identity `shed + ok + cache_hit + coalesced_hit +
/// timeouts + cancellations + mem_exceeded + failures == submitted`
/// holds at any quiesce point.
struct ServeMetrics {
    submitted: Arc<blend_obs::Counter>,
    shed: Arc<blend_obs::Counter>,
    ok: Arc<blend_obs::Counter>,
    cache_hits: Arc<blend_obs::Counter>,
    coalesced_hits: Arc<blend_obs::Counter>,
    timeouts: Arc<blend_obs::Counter>,
    cancellations: Arc<blend_obs::Counter>,
    mem_exceeded: Arc<blend_obs::Counter>,
    failures: Arc<blend_obs::Counter>,
    /// Requests accepted and not yet dequeued.
    queue_depth: Arc<blend_obs::Gauge>,
    /// Time from accept to dequeue, for requests that reached a server.
    queue_wait: Arc<blend_obs::Histogram>,
    /// Execution time (admission wait included) of dequeued requests.
    exec_time: Arc<blend_obs::Histogram>,
}

fn serve_metrics() -> &'static ServeMetrics {
    static METRICS: OnceLock<ServeMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = blend_obs::registry();
        ServeMetrics {
            submitted: r.counter("blend_serve_submitted_total"),
            shed: r.counter("blend_serve_outcomes_total{outcome=\"shed\"}"),
            ok: r.counter("blend_serve_outcomes_total{outcome=\"ok\"}"),
            cache_hits: r.counter("blend_serve_outcomes_total{outcome=\"cache_hit\"}"),
            coalesced_hits: r.counter("blend_serve_outcomes_total{outcome=\"coalesced_hit\"}"),
            timeouts: r.counter("blend_serve_outcomes_total{outcome=\"timeout\"}"),
            cancellations: r.counter("blend_serve_outcomes_total{outcome=\"cancelled\"}"),
            mem_exceeded: r.counter("blend_serve_outcomes_total{outcome=\"mem_exceeded\"}"),
            failures: r.counter("blend_serve_outcomes_total{outcome=\"failed\"}"),
            queue_depth: r.gauge("blend_serve_queue_depth"),
            queue_wait: r.histogram("blend_serve_queue_wait_nanos"),
            exec_time: r.histogram("blend_serve_exec_nanos"),
        }
    })
}

/// Serving-tier knobs.
#[derive(Debug)]
pub struct ServeConfig {
    /// Maximum queued (not yet dequeued) requests; submissions beyond this
    /// are shed immediately with `BlendError::Overloaded`.
    pub depth: usize,
    /// Serving threads. `0` means requests queue but never execute (useful
    /// for deterministic shedding tests); they resolve on shutdown.
    pub workers: usize,
    /// Total byte budget of the memoized result cache. `0` disables
    /// caching. The default reads `BLEND_RESULT_CACHE_BYTES` (32 MiB when
    /// unset).
    pub result_cache_bytes: usize,
    /// Coalesce fingerprint-equal requests onto one in-flight execution.
    pub coalesce: bool,
    /// Fault-injection plan applied at the serving sites.
    pub faults: FaultPlan,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            depth: 32,
            workers: 2,
            result_cache_bytes: cache_bytes_from_env(),
            coalesce: true,
            faults: FaultPlan::none(),
        }
    }
}

/// Aggregate serving counters (monotonic since queue creation).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests shed at submission because the queue was full.
    pub shed: u64,
    /// Requests that completed with a freshly executed result.
    pub ok: u64,
    /// Requests served from the memoized result cache.
    pub cache_hits: u64,
    /// Requests that attached to an in-flight execution and were resolved
    /// from its result.
    pub coalesced_hits: u64,
    /// Requests that resolved `Err(Timeout)`.
    pub timeouts: u64,
    /// Requests that resolved `Err(Cancelled)`.
    pub cancellations: u64,
    /// Requests shed by the memory governor (`Err(MemoryExceeded)`) after
    /// the degradation ladder was exhausted.
    pub mem_exceeded: u64,
    /// Requests that resolved with any other error (incl. poisoned).
    pub failures: u64,
}

#[derive(Default)]
struct StatCells {
    submitted: AtomicU64,
    shed: AtomicU64,
    ok: AtomicU64,
    cache_hits: AtomicU64,
    coalesced_hits: AtomicU64,
    timeouts: AtomicU64,
    cancellations: AtomicU64,
    mem_exceeded: AtomicU64,
    failures: AtomicU64,
}

/// How a request obtained its `Ok` result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OkKind {
    /// Fresh execution on the engine.
    Fresh,
    /// Served from the memoized result cache.
    CacheHit,
    /// Resolved from a coalesced in-flight execution.
    Coalesced,
}

impl OkKind {
    fn label(self) -> &'static str {
        match self {
            OkKind::Fresh => "ok",
            OkKind::CacheHit => "cache_hit",
            OkKind::Coalesced => "coalesced_hit",
        }
    }
}

/// One queued request. The ticket and the serving threads share it.
struct Request {
    sql: String,
    path: ExecPath,
    /// Parsed query, kept from the submission-time fingerprint parse so
    /// execution never parses the SQL a second time. `None` exactly when
    /// `fp` is `None`.
    ast: Option<blend_sql::ast::Query>,
    /// Canonical fingerprint, computed at submission when memoization or
    /// coalescing is on. `None` for unparseable SQL (the engine will
    /// produce the parse error) or when both features are off.
    fp: Option<QueryFingerprint>,
    interrupt: Interrupt,
    enqueued: Instant,
    /// Accept→dequeue wait, stamped by the popping thread so a coalesced
    /// waiter's delivery (on the leader's thread) can report it.
    wait_nanos: AtomicU64,
    outcome: Mutex<Option<Result<(ResultSet, QueryReport)>>>,
    done: Condvar,
}

impl Request {
    fn resolve(&self, result: Result<(ResultSet, QueryReport)>) {
        let mut slot = self.outcome.lock().unwrap_or_else(|e| e.into_inner());
        // First resolution wins; a request is resolved exactly once, but be
        // defensive rather than clobbering a delivered result.
        if slot.is_none() {
            *slot = Some(result);
            self.done.notify_all();
        }
    }
}

/// Handle to a submitted request. [`Ticket::wait`] blocks until the request
/// resolves; [`Ticket::cancel`] trips its cancellation token.
pub struct Ticket {
    req: Arc<Request>,
}

impl Ticket {
    /// Cooperatively cancel the request. The next check site (queued-state
    /// check, admission wait, phase boundary, or inner loop) observes the
    /// token and the ticket resolves `Err(Cancelled)` — unless the request
    /// already completed. Cancelling a coalesced-group *leader* does not
    /// strand its waiters: a live waiter is promoted to re-execute.
    pub fn cancel(&self) {
        self.req.interrupt.token().cancel();
    }

    /// This request's cancellation token (shareable across threads).
    pub fn token(&self) -> CancellationToken {
        self.req.interrupt.token().clone()
    }

    /// Block until the request resolves. Every accepted request resolves:
    /// served requests when execution finishes (or is interrupted), queued
    /// requests at the latest on queue shutdown.
    pub fn wait(self) -> Result<(ResultSet, QueryReport)> {
        let mut slot = self.req.outcome.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(outcome) = slot.take() {
                return outcome;
            }
            slot = self.req.done.wait(slot).unwrap_or_else(|e| e.into_inner());
        }
    }
}

struct QueueState {
    queue: VecDeque<Arc<Request>>,
    shutdown: bool,
}

struct Core {
    engine: Arc<SqlEngine>,
    state: Mutex<QueueState>,
    nonempty: Condvar,
    depth: usize,
    faults: FaultPlan,
    stats: StatCells,
    /// Memoized results keyed on fingerprint + generation + exec path.
    /// `Arc` so the engine's memory governor can hold it (weakly) as a
    /// [`blend_parallel::MemoryReclaimer`] — rung 1 of the degradation
    /// ladder evicts from this cache.
    cache: Arc<ResultCache>,
    /// In-flight executions open for coalescing: key → waiters attached so
    /// far (the leader is not in the list). An entry exists only while the
    /// leader's execution is running; it is removed — under this lock, so
    /// attach can never race with finalize — before waiters are resolved.
    inflight: Mutex<FxHashMap<CacheKey, Vec<Arc<Request>>>>,
    coalesce: bool,
}

impl Core {
    /// True when submissions should pay for fingerprinting at all.
    fn fingerprinting(&self) -> bool {
        self.coalesce || !self.cache.is_disabled()
    }
}

/// A bounded, deadline-aware request queue in front of a [`SqlEngine`].
///
/// `submit` never blocks: it sheds with `Err(Overloaded)` when the bound is
/// hit. Serving threads pop requests, drop ones whose deadline expired
/// while queued, probe the memoized result cache, attach fingerprint-equal
/// requests to an already-running execution, and otherwise acquire one
/// admission token as their execution slot (blocking *under the request's
/// deadline* via [`blend_parallel::Admission::acquire_within`]) and execute
/// with the request's [`Interrupt`] scoped onto the shared
/// [`blend_parallel::ParallelCtx`]. Dropping the queue shuts it down:
/// serving threads drain, and never-served requests resolve
/// `Err(Cancelled)`.
pub struct ServeQueue {
    core: Arc<Core>,
    handles: Vec<JoinHandle<()>>,
}

impl ServeQueue {
    /// Spawn the serving threads for `engine` with the given config. The
    /// result cache charges the engine's memory governor (its byte pool is
    /// a child of `BLEND_MEMORY_BUDGET`) and registers as that governor's
    /// reclaimer; an `alloc:fail` rule in the fault plan arms the governor
    /// with synthetic reservation failures.
    pub fn new(engine: Arc<SqlEngine>, config: ServeConfig) -> ServeQueue {
        let governor = engine.parallel_ctx().governor().clone();
        let cache = Arc::new(ResultCache::with_governor(
            config.result_cache_bytes,
            governor.clone(),
        ));
        governor.register_reclaimer(
            Arc::downgrade(&cache) as std::sync::Weak<dyn blend_parallel::MemoryReclaimer>
        );
        if let Some(every) = config.faults.alloc_fail_every() {
            governor.set_alloc_fail_every(every);
        }
        let core = Arc::new(Core {
            engine,
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            nonempty: Condvar::new(),
            depth: config.depth.max(1),
            faults: config.faults,
            stats: StatCells::default(),
            cache,
            inflight: Mutex::new(FxHashMap::default()),
            coalesce: config.coalesce,
        });
        let handles = (0..config.workers)
            .map(|i| {
                let core = core.clone();
                std::thread::Builder::new()
                    .name(format!("blend-serve-{i}"))
                    .spawn(move || serve_loop(&core))
                    .expect("spawn serving thread")
            })
            .collect();
        ServeQueue { core, handles }
    }

    /// Submit a SQL request with a deadline. Returns `Err(Overloaded)`
    /// without blocking when the queue is at capacity.
    pub fn submit(&self, sql: &str, deadline: Deadline) -> Result<Ticket> {
        self.submit_path(sql, ExecPath::Auto, deadline)
    }

    /// [`submit`](Self::submit) with an explicit executor choice.
    pub fn submit_path(&self, sql: &str, path: ExecPath, deadline: Deadline) -> Result<Ticket> {
        // Fingerprinting parses the SQL here on the submitting thread; the
        // AST is kept so the serving thread plans it directly instead of
        // parsing a second time. Skipped entirely when neither memoization
        // nor coalescing can use it. Parse errors leave both empty — the
        // engine will surface the real error at execution.
        let (ast, fp) = if self.core.fingerprinting() {
            match blend_sql::parser::parse(sql) {
                Ok(ast) => {
                    let fp = blend_sql::fingerprint_query(&ast);
                    (Some(ast), Some(fp))
                }
                Err(_) => (None, None),
            }
        } else {
            (None, None)
        };
        let req = Arc::new(Request {
            sql: sql.to_string(),
            path,
            ast,
            fp,
            interrupt: Interrupt::new(CancellationToken::new(), deadline),
            enqueued: Instant::now(),
            wait_nanos: AtomicU64::new(0),
            outcome: Mutex::new(None),
            done: Condvar::new(),
        });
        let m = serve_metrics();
        m.submitted.inc();
        {
            let mut st = self.core.state.lock().unwrap_or_else(|e| e.into_inner());
            if st.shutdown {
                m.cancellations.inc();
                return Err(BlendError::Cancelled("serve queue shut down".into()));
            }
            // While the governor is reclaiming bytes the system is actively
            // shedding memory; halve the effective depth so new work queues
            // up (or sheds) instead of piling onto it.
            let depth = if self.core.engine.parallel_ctx().governor().reclaiming() {
                (self.core.depth / 2).max(1)
            } else {
                self.core.depth
            };
            if st.queue.len() >= depth {
                self.core.stats.shed.fetch_add(1, Ordering::Relaxed);
                m.shed.inc();
                return Err(BlendError::Overloaded(format!(
                    "serve queue full ({} queued, effective depth {depth})",
                    st.queue.len(),
                )));
            }
            st.queue.push_back(req.clone());
        }
        self.core.stats.submitted.fetch_add(1, Ordering::Relaxed);
        m.queue_depth.inc();
        self.core.nonempty.notify_one();
        Ok(Ticket { req })
    }

    /// Snapshot of the aggregate counters.
    pub fn stats(&self) -> ServeStats {
        let s = &self.core.stats;
        ServeStats {
            submitted: s.submitted.load(Ordering::Relaxed),
            shed: s.shed.load(Ordering::Relaxed),
            ok: s.ok.load(Ordering::Relaxed),
            cache_hits: s.cache_hits.load(Ordering::Relaxed),
            coalesced_hits: s.coalesced_hits.load(Ordering::Relaxed),
            timeouts: s.timeouts.load(Ordering::Relaxed),
            cancellations: s.cancellations.load(Ordering::Relaxed),
            mem_exceeded: s.mem_exceeded.load(Ordering::Relaxed),
            failures: s.failures.load(Ordering::Relaxed),
        }
    }

    /// Currently queued (accepted, not yet dequeued) requests.
    pub fn queued(&self) -> usize {
        self.core
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .queue
            .len()
    }

    /// Entries resident in the memoized result cache (tests, diagnostics).
    pub fn cached_results(&self) -> usize {
        self.core.cache.len()
    }
}

impl Drop for ServeQueue {
    fn drop(&mut self) {
        {
            let mut st = self.core.state.lock().unwrap_or_else(|e| e.into_inner());
            st.shutdown = true;
        }
        self.core.nonempty.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
        // With zero workers (or if a thread died), queued requests remain;
        // resolve them so no ticket waits forever. (Coalesced waiters never
        // linger here: they live in `inflight` only while their leader's
        // serving thread is mid-execution, and that thread drains them
        // before it re-checks shutdown.)
        let leftovers: Vec<Arc<Request>> = {
            let mut st = self.core.state.lock().unwrap_or_else(|e| e.into_inner());
            st.queue.drain(..).collect()
        };
        let m = serve_metrics();
        for req in leftovers {
            // Count the shutdown resolution like any other cancellation so
            // the outcome counters keep summing to submissions.
            self.core
                .stats
                .cancellations
                .fetch_add(1, Ordering::Relaxed);
            m.cancellations.inc();
            m.queue_depth.dec();
            req.resolve(Err(BlendError::Cancelled("serve queue shut down".into())));
        }
        // Give cached bytes back to the memory governor: the cache dies
        // with this queue and its charges must not outlive it.
        self.core.cache.purge_all();
    }
}

fn serve_loop(core: &Core) {
    loop {
        let req = {
            let mut st = core.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(req) = st.queue.pop_front() {
                    break req;
                }
                if st.shutdown {
                    return;
                }
                st = core.nonempty.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        };
        let m = serve_metrics();
        m.queue_depth.dec();
        let queue_wait = req.enqueued.elapsed();
        req.wait_nanos
            .store(queue_wait.as_nanos() as u64, Ordering::Relaxed);
        m.queue_wait.record(queue_wait.as_nanos() as u64);
        let mut poisoned = apply_faults(core, SITE_DEQUEUE, &req);

        // A request that expired or was cancelled while queued neither
        // probes the cache nor attaches to a group nor executes.
        if let Err(e) = req.interrupt.check() {
            finish_err(core, &req, e, Duration::ZERO);
            continue;
        }

        // The memoization identity: canonical fingerprint + the store
        // generation observed *now*, before any execution. A rebuild that
        // lands later bumps the generation, so nothing this request caches
        // or reads can leak across it.
        let key = req.fp.clone().map(|fp| CacheKey {
            fp,
            generation: core.engine.generation(),
            path: req.path,
        });

        // Cache probe.
        if let Some(key) = &key {
            if !core.cache.is_disabled() {
                // A poison fault at this site skips the probe (a hit would
                // mask the poison) and crashes at the exec site instead.
                poisoned |= apply_faults(core, SITE_CACHE, &req);
                if let Err(e) = req.interrupt.check() {
                    finish_err(core, &req, e, Duration::ZERO);
                    continue;
                }
                if !poisoned {
                    if let Some(hit) = core.cache.get(key) {
                        deliver_memoized(core, &req, &hit, OkKind::CacheHit);
                        continue;
                    }
                }
            }
        }

        // Coalesce: attach to a fingerprint-equal in-flight execution, or
        // become the leader of a new group.
        if core.coalesce {
            if let Some(key) = &key {
                poisoned |= apply_faults(core, SITE_COALESCE, &req);
                if let Err(e) = req.interrupt.check() {
                    finish_err(core, &req, e, Duration::ZERO);
                    continue;
                }
                let is_leader = {
                    let mut inflight = core.inflight.lock().unwrap_or_else(|e| e.into_inner());
                    match inflight.entry(key.clone()) {
                        Entry::Occupied(mut group) => {
                            group.get_mut().push(req.clone());
                            false
                        }
                        Entry::Vacant(slot) => {
                            slot.insert(Vec::new());
                            true
                        }
                    }
                };
                if is_leader {
                    lead_group(core, &req, key, poisoned);
                }
                // Attached waiters are resolved by their leader's thread;
                // this thread is free for the next request either way.
                continue;
            }
        }

        execute_one(core, &req, key.as_ref(), poisoned);
    }
}

/// Execute a request on the engine and resolve it, memoizing an `Ok`
/// result under `key`.
fn execute_one(core: &Core, req: &Request, key: Option<&CacheKey>, mut poisoned: bool) {
    let exec_start = Instant::now();
    let result = serve_one(core, req, &mut poisoned);
    let exec = exec_start.elapsed();
    serve_metrics().exec_time.record(exec.as_nanos() as u64);
    match result {
        Ok((rs, report)) => {
            if let Some(key) = key {
                core.cache.insert(
                    key.clone(),
                    Arc::new(CachedResult::new(rs.clone(), report.clone())),
                );
            }
            finish_ok(core, req, rs, report, exec, OkKind::Fresh);
        }
        Err(e) => finish_err(core, req, e, exec),
    }
}

/// Run a coalesced group: execute as the leader, then resolve every waiter
/// from the shared result. If the leader fails (cancel, timeout, poison, or
/// a deterministic error), its own ticket resolves typed and the earliest
/// still-live waiter is promoted to re-execute under *its* interrupt, so a
/// dying leader never strands the group.
fn lead_group(core: &Core, leader: &Arc<Request>, key: &CacheKey, poisoned: bool) {
    let mut current = leader.clone();
    let mut current_poisoned = poisoned;
    // Waiters carried over from failed leaders; the group's map entry is
    // removed after the first execution, so later arrivals form new groups.
    let mut waiters: VecDeque<Arc<Request>> = VecDeque::new();
    let mut first_attempt = true;

    loop {
        let mut p = current_poisoned;
        let exec_start = Instant::now();
        let result = serve_one(core, &current, &mut p);
        let exec = exec_start.elapsed();
        serve_metrics().exec_time.record(exec.as_nanos() as u64);

        if first_attempt {
            // Close the group: removal happens under the inflight lock, the
            // same lock attaches take, so no waiter can slip in afterwards.
            let attached = {
                let mut inflight = core.inflight.lock().unwrap_or_else(|e| e.into_inner());
                inflight.remove(key).unwrap_or_default()
            };
            waiters.extend(attached);
            first_attempt = false;
        }

        match result {
            Ok((rs, report)) => {
                let memo = Arc::new(CachedResult::new(rs.clone(), report.clone()));
                core.cache.insert(key.clone(), Arc::clone(&memo));
                finish_ok(core, &current, rs, report, exec, OkKind::Fresh);
                for w in waiters {
                    deliver_memoized(core, &w, &memo, OkKind::Coalesced);
                }
                return;
            }
            Err(e) => {
                finish_err(core, &current, e, exec);
                // Promote the earliest waiter that can still run.
                loop {
                    match waiters.pop_front() {
                        Some(next) => {
                            if let Err(e) = next.interrupt.check() {
                                finish_err(core, &next, e, Duration::ZERO);
                                continue;
                            }
                            current = next;
                            current_poisoned = false;
                            break;
                        }
                        None => return, // group fully resolved
                    }
                }
            }
        }
    }
}

/// Resolve a request from a memoized result. A *coalesced* waiter re-checks
/// its interrupt first — real time passed while its leader ran, so a waiter
/// whose deadline expired still resolves `Err(Timeout)`. A *cache* hit does
/// not: its interrupt was checked immediately before the probe, and the
/// probe already counted `blend_cache_hits_total`, which must agree exactly
/// with the `cache_hit` outcome counter.
fn deliver_memoized(core: &Core, req: &Request, memo: &Arc<CachedResult>, kind: OkKind) {
    if kind == OkKind::Coalesced {
        if let Err(e) = req.interrupt.check() {
            finish_err(core, req, e, Duration::ZERO);
            return;
        }
    }
    finish_ok(
        core,
        req,
        memo.rs.clone(),
        memo.report.clone(),
        Duration::ZERO,
        kind,
    );
}

/// Count, stamp telemetry, and resolve a successful request.
fn finish_ok(
    core: &Core,
    req: &Request,
    rs: ResultSet,
    mut report: QueryReport,
    exec: Duration,
    kind: OkKind,
) {
    let s = &core.stats;
    let m = serve_metrics();
    match kind {
        OkKind::Fresh => {
            s.ok.fetch_add(1, Ordering::Relaxed);
            m.ok.inc();
        }
        OkKind::CacheHit => {
            s.cache_hits.fetch_add(1, Ordering::Relaxed);
            m.cache_hits.inc();
        }
        OkKind::Coalesced => {
            s.coalesced_hits.fetch_add(1, Ordering::Relaxed);
            m.coalesced_hits.inc();
            cache_metrics().coalesced.inc();
        }
    }
    let queue_wait_nanos = req.wait_nanos.load(Ordering::Relaxed);
    report.serving = Some(ServingStats {
        queue_wait_nanos,
        exec_nanos: exec.as_nanos() as u64,
        outcome: kind.label().into(),
    });
    match kind {
        OkKind::Fresh => {
            // Fold the serving view into the unified profile: the root
            // span is the engine's execution; queue wait precedes it.
            if let Some(profile) = report.profile.as_mut() {
                profile.root.attrs.push((
                    "queue_wait_nanos".to_string(),
                    AttrValue::U64(queue_wait_nanos),
                ));
                profile
                    .root
                    .attrs
                    .push(("outcome".to_string(), AttrValue::Str("ok".into())));
                if req.fp.is_some() {
                    profile
                        .root
                        .attrs
                        .push(("cache".to_string(), AttrValue::Str("miss".into())));
                }
            }
        }
        OkKind::CacheHit | OkKind::Coalesced => {
            // Memoized deliveries carry no engine profile (it was stripped
            // at insert); synthesize a root span so `EXPLAIN ANALYZE`
            // consumers still see where the bytes came from.
            let trace = blend_obs::trace_begin("query");
            trace.attr_str("outcome", kind.label());
            trace.attr_str(
                "cache",
                if kind == OkKind::CacheHit {
                    "hit"
                } else {
                    "coalesced"
                },
            );
            trace.attr_u64("queue_wait_nanos", queue_wait_nanos);
            report.profile = trace.finish();
        }
    }
    req.resolve(Ok((rs, report)));
}

/// Count and resolve a failed request with its typed error.
fn finish_err(core: &Core, req: &Request, e: BlendError, _exec: Duration) {
    let s = &core.stats;
    let m = serve_metrics();
    match &e {
        BlendError::Timeout(_) => {
            s.timeouts.fetch_add(1, Ordering::Relaxed);
            m.timeouts.inc();
        }
        BlendError::Cancelled(_) => {
            s.cancellations.fetch_add(1, Ordering::Relaxed);
            m.cancellations.inc();
        }
        BlendError::MemoryExceeded(_) => {
            s.mem_exceeded.fetch_add(1, Ordering::Relaxed);
            m.mem_exceeded.inc();
        }
        _ => {
            s.failures.fetch_add(1, Ordering::Relaxed);
            m.failures.inc();
        }
    }
    req.resolve(Err(e));
}

/// Run one request to a typed outcome. Never unwinds: a poisoned (or
/// otherwise panicking) execution is caught and surfaced as `Err(SqlExec)`.
fn serve_one(core: &Core, req: &Request, poisoned: &mut bool) -> Result<(ResultSet, QueryReport)> {
    // A request that expired or was cancelled while queued never executes.
    req.interrupt.check()?;

    // The execution slot: one admission token held for the whole request,
    // acquired under the request's own deadline. Under overload this is
    // where queued requests time out instead of piling onto the pool.
    // Cache hits and coalesced waiters never reach this point — a group of
    // N fingerprint-equal requests costs one admission grant.
    let admission = core.engine.parallel_ctx().admission().clone();
    let _slot = admission.acquire_within(1, &req.interrupt)?;

    *poisoned |= apply_faults(core, SITE_EXEC, req);
    let poison = *poisoned;

    let engine = core.engine.clone();
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        if poison {
            panic!("injected poison fault");
        }
        match &req.ast {
            Some(ast) => engine.execute_parsed_interruptible(ast, req.path, req.interrupt.clone()),
            None => engine.execute_interruptible(&req.sql, req.path, req.interrupt.clone()),
        }
    }));
    match outcome {
        Ok(result) => result,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "unknown panic".into());
            Err(BlendError::SqlExec(format!("request panicked: {msg}")))
        }
    }
}

/// Apply this site's fault actions to `req`. Returns true if a `Poison`
/// fired (the caller panics at the execution site, inside `catch_unwind`).
fn apply_faults(core: &Core, site: &str, req: &Request) -> bool {
    let mut poison = false;
    for action in core.faults.fire(site) {
        match action {
            FaultAction::Delay(d) => std::thread::sleep(d),
            FaultAction::Cancel => req.interrupt.token().cancel(),
            FaultAction::Poison => poison = true,
            // Alloc faults are armed on the governor at queue construction,
            // not fired at a pipeline site.
            FaultAction::FailAlloc => {}
        }
    }
    poison
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{FaultAction, SITE_EXEC};
    use blend_parallel::ParallelCtx;
    use blend_storage::{build_engine, EngineKind, FactRow};
    use std::time::Duration;

    fn test_engine() -> Arc<SqlEngine> {
        let mut rows = Vec::new();
        for t in 0..3u32 {
            for r in 0..4u32 {
                let sk = 1u128 << (t * 8 + r);
                rows.push(FactRow::new(
                    &format!("v{}", (t + r) % 5),
                    t,
                    0,
                    r,
                    sk,
                    None,
                ));
                rows.push(FactRow::new(&r.to_string(), t, 1, r, sk, Some(r % 2 == 0)));
            }
        }
        let fact = build_engine(EngineKind::Column, rows);
        Arc::new(SqlEngine::with_alltables(fact).with_parallel(Arc::new(ParallelCtx::sequential())))
    }

    const SQL: &str = "SELECT TableId, RowId, CellValue FROM AllTables \
                       ORDER BY TableId, RowId, CellValue LIMIT 5";

    #[test]
    fn serves_and_records_telemetry() {
        let queue = ServeQueue::new(test_engine(), ServeConfig::default());
        let ticket = queue.submit(SQL, Deadline::none()).unwrap();
        let (rs, report) = ticket.wait().unwrap();
        assert_eq!(rs.len(), 5);
        let serving = report.serving.expect("serving telemetry attached");
        assert_eq!(serving.outcome, "ok");
        assert!(serving.exec_nanos > 0);
        let stats = queue.stats();
        assert_eq!((stats.submitted, stats.ok, stats.shed), (1, 1, 0));
    }

    #[test]
    fn repeat_query_is_served_from_cache_byte_identically() {
        let queue = ServeQueue::new(
            test_engine(),
            ServeConfig {
                result_cache_bytes: 1 << 20,
                ..ServeConfig::default()
            },
        );
        let fresh = queue.submit(SQL, Deadline::none()).unwrap().wait().unwrap();
        // Different spelling, same fingerprint: must hit.
        let variant = "select tableid, rowid, cellvalue from alltables \
                       order by tableid, rowid, cellvalue limit 5";
        let hit = queue
            .submit(variant, Deadline::none())
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(hit.0, fresh.0, "cache hit must be byte-identical");
        let serving = hit.1.serving.expect("serving telemetry attached");
        assert_eq!(serving.outcome, "cache_hit");
        let stats = queue.stats();
        assert_eq!((stats.ok, stats.cache_hits), (1, 1));
        assert_eq!(queue.cached_results(), 1);
    }

    #[test]
    fn cache_disabled_executes_every_time() {
        let queue = ServeQueue::new(
            test_engine(),
            ServeConfig {
                result_cache_bytes: 0,
                coalesce: false,
                ..ServeConfig::default()
            },
        );
        for _ in 0..3 {
            queue.submit(SQL, Deadline::none()).unwrap().wait().unwrap();
        }
        let stats = queue.stats();
        assert_eq!(
            (stats.ok, stats.cache_hits, stats.coalesced_hits),
            (3, 0, 0)
        );
        assert_eq!(queue.cached_results(), 0);
    }

    #[test]
    fn rebuild_invalidates_cached_results() {
        let engine = test_engine();
        let queue = ServeQueue::new(
            engine.clone(),
            ServeConfig {
                result_cache_bytes: 1 << 20,
                ..ServeConfig::default()
            },
        );
        queue.submit(SQL, Deadline::none()).unwrap().wait().unwrap();
        assert_eq!(queue.cached_results(), 1);
        // Swap the catalog (bumps the store generation): the cached entry
        // must not serve the next fingerprint-equal request.
        let mut rows = Vec::new();
        for r in 0..4u32 {
            rows.push(FactRow::new("swapped", 9, 0, r, 1 << r, None));
        }
        engine.replace_table("alltables", build_engine(EngineKind::Column, rows));
        let (rs, report) = queue.submit(SQL, Deadline::none()).unwrap().wait().unwrap();
        assert_eq!(
            report.serving.unwrap().outcome,
            "ok",
            "post-rebuild must re-execute"
        );
        assert!(
            rs.rows
                .iter()
                .all(|row| row[0] == blend_sql::SqlValue::from(9i64)),
            "post-rebuild result reflects the new catalog"
        );
        assert_eq!(queue.stats().cache_hits, 0);
    }

    #[test]
    fn sheds_when_full_and_resolves_queued_on_shutdown() {
        let queue = ServeQueue::new(
            test_engine(),
            ServeConfig {
                depth: 2,
                workers: 0, // nothing drains: shedding is deterministic
                ..ServeConfig::default()
            },
        );
        let t1 = queue.submit(SQL, Deadline::none()).unwrap();
        let t2 = queue.submit(SQL, Deadline::none()).unwrap();
        let shed = queue.submit(SQL, Deadline::none());
        assert!(
            matches!(&shed, Err(BlendError::Overloaded(_))),
            "third submit must shed"
        );
        assert_eq!(queue.stats().shed, 1);
        drop(queue);
        for t in [t1, t2] {
            assert!(matches!(t.wait(), Err(BlendError::Cancelled(_))));
        }
    }

    #[test]
    fn expired_deadline_resolves_timeout_without_executing() {
        let queue = ServeQueue::new(test_engine(), ServeConfig::default());
        let ticket = queue.submit(SQL, Deadline::after(Duration::ZERO)).unwrap();
        assert!(matches!(ticket.wait(), Err(BlendError::Timeout(_))));
        assert_eq!(queue.stats().timeouts, 1);
    }

    #[test]
    fn cancelled_ticket_resolves_cancelled() {
        let queue = ServeQueue::new(
            test_engine(),
            ServeConfig {
                depth: 4,
                workers: 0,
                ..ServeConfig::default()
            },
        );
        let ticket = queue.submit(SQL, Deadline::none()).unwrap();
        ticket.cancel();
        // No workers: resolution happens at shutdown, but the token is
        // already tripped so a (hypothetical) late worker would refuse it.
        assert!(ticket.req.interrupt.token().is_cancelled());
    }

    #[test]
    fn poisoned_request_fails_but_thread_survives() {
        let queue = ServeQueue::new(
            test_engine(),
            ServeConfig {
                depth: 8,
                workers: 1,
                // Poison the first exec, leave the rest alone.
                faults: FaultPlan::none().with(SITE_EXEC, FaultAction::Poison, 1_000_000),
                ..ServeConfig::default()
            },
        );
        let bad = queue.submit(SQL, Deadline::none()).unwrap();
        let err = bad.wait().unwrap_err();
        assert!(
            matches!(&err, BlendError::SqlExec(m) if m.contains("panicked")),
            "poisoned request surfaces a typed error: {err}"
        );
        // Same serving thread keeps serving (every=1_000_000 only hits once).
        let ok = queue.submit(SQL, Deadline::none()).unwrap();
        assert!(ok.wait().is_ok(), "serving thread died after poison");
        assert_eq!(queue.stats().failures, 1);
    }
}

//! # blend-serve — the resilient serving tier
//!
//! BLEND is an interactive discovery system: many users issue seeker
//! queries concurrently, and the paper's unified-SQL design funnels all of
//! them through one executor. The crates below this one make a single
//! query fast ([`blend_sql`]) and make concurrent queries share one worker
//! pool fairly ([`blend_parallel`]); this crate makes the *front door*
//! resilient. A [`ServeQueue`] accepts requests into a bounded queue,
//! sheds load when the bound is hit, enforces per-request deadlines,
//! supports cooperative cancellation, and survives injected faults — so an
//! overloaded or misbehaving workload degrades into typed errors instead
//! of unbounded queues, stuck clients, or dead serving threads.
//!
//! ## Request lifecycle
//!
//! 1. **Submit** ([`ServeQueue::submit`]) — non-blocking. If the queue
//!    holds `depth` requests the submission is *shed*:
//!    `Err(BlendError::Overloaded)` immediately, telling the caller to back
//!    off now rather than time out later. Accepted requests get a fresh
//!    [`CancellationToken`] plus the caller's [`Deadline`] — together an
//!    [`Interrupt`] — and a [`Ticket`].
//! 2. **Dequeue** — a serving thread pops the request. If its deadline
//!    expired or it was cancelled while queued, it resolves
//!    `Err(Timeout)`/`Err(Cancelled)` without executing.
//! 3. **Admission** — the thread acquires **one** admission token as the
//!    request's execution slot via
//!    [`Admission::acquire_within`](blend_parallel::Admission::acquire_within),
//!    blocking *under the request's interrupt*: the wait re-polls
//!    cancellation and gives up at the deadline, so a request never sleeps
//!    past its budget waiting for capacity.
//! 4. **Execute** — the engine runs the SQL with the request's interrupt
//!    scoped onto the shared [`ParallelCtx`](blend_parallel::ParallelCtx)
//!    (`SqlEngine::execute_interruptible`). Executors check at phase
//!    boundaries and inside morsel/partition loops; see below.
//! 5. **Resolve** — [`Ticket::wait`] returns the result. Every accepted
//!    request resolves exactly once: `Ok(result)` or one typed
//!    `BlendError::{Timeout, Cancelled, Overloaded, ...}`. Requests still
//!    queued at shutdown resolve `Err(Cancelled)`.
//!
//! Per-request telemetry rides the result: `QueryReport::serving` records
//! queue wait, execution time, and outcome
//! ([`ServingStats`](blend_sql::ServingStats)), and `QueryReport::profile`
//! carries the query's `EXPLAIN ANALYZE` span tree with queue-side
//! attributes (`queue_wait_nanos`, `outcome`) stamped onto its root.
//! [`ServeQueue::stats`] aggregates submitted/shed/ok/timeout/cancelled/
//! failed counters per queue, and the same events feed the process-global
//! [`blend_obs`] registry (`blend_serve_*`: submission/outcome counters, a
//! queue-depth gauge, queue-wait and exec-time histograms) for the
//! fleet-level view — note the metrics-level `blend_serve_submitted_total`
//! counts *every* submission attempt including shed ones, so
//! `shed + ok + timeout + cancelled + failed == submitted` holds there,
//! while `ServeStats::submitted` counts accepted requests only.
//!
//! ## The cancellation protocol (who checks, where)
//!
//! Cancellation is **cooperative**; nothing is killed. The serving tier
//! creates one [`Interrupt`] per request; every layer below polls it:
//!
//! * **Serving thread** — checks on dequeue (step 2) and blocks
//!   interruptibly in admission (step 3).
//! * **Plan executor** (`blend` core) — checks at every seeker boundary.
//! * **SQL executors** (`blend_sql`) — check before each phase (scan, join
//!   build/probe, group, global agg) and every few thousand rows inside
//!   sequential loops; parallel closures poll per morsel/partition/chunk
//!   and bail with truncated partials.
//! * **No-partial-results guarantee** — pool tasks never unwind; the
//!   *caller* re-checks the interrupt right after each parallel run and
//!   discards all partials on `Err`. A request therefore either completes
//!   byte-identically to a sequential run or returns exactly one typed
//!   error and no data.
//!
//! ## Fault injection
//!
//! [`faults::FaultPlan`] injects delays, cancellations, and poisoned
//! (panicking) requests at named serving sites, driven programmatically or
//! by `BLEND_FAULTS`. Serving threads wrap execution in `catch_unwind`, so
//! a poisoned request resolves its own ticket with `Err(SqlExec)` and the
//! thread lives on. The storm test drives 2× queue-depth load through an
//! undersized queue with faults enabled and asserts liveness: no deadlock,
//! every ticket resolves, deadline overshoot stays bounded, and `Ok`
//! results are byte-identical to sequential references.

pub mod faults;
pub mod queue;

pub use faults::{FaultAction, FaultPlan, SITE_DEQUEUE, SITE_EXEC};
pub use queue::{ServeConfig, ServeQueue, ServeStats, Ticket};

pub use blend_common::{BlendError, Result};
pub use blend_parallel::{CancellationToken, Deadline, Interrupt};

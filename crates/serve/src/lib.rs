//! # blend-serve — the resilient serving tier
//!
//! BLEND is an interactive discovery system: many users issue seeker
//! queries concurrently, and the paper's unified-SQL design funnels all of
//! them through one executor. The crates below this one make a single
//! query fast ([`blend_sql`]) and make concurrent queries share one worker
//! pool fairly ([`blend_parallel`]); this crate makes the *front door*
//! resilient. A [`ServeQueue`] accepts requests into a bounded queue,
//! sheds load when the bound is hit, enforces per-request deadlines,
//! supports cooperative cancellation, and survives injected faults — so an
//! overloaded or misbehaving workload degrades into typed errors instead
//! of unbounded queues, stuck clients, or dead serving threads.
//!
//! ## Request lifecycle
//!
//! 1. **Submit** ([`ServeQueue::submit`]) — non-blocking. If the queue
//!    holds `depth` requests the submission is *shed*:
//!    `Err(BlendError::Overloaded)` immediately, telling the caller to back
//!    off now rather than time out later. Accepted requests get a fresh
//!    [`CancellationToken`] plus the caller's [`Deadline`] — together an
//!    [`Interrupt`] — and a [`Ticket`].
//! 2. **Dequeue** — a serving thread pops the request. If its deadline
//!    expired or it was cancelled while queued, it resolves
//!    `Err(Timeout)`/`Err(Cancelled)` without executing. Otherwise the
//!    thread probes the **result cache** and the **in-flight group map**
//!    (see *Coalescing and the result cache* below); a request resolved
//!    there never reaches admission.
//! 3. **Admission** — the thread acquires **one** admission token as the
//!    request's execution slot via
//!    [`Admission::acquire_within`](blend_parallel::Admission::acquire_within),
//!    blocking *under the request's interrupt*: the wait re-polls
//!    cancellation and gives up at the deadline, so a request never sleeps
//!    past its budget waiting for capacity.
//! 4. **Execute** — the engine runs the SQL with the request's interrupt
//!    scoped onto the shared [`ParallelCtx`](blend_parallel::ParallelCtx)
//!    (`SqlEngine::execute_interruptible`). Executors check at phase
//!    boundaries and inside morsel/partition loops; see below.
//! 5. **Resolve** — [`Ticket::wait`] returns the result. Every accepted
//!    request resolves exactly once: `Ok(result)` or one typed
//!    `BlendError::{Timeout, Cancelled, Overloaded, ...}`. Requests still
//!    queued at shutdown resolve `Err(Cancelled)`.
//!
//! Per-request telemetry rides the result: `QueryReport::serving` records
//! queue wait, execution time, and outcome
//! ([`ServingStats`](blend_sql::ServingStats)), and `QueryReport::profile`
//! carries the query's `EXPLAIN ANALYZE` span tree with queue-side
//! attributes (`queue_wait_nanos`, `outcome`) stamped onto its root.
//! [`ServeQueue::stats`] aggregates submitted/shed/ok/cache-hit/
//! coalesced-hit/timeout/cancelled/failed counters per queue, and the same
//! events feed the process-global [`blend_obs`] registry (`blend_serve_*`:
//! submission/outcome counters, a queue-depth gauge, queue-wait and
//! exec-time histograms; `blend_cache_*`: hit/miss/coalesced/eviction
//! counters and a resident-bytes gauge) for the fleet-level view — note
//! the metrics-level `blend_serve_submitted_total` counts *every*
//! submission attempt including shed ones, so `shed + ok + cache_hit +
//! coalesced_hit + timeout + cancelled + mem_exceeded + failed ==
//! submitted` holds there, while `ServeStats::submitted` counts accepted
//! requests only.
//!
//! ## Coalescing and the result cache
//!
//! Seeker workloads are template-heavy: many users re-issue the same few
//! discovery queries, differing only in spelling (literal order inside
//! `IN` lists, identifier case, whitespace). Both optimizations below key
//! on the **canonical fingerprint**
//! ([`blend_sql::fingerprint_sql`]): fingerprint-equal queries are
//! guaranteed byte-identical results by the engine, which is what makes
//! sharing results across them sound. Fingerprints are computed once at
//! submission; unparseable SQL simply opts out (the engine surfaces the
//! parse error as before).
//!
//! **Result cache** ([`ResultCache`]): a sharded, CLOCK-evicted map from
//! [`CacheKey`] — fingerprint + engine catalog generation + executor path
//! — to a memoized [`blend_sql::ResultSet`], bounded by a byte budget
//! (`BLEND_RESULT_CACHE_BYTES`, default 32 MiB, `0` disables; entry cost
//! is `ResultSet::approx_bytes`). *Invalidation contract*: rebuilding the
//! index or swapping the catalog
//! ([`SqlEngine::replace_table`](blend_sql::SqlEngine::replace_table),
//! `Blend::rebuild_from_lake`) advances the engine generation **after**
//! the swap; lookups key on the generation observed at dequeue, so a
//! post-rebuild request can never match — or be served — a pre-rebuild
//! entry, and each shard purges superseded generations the first time it
//! observes a newer one.
//!
//! **In-flight coalescing**: when a request's fingerprint matches an
//! execution that is *currently running* on another serving thread, it
//! attaches to that group as a waiter instead of executing — N
//! fingerprint-equal requests cost **one** admission grant and one
//! execution. The protocol:
//!
//! 1. The first request to find no group entry becomes the **leader**,
//!    registers the group, and executes normally under its own interrupt.
//! 2. Later fingerprint-equal requests append themselves to the group's
//!    waiter list under the same lock the leader's finalize takes, so
//!    attach/finalize can never race; their serving threads move straight
//!    on to other work.
//! 3. On success the leader memoizes the result, resolves its own ticket
//!    (`outcome: "ok"`), and resolves every waiter from the shared result
//!    (`outcome: "coalesced_hit"`) — re-checking each waiter's interrupt
//!    first, so deadlines and cancellations stay **per-waiter**.
//! 4. If the leader fails — cancelled, timed out, poisoned, or any
//!    execution error — its ticket resolves with its own typed error, and
//!    the earliest still-live waiter is **promoted** to re-execute under
//!    *its* interrupt. A dying leader never strands its group, and one
//!    request's cancellation never leaks into another's outcome.
//!
//! Cache hits and coalesced deliveries stamp `ServingStats::outcome`
//! (`"cache_hit"` / `"coalesced_hit"`) and carry a synthesized profile
//! root with `cache`/`queue_wait_nanos` attributes in place of the
//! engine's span tree; fresh executions gain a `cache: "miss"` root
//! attribute.
//!
//! ## The cancellation protocol (who checks, where)
//!
//! Cancellation is **cooperative**; nothing is killed. The serving tier
//! creates one [`Interrupt`] per request; every layer below polls it:
//!
//! * **Serving thread** — checks on dequeue (step 2) and blocks
//!   interruptibly in admission (step 3).
//! * **Plan executor** (`blend` core) — checks at every seeker boundary.
//! * **SQL executors** (`blend_sql`) — check before each phase (scan, join
//!   build/probe, group, global agg) and every few thousand rows inside
//!   sequential loops; parallel closures poll per morsel/partition/chunk
//!   and bail with truncated partials.
//! * **No-partial-results guarantee** — pool tasks never unwind; the
//!   *caller* re-checks the interrupt right after each parallel run and
//!   discards all partials on `Err`. A request therefore either completes
//!   byte-identically to a sequential run or returns exactly one typed
//!   error and no data.
//!
//! ## Memory pressure
//!
//! The engine's [`blend_parallel::MemoryGovernor`] bounds what queries may
//! allocate (`BLEND_MEMORY_BUDGET`); the serving tier participates on
//! three fronts:
//!
//! * **The result cache is a child pool of the budget.** Every admitted
//!   entry is charged against the governor (payload + per-entry
//!   overhead), every eviction/purge releases its charge, and the cache
//!   registers as the governor's [`blend_parallel::MemoryReclaimer`] —
//!   when a query's reservation fails, rung 1 of the degradation ladder
//!   evicts cached results to fund it. Under pressure a cache fill that
//!   the governor cannot fund is simply skipped.
//! * **Admission tightens during reclaim.** While a reclaim pass is in
//!   flight ([`blend_parallel::MemoryGovernor::reclaiming`]) `submit`
//!   halves the effective queue depth, so new work queues or sheds
//!   instead of piling onto a system that is actively giving bytes back.
//! * **`mem_exceeded` is a first-class outcome.** A request whose
//!   execution exhausts the ladder (narrowed parallelism → sequential →
//!   still over budget) resolves `Err(BlendError::MemoryExceeded)`,
//!   counted separately from generic failures in [`ServeStats`] and the
//!   `blend_serve_outcomes_total` family so the conservation identity
//!   above stays exact under memory storms.
//!
//! ## Fault injection
//!
//! [`faults::FaultPlan`] injects delays, cancellations, and poisoned
//! (panicking) requests at named serving sites, driven programmatically or
//! by `BLEND_FAULTS`. Serving threads wrap execution in `catch_unwind`, so
//! a poisoned request resolves its own ticket with `Err(SqlExec)` and the
//! thread lives on. An `alloc:fail[@every]` rule ([`SITE_ALLOC`]) arms the
//! memory governor with synthetic reservation failures instead of firing
//! at a pipeline site, so storms can prove every ladder rung fires without
//! a precisely tuned byte budget. The storm test drives 2× queue-depth
//! load through an undersized queue with faults enabled and asserts
//! liveness: no deadlock, every ticket resolves, deadline overshoot stays
//! bounded, and `Ok` results are byte-identical to sequential references.

pub mod cache;
pub mod faults;
pub mod queue;

pub use cache::{cache_bytes_from_env, CacheKey, CachedResult, ResultCache, DEFAULT_CACHE_BYTES};
pub use faults::{
    FaultAction, FaultPlan, SITE_ALLOC, SITE_CACHE, SITE_COALESCE, SITE_DEQUEUE, SITE_EXEC,
};
pub use queue::{ServeConfig, ServeQueue, ServeStats, Ticket};

pub use blend_common::{BlendError, Result};
pub use blend_parallel::{CancellationToken, Deadline, Interrupt};

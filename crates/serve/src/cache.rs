//! The fingerprint-keyed, byte-bounded result cache behind
//! [`ServeQueue`](crate::ServeQueue).
//!
//! Seeker workloads repeat a handful of query templates, so once the
//! serving tier can name a query canonically
//! ([`blend_sql::fingerprint`]), recomputing a repeated query is pure
//! waste. This cache memoizes whole [`ResultSet`]s under a
//! [`CacheKey`] — canonical fingerprint + store generation + executor
//! path — with a **byte budget** (`BLEND_RESULT_CACHE_BYTES`, default
//! 32 MiB, `0` disables) enforced per shard by CLOCK (second-chance)
//! eviction.
//!
//! ## Keying and invalidation contract
//!
//! * Keys compare the **full canonical text**, not just the 64-bit hash:
//!   a hash collision can put two queries in the same shard but can never
//!   serve one query's bytes for another.
//! * The key's `generation` is the store generation observed **before**
//!   the cached execution began. Index/lake rebuilds and catalog swaps
//!   bump the process-wide generation, so post-rebuild lookups (which use
//!   the new generation) can never match pre-rebuild entries — even when
//!   the rebuild lands while the entry's execution is still in flight.
//!   Each shard also purges entries from superseded generations the first
//!   time it observes a new one, so stale bytes are reclaimed promptly
//!   rather than aging out.
//! * Entry cost comes from [`ResultSet::approx_bytes`] (the
//!   `memory_breakdown`-style accounting); an entry larger than a whole
//!   shard's budget is simply not admitted.
//!
//! Observability: `blend_cache_hits_total`, `blend_cache_misses_total`,
//! `blend_cache_coalesced_total` (incremented by the queue when a request
//! attaches to an in-flight execution), `blend_cache_evictions_total`,
//! and the `blend_cache_bytes` gauge.

use std::sync::{Arc, Mutex, OnceLock};

use blend_common::FxHashMap;
use blend_parallel::{MemoryGovernor, MemoryReclaimer};
use blend_sql::{ExecPath, QueryFingerprint, QueryReport, ResultSet};

/// Shards: enough to keep lock contention off the serving threads, few
/// enough that per-shard budgets stay meaningful for small caches.
const NUM_SHARDS: usize = 8;

/// Default byte budget when `BLEND_RESULT_CACHE_BYTES` is unset.
pub const DEFAULT_CACHE_BYTES: usize = 32 << 20;

/// Resolve the cache budget from `BLEND_RESULT_CACHE_BYTES` (`0`
/// disables caching entirely).
pub fn cache_bytes_from_env() -> usize {
    match std::env::var("BLEND_RESULT_CACHE_BYTES") {
        Ok(v) => v.trim().parse().unwrap_or(DEFAULT_CACHE_BYTES),
        Err(_) => DEFAULT_CACHE_BYTES,
    }
}

/// Cache metric cells (`blend_cache_*`), process-global across queues.
pub(crate) struct CacheMetrics {
    pub hits: Arc<blend_obs::Counter>,
    pub misses: Arc<blend_obs::Counter>,
    pub coalesced: Arc<blend_obs::Counter>,
    pub evictions: Arc<blend_obs::Counter>,
    pub bytes: Arc<blend_obs::Gauge>,
}

pub(crate) fn cache_metrics() -> &'static CacheMetrics {
    static METRICS: OnceLock<CacheMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = blend_obs::registry();
        CacheMetrics {
            hits: r.counter("blend_cache_hits_total"),
            misses: r.counter("blend_cache_misses_total"),
            coalesced: r.counter("blend_cache_coalesced_total"),
            evictions: r.counter("blend_cache_evictions_total"),
            bytes: r.gauge("blend_cache_bytes"),
        }
    })
}

/// The identity a memoized (or in-flight) execution is filed under.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Canonical query fingerprint (authoritative: full canonical text).
    pub fp: QueryFingerprint,
    /// Store generation observed before execution began.
    pub generation: u64,
    /// Executor selection — `Auto` and `TupleOnly` may legitimately order
    /// rows differently, so they never share bytes.
    pub path: ExecPath,
}

impl CacheKey {
    fn shard(&self) -> usize {
        // High bits: the map inside each shard consumes the low bits.
        (self.fp.hash() >> 32) as usize % NUM_SHARDS
    }
}

/// A memoized execution: the result plus the executing request's logical
/// report (serving/profile stripped — each delivery stamps its own).
#[derive(Debug)]
pub struct CachedResult {
    pub rs: ResultSet,
    pub report: QueryReport,
    /// Admission cost charged against the byte budget.
    pub bytes: usize,
}

impl CachedResult {
    /// Package a finished execution for the cache: telemetry that is
    /// per-delivery (serving stats, profile tree) is stripped here and
    /// re-stamped on every hit.
    pub fn new(rs: ResultSet, mut report: QueryReport) -> Self {
        report.serving = None;
        report.profile = None;
        let bytes = rs.approx_bytes();
        CachedResult { rs, report, bytes }
    }
}

struct Slot {
    key: CacheKey,
    value: Arc<CachedResult>,
    referenced: bool,
    /// Bytes charged for this entry: payload plus per-entry overhead
    /// (slot, key clone, canonical text). This is what eviction releases.
    charged: usize,
}

#[derive(Default)]
struct Shard {
    map: FxHashMap<CacheKey, usize>,
    slots: Vec<Option<Slot>>,
    hand: usize,
    bytes: usize,
    /// Latest store generation this shard has observed; entries from older
    /// generations are purged when it advances.
    seen_gen: u64,
}

impl Shard {
    fn purge_stale(&mut self, generation: u64) -> usize {
        if generation <= self.seen_gen {
            return 0;
        }
        self.seen_gen = generation;
        let mut freed = 0;
        for i in 0..self.slots.len() {
            let stale = matches!(&self.slots[i], Some(s) if s.key.generation != generation);
            if stale {
                let slot = self.slots[i].take().expect("checked above");
                self.map.remove(&slot.key);
                self.bytes -= slot.charged;
                freed += slot.charged;
            }
        }
        freed
    }

    /// CLOCK sweep until at least `needed` bytes fit under `budget`.
    /// Returns (bytes freed, entries evicted).
    fn evict_for(&mut self, needed: usize, budget: usize) -> (usize, u64) {
        let mut freed = 0;
        let mut evicted = 0;
        while self.bytes + needed > budget && !self.map.is_empty() {
            if self.slots.is_empty() {
                break;
            }
            self.hand %= self.slots.len();
            let i = self.hand;
            self.hand += 1;
            match &mut self.slots[i] {
                Some(s) if s.referenced => s.referenced = false,
                Some(_) => {
                    let slot = self.slots[i].take().expect("matched Some");
                    self.map.remove(&slot.key);
                    self.bytes -= slot.charged;
                    freed += slot.charged;
                    evicted += 1;
                }
                None => {}
            }
        }
        (freed, evicted)
    }
}

/// Sharded CLOCK cache of memoized seeker results.
///
/// The cache's byte pool is a **child of the memory governor's budget**:
/// every admitted entry is charged against the governor (entries are the
/// reclaimable bytes that rung 1 of the degradation ladder gives back),
/// and every eviction/purge releases its charge. Charges happen *before*
/// any shard lock is taken — a charge can trigger a reclaim pass that
/// sweeps these same shards, and charging under the lock would deadlock.
pub struct ResultCache {
    shards: Vec<Mutex<Shard>>,
    shard_budget: usize,
    governor: Arc<MemoryGovernor>,
}

impl ResultCache {
    /// Cache with a total byte budget split evenly across shards, charging
    /// the process-global governor. `total_bytes == 0` builds a disabled
    /// cache (every lookup misses, every insert is dropped, no metrics
    /// recorded).
    pub fn new(total_bytes: usize) -> ResultCache {
        ResultCache::with_governor(total_bytes, MemoryGovernor::global().clone())
    }

    /// Cache charging a specific governor (tests with private budgets).
    pub fn with_governor(total_bytes: usize, governor: Arc<MemoryGovernor>) -> ResultCache {
        ResultCache {
            shards: (0..NUM_SHARDS)
                .map(|_| Mutex::new(Shard::default()))
                .collect(),
            shard_budget: total_bytes / NUM_SHARDS,
            governor,
        }
    }

    /// Per-entry admission cost: payload bytes plus bookkeeping overhead
    /// (the slot, the key clone held in it, and the canonical query text).
    fn entry_cost(key: &CacheKey, value: &CachedResult) -> usize {
        value.bytes
            + std::mem::size_of::<Slot>()
            + std::mem::size_of::<CacheKey>()
            + key.fp.canon().len()
    }

    /// True when a zero budget disabled the cache.
    pub fn is_disabled(&self) -> bool {
        self.shard_budget == 0
    }

    /// Look up a memoized result. Counts a hit or miss.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<CachedResult>> {
        if self.is_disabled() {
            return None;
        }
        let m = cache_metrics();
        let mut shard = self.shards[key.shard()]
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let freed = shard.purge_stale(key.generation);
        if freed > 0 {
            m.bytes.add(-(freed as i64));
            self.governor.release(freed);
        }
        match shard.map.get(key) {
            Some(&i) => {
                let slot = shard.slots[i].as_mut().expect("mapped slot is live");
                slot.referenced = true;
                let value = Arc::clone(&slot.value);
                m.hits.inc();
                Some(value)
            }
            None => {
                m.misses.inc();
                None
            }
        }
    }

    /// Admit a finished execution. Oversized entries (larger than a whole
    /// shard's budget) are dropped, as are entries the memory governor
    /// cannot fund (a cache fill is the most discretionary allocation in
    /// the system — under pressure it simply doesn't happen); an existing
    /// entry for the same key is kept (fingerprint-equal executions are
    /// byte-identical by contract).
    pub fn insert(&self, key: CacheKey, value: Arc<CachedResult>) {
        if self.is_disabled() {
            return;
        }
        let cost = ResultCache::entry_cost(&key, &value);
        if cost > self.shard_budget {
            return;
        }
        // Charge before the shard lock: the charge may trigger a reclaim
        // pass that sweeps these shards (see the type-level comment).
        if !self.governor.try_charge(cost) {
            return;
        }
        let m = cache_metrics();
        let mut shard = self.shards[key.shard()]
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let mut released = shard.purge_stale(key.generation);
        let mut delta: i64 = -(released as i64);
        if !shard.map.contains_key(&key) {
            let (freed, evicted) = shard.evict_for(cost, self.shard_budget);
            released += freed;
            delta -= freed as i64;
            m.evictions.add(evicted);
            shard.bytes += cost;
            delta += cost as i64;
            let slot = Slot {
                key: key.clone(),
                value,
                referenced: true,
                charged: cost,
            };
            let i = match shard.slots.iter().position(Option::is_none) {
                Some(i) => {
                    shard.slots[i] = Some(slot);
                    i
                }
                None => {
                    shard.slots.push(Some(slot));
                    shard.slots.len() - 1
                }
            };
            shard.map.insert(key, i);
        } else {
            // Duplicate key: entry kept, the new charge goes straight back.
            released += cost;
        }
        drop(shard);
        self.governor.release(released);
        if delta != 0 {
            m.bytes.add(delta);
        }
    }

    /// Live entries (tests).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).map.len())
            .sum()
    }

    /// True when no entry is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Resident bytes (tests).
    pub fn bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).bytes)
            .sum()
    }

    /// Drop every entry and release its governor charge. Used when the
    /// serving tier shuts down and by tests proving reserved bytes drain
    /// to zero.
    pub fn purge_all(&self) {
        let m = cache_metrics();
        for shard in &self.shards {
            let mut s = shard.lock().unwrap_or_else(|e| e.into_inner());
            // A zero budget makes the CLOCK sweep run until the shard is
            // empty (second-chance laps included).
            let (freed, _) = s.evict_for(0, 0);
            drop(s);
            if freed > 0 {
                m.bytes.add(-(freed as i64));
                self.governor.release(freed);
            }
        }
    }
}

/// Rung 1 of the degradation ladder: when a query's reservation fails,
/// the governor asks this cache to give bytes back. Sweep shards with the
/// same CLOCK policy as admission eviction until `needed` bytes are freed
/// (or the cache is empty).
impl MemoryReclaimer for ResultCache {
    fn reclaim(&self, needed: usize) -> usize {
        if self.is_disabled() || needed == 0 {
            return 0;
        }
        let m = cache_metrics();
        let mut freed = 0usize;
        for shard in &self.shards {
            if freed >= needed {
                break;
            }
            let mut s = shard.lock().unwrap_or_else(|e| e.into_inner());
            let want = needed - freed;
            let target = s.bytes.saturating_sub(want);
            let (f, evicted) = s.evict_for(0, target);
            drop(s);
            if f > 0 {
                m.evictions.add(evicted);
                m.bytes.add(-(f as i64));
                self.governor.release(f);
                freed += f;
            }
        }
        freed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blend_sql::fingerprint_sql;

    fn result_of(n: usize, tag: &str) -> ResultSet {
        ResultSet {
            columns: vec!["v".into()],
            rows: (0..n)
                .map(|i| vec![blend_sql::SqlValue::from(format!("{tag}-{i}").as_str())])
                .collect(),
        }
    }

    fn key(sql: &str, generation: u64) -> CacheKey {
        CacheKey {
            fp: fingerprint_sql(sql).unwrap(),
            generation,
            path: ExecPath::Auto,
        }
    }

    fn entry(n: usize, tag: &str) -> Arc<CachedResult> {
        Arc::new(CachedResult::new(result_of(n, tag), QueryReport::default()))
    }

    #[test]
    fn hit_after_insert_and_generation_invalidation() {
        let cache = ResultCache::new(1 << 20);
        let k1 = key("SELECT TableId FROM AllTables", 1);
        cache.insert(k1.clone(), entry(4, "a"));
        assert_eq!(cache.get(&k1).unwrap().rs, result_of(4, "a"));

        // Same query at a newer generation: the old entry must not match,
        // and observing the new generation purges it.
        let k2 = key("SELECT TableId FROM AllTables", 2);
        assert!(cache.get(&k2).is_none());
        assert!(cache.is_empty(), "stale generation purged on observation");
        assert_eq!(cache.bytes(), 0);
    }

    #[test]
    fn spelling_variants_share_an_entry() {
        let cache = ResultCache::new(1 << 20);
        cache.insert(
            key(
                "SELECT TableId FROM AllTables WHERE CellValue IN ('a','b')",
                1,
            ),
            entry(2, "x"),
        );
        let variant = key(
            "select tableid from alltables where cellvalue in ('b','a')",
            1,
        );
        assert!(cache.get(&variant).is_some());
    }

    #[test]
    fn byte_budget_forces_eviction() {
        // Budget fits roughly one entry (payload + per-entry overhead)
        // per shard.
        let one = entry(64, "fill");
        let cost = ResultCache::entry_cost(&key("SELECT TableId FROM AllTables LIMIT 0", 1), &one);
        let budget = (cost + 64) * NUM_SHARDS;
        let cache = ResultCache::new(budget);
        for i in 0..64 {
            cache.insert(
                key(&format!("SELECT TableId FROM AllTables LIMIT {i}"), 1),
                entry(64, "fill"),
            );
        }
        assert!(cache.bytes() <= budget);
        assert!(!cache.is_empty(), "small entries must be admitted");
        assert!(cache.len() < 64, "evictions must have occurred");
    }

    #[test]
    fn entries_charge_the_governor_and_reclaim_releases() {
        let gov = Arc::new(MemoryGovernor::with_budget(1 << 20));
        let cache = ResultCache::with_governor(1 << 19, gov.clone());
        for i in 0..8 {
            cache.insert(
                key(&format!("SELECT TableId FROM AllTables LIMIT {i}"), 1),
                entry(16, "g"),
            );
        }
        assert!(!cache.is_empty());
        assert_eq!(
            gov.reserved_bytes(),
            cache.bytes(),
            "every resident byte is charged against the governor"
        );

        // Rung 1: asking for bytes evicts entries and releases charges.
        let freed = cache.reclaim(1);
        assert!(freed > 0);
        assert_eq!(gov.reserved_bytes(), cache.bytes());

        cache.purge_all();
        assert!(cache.is_empty());
        assert_eq!(gov.reserved_bytes(), 0, "purge drains the pool");
    }

    #[test]
    fn insert_is_dropped_when_the_governor_cannot_fund_it() {
        let gov = Arc::new(MemoryGovernor::with_budget(64));
        let cache = ResultCache::with_governor(1 << 19, gov.clone());
        let k = key("SELECT TableId FROM AllTables", 1);
        cache.insert(k.clone(), entry(16, "x"));
        assert!(cache.get(&k).is_none(), "entry over the memory budget");
        assert_eq!(gov.reserved_bytes(), 0, "failed charge fully rolled back");
    }

    #[test]
    fn zero_budget_disables() {
        let cache = ResultCache::new(0);
        let k = key("SELECT TableId FROM AllTables", 1);
        cache.insert(k.clone(), entry(4, "a"));
        assert!(cache.get(&k).is_none());
        assert!(cache.is_empty());
    }

    #[test]
    fn oversized_entry_not_admitted() {
        let cache = ResultCache::new(NUM_SHARDS * 64);
        let k = key("SELECT CellValue FROM AllTables", 1);
        cache.insert(k.clone(), entry(1000, "big"));
        assert!(cache.get(&k).is_none());
        assert_eq!(cache.bytes(), 0);
    }

    #[test]
    fn exec_paths_do_not_share_entries() {
        let cache = ResultCache::new(1 << 20);
        let auto = key("SELECT TableId FROM AllTables", 1);
        let tuple = CacheKey {
            path: ExecPath::TupleOnly,
            ..auto.clone()
        };
        cache.insert(auto, entry(4, "a"));
        assert!(cache.get(&tuple).is_none());
    }
}

//! Fault injection for the serving tier.
//!
//! A [`FaultPlan`] attaches deterministic faults to **named sites** inside
//! the serving pipeline. The storm test uses it to prove liveness: with
//! delays, cancellations, and poisoned (panicking) requests injected at
//! every site, every ticket must still resolve to exactly one typed
//! outcome and the serving threads must survive.
//!
//! Sites (see [`SITE_DEQUEUE`], [`SITE_CACHE`], [`SITE_COALESCE`],
//! [`SITE_EXEC`]):
//!
//! * `dequeue` — fired when a serving thread pops a request, before the
//!   queued-deadline check. A delay here simulates a slow scheduler and
//!   widens the window in which queued requests expire.
//! * `cache` — fired before the result-cache probe. `poison` here makes
//!   the request *skip* the cache and crash at the exec site instead
//!   (a hit would otherwise mask the poison), `cancel` trips its token
//!   before it can be served from cache.
//! * `coalesce` — fired before the in-flight group attach/lead decision.
//!   Poisoning here targets group *leaders*: the leader crashes
//!   mid-execution and its waiters must be promoted or resolve typed.
//! * `exec` — fired after the admission slot is acquired, immediately
//!   before execution. `poison` here panics *inside* the serving thread's
//!   `catch_unwind`, modelling a request that crashes mid-flight.
//!
//! Actions are [`FaultAction::Delay`] (sleep), [`FaultAction::Cancel`]
//! (trip the request's cancellation token), and [`FaultAction::Poison`]
//! (panic at the site; the serving thread catches it and resolves the
//! ticket with an `Internal` error).
//!
//! Plans come from code ([`FaultPlan::with`]) or from the environment
//! ([`FaultPlan::from_env`], variable `BLEND_FAULTS`). The spec grammar is
//! comma-separated rules:
//!
//! ```text
//! site:action[:millis][@every]
//! ```
//!
//! e.g. `BLEND_FAULTS="dequeue:delay:20@2,exec:cancel@5,exec:poison@7"`
//! delays every 2nd dequeue by 20 ms, cancels every 5th request at the
//! exec site, and poisons every 7th. `@every` defaults to 1 (always).
//! The special rule `alloc:fail[@every]` (site [`SITE_ALLOC`]) takes no
//! millis and injects synthetic memory-reservation failures via the
//! engine's memory governor instead of firing at a pipeline site.
//! Rule counters are per-site-visit and atomic, so concurrent serving
//! threads see a deterministic *rate* of faults.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use blend_common::{BlendError, Result};

/// Fault site: a serving thread popped a request off the queue.
pub const SITE_DEQUEUE: &str = "dequeue";
/// Fault site: about to probe the result cache for this request.
pub const SITE_CACHE: &str = "cache";
/// Fault site: about to attach to (or lead) an in-flight group.
pub const SITE_COALESCE: &str = "coalesce";
/// Fault site: admission slot held, about to execute the request.
pub const SITE_EXEC: &str = "exec";
/// Fault site: a memory-governor charge. Unlike the other sites this one
/// is not visited by the serving loop — the [`crate::ServeQueue`] arms the
/// engine's [`blend_parallel::MemoryGovernor`] with the rule's rate and
/// the governor fails every N-th `try_charge` with a synthetic reservation
/// failure, exercising the degradation ladder (narrow → sequential →
/// typed `MemoryExceeded`) without needing a tiny byte budget.
pub const SITE_ALLOC: &str = "alloc";

/// What an injected fault does at its site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Sleep for the given duration at the site.
    Delay(Duration),
    /// Trip the request's cancellation token.
    Cancel,
    /// Panic at the site (caught by the serving thread).
    Poison,
    /// Fail a memory-governor charge (only meaningful at [`SITE_ALLOC`]).
    FailAlloc,
}

#[derive(Debug)]
struct FaultRule {
    site: String,
    action: FaultAction,
    /// Fire on every `every`-th visit to the site (1 = always).
    every: usize,
    hits: AtomicUsize,
}

impl FaultRule {
    fn fire(&self, site: &str) -> Option<FaultAction> {
        if self.site != site {
            return None;
        }
        let n = self.hits.fetch_add(1, Ordering::Relaxed);
        n.is_multiple_of(self.every).then_some(self.action)
    }
}

/// A set of fault rules keyed by site. Cheap to query when empty.
#[derive(Debug, Default)]
pub struct FaultPlan {
    rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// A plan that injects nothing.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// True if no rule is registered.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Add a rule: inject `action` on every `every`-th visit to `site`
    /// (`every` is clamped to at least 1).
    pub fn with(mut self, site: &str, action: FaultAction, every: usize) -> FaultPlan {
        self.rules.push(FaultRule {
            site: site.to_string(),
            action,
            every: every.max(1),
            hits: AtomicUsize::new(0),
        });
        self
    }

    /// Build a plan from the `BLEND_FAULTS` environment variable. Unset or
    /// empty means no faults; a malformed spec is an error so typos in CI
    /// configs fail loudly instead of silently disabling the storm.
    pub fn from_env() -> Result<FaultPlan> {
        match std::env::var("BLEND_FAULTS") {
            Ok(spec) if !spec.trim().is_empty() => FaultPlan::parse(&spec),
            _ => Ok(FaultPlan::none()),
        }
    }

    /// Parse a comma-separated spec: `site:action[:millis][@every]`.
    pub fn parse(spec: &str) -> Result<FaultPlan> {
        let mut plan = FaultPlan::none();
        for rule in spec.split(',').map(str::trim).filter(|r| !r.is_empty()) {
            let bad = || BlendError::InvalidInput(format!("bad fault rule `{rule}`"));
            let (body, every) = match rule.split_once('@') {
                Some((body, n)) => (body, n.parse::<usize>().map_err(|_| bad())?),
                None => (rule, 1),
            };
            let mut parts = body.split(':');
            let site = parts.next().filter(|s| !s.is_empty()).ok_or_else(bad)?;
            let action = match parts.next().ok_or_else(bad)? {
                "delay" => {
                    let ms: u64 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
                    FaultAction::Delay(Duration::from_millis(ms))
                }
                "cancel" => FaultAction::Cancel,
                "poison" => FaultAction::Poison,
                "fail" if site == SITE_ALLOC => FaultAction::FailAlloc,
                _ => return Err(bad()),
            };
            if parts.next().is_some() {
                return Err(bad());
            }
            plan = plan.with(site, action, every);
        }
        Ok(plan)
    }

    /// The `every` rate of the first `alloc:fail` rule, if any. The
    /// serving tier uses this to arm the engine's memory governor rather
    /// than firing the rule at a pipeline site.
    pub fn alloc_fail_every(&self) -> Option<usize> {
        self.rules
            .iter()
            .find(|r| r.site == SITE_ALLOC && r.action == FaultAction::FailAlloc)
            .map(|r| r.every)
    }

    /// Actions to apply for this visit to `site`, in rule order.
    pub fn fire(&self, site: &str) -> Vec<FaultAction> {
        if self.rules.is_empty() {
            return Vec::new();
        }
        self.rules.iter().filter_map(|r| r.fire(site)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_grammar() {
        let plan = FaultPlan::parse("dequeue:delay:20@2, exec:cancel@5,exec:poison").unwrap();
        assert_eq!(plan.rules.len(), 3);
        assert_eq!(
            plan.rules[0].action,
            FaultAction::Delay(Duration::from_millis(20))
        );
        assert_eq!(plan.rules[0].every, 2);
        assert_eq!(plan.rules[1].action, FaultAction::Cancel);
        assert_eq!(plan.rules[2].every, 1);
    }

    #[test]
    fn rejects_malformed_rules() {
        for bad in [
            "dequeue",
            "dequeue:delay:xx",
            "x:cancel@y",
            ":cancel",
            "a:b",
            "exec:fail",      // `fail` only parses at the alloc site
            "alloc:fail:20",  // no millis on alloc:fail
            "alloc:fail@2@3", // nonsense every
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad} should not parse");
        }
    }

    #[test]
    fn alloc_fail_rule_parses_and_reports_rate() {
        let plan = FaultPlan::parse("exec:cancel@5,alloc:fail@7").unwrap();
        assert_eq!(plan.alloc_fail_every(), Some(7));
        // The alloc rule does not leak into the pipeline sites.
        assert!(plan
            .fire(SITE_EXEC)
            .iter()
            .all(|a| *a != FaultAction::FailAlloc));
        let plan = FaultPlan::parse("alloc:fail").unwrap();
        assert_eq!(plan.alloc_fail_every(), Some(1));
        assert_eq!(
            FaultPlan::parse("exec:poison").unwrap().alloc_fail_every(),
            None
        );
    }

    #[test]
    fn every_counts_per_site_visit() {
        let plan = FaultPlan::none().with(SITE_EXEC, FaultAction::Cancel, 3);
        let fired: Vec<bool> = (0..9).map(|_| !plan.fire(SITE_EXEC).is_empty()).collect();
        assert_eq!(
            fired,
            vec![true, false, false, true, false, false, true, false, false]
        );
        assert!(plan.fire(SITE_DEQUEUE).is_empty());
    }
}

//! Runtime values flowing through the executor.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A runtime SQL value.
///
/// `U128` exists for the `SuperKey` column: it supports equality, hashing
/// and display but no arithmetic (a super key is an opaque bitset).
#[derive(Debug, Clone)]
pub enum SqlValue {
    Null,
    Int(i64),
    Float(f64),
    Bool(bool),
    Text(Arc<str>),
    U128(u128),
}

impl SqlValue {
    /// SQL truthiness for WHERE/ON: `TRUE` is true; `NULL`, `FALSE` and
    /// every non-boolean are false. (The planner only feeds boolean-typed
    /// expressions here.)
    #[inline]
    pub fn truthy(&self) -> bool {
        matches!(self, SqlValue::Bool(true))
    }

    /// Is this SQL NULL?
    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, SqlValue::Null)
    }

    /// Numeric view used by arithmetic and numeric comparisons. Booleans
    /// coerce to 0/1 (Listing 3 compares `Quadrant = 0`).
    #[inline]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            SqlValue::Int(i) => Some(*i as f64),
            SqlValue::Float(f) => Some(*f),
            SqlValue::Bool(b) => Some(*b as i64 as f64),
            _ => None,
        }
    }

    /// Integer view (floats truncate toward zero).
    #[inline]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            SqlValue::Int(i) => Some(*i),
            SqlValue::Float(f) => Some(*f as i64),
            SqlValue::Bool(b) => Some(*b as i64),
            _ => None,
        }
    }

    /// Text view.
    #[inline]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            SqlValue::Text(s) => Some(s),
            _ => None,
        }
    }

    /// SQL equality returning NULL when either side is NULL.
    /// Numerics compare by value across Int/Float/Bool.
    pub fn sql_eq(&self, other: &SqlValue) -> SqlValue {
        if self.is_null() || other.is_null() {
            return SqlValue::Null;
        }
        let eq = match (self, other) {
            (SqlValue::Text(a), SqlValue::Text(b)) => a == b,
            (SqlValue::U128(a), SqlValue::U128(b)) => a == b,
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => x == y,
                // Type-incompatible non-null comparison: unequal.
                _ => false,
            },
        };
        SqlValue::Bool(eq)
    }

    /// SQL ordering comparison (`<`, `<=`, ...), NULL-propagating.
    pub fn sql_cmp(&self, other: &SqlValue) -> Option<Ordering> {
        if self.is_null() || other.is_null() {
            return None;
        }
        match (self, other) {
            (SqlValue::Text(a), SqlValue::Text(b)) => Some(a.cmp(b)),
            (SqlValue::U128(a), SqlValue::U128(b)) => Some(a.cmp(b)),
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => Some(x.total_cmp(&y)),
                _ => None,
            },
        }
    }

    /// Total ordering for ORDER BY: NULLs sort first, then numerics, bools,
    /// text, then U128. Deterministic across engines.
    pub fn order_cmp(&self, other: &SqlValue) -> Ordering {
        fn rank(v: &SqlValue) -> u8 {
            match v {
                SqlValue::Null => 0,
                SqlValue::Int(_) | SqlValue::Float(_) | SqlValue::Bool(_) => 1,
                SqlValue::Text(_) => 2,
                SqlValue::U128(_) => 3,
            }
        }
        match (self, other) {
            (SqlValue::Null, SqlValue::Null) => Ordering::Equal,
            (SqlValue::Text(a), SqlValue::Text(b)) => a.cmp(b),
            (SqlValue::U128(a), SqlValue::U128(b)) => a.cmp(b),
            (a, b) if rank(a) == 1 && rank(b) == 1 => {
                a.as_f64().unwrap().total_cmp(&b.as_f64().unwrap())
            }
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }
}

/// Group-key / join-key / DISTINCT equality: NULL equals NULL here (SQL
/// GROUP BY semantics), numerics compare by value.
impl PartialEq for SqlValue {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (SqlValue::Null, SqlValue::Null) => true,
            (SqlValue::Text(a), SqlValue::Text(b)) => a == b,
            (SqlValue::U128(a), SqlValue::U128(b)) => a == b,
            (SqlValue::Null, _) | (_, SqlValue::Null) => false,
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => x.to_bits() == y.to_bits() || x == y,
                _ => false,
            },
        }
    }
}

impl Eq for SqlValue {}

impl Hash for SqlValue {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            SqlValue::Null => state.write_u8(0),
            // Hash all numerics through a canonical f64 image so Int(1),
            // Float(1.0) and Bool(true) collide consistently with `eq`.
            SqlValue::Int(_) | SqlValue::Float(_) | SqlValue::Bool(_) => {
                state.write_u8(1);
                let f = self.as_f64().expect("numeric");
                // Normalize -0.0 to 0.0 for hash/eq coherence.
                let f = if f == 0.0 { 0.0 } else { f };
                state.write_u64(f.to_bits());
            }
            SqlValue::Text(s) => {
                state.write_u8(2);
                state.write(s.as_bytes());
            }
            SqlValue::U128(v) => {
                state.write_u8(3);
                state.write_u128(*v);
            }
        }
    }
}

impl fmt::Display for SqlValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlValue::Null => write!(f, "NULL"),
            SqlValue::Int(i) => write!(f, "{i}"),
            SqlValue::Float(x) => write!(f, "{x}"),
            SqlValue::Bool(b) => write!(f, "{b}"),
            SqlValue::Text(s) => write!(f, "{s}"),
            SqlValue::U128(v) => write!(f, "{v:#x}"),
        }
    }
}

impl From<&str> for SqlValue {
    fn from(s: &str) -> Self {
        SqlValue::Text(Arc::from(s))
    }
}

impl From<i64> for SqlValue {
    fn from(i: i64) -> Self {
        SqlValue::Int(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn sql_eq_three_valued() {
        assert!(SqlValue::Null.sql_eq(&SqlValue::Int(1)).is_null());
        assert!(SqlValue::Int(1).sql_eq(&SqlValue::Null).is_null());
        assert!(SqlValue::Int(1).sql_eq(&SqlValue::Int(1)).truthy());
        assert!(SqlValue::Int(1).sql_eq(&SqlValue::Float(1.0)).truthy());
        assert!(SqlValue::Bool(false).sql_eq(&SqlValue::Int(0)).truthy());
        assert!(!SqlValue::from("a").sql_eq(&SqlValue::from("b")).truthy());
    }

    #[test]
    fn group_key_equality_nulls_group_together() {
        let mut set: HashSet<SqlValue> = HashSet::new();
        set.insert(SqlValue::Null);
        assert!(set.contains(&SqlValue::Null));
        set.insert(SqlValue::Int(1));
        // Float(1.0) must land in the same group as Int(1).
        assert!(set.contains(&SqlValue::Float(1.0)));
    }

    #[test]
    fn hash_eq_coherence_across_numeric_types() {
        use std::hash::BuildHasher;
        let b = std::collections::hash_map::RandomState::new();
        assert_eq!(
            b.hash_one(SqlValue::Int(3)),
            b.hash_one(SqlValue::Float(3.0))
        );
        assert_eq!(
            b.hash_one(SqlValue::Bool(true)),
            b.hash_one(SqlValue::Int(1))
        );
    }

    #[test]
    fn order_cmp_null_first_and_total() {
        let mut vals = [
            SqlValue::from("z"),
            SqlValue::Int(5),
            SqlValue::Null,
            SqlValue::Float(2.5),
        ];
        vals.sort_by(SqlValue::order_cmp);
        assert!(vals[0].is_null());
        assert_eq!(vals[1], SqlValue::Float(2.5));
        assert_eq!(vals[2], SqlValue::Int(5));
        assert_eq!(vals[3], SqlValue::from("z"));
    }

    #[test]
    fn sql_cmp_propagates_null() {
        assert!(SqlValue::Null.sql_cmp(&SqlValue::Int(1)).is_none());
        assert_eq!(
            SqlValue::Int(1).sql_cmp(&SqlValue::Int(2)),
            Some(Ordering::Less)
        );
        assert_eq!(
            SqlValue::from("b").sql_cmp(&SqlValue::from("a")),
            Some(Ordering::Greater)
        );
    }

    #[test]
    fn truthiness() {
        assert!(SqlValue::Bool(true).truthy());
        assert!(!SqlValue::Bool(false).truthy());
        assert!(!SqlValue::Null.truthy());
        assert!(!SqlValue::Int(1).truthy());
    }

    #[test]
    fn u128_roundtrip() {
        let v = SqlValue::U128(0xDEAD_BEEF_0000_0001);
        assert_eq!(v, SqlValue::U128(0xDEAD_BEEF_0000_0001));
        assert!(v.as_f64().is_none());
    }
}

//! Abstract syntax tree for the supported SQL subset.

/// Binary operators, in ascending precedence groups (Or < And < cmp < add <
/// mul).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Or,
    And,
    Eq,
    Neq,
    Lt,
    Le,
    Gt,
    Ge,
    Add,
    Sub,
    Mul,
    Div,
    Mod,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    Neg,
    Not,
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    Count,
    Sum,
    Min,
    Max,
    Avg,
}

/// Expressions. Identifier payloads are lowercased by the parser so later
/// stages compare case-insensitively for free.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// `alias.column` or bare `column`.
    Column {
        qualifier: Option<String>,
        name: String,
    },
    Int(i64),
    Float(f64),
    Str(String),
    Bool(bool),
    Null,
    /// `*` — only valid inside `COUNT(*)`.
    Star,
    Unary {
        op: UnaryOp,
        expr: Box<Expr>,
    },
    Binary {
        left: Box<Expr>,
        op: BinOp,
        right: Box<Expr>,
    },
    /// `expr [NOT] IN (e1, e2, ...)`.
    InList {
        expr: Box<Expr>,
        list: Vec<Expr>,
        negated: bool,
    },
    /// `expr IS [NOT] NULL`.
    IsNull {
        expr: Box<Expr>,
        negated: bool,
    },
    /// Aggregate call: `COUNT(*)`, `COUNT(DISTINCT x)`, `SUM(x)`, ...
    Agg {
        func: AggFunc,
        distinct: bool,
        /// `None` encodes `COUNT(*)`.
        arg: Option<Box<Expr>>,
    },
    /// Scalar function (currently only `ABS`).
    Abs(Box<Expr>),
    /// `expr::int` cast (booleans → 0/1, the paper's Listing 3 idiom).
    CastInt(Box<Expr>),
}

impl Expr {
    /// Bare column reference helper.
    pub fn col(name: &str) -> Expr {
        Expr::Column {
            qualifier: None,
            name: name.to_lowercase(),
        }
    }

    /// Qualified column reference helper.
    pub fn qcol(qualifier: &str, name: &str) -> Expr {
        Expr::Column {
            qualifier: Some(qualifier.to_lowercase()),
            name: name.to_lowercase(),
        }
    }

    /// Split a conjunction into its conjuncts (flattening nested ANDs).
    pub fn conjuncts(&self) -> Vec<&Expr> {
        let mut out = Vec::new();
        fn walk<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
            if let Expr::Binary {
                left,
                op: BinOp::And,
                right,
            } = e
            {
                walk(left, out);
                walk(right, out);
            } else {
                out.push(e);
            }
        }
        walk(self, &mut out);
        out
    }

    /// Rebuild a conjunction from conjuncts; `None` if empty.
    pub fn and_all(mut exprs: Vec<Expr>) -> Option<Expr> {
        let first = if exprs.is_empty() {
            return None;
        } else {
            exprs.remove(0)
        };
        Some(exprs.into_iter().fold(first, |acc, e| Expr::Binary {
            left: Box::new(acc),
            op: BinOp::And,
            right: Box::new(e),
        }))
    }

    /// Does this subtree contain an aggregate call?
    pub fn contains_agg(&self) -> bool {
        match self {
            Expr::Agg { .. } => true,
            Expr::Unary { expr, .. } | Expr::Abs(expr) | Expr::CastInt(expr) => expr.contains_agg(),
            Expr::Binary { left, right, .. } => left.contains_agg() || right.contains_agg(),
            Expr::InList { expr, list, .. } => {
                expr.contains_agg() || list.iter().any(Expr::contains_agg)
            }
            Expr::IsNull { expr, .. } => expr.contains_agg(),
            _ => false,
        }
    }

    /// Collect every distinct aggregate call in the subtree, in first-seen
    /// order.
    pub fn collect_aggs<'a>(&'a self, out: &mut Vec<&'a Expr>) {
        match self {
            Expr::Agg { .. } if !out.contains(&self) => {
                out.push(self);
            }
            Expr::Unary { expr, .. } | Expr::Abs(expr) | Expr::CastInt(expr) => {
                expr.collect_aggs(out)
            }
            Expr::Binary { left, right, .. } => {
                left.collect_aggs(out);
                right.collect_aggs(out);
            }
            Expr::InList { expr, list, .. } => {
                expr.collect_aggs(out);
                for e in list {
                    e.collect_aggs(out);
                }
            }
            Expr::IsNull { expr, .. } => expr.collect_aggs(out),
            _ => {}
        }
    }
}

/// One item of a select list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*` — expand to all input columns.
    Wildcard,
    /// `expr [AS alias]`.
    Expr { expr: Expr, alias: Option<String> },
}

/// A table source in `FROM`/`JOIN`.
#[derive(Debug, Clone, PartialEq)]
pub enum TableSource {
    /// Catalog table by (lowercased) name.
    Named(String),
    /// Parenthesized subquery.
    Subquery(Box<Query>),
}

/// `FROM` item with optional alias.
#[derive(Debug, Clone, PartialEq)]
pub struct FromItem {
    pub source: TableSource,
    pub alias: Option<String>,
}

/// `INNER JOIN <item> ON <expr>`.
#[derive(Debug, Clone, PartialEq)]
pub struct Join {
    pub item: FromItem,
    pub on: Expr,
}

/// One `ORDER BY` key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    pub expr: Expr,
    pub desc: bool,
}

/// A full query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    pub select: Vec<SelectItem>,
    pub from: FromItem,
    pub joins: Vec<Join>,
    pub where_clause: Option<Expr>,
    pub group_by: Vec<Expr>,
    pub order_by: Vec<OrderItem>,
    pub limit: Option<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conjuncts_flatten_nested_ands() {
        let e = Expr::and_all(vec![Expr::col("a"), Expr::col("b"), Expr::col("c")]).unwrap();
        let cs = e.conjuncts();
        assert_eq!(cs.len(), 3);
        assert_eq!(cs[0], &Expr::col("a"));
        assert_eq!(cs[2], &Expr::col("c"));
    }

    #[test]
    fn and_all_of_empty_is_none() {
        assert!(Expr::and_all(vec![]).is_none());
        assert_eq!(Expr::and_all(vec![Expr::col("x")]), Some(Expr::col("x")));
    }

    #[test]
    fn contains_and_collect_aggs() {
        let agg = Expr::Agg {
            func: AggFunc::Count,
            distinct: true,
            arg: Some(Box::new(Expr::col("cellvalue"))),
        };
        let wrapped = Expr::Abs(Box::new(Expr::Binary {
            left: Box::new(agg.clone()),
            op: BinOp::Sub,
            right: Box::new(Expr::Int(1)),
        }));
        assert!(wrapped.contains_agg());
        let mut aggs = Vec::new();
        wrapped.collect_aggs(&mut aggs);
        // Also collect the same agg from another expression — deduped.
        agg.collect_aggs(&mut aggs);
        assert_eq!(aggs.len(), 1);
    }

    #[test]
    fn helpers_lowercase() {
        assert_eq!(
            Expr::qcol("Keys", "TableId"),
            Expr::Column {
                qualifier: Some("keys".into()),
                name: "tableid".into()
            }
        );
    }
}

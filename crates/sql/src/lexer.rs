//! SQL tokenizer.

use blend_common::{BlendError, Result};

/// A lexical token. Identifiers and keywords are lexed uniformly (the
/// parser matches keywords case-insensitively); string literals use single
/// quotes with `''` escaping.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword, original case preserved.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (unescaped).
    Str(String),
    LParen,
    RParen,
    Comma,
    Dot,
    Star,
    Plus,
    Minus,
    Slash,
    Percent,
    Eq,
    Neq,
    Lt,
    Le,
    Gt,
    Ge,
    /// `::` cast operator.
    DoubleColon,
}

/// Tokenize SQL text. Comments (`-- ...` and `/* ... */`) are skipped.
pub fn tokenize(sql: &str) -> Result<Vec<Token>> {
    let bytes = sql.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = sql[i..]
            .chars()
            .next()
            .ok_or_else(|| BlendError::SqlParse(format!("bad UTF-8 boundary at byte {i}")))?;
        match c {
            c if c.is_whitespace() => i += c.len_utf8(),
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                let close = sql[i + 2..]
                    .find("*/")
                    .ok_or_else(|| BlendError::SqlParse("unterminated block comment".into()))?;
                i += 2 + close + 2;
            }
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            '.' if !bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit()) => {
                out.push(Token::Dot);
                i += 1;
            }
            '*' => {
                out.push(Token::Star);
                i += 1;
            }
            '+' => {
                out.push(Token::Plus);
                i += 1;
            }
            '-' => {
                out.push(Token::Minus);
                i += 1;
            }
            '/' => {
                out.push(Token::Slash);
                i += 1;
            }
            '%' => {
                out.push(Token::Percent);
                i += 1;
            }
            '=' => {
                out.push(Token::Eq);
                i += 1;
            }
            '!' if bytes.get(i + 1) == Some(&b'=') => {
                out.push(Token::Neq);
                i += 2;
            }
            '<' => match bytes.get(i + 1) {
                Some(b'=') => {
                    out.push(Token::Le);
                    i += 2;
                }
                Some(b'>') => {
                    out.push(Token::Neq);
                    i += 2;
                }
                _ => {
                    out.push(Token::Lt);
                    i += 1;
                }
            },
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Ge);
                    i += 2;
                } else {
                    out.push(Token::Gt);
                    i += 1;
                }
            }
            ':' if bytes.get(i + 1) == Some(&b':') => {
                out.push(Token::DoubleColon);
                i += 2;
            }
            '\'' => {
                let (s, next) = lex_string(sql, i)?;
                out.push(Token::Str(s));
                i = next;
            }
            c if c.is_ascii_digit() || (c == '.' && next_is_digit(bytes, i)) => {
                let (tok, next) = lex_number(sql, i)?;
                out.push(tok);
                i = next;
            }
            c if c.is_ascii_alphabetic() || c == '_' || c == '$' => {
                let start = i;
                while i < bytes.len() {
                    let Some(b) = sql[i..].chars().next() else {
                        break;
                    };
                    // Identifiers are ASCII in our dialect; non-ASCII text
                    // only appears inside string literals.
                    if b.is_ascii_alphanumeric() || b == '_' || b == '$' {
                        i += b.len_utf8();
                    } else {
                        break;
                    }
                }
                out.push(Token::Ident(sql[start..i].to_string()));
            }
            other => {
                return Err(BlendError::SqlParse(format!(
                    "unexpected character `{other}` at byte {i}"
                )))
            }
        }
    }
    Ok(out)
}

fn next_is_digit(bytes: &[u8], i: usize) -> bool {
    bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit())
}

fn lex_string(sql: &str, start: usize) -> Result<(String, usize)> {
    // start points at the opening quote.
    let bytes = sql.as_bytes();
    let mut s = String::new();
    let mut i = start + 1;
    loop {
        if i >= bytes.len() {
            return Err(BlendError::SqlParse("unterminated string literal".into()));
        }
        if bytes[i] == b'\'' {
            if bytes.get(i + 1) == Some(&b'\'') {
                s.push('\'');
                i += 2;
            } else {
                return Ok((s, i + 1));
            }
        } else {
            // Advance over a full UTF-8 scalar.
            let ch_len = utf8_len(bytes[i]);
            s.push_str(&sql[i..i + ch_len]);
            i += ch_len;
        }
    }
}

fn utf8_len(b: u8) -> usize {
    match b {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

fn lex_number(sql: &str, start: usize) -> Result<(Token, usize)> {
    let bytes = sql.as_bytes();
    let mut i = start;
    let mut seen_dot = false;
    let mut seen_exp = false;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_ascii_digit() {
            i += 1;
        } else if c == '.' && !seen_dot && !seen_exp {
            seen_dot = true;
            i += 1;
        } else if (c == 'e' || c == 'E') && !seen_exp && i > start {
            seen_exp = true;
            i += 1;
            if i < bytes.len() && (bytes[i] == b'+' || bytes[i] == b'-') {
                i += 1;
            }
        } else {
            break;
        }
    }
    let text = &sql[start..i];
    if seen_dot || seen_exp {
        let f: f64 = text
            .parse()
            .map_err(|_| BlendError::SqlParse(format!("bad number `{text}`")))?;
        Ok((Token::Float(f), i))
    } else {
        let n: i64 = text
            .parse()
            .map_err(|_| BlendError::SqlParse(format!("bad integer `{text}`")))?;
        Ok((Token::Int(n), i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_listing_one() {
        let toks = tokenize(
            "SELECT TableId FROM AllTables WHERE CellValue IN ('a','b') \
             GROUP BY TableId, ColumnId ORDER BY COUNT(DISTINCT CellValue) DESC LIMIT 10;",
        );
        // Trailing semicolons are not in our grammar; strip before lexing.
        assert!(toks.is_err() || toks.is_ok()); // `;` is rejected
        let toks = tokenize("SELECT TableId FROM AllTables WHERE CellValue IN ('a','b') LIMIT 10")
            .unwrap();
        assert!(matches!(toks[0], Token::Ident(ref s) if s == "SELECT"));
        assert!(toks.contains(&Token::Str("a".into())));
        assert!(toks.contains(&Token::Int(10)));
    }

    #[test]
    fn string_escaping() {
        let toks = tokenize("'it''s'").unwrap();
        assert_eq!(toks, vec![Token::Str("it's".into())]);
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(tokenize("'oops").is_err());
    }

    #[test]
    fn numbers_int_float_exponent() {
        let toks = tokenize("42 4.5 1e3 2.5e-1").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Int(42),
                Token::Float(4.5),
                Token::Float(1000.0),
                Token::Float(0.25)
            ]
        );
    }

    #[test]
    fn operators_and_cast() {
        let toks = tokenize("a <> b <= c >= d != e :: int").unwrap();
        assert!(toks.contains(&Token::Neq));
        assert!(toks.contains(&Token::Le));
        assert!(toks.contains(&Token::Ge));
        assert!(toks.contains(&Token::DoubleColon));
    }

    #[test]
    fn comments_skipped() {
        let toks = tokenize("SELECT -- line comment\n 1 /* block */ + 2").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("SELECT".into()),
                Token::Int(1),
                Token::Plus,
                Token::Int(2)
            ]
        );
    }

    #[test]
    fn unicode_in_strings() {
        let toks = tokenize("'universität'").unwrap();
        assert_eq!(toks, vec![Token::Str("universität".into())]);
    }

    #[test]
    fn rejects_garbage() {
        assert!(tokenize("SELECT ✗").is_err());
        assert!(tokenize("{").is_err());
    }

    #[test]
    fn multibyte_whitespace_is_skipped_not_panicked() {
        // U+00A0 (no-break space, 2 bytes) and U+2003 (em space, 3 bytes)
        // between tokens must advance by the full scalar width.
        let toks = tokenize("SELECT\u{00A0}1\u{2003}+ 2").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("SELECT".into()),
                Token::Int(1),
                Token::Plus,
                Token::Int(2)
            ]
        );
        // Multi-byte junk after whitespace errors cleanly instead of slicing
        // mid-character.
        assert!(tokenize("\u{00A0}✗").is_err());
    }
}

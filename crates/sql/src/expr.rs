//! Compilation of AST expressions against a schema, and evaluation over
//! tuples.
//!
//! Column references are resolved to tuple offsets at plan time so the
//! per-row evaluator never touches names. `IN`-lists of constants are
//! pre-materialized into hash sets once.

use std::sync::Arc;

use blend_common::{BlendError, FxHashSet, Result};

use crate::ast::{BinOp, Expr, UnaryOp};
use crate::value::SqlValue;

/// A named output column of an operator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColInfo {
    /// Table alias the column came from (if any).
    pub qualifier: Option<String>,
    /// Column name (lowercase).
    pub name: String,
}

impl ColInfo {
    /// Unqualified column.
    pub fn bare(name: &str) -> Self {
        ColInfo {
            qualifier: None,
            name: name.to_string(),
        }
    }

    /// Qualified column.
    pub fn qualified(qualifier: &str, name: &str) -> Self {
        ColInfo {
            qualifier: Some(qualifier.to_string()),
            name: name.to_string(),
        }
    }
}

/// Operator output schema.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    pub cols: Vec<ColInfo>,
}

impl Schema {
    /// Build from column infos.
    pub fn new(cols: Vec<ColInfo>) -> Self {
        Schema { cols }
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.cols.len()
    }

    /// True when the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.cols.is_empty()
    }

    /// Resolve a (possibly qualified) name to a tuple offset.
    ///
    /// Bare names must be unambiguous; qualified names must match both the
    /// alias and the column name.
    pub fn resolve(&self, qualifier: Option<&str>, name: &str) -> Result<usize> {
        let mut found: Option<usize> = None;
        for (i, c) in self.cols.iter().enumerate() {
            let name_ok = c.name == name;
            let qual_ok = match qualifier {
                None => true,
                Some(q) => c.qualifier.as_deref() == Some(q),
            };
            if name_ok && qual_ok {
                if found.is_some() {
                    return Err(BlendError::SqlPlan(format!(
                        "ambiguous column reference `{}`",
                        display_name(qualifier, name)
                    )));
                }
                found = Some(i);
            }
        }
        found.ok_or_else(|| {
            BlendError::SqlPlan(format!(
                "unknown column `{}` (schema: {})",
                display_name(qualifier, name),
                self.cols
                    .iter()
                    .map(|c| display_name(c.qualifier.as_deref(), &c.name))
                    .collect::<Vec<_>>()
                    .join(", ")
            ))
        })
    }

    /// Concatenate two schemas (join output).
    pub fn concat(&self, other: &Schema) -> Schema {
        let mut cols = self.cols.clone();
        cols.extend(other.cols.iter().cloned());
        Schema { cols }
    }
}

fn display_name(qualifier: Option<&str>, name: &str) -> String {
    match qualifier {
        Some(q) => format!("{q}.{name}"),
        None => name.to_string(),
    }
}

/// A compiled, schema-resolved expression.
#[derive(Debug, Clone)]
pub enum CExpr {
    Col(usize),
    Const(SqlValue),
    Unary(UnaryOp, Box<CExpr>),
    Binary(Box<CExpr>, BinOp, Box<CExpr>),
    /// Membership in a pre-materialized constant set.
    InSet(Box<CExpr>, Arc<FxHashSet<SqlValue>>, bool),
    IsNull(Box<CExpr>, bool),
    CastInt(Box<CExpr>),
    Abs(Box<CExpr>),
}

/// Compile an AST expression against a schema. Aggregate calls are
/// rejected — the planner substitutes them with column references before
/// calling this.
pub fn compile(expr: &Expr, schema: &Schema) -> Result<CExpr> {
    Ok(match expr {
        Expr::Column { qualifier, name } => CExpr::Col(schema.resolve(qualifier.as_deref(), name)?),
        Expr::Int(i) => CExpr::Const(SqlValue::Int(*i)),
        Expr::Float(f) => CExpr::Const(SqlValue::Float(*f)),
        Expr::Str(s) => CExpr::Const(SqlValue::Text(Arc::from(s.as_str()))),
        Expr::Bool(b) => CExpr::Const(SqlValue::Bool(*b)),
        Expr::Null => CExpr::Const(SqlValue::Null),
        Expr::Star => {
            return Err(BlendError::SqlPlan(
                "`*` is only valid in COUNT(*) or as a select item".into(),
            ))
        }
        Expr::Unary { op, expr } => CExpr::Unary(*op, Box::new(compile(expr, schema)?)),
        Expr::Binary { left, op, right } => CExpr::Binary(
            Box::new(compile(left, schema)?),
            *op,
            Box::new(compile(right, schema)?),
        ),
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            // Constant lists become hash sets; non-constant members are not
            // produced by any BLEND operator and are rejected for clarity.
            let mut set = FxHashSet::default();
            for item in list {
                match compile(item, schema)? {
                    CExpr::Const(v) => {
                        set.insert(v);
                    }
                    _ => {
                        return Err(BlendError::SqlPlan(
                            "IN lists must contain constants".into(),
                        ))
                    }
                }
            }
            CExpr::InSet(Box::new(compile(expr, schema)?), Arc::new(set), *negated)
        }
        Expr::IsNull { expr, negated } => CExpr::IsNull(Box::new(compile(expr, schema)?), *negated),
        Expr::Agg { .. } => {
            return Err(BlendError::SqlPlan(
                "aggregate call outside GROUP BY context".into(),
            ))
        }
        Expr::Abs(e) => CExpr::Abs(Box::new(compile(e, schema)?)),
        Expr::CastInt(e) => CExpr::CastInt(Box::new(compile(e, schema)?)),
    })
}

impl CExpr {
    /// Evaluate over a tuple.
    pub fn eval(&self, tuple: &[SqlValue]) -> SqlValue {
        match self {
            CExpr::Col(i) => tuple[*i].clone(),
            CExpr::Const(v) => v.clone(),
            CExpr::Unary(op, e) => eval_unary_value(*op, e.eval(tuple)),
            CExpr::Binary(l, op, r) => eval_binary(l, *op, r, tuple),
            CExpr::InSet(e, set, negated) => {
                let v = e.eval(tuple);
                if v.is_null() {
                    return SqlValue::Null;
                }
                let contained = set.contains(&v);
                SqlValue::Bool(contained != *negated)
            }
            CExpr::IsNull(e, negated) => {
                let isnull = e.eval(tuple).is_null();
                SqlValue::Bool(isnull != *negated)
            }
            CExpr::CastInt(e) => eval_cast_int_value(e.eval(tuple)),
            CExpr::Abs(e) => eval_abs_value(e.eval(tuple)),
        }
    }

    /// Evaluate as a WHERE predicate (NULL ⇒ false).
    #[inline]
    pub fn eval_predicate(&self, tuple: &[SqlValue]) -> bool {
        self.eval(tuple).truthy()
    }
}

fn eval_binary(l: &CExpr, op: BinOp, r: &CExpr, tuple: &[SqlValue]) -> SqlValue {
    match op {
        BinOp::And => {
            // Three-valued AND with short circuit on FALSE.
            let lv = l.eval(tuple);
            if matches!(lv, SqlValue::Bool(false)) {
                return SqlValue::Bool(false);
            }
            combine_and(lv, r.eval(tuple))
        }
        BinOp::Or => {
            let lv = l.eval(tuple);
            if matches!(lv, SqlValue::Bool(true)) {
                return SqlValue::Bool(true);
            }
            combine_or(lv, r.eval(tuple))
        }
        _ => eval_cmp_arith(op, l.eval(tuple), r.eval(tuple)),
    }
}

// The value-level operator semantics below are shared by the tuple
// evaluator above and the positional evaluator in `exec_positional`, so
// the two executors cannot drift apart.

/// Three-valued AND over both evaluated operands (callers short-circuit on
/// a FALSE left side before evaluating the right).
pub(crate) fn combine_and(lv: SqlValue, rv: SqlValue) -> SqlValue {
    match (lv, rv) {
        (_, SqlValue::Bool(false)) => SqlValue::Bool(false),
        (SqlValue::Bool(true), SqlValue::Bool(true)) => SqlValue::Bool(true),
        _ => SqlValue::Null,
    }
}

/// Three-valued OR over both evaluated operands (callers short-circuit on
/// a TRUE left side before evaluating the right).
pub(crate) fn combine_or(lv: SqlValue, rv: SqlValue) -> SqlValue {
    match (lv, rv) {
        (_, SqlValue::Bool(true)) => SqlValue::Bool(true),
        (SqlValue::Bool(false), SqlValue::Bool(false)) => SqlValue::Bool(false),
        _ => SqlValue::Null,
    }
}

/// Unary operator on an evaluated operand.
pub(crate) fn eval_unary_value(op: UnaryOp, v: SqlValue) -> SqlValue {
    match op {
        UnaryOp::Neg => match v {
            SqlValue::Int(i) => SqlValue::Int(-i),
            SqlValue::Float(f) => SqlValue::Float(-f),
            _ => SqlValue::Null,
        },
        UnaryOp::Not => match v {
            SqlValue::Bool(b) => SqlValue::Bool(!b),
            _ => SqlValue::Null,
        },
    }
}

/// `::int` cast on an evaluated operand.
pub(crate) fn eval_cast_int_value(v: SqlValue) -> SqlValue {
    match v {
        SqlValue::Null => SqlValue::Null,
        SqlValue::Bool(b) => SqlValue::Int(b as i64),
        SqlValue::Int(i) => SqlValue::Int(i),
        SqlValue::Float(f) => SqlValue::Int(f as i64),
        SqlValue::Text(s) => s
            .trim()
            .parse::<i64>()
            .map(SqlValue::Int)
            .unwrap_or(SqlValue::Null),
        SqlValue::U128(_) => SqlValue::Null,
    }
}

/// `ABS` on an evaluated operand.
pub(crate) fn eval_abs_value(v: SqlValue) -> SqlValue {
    match v {
        SqlValue::Int(i) => SqlValue::Int(i.abs()),
        SqlValue::Float(f) => SqlValue::Float(f.abs()),
        _ => SqlValue::Null,
    }
}

/// Apply a non-logical binary operator to already-evaluated operands.
/// Shared by the tuple evaluator above and the positional evaluator in
/// `exec_positional` (which computes operands from storage positions).
pub(crate) fn eval_cmp_arith(op: BinOp, lv: SqlValue, rv: SqlValue) -> SqlValue {
    match op {
        BinOp::And | BinOp::Or => {
            unreachable!("logical ops are short-circuited by the caller")
        }
        BinOp::Eq | BinOp::Neq => match lv.sql_eq(&rv) {
            SqlValue::Bool(b) => SqlValue::Bool(if op == BinOp::Eq { b } else { !b }),
            _ => SqlValue::Null,
        },
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => match lv.sql_cmp(&rv) {
            None => SqlValue::Null,
            Some(ord) => SqlValue::Bool(match op {
                BinOp::Lt => ord.is_lt(),
                BinOp::Le => ord.is_le(),
                BinOp::Gt => ord.is_gt(),
                BinOp::Ge => ord.is_ge(),
                _ => unreachable!(),
            }),
        },
        BinOp::Add | BinOp::Sub | BinOp::Mul => {
            if lv.is_null() || rv.is_null() {
                return SqlValue::Null;
            }
            match (&lv, &rv) {
                (SqlValue::Int(a), SqlValue::Int(b)) => SqlValue::Int(match op {
                    BinOp::Add => a.wrapping_add(*b),
                    BinOp::Sub => a.wrapping_sub(*b),
                    _ => a.wrapping_mul(*b),
                }),
                _ => match (lv.as_f64(), rv.as_f64()) {
                    (Some(a), Some(b)) => SqlValue::Float(match op {
                        BinOp::Add => a + b,
                        BinOp::Sub => a - b,
                        _ => a * b,
                    }),
                    _ => SqlValue::Null,
                },
            }
        }
        BinOp::Div => {
            // Division always yields a float: Listing 3 relies on
            // `(2*SUM(..)-COUNT(*))/COUNT(*)` being fractional.
            match (lv.as_f64(), rv.as_f64()) {
                (Some(a), Some(b)) if b != 0.0 => SqlValue::Float(a / b),
                _ => SqlValue::Null,
            }
        }
        BinOp::Mod => match (lv.as_i64(), rv.as_i64()) {
            (Some(a), Some(b)) if b != 0 => SqlValue::Int(a.rem_euclid(b)),
            _ => SqlValue::Null,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn schema() -> Schema {
        Schema::new(vec![
            ColInfo::bare("a"),
            ColInfo::bare("b"),
            ColInfo::qualified("t", "c"),
        ])
    }

    fn compile_where(sql_where: &str, schema: &Schema) -> CExpr {
        let q = parse(&format!("SELECT * FROM x WHERE {sql_where}")).unwrap();
        compile(&q.where_clause.unwrap(), schema).unwrap()
    }

    #[test]
    fn resolve_qualified_and_bare() {
        let s = schema();
        assert_eq!(s.resolve(None, "a").unwrap(), 0);
        assert_eq!(s.resolve(Some("t"), "c").unwrap(), 2);
        assert!(s.resolve(None, "zzz").is_err());
        assert!(s.resolve(Some("x"), "a").is_err());
    }

    #[test]
    fn ambiguity_detected() {
        let s = Schema::new(vec![
            ColInfo::qualified("l", "tableid"),
            ColInfo::qualified("r", "tableid"),
        ]);
        assert!(s.resolve(None, "tableid").is_err());
        assert_eq!(s.resolve(Some("r"), "tableid").unwrap(), 1);
    }

    #[test]
    fn arithmetic_and_comparison() {
        let s = schema();
        let e = compile_where("a + 2 * b >= 7", &s);
        let t = vec![SqlValue::Int(1), SqlValue::Int(3), SqlValue::Null];
        assert!(e.eval_predicate(&t));
        let t = vec![SqlValue::Int(0), SqlValue::Int(3), SqlValue::Null];
        assert!(!e.eval_predicate(&t));
    }

    #[test]
    fn division_is_float() {
        let s = schema();
        let e = compile_where("a / b = 2.5", &s);
        let t = vec![SqlValue::Int(5), SqlValue::Int(2), SqlValue::Null];
        assert!(e.eval_predicate(&t));
    }

    #[test]
    fn div_and_mod_by_zero_is_null() {
        let s = schema();
        let e = compile_where("a / b IS NULL AND a % b IS NULL", &s);
        let t = vec![SqlValue::Int(5), SqlValue::Int(0), SqlValue::Null];
        assert!(e.eval_predicate(&t));
    }

    #[test]
    fn three_valued_logic() {
        let s = schema();
        // NULL AND FALSE = FALSE, NULL AND TRUE = NULL (falsy), NULL OR TRUE = TRUE.
        let t = vec![SqlValue::Null, SqlValue::Int(1), SqlValue::Null];
        assert!(!compile_where("a = 1 AND b = 2", &s).eval_predicate(&t));
        assert!(compile_where("a = 1 OR b = 1", &s).eval_predicate(&t));
        assert!(!compile_where("a = 1", &s).eval_predicate(&t));
        assert!(!compile_where("NOT (a = 1)", &s).eval_predicate(&t));
    }

    #[test]
    fn in_set_semantics() {
        let s = schema();
        let e = compile_where("a IN (1, 2, 3)", &s);
        assert!(e.eval_predicate(&[SqlValue::Int(2), SqlValue::Null, SqlValue::Null]));
        assert!(!e.eval_predicate(&[SqlValue::Int(9), SqlValue::Null, SqlValue::Null]));
        // NULL IN (...) is NULL -> falsy.
        assert!(!e.eval_predicate(&[SqlValue::Null, SqlValue::Null, SqlValue::Null]));
        let ne = compile_where("a NOT IN (1, 2)", &s);
        assert!(ne.eval_predicate(&[SqlValue::Int(9), SqlValue::Null, SqlValue::Null]));
        assert!(!ne.eval_predicate(&[SqlValue::Int(1), SqlValue::Null, SqlValue::Null]));
    }

    #[test]
    fn empty_in_list_matches_nothing() {
        let s = schema();
        let e = compile_where("a IN ()", &s);
        assert!(!e.eval_predicate(&[SqlValue::Int(1), SqlValue::Null, SqlValue::Null]));
        let ne = compile_where("a NOT IN ()", &s);
        assert!(ne.eval_predicate(&[SqlValue::Int(1), SqlValue::Null, SqlValue::Null]));
    }

    #[test]
    fn cast_int_of_bool_expr() {
        let s = schema();
        let q = parse("SELECT (a = 1)::int FROM x").unwrap();
        let item = match &q.select[0] {
            crate::ast::SelectItem::Expr { expr, .. } => expr.clone(),
            _ => panic!(),
        };
        let e = compile(&item, &s).unwrap();
        assert_eq!(
            e.eval(&[SqlValue::Int(1), SqlValue::Null, SqlValue::Null]),
            SqlValue::Int(1)
        );
        assert_eq!(
            e.eval(&[SqlValue::Int(2), SqlValue::Null, SqlValue::Null]),
            SqlValue::Int(0)
        );
    }

    #[test]
    fn abs_and_neg() {
        let s = schema();
        let q = parse("SELECT ABS(-a) FROM x").unwrap();
        let item = match &q.select[0] {
            crate::ast::SelectItem::Expr { expr, .. } => expr.clone(),
            _ => panic!(),
        };
        let e = compile(&item, &s).unwrap();
        assert_eq!(
            e.eval(&[SqlValue::Int(-5), SqlValue::Null, SqlValue::Null]),
            SqlValue::Int(5)
        );
    }

    #[test]
    fn aggregates_rejected_outside_group_context() {
        let s = schema();
        let q = parse("SELECT COUNT(*) FROM x").unwrap();
        let item = match &q.select[0] {
            crate::ast::SelectItem::Expr { expr, .. } => expr.clone(),
            _ => panic!(),
        };
        assert!(compile(&item, &s).is_err());
    }

    #[test]
    fn is_null_on_quadrant_style_column() {
        let s = schema();
        let e = compile_where("t.c IS NOT NULL", &s);
        assert!(e.eval_predicate(&[SqlValue::Null, SqlValue::Null, SqlValue::Int(1)]));
        assert!(!e.eval_predicate(&[SqlValue::Null, SqlValue::Null, SqlValue::Null]));
    }
}

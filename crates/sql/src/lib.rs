//! A SQL subset engine over BLEND's `AllTables` fact table.
//!
//! The paper's central engineering claim is that every discovery operator
//! reduces to SQL over one fact table (Listings 1–3), letting a DBMS
//! optimize and execute the whole pipeline in-database. This crate plays the
//! DBMS role: it parses the exact SQL dialect those listings (and BLEND's
//! rewriter) emit and executes it against either storage engine.
//!
//! Supported surface:
//!
//! * `SELECT` lists with expressions and aliases, `*`
//! * `FROM` a catalog table or a parenthesized subquery, with alias
//! * `INNER JOIN ... ON` conjunctions of equalities (+ residual predicates)
//! * `WHERE` with `AND`/`OR`/`NOT`, comparisons, `IN (list)`,
//!   `IS [NOT] NULL`, arithmetic, `::int` casts
//! * `GROUP BY` expression lists with `COUNT(*)`, `COUNT(DISTINCT x)`,
//!   `SUM`, `MIN`, `MAX`, `AVG`
//! * `ORDER BY ... [ASC|DESC]` over select aliases or expressions
//!   (including aggregates), `LIMIT`
//! * scalar `ABS`
//!
//! The planner performs the in-DB optimization the paper leans on: it
//! inspects scan predicates, asks the storage engine's catalog for exact
//! cardinalities (postings lengths, table ranges), and picks the cheapest
//! access path — inverted-index scan, table-range scan, or sequential scan.
//! This is why BLEND's rewrites (`TableId IN (...)` injections) actually
//! speed queries up rather than just shrinking result sets.

pub mod ast;
pub mod engine;
pub mod exec;
pub mod exec_positional;
pub mod expr;
pub mod fingerprint;
pub mod hashtable;
pub mod lexer;
pub mod parser;
pub mod plan;
pub mod value;

pub use blend_obs::Profile as QueryProfile;
pub use engine::{Database, ExecPath, SqlEngine};
pub use exec::{HashTableStats, ParallelPhase, QueryReport, ResultSet, ScanReport, ServingStats};
pub use fingerprint::{fingerprint_query, fingerprint_sql, QueryFingerprint};
pub use hashtable::{GroupIndex, JoinKey, JoinTable};
pub use value::SqlValue;

pub use blend_parallel::ParallelCtx;

pub use blend_common::{BlendError, Result};

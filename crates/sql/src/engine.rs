//! The database facade: catalog + parse/plan/execute entry points.

use std::sync::{Arc, OnceLock, RwLock};

use blend_common::{FxHashMap, Result};
use blend_parallel::{Interrupt, ParallelCtx, QueryMemory};
use blend_storage::FactTable;

use crate::exec::{execute_plan_path, QueryReport, ResultSet, ServingStats};
use crate::parser::parse;
use crate::plan::{plan_query, Catalog};

/// Engine-level metric cells (`blend_sql_*`), labeled by the executor
/// path that actually ran — a two-value closed set.
struct SqlMetrics {
    queries_positional: Arc<blend_obs::Counter>,
    queries_tuple: Arc<blend_obs::Counter>,
    errors: Arc<blend_obs::Counter>,
    exec_time: Arc<blend_obs::Histogram>,
}

fn sql_metrics() -> &'static SqlMetrics {
    static METRICS: OnceLock<SqlMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = blend_obs::registry();
        SqlMetrics {
            queries_positional: r.counter("blend_sql_queries_total{path=\"positional\"}"),
            queries_tuple: r.counter("blend_sql_queries_total{path=\"tuple\"}"),
            errors: r.counter("blend_sql_query_errors_total"),
            exec_time: r.histogram("blend_sql_exec_nanos"),
        }
    })
}

/// Executor selection for [`SqlEngine::execute_with_report_path`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ExecPath {
    /// Route recognized BLEND shapes to the positional executor, fall back
    /// to the tuple executor otherwise (the production default).
    #[default]
    Auto,
    /// Force the tuple executor everywhere (benchmark baseline / parity
    /// testing).
    TupleOnly,
}

/// A named collection of fact tables (the catalog). BLEND registers a
/// single table, `AllTables`, but tests register small auxiliary tables.
///
/// The catalog is interiorly mutable: a running deployment swaps in a
/// rebuilt `AllTables` via [`SqlEngine::replace_table`] while queries are
/// in flight. A query planned against the old table keeps its `Arc` and
/// finishes against the snapshot it started with.
#[derive(Default)]
pub struct Database {
    tables: RwLock<FxHashMap<String, Arc<dyn FactTable>>>,
}

impl Database {
    /// Empty catalog.
    pub fn new() -> Self {
        Database::default()
    }

    /// Catalog with `AllTables` registered — the standard BLEND deployment.
    pub fn with_alltables(table: Arc<dyn FactTable>) -> Self {
        let db = Database::new();
        db.register("alltables", table);
        db
    }

    /// Register a table under a (case-insensitive) name, replacing any
    /// previous table of that name.
    pub fn register(&self, name: &str, table: Arc<dyn FactTable>) {
        self.tables
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .insert(name.to_lowercase(), table);
    }

    /// Fetch a registered table.
    pub fn get(&self, name: &str) -> Option<Arc<dyn FactTable>> {
        self.tables
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(&name.to_lowercase())
            .cloned()
    }

    /// The `AllTables` handle, if registered.
    pub fn alltables(&self) -> Option<Arc<dyn FactTable>> {
        self.get("alltables")
    }
}

impl Catalog for Database {
    fn table(&self, name: &str) -> Option<Arc<dyn FactTable>> {
        self.get(name)
    }
}

/// Parse → plan → execute pipeline over a [`Database`].
pub struct SqlEngine {
    db: Database,
    /// This engine's catalog generation. Seeded from the process-wide
    /// store generation at construction and advanced by
    /// [`replace_table`](Self::replace_table); engine-local so one
    /// deployment's rebuilds don't invalidate another engine's memoized
    /// results (and so tests sharing a process stay independent).
    generation: std::sync::atomic::AtomicU64,
    /// Shared worker-pool context the positional executor rides. Defaults
    /// to [`ParallelCtx::shared_from_env`] (`BLEND_THREADS` /
    /// `BLEND_MAX_CONCURRENT_GRANTS` overrides): every engine in the
    /// process shares **one** persistent pool and admission budget, so
    /// concurrent queries — across engines and, through
    /// [`Blend`](https://docs.rs/blend), across every seeker of a plan —
    /// draw from a single machine-wide thread allotment.
    parallel: Arc<ParallelCtx>,
}

impl SqlEngine {
    /// Engine over a catalog.
    pub fn new(db: Database) -> Self {
        SqlEngine {
            db,
            generation: std::sync::atomic::AtomicU64::new(blend_storage::store_generation()),
            parallel: ParallelCtx::shared_from_env(),
        }
    }

    /// Engine over a catalog holding only `AllTables`.
    pub fn with_alltables(table: Arc<dyn FactTable>) -> Self {
        SqlEngine::new(Database::with_alltables(table))
    }

    /// Replace the parallel-execution context (builder style).
    pub fn with_parallel(mut self, ctx: Arc<ParallelCtx>) -> Self {
        self.parallel = ctx;
        self
    }

    /// Replace the parallel-execution context.
    pub fn set_parallel(&mut self, ctx: Arc<ParallelCtx>) {
        self.parallel = ctx;
    }

    /// The parallel-execution context queries run with.
    pub fn parallel_ctx(&self) -> &Arc<ParallelCtx> {
        &self.parallel
    }

    /// Access the catalog.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The generation of this engine's catalog. Result caches key entries
    /// on the generation observed when the result was produced;
    /// [`replace_table`](Self::replace_table) advances it, so stale
    /// entries can never match a post-rebuild lookup.
    pub fn generation(&self) -> u64 {
        self.generation.load(std::sync::atomic::Ordering::Acquire)
    }

    /// Swap a catalog table for a rebuilt one and advance this engine's
    /// generation (and the process-wide store generation, for observers of
    /// [`blend_storage::store_generation`]). In-flight queries finish
    /// against the snapshot they planned with; queries planned after this
    /// call see the new table, and memoized results from before it stop
    /// matching — the generation bump is ordered *after* the catalog swap,
    /// so a reader observing the new generation always resolves the new
    /// table.
    pub fn replace_table(&self, name: &str, table: Arc<dyn FactTable>) {
        self.db.register(name, table);
        blend_storage::bump_store_generation();
        self.generation
            .fetch_add(1, std::sync::atomic::Ordering::AcqRel);
    }

    /// Execute a SQL string.
    pub fn execute(&self, sql: &str) -> Result<ResultSet> {
        self.execute_with_report(sql).map(|(rs, _)| rs)
    }

    /// Execute a SQL string and return execution telemetry alongside the
    /// result (used by the optimizer experiments and tests).
    pub fn execute_with_report(&self, sql: &str) -> Result<(ResultSet, QueryReport)> {
        self.execute_with_report_path(sql, ExecPath::Auto)
    }

    /// Execute with explicit executor selection. `QueryReport::path` records
    /// which executor actually ran the top-level query.
    pub fn execute_with_report_path(
        &self,
        sql: &str,
        path: ExecPath,
    ) -> Result<(ResultSet, QueryReport)> {
        self.execute_interruptible(sql, path, Interrupt::never())
    }

    /// Execute under a cancellation/deadline [`Interrupt`]. The serving tier
    /// builds one `Interrupt` per request and scopes it onto the shared
    /// [`ParallelCtx`] here; an interrupted query returns a typed
    /// `BlendError::{Cancelled, Timeout}` with no partial results.
    pub fn execute_interruptible(
        &self,
        sql: &str,
        path: ExecPath,
        interrupt: Interrupt,
    ) -> Result<(ResultSet, QueryReport)> {
        let ast = match parse(sql) {
            Ok(ast) => ast,
            Err(e) => {
                sql_metrics().errors.inc();
                return Err(e);
            }
        };
        self.execute_parsed_interruptible(&ast, path, interrupt)
    }

    /// Execute an already-parsed query. The serving tier parses once at
    /// submission (it needs the AST for fingerprinting anyway) and reuses
    /// it here, so the cached/coalesced path never parses twice.
    pub fn execute_parsed_interruptible(
        &self,
        ast: &crate::ast::Query,
        path: ExecPath,
        interrupt: Interrupt,
    ) -> Result<(ResultSet, QueryReport)> {
        interrupt.check()?;
        // The root span of this query's profile tree: every phase span the
        // executors record below nests under it.
        let trace = blend_obs::trace_begin("query");
        // Fresh per-query memory scope on the shared governor: operator
        // reservations charge through it, and its high-water mark lands on
        // the profile root below. Dropping the scope (with every
        // reservation) on any exit path returns the bytes.
        let memory = Arc::new(QueryMemory::new(self.parallel.governor().clone()));
        let outcome = (|| {
            let plan = plan_query(ast, &self.db)?;
            let par = self
                .parallel
                .with_interrupt(interrupt)
                .with_query_memory(memory.clone());
            let mut report = QueryReport::default();
            let rs = execute_plan_path(&plan, &mut report, path == ExecPath::Auto, &par)?;
            // Charge the materialized result rows; a result too large for
            // the remaining budget resolves typed like any other site, and
            // the rows are discarded with the reservation.
            let result_mem = memory.try_reserve("result_rows", rs.approx_bytes())?;
            Ok((rs, report, result_mem))
        })();
        let m = sql_metrics();
        match outcome {
            Ok((rs, mut report, _result_mem)) => {
                trace.attr_str("path", report.path.clone());
                trace.attr_u64("mem_peak_bytes", memory.peak_bytes() as u64);
                report.profile = trace.finish();
                if report.path == "positional" {
                    m.queries_positional.inc();
                } else {
                    m.queries_tuple.inc();
                }
                let exec_nanos = report.profile.as_ref().map_or(0, |p| p.root.nanos);
                m.exec_time.record(exec_nanos);
                // End-to-end timing for *direct* calls too, sourced from
                // the root span; the serving tier overwrites this with the
                // queue-side view (which adds the real queue wait) when
                // the query arrived through `blend_serve`.
                if report.serving.is_none() && exec_nanos > 0 {
                    report.serving = Some(ServingStats {
                        queue_wait_nanos: 0,
                        exec_nanos,
                        outcome: "ok".into(),
                    });
                }
                Ok((rs, report))
            }
            Err(e) => {
                drop(trace);
                m.errors.inc();
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blend_storage::{build_engine, EngineKind, FactRow};

    /// Build a lake of three mini tables mirroring the paper's Fig. 1:
    /// T1 (2022 staff), T2 (outdated staff incl. "tom riddle"), T3 (2024
    /// staff), each with (lead, year, team) columns, plus numeric sizes.
    fn fig1_rows() -> Vec<FactRow> {
        let mut rows = Vec::new();
        let mut push_table = |tid: u32, leads: &[&str], year: &str, teams: &[&str]| {
            for (r, (lead, team)) in leads.iter().zip(teams).enumerate() {
                let sk: u128 = (1u128 << (tid * 7 + r as u32 % 7)) | 0x8000;
                rows.push(FactRow::new(lead, tid, 0, r as u32, sk, None));
                rows.push(FactRow::new(year, tid, 1, r as u32, sk, Some(r % 2 == 0)));
                rows.push(FactRow::new(team, tid, 2, r as u32, sk, None));
            }
        };
        // T1 = table 0 (sizes table in the paper, simplified to same shape)
        push_table(
            0,
            &["finance", "marketing", "hr", "it", "sales"],
            "31",
            &["finance", "marketing", "hr", "it", "sales"],
        );
        // T2 = table 1: 2022 listing with tom riddle
        push_table(
            1,
            &[
                "tom riddle",
                "draco malfoy",
                "harry potter",
                "cho chang",
                "firenze",
            ],
            "2022",
            &["it", "marketing", "finance", "r&d", "hr"],
        );
        // T3 = table 2: 2024 listing, riddle replaced
        push_table(
            2,
            &[
                "ronald weasley",
                "draco malfoy",
                "harry potter",
                "cho chang",
                "firenze",
            ],
            "2024",
            &["it", "marketing", "finance", "r&d", "hr"],
        );
        rows
    }

    fn engines() -> Vec<SqlEngine> {
        vec![
            SqlEngine::with_alltables(build_engine(EngineKind::Row, fig1_rows())),
            SqlEngine::with_alltables(build_engine(EngineKind::Column, fig1_rows())),
        ]
    }

    #[test]
    fn listing_1_sc_seeker_shape() {
        for eng in engines() {
            let rs = eng
                .execute(
                    "SELECT TableId, COUNT(DISTINCT CellValue) AS score FROM AllTables \
                     WHERE CellValue IN ('hr','marketing','finance','it','r&d','sales') \
                     GROUP BY TableId, ColumnId \
                     ORDER BY COUNT(DISTINCT CellValue) DESC LIMIT 10",
                )
                .unwrap();
            assert!(!rs.is_empty());
            // Best single column must be one of the team columns with 5
            // overlapping values.
            assert_eq!(rs.i64(0, "score"), Some(5));
            // Scores never increase down the list.
            let scores: Vec<i64> = (0..rs.len()).map(|r| rs.i64(r, "score").unwrap()).collect();
            assert!(scores.windows(2).all(|w| w[0] >= w[1]));
        }
    }

    #[test]
    fn listing_2_mc_join_alignment() {
        for eng in engines() {
            // Find tables containing ("hr" and "firenze") in the same row —
            // paper Example 1's positive examples. Expect T2 (=1) and T3 (=2).
            let rs = eng
                .execute(
                    "SELECT * FROM \
                     (SELECT * FROM AllTables WHERE CellValue IN ('firenze')) AS q1 \
                     INNER JOIN \
                     (SELECT * FROM AllTables WHERE CellValue IN ('hr')) AS q2 \
                     ON q1.TableId = q2.TableId AND q1.RowId = q2.RowId",
                )
                .unwrap();
            let mut tables: Vec<u32> = rs.column_u32("q1.tableid");
            tables.sort_unstable();
            tables.dedup();
            assert_eq!(tables, vec![1, 2]);
        }
    }

    #[test]
    fn reports_expose_access_paths() {
        for eng in engines() {
            let (_, report) = eng
                .execute_with_report(
                    "SELECT TableId FROM AllTables WHERE CellValue IN ('firenze') \
                     GROUP BY TableId",
                )
                .unwrap();
            assert_eq!(report.scans.len(), 1);
            assert_eq!(report.scans[0].access, "value-index");
            // firenze appears twice (T2, T3); the index visits exactly those.
            assert_eq!(report.scans[0].scanned, 2);
        }
    }

    #[test]
    fn rewrite_predicate_switches_to_table_index() {
        for eng in engines() {
            // A rewritten query with a very selective TableId IN list should
            // drive by the table index when the value list is broader.
            let (rs, report) = eng
                .execute_with_report(
                    "SELECT TableId FROM AllTables \
                     WHERE CellValue IN ('hr','marketing','finance','it','r&d','sales','2022','2024') \
                     AND TableId IN (2) GROUP BY TableId",
                )
                .unwrap();
            assert_eq!(rs.column_u32("tableid"), vec![2]);
            assert_eq!(report.scans[0].access, "table-index");
        }
    }

    #[test]
    fn not_in_filters_tables() {
        for eng in engines() {
            let rs = eng
                .execute(
                    "SELECT TableId FROM AllTables WHERE CellValue IN ('firenze') \
                     AND TableId NOT IN (1) GROUP BY TableId",
                )
                .unwrap();
            assert_eq!(rs.column_u32("tableid"), vec![2]);
        }
    }

    #[test]
    fn quadrant_is_not_null_seq_scan() {
        for eng in engines() {
            let (rs, report) = eng
                .execute_with_report(
                    "SELECT TableId, COUNT(*) AS n FROM AllTables \
                     WHERE Quadrant IS NOT NULL GROUP BY TableId ORDER BY TableId",
                )
                .unwrap();
            assert_eq!(report.scans[0].access, "seq");
            assert_eq!(rs.len(), 3);
            for r in 0..3 {
                assert_eq!(rs.i64(r, "n"), Some(5)); // 5 numeric year/size cells each
            }
        }
    }

    #[test]
    fn rowid_bound_limits_sampling() {
        for eng in engines() {
            let rs = eng
                .execute("SELECT COUNT(*) AS n FROM AllTables WHERE RowId < 2 AND TableId = 0")
                .unwrap();
            // 3 columns x 2 rows.
            assert_eq!(rs.i64(0, "n"), Some(6));
        }
    }

    #[test]
    fn order_by_alias_and_limit() {
        for eng in engines() {
            let rs = eng
                .execute(
                    "SELECT TableId AS t, COUNT(*) AS n FROM AllTables \
                     GROUP BY TableId ORDER BY t DESC LIMIT 2",
                )
                .unwrap();
            assert_eq!(rs.column_u32("t"), vec![2, 1]);
        }
    }

    #[test]
    fn unknown_table_is_planning_error() {
        let eng = SqlEngine::new(Database::new());
        let err = eng.execute("SELECT * FROM AllTables").unwrap_err();
        assert!(err.to_string().contains("unknown table"));
    }

    #[test]
    fn engines_produce_identical_results() {
        let queries = [
            "SELECT TableId, ColumnId, COUNT(DISTINCT CellValue) AS s FROM AllTables \
             WHERE CellValue IN ('hr','it','2022','draco malfoy') \
             GROUP BY TableId, ColumnId ORDER BY s DESC, TableId, ColumnId",
            "SELECT * FROM AllTables WHERE RowId < 1 AND Quadrant IS NOT NULL",
            "SELECT TableId FROM AllTables GROUP BY TableId ORDER BY COUNT(*) DESC, TableId",
        ];
        let row = SqlEngine::with_alltables(build_engine(EngineKind::Row, fig1_rows()));
        let col = SqlEngine::with_alltables(build_engine(EngineKind::Column, fig1_rows()));
        for q in queries {
            let a = row.execute(q).unwrap();
            let b = col.execute(q).unwrap();
            assert_eq!(a, b, "query {q}");
        }
    }

    #[test]
    fn correlation_style_query_runs() {
        // Structural smoke test of the Listing-3 shape (semantics are
        // validated end-to-end in the core crate where quadrants are real).
        for eng in engines() {
            let rs = eng
                .execute(
                    "SELECT keys.TableId AS t, keys.ColumnId AS kc, nums.ColumnId AS nc, \
                     ABS((2 * SUM(((keys.CellValue IN ('it','hr') AND nums.Quadrant = 0) OR \
                     (keys.CellValue IN ('finance','marketing','r&d','sales') AND nums.Quadrant = 1))::int) \
                     - COUNT(*)) / COUNT(*)) AS score \
                     FROM (SELECT * FROM AllTables WHERE RowId < 256 AND CellValue IN \
                     ('it','hr','finance','marketing','r&d','sales')) keys \
                     INNER JOIN (SELECT * FROM AllTables WHERE RowId < 256 AND Quadrant IS NOT NULL) nums \
                     ON keys.TableId = nums.TableId AND keys.RowId = nums.RowId \
                     GROUP BY keys.TableId, nums.ColumnId, keys.ColumnId \
                     ORDER BY score DESC LIMIT 5",
                )
                .unwrap();
            assert!(!rs.is_empty());
            let s0 = rs.f64(0, "score").unwrap();
            assert!((0.0..=1.0).contains(&s0), "QCR must be in [0,1], got {s0}");
        }
    }
}

//! Flat, allocation-free hash operators for the positional executor.
//!
//! The positional executor's join and GROUP BY phases used to run one
//! `FxHashMap` operation per row: joins built an `FxHashMap<u64, Vec<u32>>`
//! (one heap `Vec` per distinct key, `entry().or_default().push()` per
//! build row), grouping built an `FxHashMap<u64/u128, u32>` index plus one
//! `FxHashSet` per group for `COUNT(DISTINCT ...)`. This module replaces
//! both with flat structures that allocate a constant number of arrays per
//! phase, regardless of key cardinality:
//!
//! * [`JoinTable`] — a CSR bucket table over a power-of-two bucket array,
//!   built with two counting passes (count bucket occupancy, prefix-sum,
//!   scatter). Per-key match lists are contiguous *filtered runs* of a
//!   bucket; ascending build-row order falls out of the in-order scatter.
//! * [`GroupIndex`] — an open-addressing table mapping packed keys to
//!   **dense group ids** (assigned in first-seen order), so aggregate
//!   state lives in plain struct-of-arrays vectors indexed by group id —
//!   counts in `Vec<i64>`, min/max in `Vec<u32>`, distinct counts via
//!   per-group sort-unique — instead of one boxed state per map entry.
//!
//! Keys are 1–2 u32 columns packed into a `u64` or 3–4 columns packed into
//! a `u128`; the [`JoinKey`] trait abstracts the per-width hash
//! ([`mix64`]/[`mix128`]). Hash bits are split by convention: the **low**
//! bits select a radix partition (see `blend_parallel::radix`), bits 32 and
//! up select the bucket/slot, so partitioning and bucketing stay
//! independent for tables up to 2³² buckets.
//!
//! The [`oracle`] submodule retains the map-based implementations as the
//! reference semantics: `tests/join_group_parity.rs` pins the flat
//! operators to them byte-for-byte. The `join_group` bench measures the
//! speedup against map-based baselines of the same shape (reimplemented
//! there with the pre-flat executor's exact per-row entry/insert pattern,
//! since the timed baselines also track counts/first-rows the oracle
//! functions don't return).

use blend_common::{mix128, mix128x8, mix64, mix64x8, MIX_LANES};

/// A packed join/group key: `Copy`, comparable, and hashable to 64 bits
/// without `Hasher` state. Implemented for `u64` (1–2 packed u32 columns)
/// and `u128` (3–4 columns).
pub trait JoinKey: Copy + Eq + std::hash::Hash + Send + Sync {
    /// Mix the key to 64 well-distributed bits. Low bits select the radix
    /// partition, bits 32.. select the bucket — both sides of that split
    /// must be uniform.
    fn hash64(self) -> u64;

    /// Hash a block of keys into `out` (`out.len() == keys.len()`). The
    /// per-width impls run [`MIX_LANES`] keys per call through the batched
    /// mixers on the vector path; the default (and the scalar path) is the
    /// per-key loop. Values are identical either way — the batched mixers
    /// are exact stage-by-stage restatements of `hash64`.
    fn hash_block(keys: &[Self], out: &mut [u64]) {
        debug_assert_eq!(keys.len(), out.len());
        for (o, &k) in out.iter_mut().zip(keys) {
            *o = k.hash64();
        }
    }

    /// [`hash_block`](JoinKey::hash_block) into a fresh `Vec` — the
    /// executor's drop-in for `keys.iter().map(hash64).collect()`, with a
    /// typed allocation failure.
    fn hash_all(keys: &[Self], label: &'static str) -> blend_common::Result<Vec<u64>> {
        let mut out = blend_common::try_vec_with_capacity::<u64>(keys.len(), label)?;
        out.resize(keys.len(), 0);
        Self::hash_block(keys, &mut out);
        Ok(out)
    }
}

impl JoinKey for u64 {
    #[inline]
    fn hash64(self) -> u64 {
        mix64(self)
    }

    fn hash_block(keys: &[u64], out: &mut [u64]) {
        debug_assert_eq!(keys.len(), out.len());
        if blend_simd::enabled() {
            let mut kc = keys.chunks_exact(MIX_LANES);
            let mut oc = out.chunks_exact_mut(MIX_LANES);
            for (k, o) in (&mut kc).zip(&mut oc) {
                o.copy_from_slice(&mix64x8(k.try_into().expect("exact chunk")));
            }
            for (o, &k) in oc.into_remainder().iter_mut().zip(kc.remainder()) {
                *o = mix64(k);
            }
        } else {
            for (o, &k) in out.iter_mut().zip(keys) {
                *o = mix64(k);
            }
        }
    }
}

impl JoinKey for u128 {
    #[inline]
    fn hash64(self) -> u64 {
        mix128(self)
    }

    fn hash_block(keys: &[u128], out: &mut [u64]) {
        debug_assert_eq!(keys.len(), out.len());
        if blend_simd::enabled() {
            let mut kc = keys.chunks_exact(MIX_LANES);
            let mut oc = out.chunks_exact_mut(MIX_LANES);
            for (k, o) in (&mut kc).zip(&mut oc) {
                o.copy_from_slice(&mix128x8(k.try_into().expect("exact chunk")));
            }
            for (o, &k) in oc.into_remainder().iter_mut().zip(kc.remainder()) {
                *o = mix128(k);
            }
        } else {
            for (o, &k) in out.iter_mut().zip(keys) {
                *o = mix128(k);
            }
        }
    }
}

/// Bucket index of a hash: bits 32.. so the low bits stay free for radix
/// partition selection.
#[inline]
fn bucket_of(hash: u64, mask: u64) -> usize {
    ((hash >> 32) & mask) as usize
}

/// Keys per batched probe/upsert block: hashes land in one stack buffer,
/// bucket heads get prefetched a block ahead of the probe that reads them.
/// Sized so a block of independent accesses outlasts a last-level-cache
/// miss (the pipelined probe's prefetch distance is one full block) while
/// the per-block stack buffers stay within a few cache lines' worth of
/// stack.
pub const PROBE_BLOCK: usize = 64;

/// Flat hash join table: CSR bucket runs over a power-of-two bucket array.
///
/// Built with two counting passes over the build rows — no per-key
/// allocation, no entry API, each row's hash computed exactly once. The
/// table stores only row ids; the caller keeps the packed key array and
/// passes it back at probe time (build and probe share it, and the radix
/// path builds several tables over slices of one global key array).
///
/// Matches for a probe key are the entries of one bucket filtered by key
/// equality — a contiguous run scan, no pointer chasing — and come back in
/// ascending build-row order (the scatter pass preserves input order),
/// which is what the executor's byte-identical-output contract needs.
#[derive(Debug, Clone)]
pub struct JoinTable {
    /// Power-of-two bucket count minus one.
    mask: u64,
    /// CSR bucket offsets: bucket `b` owns `entries[heads[b]..heads[b+1]]`.
    heads: Vec<u32>,
    /// Build-row ids grouped by bucket, ascending within each bucket.
    entries: Vec<u32>,
}

impl JoinTable {
    /// Build over `rows` (`None` = all of `keys`, `Some` = a radix
    /// partition's ascending row-id slice; ids index into `keys`). Buckets
    /// are sized to ~0.5 load factor. Fails typed
    /// (`BlendError::MemoryExceeded`) if the scratch/CSR arrays cannot be
    /// allocated.
    pub fn build<K: JoinKey>(keys: &[K], rows: Option<&[u32]>) -> blend_common::Result<JoinTable> {
        Self::build_inner(|r| keys[r].hash64(), keys.len(), rows)
    }

    /// [`build`](JoinTable::build) over precomputed per-row hashes — the
    /// radix path already hashed every key to pick partitions, so partition
    /// builds must not pay a second hash per row.
    pub fn build_prehashed(
        hashes: &[u64],
        rows: Option<&[u32]>,
    ) -> blend_common::Result<JoinTable> {
        Self::build_inner(|r| hashes[r], hashes.len(), rows)
    }

    /// Resident bytes a [`build`](JoinTable::build) over `n_rows` rows
    /// allocates (hash scratch + CSR bucket arrays) — the costing primitive
    /// the executor's join-build reservations use.
    pub fn estimate_bytes(n_rows: usize) -> usize {
        let buckets = n_rows.saturating_mul(2).next_power_of_two().max(1);
        n_rows * 4 + blend_parallel::radix_scratch_bytes(n_rows, buckets)
    }

    fn build_inner(
        hash_of: impl Fn(usize) -> u64,
        n_keys: usize,
        rows: Option<&[u32]>,
    ) -> blend_common::Result<JoinTable> {
        let n = rows.map_or(n_keys, <[u32]>::len);
        let row_at = |idx: usize| -> u32 {
            match rows {
                Some(r) => r[idx],
                None => idx as u32,
            }
        };
        let buckets = n.saturating_mul(2).next_power_of_two().max(1);
        let mask = (buckets - 1) as u64;

        // Hash every build row once; the counting sort reuses it.
        let mut bucket_ids: Vec<u32> = blend_common::try_vec_with_capacity(n, "join_bucket_ids")?;
        for idx in 0..n {
            let h = hash_of(row_at(idx) as usize);
            bucket_ids.push(bucket_of(h, mask) as u32);
        }
        // The bucket layout IS a radix partition by bucket id: the shared
        // two-pass counting sort yields CSR offsets (heads) and in-order
        // items — ascending within each bucket, the invariant probes need.
        let (heads, mut entries) =
            blend_parallel::radix_partition(&bucket_ids, buckets)?.into_parts();
        if rows.is_some() {
            // Map partition-local indices back to the caller's row ids.
            for e in &mut entries {
                *e = row_at(*e as usize);
            }
        }
        Ok(JoinTable {
            mask,
            heads,
            entries,
        })
    }

    /// Build rows matching `key`, in ascending build-row order. `keys` must
    /// be the array the table was built over.
    #[inline]
    pub fn matches<'t, K: JoinKey>(
        &'t self,
        keys: &'t [K],
        key: K,
    ) -> impl Iterator<Item = u32> + 't {
        self.matches_hashed(keys, key, key.hash64())
    }

    /// [`matches`](JoinTable::matches) with the key's hash precomputed (the
    /// probe loop already computed it to pick the radix partition).
    #[inline]
    pub fn matches_hashed<'t, K: JoinKey>(
        &'t self,
        keys: &'t [K],
        key: K,
        hash: u64,
    ) -> impl Iterator<Item = u32> + 't {
        let b = bucket_of(hash, self.mask);
        let lo = self.heads[b] as usize;
        let hi = self.heads[b + 1] as usize;
        self.entries[lo..hi]
            .iter()
            .copied()
            .filter(move |&r| keys[r as usize] == key)
    }

    /// Best-effort prefetch of the CSR bucket bounds a probe with this
    /// hash will read. Batched probe loops issue this a block ahead so the
    /// bucket-head cache miss overlaps the hashing of later keys.
    #[inline]
    pub fn prefetch(&self, hash: u64) {
        blend_simd::prefetch_read(&self.heads, bucket_of(hash, self.mask));
    }

    /// Best-effort prefetch of the first entry of this hash's bucket run
    /// (reads the — by now resident — bucket head to find it).
    #[inline]
    pub fn prefetch_entries(&self, hash: u64) {
        let b = bucket_of(hash, self.mask);
        blend_simd::prefetch_read(&self.entries, self.heads[b] as usize);
    }

    /// Probe every key of `probe_keys` in row order, invoking
    /// `on_match(probe_row, build_row)` for each match (ascending build
    /// rows within a probe row — the executor's output contract).
    /// Dispatches on `blend_simd::enabled()`; the scalar twin is the plain
    /// hash-and-probe-per-row loop, and match order and count are
    /// identical on both paths.
    ///
    /// The vector path picks its shape by the table's working set. A
    /// table resident in the private caches (heads + entries + build keys
    /// within the L2 budget) uses the **hash-ahead** form: batch-hash
    /// block `k+1` and prefetch its bucket heads while probing block `k` —
    /// prefetching buys little when every line already sits in L2, so the
    /// cheap two-buffer form wins. A table that spills the private caches
    /// uses a **three-stage software pipeline** over [`PROBE_BLOCK`]-key
    /// blocks, so every random access has a full block of independent
    /// work between its prefetch and its use:
    ///
    /// 1. **Hash + head prefetch** for block `k+1` (batched mixers, then
    ///    one bucket-head prefetch per key);
    /// 2. **Bounds + entry prefetch** for block `k`: its heads arrived a
    ///    block ago, so reading them is cheap — stash each key's CSR run
    ///    bounds and prefetch the run's first/last entry lines;
    /// 3. **Walk** block `k-1`, whose entry runs arrived a block ago: one
    ///    sweep prefetches the matched build keys, the second compares
    ///    and emits.
    pub fn probe_all<K: JoinKey>(
        &self,
        build_keys: &[K],
        probe_keys: &[K],
        mut on_match: impl FnMut(u32, u32),
    ) {
        if !blend_simd::enabled() {
            for (i, &key) in probe_keys.iter().enumerate() {
                for b in self.matches(build_keys, key) {
                    on_match(i as u32, b);
                }
            }
            return;
        }
        let n = probe_keys.len();
        if n == 0 {
            return;
        }
        let n_blocks = n.div_ceil(PROBE_BLOCK);
        let block = |k: usize| -> std::ops::Range<usize> {
            k * PROBE_BLOCK..(k * PROBE_BLOCK + PROBE_BLOCK).min(n)
        };
        // Bytes the probe's random accesses can touch: CSR arrays plus the
        // build-key gathers. Below the private-cache budget the deeper
        // pipeline only adds overhead.
        let table_bytes =
            self.heads.len() * 4 + self.entries.len() * 4 + std::mem::size_of_val(build_keys);
        const PIPELINE_BYTES: usize = 2 << 20;
        if table_bytes <= PIPELINE_BYTES {
            let mut hash_cur = [0u64; PROBE_BLOCK];
            let mut hash_next = [0u64; PROBE_BLOCK];
            let prime = block(0);
            K::hash_block(&probe_keys[prime.clone()], &mut hash_cur[..prime.len()]);
            for &h in &hash_cur[..prime.len()] {
                self.prefetch(h);
            }
            for k in 0..n_blocks {
                if k + 1 < n_blocks {
                    let next = block(k + 1);
                    K::hash_block(&probe_keys[next.clone()], &mut hash_next[..next.len()]);
                    for &h in &hash_next[..next.len()] {
                        self.prefetch(h);
                    }
                }
                let cur = block(k);
                for (j, &h) in hash_cur[..cur.len()].iter().enumerate() {
                    let key = probe_keys[cur.start + j];
                    for b in self.matches_hashed(build_keys, key, h) {
                        on_match((cur.start + j) as u32, b);
                    }
                }
                std::mem::swap(&mut hash_cur, &mut hash_next);
            }
            return;
        }
        // `hash_cur` holds block k's hashes (stage 2 input, written by
        // stage 1 last iteration); `bounds_prev` holds block k-1's run
        // bounds (stage 3 input, written by stage 2 last iteration).
        let mut hash_cur = [0u64; PROBE_BLOCK];
        let mut hash_next = [0u64; PROBE_BLOCK];
        let mut bounds_cur = [(0u32, 0u32); PROBE_BLOCK];
        let mut bounds_prev = [(0u32, 0u32); PROBE_BLOCK];

        let prime = block(0);
        K::hash_block(&probe_keys[prime.clone()], &mut hash_cur[..prime.len()]);
        for &h in &hash_cur[..prime.len()] {
            self.prefetch(h);
        }
        let walk = |range: std::ops::Range<usize>,
                    bounds: &[(u32, u32)],
                    on_match: &mut dyn FnMut(u32, u32)| {
            // Sweep 1: the entry runs are resident; prefetch the build
            // keys they point at.
            for &(lo, hi) in &bounds[..range.len()] {
                for &r in &self.entries[lo as usize..hi as usize] {
                    blend_simd::prefetch_read(build_keys, r as usize);
                }
            }
            // Sweep 2: compare and emit, in row order.
            for (j, &(lo, hi)) in bounds[..range.len()].iter().enumerate() {
                let key = probe_keys[range.start + j];
                for &r in &self.entries[lo as usize..hi as usize] {
                    if build_keys[r as usize] == key {
                        on_match((range.start + j) as u32, r);
                    }
                }
            }
        };
        for k in 0..n_blocks {
            // Stage 1: hash block k+1, prefetch its bucket heads.
            if k + 1 < n_blocks {
                let next = block(k + 1);
                K::hash_block(&probe_keys[next.clone()], &mut hash_next[..next.len()]);
                for &h in &hash_next[..next.len()] {
                    self.prefetch(h);
                }
            }
            // Stage 2: block k's heads arrived; stash run bounds and
            // prefetch the first/last entry line of each run (runs are
            // short — the load factor keeps chains near one).
            let cur = block(k);
            for (j, &h) in hash_cur[..cur.len()].iter().enumerate() {
                let b = bucket_of(h, self.mask);
                let (lo, hi) = (self.heads[b], self.heads[b + 1]);
                bounds_cur[j] = (lo, hi);
                if lo < hi {
                    blend_simd::prefetch_read(&self.entries, lo as usize);
                    blend_simd::prefetch_read(&self.entries, hi as usize - 1);
                }
            }
            // Stage 3: walk block k-1, whose entry runs arrived a block ago.
            if k > 0 {
                walk(block(k - 1), &bounds_prev, &mut on_match);
            }
            std::mem::swap(&mut hash_cur, &mut hash_next);
            std::mem::swap(&mut bounds_prev, &mut bounds_cur);
        }
        // Drain: the last block's walk.
        walk(block(n_blocks - 1), &bounds_prev, &mut on_match);
    }

    /// Number of build rows in the table.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no build row was inserted.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Bucket count (a power of two).
    pub fn buckets(&self) -> usize {
        self.heads.len() - 1
    }

    /// Occupancy of the fullest bucket — the worst-case probe run length
    /// (telemetry).
    pub fn max_chain(&self) -> usize {
        self.heads
            .windows(2)
            .map(|w| (w[1] - w[0]) as usize)
            .max()
            .unwrap_or(0)
    }
}

/// Slot sentinel: no group occupies this slot.
const EMPTY: u32 = u32::MAX;

/// Open-addressing index from packed group keys to dense group ids.
///
/// Ids are assigned in first-seen order, so id order *is* the sequential
/// group output order and aggregate state can live in flat vectors indexed
/// by id. Linear probing over a power-of-two slot array; the slot array
/// holds only ids (4 bytes each), keys live densely in insertion order.
#[derive(Debug, Clone)]
pub struct GroupIndex<K: JoinKey> {
    /// Slot array: [`EMPTY`] or a dense group id.
    slots: Vec<u32>,
    /// Dense key storage: `keys[id]` is the key of group `id`.
    keys: Vec<K>,
    mask: usize,
    /// Longest probe sequence seen (telemetry: the open-addressing
    /// equivalent of max chain length).
    max_probe: usize,
}

impl<K: JoinKey> GroupIndex<K> {
    /// Index pre-sized for an expected group count. Fails typed
    /// (`BlendError::MemoryExceeded`) if the slot/key arrays cannot be
    /// allocated.
    pub fn with_capacity(groups: usize) -> blend_common::Result<Self> {
        let slots_len = groups.saturating_mul(2).next_power_of_two().max(16);
        let mut slots = blend_common::try_vec_with_capacity::<u32>(slots_len, "group_slots")?;
        slots.resize(slots_len, EMPTY);
        let keys = blend_common::try_vec_with_capacity::<K>(groups, "group_keys")?;
        Ok(GroupIndex {
            slots,
            keys,
            mask: slots_len - 1,
            max_probe: 0,
        })
    }

    /// Resident bytes an index sized for `groups` groups over key type `K`
    /// holds (slot array + dense key storage) — the costing primitive the
    /// executor's group-state reservations use.
    pub fn estimate_bytes(groups: usize) -> usize {
        let slots = groups.saturating_mul(2).next_power_of_two().max(16);
        slots * 4 + groups * std::mem::size_of::<K>()
    }

    /// The dense id of `key`, inserting a fresh group (id = current
    /// [`len`](GroupIndex::len)) on first sight.
    #[inline]
    pub fn insert_or_get(&mut self, key: K) -> blend_common::Result<u32> {
        self.insert_or_get_hashed(key, key.hash64())
    }

    /// [`insert_or_get`](GroupIndex::insert_or_get) with the key's hash
    /// precomputed (the radix path already hashed it to pick partitions).
    /// The only fallible step is growth — lookups of existing keys and
    /// inserts below the load-factor threshold never allocate.
    #[inline]
    pub fn insert_or_get_hashed(&mut self, key: K, hash: u64) -> blend_common::Result<u32> {
        if self.keys.len() * 2 >= self.slots.len() {
            self.grow()?;
        }
        let mut slot = ((hash >> 32) as usize) & self.mask;
        let mut probe = 1usize;
        loop {
            let id = self.slots[slot];
            if id == EMPTY {
                let gid = self.keys.len() as u32;
                if self.keys.len() == self.keys.capacity() {
                    let extra = self.keys.capacity().max(16);
                    blend_common::try_reserve(&mut self.keys, extra, "group_keys")?;
                }
                self.slots[slot] = gid;
                self.keys.push(key);
                self.max_probe = self.max_probe.max(probe);
                return Ok(gid);
            }
            if self.keys[id as usize] == key {
                return Ok(id);
            }
            slot = (slot + 1) & self.mask;
            probe += 1;
        }
    }

    /// Double the slot array and re-scatter the dense ids. The doubled
    /// array is allocated fallibly *before* the old one is released, so a
    /// failed grow leaves the index intact (the caller's groups survive and
    /// the error propagates typed).
    fn grow(&mut self) -> blend_common::Result<()> {
        let new_len = self.slots.len() * 2;
        let mut slots = blend_common::try_vec_with_capacity::<u32>(new_len, "group_slots")?;
        slots.resize(new_len, EMPTY);
        self.mask = new_len - 1;
        self.slots = slots;
        for (id, key) in self.keys.iter().enumerate() {
            let mut slot = ((key.hash64() >> 32) as usize) & self.mask;
            let mut probe = 1usize;
            while self.slots[slot] != EMPTY {
                slot = (slot + 1) & self.mask;
                probe += 1;
            }
            self.slots[slot] = id as u32;
            self.max_probe = self.max_probe.max(probe);
        }
        Ok(())
    }

    /// Best-effort prefetch of the slot this hash's probe sequence starts
    /// at. The executor's grouping pass issues it one [`PROBE_BLOCK`]
    /// ahead of the upserts so slot-array misses overlap the batched
    /// hashing. Worth issuing only once the slot array has outgrown cache;
    /// callers gate on [`slot_count`](GroupIndex::slot_count).
    #[inline]
    pub fn prefetch_slot(&self, hash: u64) {
        blend_simd::prefetch_read(&self.slots, ((hash >> 32) as usize) & self.mask);
    }

    /// Number of distinct groups.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when no key has been inserted.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Keys in dense-id (first-seen) order.
    pub fn keys(&self) -> &[K] {
        &self.keys
    }

    /// Slot-array length (the "bucket count" telemetry of the index).
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Longest probe sequence any insert/lookup walked.
    pub fn max_probe(&self) -> usize {
        self.max_probe
    }
}

/// The retained map-based reference implementations the flat operators are
/// parity-tested and benchmarked against. These reproduce the executor's
/// pre-flat semantics exactly: per-key `Vec` match lists in ascending build
/// order, dense group ids in first-seen order.
pub mod oracle {
    use super::JoinKey;
    use blend_common::FxHashMap;

    /// Map-based join: `(probe row, build row)` pairs in probe-row order,
    /// each probe row's matches ascending.
    pub fn join_pairs<K: JoinKey>(build: &[K], probe: &[K]) -> Vec<(u32, u32)> {
        let mut table: FxHashMap<K, Vec<u32>> = FxHashMap::default();
        for (i, &k) in build.iter().enumerate() {
            table.entry(k).or_default().push(i as u32);
        }
        let mut out = Vec::new();
        for (i, &k) in probe.iter().enumerate() {
            if let Some(matches) = table.get(&k) {
                for &b in matches {
                    out.push((i as u32, b));
                }
            }
        }
        out
    }

    /// Map-based grouping: `(group id per row, first row per group)` with
    /// ids dense in first-seen order.
    pub fn group_ids<K: JoinKey>(keys: &[K]) -> (Vec<u32>, Vec<u32>) {
        let mut index: FxHashMap<K, u32> = FxHashMap::default();
        let mut first_rows: Vec<u32> = Vec::new();
        let gids = keys
            .iter()
            .enumerate()
            .map(|(i, &k)| {
                *index.entry(k).or_insert_with(|| {
                    let gid = first_rows.len() as u32;
                    first_rows.push(i as u32);
                    gid
                })
            })
            .collect();
        (gids, first_rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat_pairs<K: JoinKey>(build: &[K], probe: &[K]) -> Vec<(u32, u32)> {
        let table = JoinTable::build(build, None).unwrap();
        let mut out = Vec::new();
        for (i, &k) in probe.iter().enumerate() {
            for b in table.matches(build, k) {
                out.push((i as u32, b));
            }
        }
        out
    }

    #[test]
    fn join_table_matches_oracle_u64() {
        let build: Vec<u64> = vec![3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5];
        let probe: Vec<u64> = vec![5, 5, 7, 1, 3, 0];
        assert_eq!(
            flat_pairs(&build, &probe),
            oracle::join_pairs(&build, &probe)
        );
    }

    #[test]
    fn join_table_matches_oracle_u128() {
        let build: Vec<u128> = (0..64u128).map(|i| (i % 7) << 96 | (i % 3)).collect();
        let probe: Vec<u128> = (0..32u128).map(|i| (i % 9) << 96 | (i % 3)).collect();
        assert_eq!(
            flat_pairs(&build, &probe),
            oracle::join_pairs(&build, &probe)
        );
    }

    #[test]
    fn join_table_over_partition_slice() {
        let keys: Vec<u64> = vec![10, 20, 10, 30, 20, 10];
        // A "partition" owning rows {0, 2, 4, 5}.
        let rows = [0u32, 2, 4, 5];
        let table = JoinTable::build(&keys, Some(&rows)).unwrap();
        assert_eq!(table.len(), 4);
        let m10: Vec<u32> = table.matches(&keys, 10).collect();
        assert_eq!(m10, vec![0, 2, 5]);
        let m20: Vec<u32> = table.matches(&keys, 20).collect();
        assert_eq!(m20, vec![4]);
        assert!(table.matches(&keys, 30).next().is_none()); // row 3 not in partition
    }

    #[test]
    fn empty_join_table() {
        let keys: Vec<u64> = Vec::new();
        let table = JoinTable::build(&keys, None).unwrap();
        assert!(table.is_empty());
        assert_eq!(table.max_chain(), 0);
        assert!(table.matches(&keys, 42).next().is_none());
    }

    #[test]
    fn join_table_telemetry_is_consistent() {
        let keys: Vec<u64> = (0..1000).map(|i| i % 37).collect();
        let table = JoinTable::build(&keys, None).unwrap();
        assert!(table.buckets().is_power_of_two());
        assert!(table.buckets() >= 1000);
        // 37 distinct keys over 1000 rows: the fullest bucket holds at
        // least one whole key's run.
        assert!(table.max_chain() >= 1000 / 37);
        // The CSR build lost and duplicated nothing: bucket occupancies
        // sum to the row count and every row id appears exactly once.
        let total: usize = (0..table.buckets())
            .map(|b| (table.heads[b + 1] - table.heads[b]) as usize)
            .sum();
        assert_eq!(total, 1000);
        let mut all = table.entries.clone();
        all.sort_unstable();
        assert_eq!(all, (0..1000u32).collect::<Vec<_>>());
    }

    #[test]
    fn group_index_matches_oracle_and_first_seen_order() {
        let keys: Vec<u64> = vec![7, 7, 3, 9, 3, 7, 11, 9];
        let (want_gids, want_first) = oracle::group_ids(&keys);
        let mut index: GroupIndex<u64> = GroupIndex::with_capacity(4).unwrap();
        let mut first_rows = Vec::new();
        let gids: Vec<u32> = keys
            .iter()
            .enumerate()
            .map(|(i, &k)| {
                let before = index.len();
                let gid = index.insert_or_get(k).unwrap();
                if index.len() != before {
                    first_rows.push(i as u32);
                }
                gid
            })
            .collect();
        assert_eq!(gids, want_gids);
        assert_eq!(first_rows, want_first);
        assert_eq!(index.keys(), &[7, 3, 9, 11]);
        assert!(index.max_probe() >= 1);
    }

    /// Serializes the tests that flip the process-global `blend_simd`
    /// dispatch override, so each one deterministically covers both paths.
    static FORCE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn hash_block_matches_per_key_hash64_on_both_paths() {
        let _g = FORCE_LOCK.lock().unwrap();
        let k64: Vec<u64> = (0..100u64).map(|i| i.wrapping_mul(0x9e37)).collect();
        let k128: Vec<u128> = (0..100u128).map(|i| (i << 93) | i).collect();
        for forced in [Some(false), Some(true)] {
            blend_simd::force(forced);
            let mut h64 = vec![0u64; k64.len()];
            u64::hash_block(&k64, &mut h64);
            assert_eq!(h64, k64.iter().map(|&k| k.hash64()).collect::<Vec<_>>());
            let mut h128 = vec![0u64; k128.len()];
            u128::hash_block(&k128, &mut h128);
            assert_eq!(h128, k128.iter().map(|&k| k.hash64()).collect::<Vec<_>>());
            // Short (sub-lane) and empty blocks.
            let mut h3 = vec![0u64; 3];
            u64::hash_block(&k64[..3], &mut h3);
            assert_eq!(h3, k64[..3].iter().map(|&k| k.hash64()).collect::<Vec<_>>());
            u64::hash_block(&[], &mut []);
        }
        blend_simd::force(None);
    }

    #[test]
    fn probe_all_matches_oracle_on_both_paths() {
        let _g = FORCE_LOCK.lock().unwrap();
        let build: Vec<u64> = (0..500u64).map(|i| i % 91).collect();
        let probe: Vec<u64> = (0..333u64).map(|i| i % 131).collect();
        let want = oracle::join_pairs(&build, &probe);
        let table = JoinTable::build(&build, None).unwrap();
        for forced in [Some(false), Some(true)] {
            blend_simd::force(forced);
            let mut got = Vec::new();
            table.probe_all(&build, &probe, |p, b| got.push((p, b)));
            assert_eq!(got, want, "forced={forced:?}");
        }
        blend_simd::force(None);
    }

    #[test]
    fn probe_all_pipeline_path_matches_oracle() {
        // A build side large enough that the vector dispatch takes the
        // three-stage pipeline (working set past the private-cache gate),
        // not the hash-ahead form the small-table tests cover. Probe keys
        // include misses, multi-match runs, and a non-block-multiple tail.
        let _g = FORCE_LOCK.lock().unwrap();
        let build: Vec<u64> = (0..150_000u64)
            .map(|i| i.wrapping_mul(0x9e37) % 70_001)
            .collect();
        let probe: Vec<u64> = (0..10_037u64)
            .map(|i| i.wrapping_mul(0x85eb) % 90_001)
            .collect();
        let want = oracle::join_pairs(&build, &probe);
        let table = JoinTable::build(&build, None).unwrap();
        for forced in [Some(false), Some(true)] {
            blend_simd::force(forced);
            let mut got = Vec::new();
            table.probe_all(&build, &probe, |p, b| got.push((p, b)));
            assert_eq!(got, want, "forced={forced:?}");
        }
        blend_simd::force(None);
    }

    #[test]
    fn group_index_grows_past_initial_capacity() {
        let mut index: GroupIndex<u128> = GroupIndex::with_capacity(0).unwrap();
        for i in 0..5000u128 {
            assert_eq!(index.insert_or_get(i << 64 | 1).unwrap(), i as u32);
        }
        assert_eq!(index.len(), 5000);
        assert!(index.slot_count().is_power_of_two());
        assert!(index.slot_count() >= 10_000);
        // Lookups after growth still resolve to the original dense ids.
        for i in (0..5000u128).rev() {
            assert_eq!(index.insert_or_get(i << 64 | 1).unwrap(), i as u32);
        }
        assert_eq!(index.len(), 5000);
    }
}

//! Query planning: AST → physical plan.
//!
//! The planner performs the three in-DB optimizations the paper's design
//! depends on:
//!
//! 1. **Predicate pushdown** — top-level conjuncts that reference a single
//!    join input are pushed into that input (this is what makes BLEND's
//!    injected `alias.TableId IN (...)` rewrites restrict the *scan*, not
//!    just the join output).
//! 2. **Access-path selection** — each scan compares the exact cardinality
//!    of an inverted-index probe, a table-range probe, and a sequential
//!    scan, and drives the scan with the cheapest (the "database-level query
//!    optimizations" of Section V).
//! 3. **Aggregate extraction** — aggregate calls in SELECT/ORDER BY are
//!    deduplicated and computed once per group; outer expressions are
//!    rewritten to reference them.

use std::sync::Arc;

use blend_common::{BlendError, FxHashSet, Result};
use blend_storage::{FactTable, FilterKernel, IdSet, ValuePred, ValueProbe};

use crate::ast::*;
use crate::expr::{compile, CExpr, ColInfo, Schema};
use crate::value::SqlValue;

/// Catalog interface the planner needs (implemented by `engine::Database`).
pub trait Catalog {
    /// Look up a fact table by lowercase name.
    fn table(&self, name: &str) -> Option<Arc<dyn FactTable>>;
}

/// How a scan reaches its rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccessPath {
    /// Drive by inverted-index postings of the IN-list values.
    ValueIndex { n_values: usize, estimated: usize },
    /// Drive by the TableId range directory.
    TableIndex { n_tables: usize, estimated: usize },
    /// Full sequential scan.
    SeqScan { estimated: usize },
}

impl AccessPath {
    /// Estimated driving cardinality.
    pub fn estimated(&self) -> usize {
        match self {
            AccessPath::ValueIndex { estimated, .. }
            | AccessPath::TableIndex { estimated, .. }
            | AccessPath::SeqScan { estimated } => *estimated,
        }
    }

    /// Short label for reports ("value-index" / "table-index" / "seq").
    pub fn label(&self) -> &'static str {
        match self {
            AccessPath::ValueIndex { .. } => "value-index",
            AccessPath::TableIndex { .. } => "table-index",
            AccessPath::SeqScan { .. } => "seq",
        }
    }
}

/// Cheap per-position predicates evaluated before tuple materialization.
pub struct FastFilters {
    /// `CellValue IN (...)` probe (when not the driving access).
    pub value_probe: Option<ValueProbe>,
    /// `TableId IN (...)` set (when not the driving access).
    pub table_set: Option<FxHashSet<u32>>,
    /// `TableId NOT IN (...)` set.
    pub table_not_set: Option<FxHashSet<u32>>,
    /// `RowId < n` bound (exclusive).
    pub rowid_lt: Option<u32>,
    /// `Quadrant IS NOT NULL` (true) / `IS NULL` (false) requirement.
    pub quadrant_null: Option<bool>,
}

impl FastFilters {
    fn empty() -> Self {
        FastFilters {
            value_probe: None,
            table_set: None,
            table_not_set: None,
            rowid_lt: None,
            quadrant_null: None,
        }
    }

    /// True when no filter is set, i.e. [`fast_filters_pass`] accepts every
    /// position. Kept next to the struct so adding a field forces this (and
    /// the positional executor's bulk-scan fast path that relies on it) to
    /// be updated in the same place.
    pub fn is_empty(&self) -> bool {
        let FastFilters {
            value_probe,
            table_set,
            table_not_set,
            rowid_lt,
            quadrant_null,
        } = self;
        value_probe.is_none()
            && table_set.is_none()
            && table_not_set.is_none()
            && rowid_lt.is_none()
            && quadrant_null.is_none()
    }

    /// Lower the filters into the batched [`FilterKernel`] both executors
    /// evaluate through [`FactTable::filter_batch`] /
    /// [`FactTable::filter_range`]. Compiled once per scan at plan time:
    /// the value probe keeps its engine lowering (dictionary codes on the
    /// column store — u32 compares instead of `probe_at` string compares),
    /// and the table hash sets lower into [`IdSet`]s (sorted slice or dense
    /// bitmap, chosen by cardinality). Field-for-field equivalent to the
    /// scalar [`fast_filters_pass`] oracle.
    pub fn compile_kernel(&self) -> FilterKernel {
        FilterKernel {
            value: self.value_probe.as_ref().map(|p| match p {
                ValueProbe::Codes(set) => ValuePred::Codes(IdSet::build(set.iter().copied())),
                ValueProbe::Strings(set) => ValuePred::Strings(set.clone()),
            }),
            table_in: self
                .table_set
                .as_ref()
                .map(|s| IdSet::build(s.iter().copied())),
            table_not_in: self
                .table_not_set
                .as_ref()
                .map(|s| IdSet::build(s.iter().copied())),
            rowid_lt: self.rowid_lt,
            quadrant_null: self.quadrant_null,
        }
    }
}

/// A physical scan of the fact table.
pub struct ScanPlan {
    pub table: Arc<dyn FactTable>,
    /// Alias used to qualify output columns.
    pub alias: String,
    pub access: AccessPath,
    /// Driving values (for `ValueIndex`).
    pub driving_values: Vec<String>,
    /// Driving table ids (for `TableIndex`).
    pub driving_tables: Vec<u32>,
    pub fast: FastFilters,
    /// Batched compilation of `fast`, built once at plan time and evaluated
    /// by both executors' scan loops via the engine's
    /// [`FactTable::filter_batch`] / [`FactTable::filter_range`].
    ///
    /// **Invariant:** executors read only this, never `fast` — any plan
    /// rewrite that mutates `fast` after construction must recompile via
    /// [`FastFilters::compile_kernel`] or the scan silently drops filters.
    /// (Today's only post-plan rewrite, `sideways_pushdown`, touches just
    /// `access`/`driving_tables`.)
    pub kernel: FilterKernel,
    /// Residual predicate over the materialized 6-column tuple.
    pub residual: Option<CExpr>,
    pub schema: Schema,
}

/// A leaf input: a scan or a nested query.
pub enum InputPlan {
    Scan(Box<ScanPlan>),
    /// Subquery with its outer alias; output columns are re-qualified.
    Query(Box<QueryPlan>, String),
}

impl InputPlan {
    /// Output schema of the input.
    pub fn schema(&self) -> &Schema {
        match self {
            InputPlan::Scan(s) => &s.schema,
            InputPlan::Query(q, _) => &q.requalified_schema,
        }
    }
}

/// A left-deep join tree.
pub enum Tree {
    Leaf(InputPlan),
    Join {
        left: Box<Tree>,
        right: Box<Tree>,
        /// Equi-join keys as (left tuple offset, right tuple offset).
        keys: Vec<(usize, usize)>,
        /// Non-equi residual over the concatenated tuple.
        residual: Option<CExpr>,
        schema: Schema,
    },
}

impl Tree {
    /// Output schema.
    pub fn schema(&self) -> &Schema {
        match self {
            Tree::Leaf(i) => i.schema(),
            Tree::Join { schema, .. } => schema,
        }
    }
}

/// Compiled aggregate.
pub struct AggPlan {
    pub func: AggFunc,
    pub distinct: bool,
    /// `None` = COUNT(*).
    pub arg: Option<CExpr>,
}

/// Aggregation stage.
pub struct GroupPlan {
    pub group_exprs: Vec<CExpr>,
    pub aggs: Vec<AggPlan>,
}

/// A fully planned query.
pub struct QueryPlan {
    pub tree: Tree,
    /// Filter applied on the join output (conjuncts that could not be
    /// pushed down).
    pub post_filter: Option<CExpr>,
    pub group: Option<GroupPlan>,
    /// Output columns (qualifier retained for label disambiguation) and
    /// their expressions over the pre-projection schema.
    pub projection: Vec<(ColInfo, CExpr)>,
    pub order_by: Vec<(CExpr, bool)>,
    pub limit: Option<usize>,
    /// Output schema as seen by an *outer* query (bare names).
    pub output_schema: Schema,
    /// Output schema with this subquery's alias applied (set by the parent).
    pub requalified_schema: Schema,
}

impl QueryPlan {
    /// Human-readable result labels: bare column names unless duplicated,
    /// in which case the qualifier disambiguates (`q1.tableid`).
    pub fn output_labels(&self) -> Vec<String> {
        let names: Vec<&str> = self
            .projection
            .iter()
            .map(|(c, _)| c.name.as_str())
            .collect();
        self.projection
            .iter()
            .map(|(c, _)| {
                let dup = names.iter().filter(|n| **n == c.name).count() > 1;
                match (&c.qualifier, dup) {
                    (Some(q), true) => format!("{q}.{}", c.name),
                    _ => c.name.clone(),
                }
            })
            .collect()
    }
}

/// The six fact-table columns, in physical order.
pub const FACT_COLUMNS: [&str; 6] = [
    "cellvalue",
    "tableid",
    "columnid",
    "rowid",
    "superkey",
    "quadrant",
];

/// Plan a parsed query against a catalog.
pub fn plan_query(q: &Query, catalog: &dyn Catalog) -> Result<QueryPlan> {
    // 1. Distribute top-level WHERE conjuncts: single-input conjuncts are
    //    pushed to their input, the rest stays as a post-filter.
    let mut from_items: Vec<&FromItem> = vec![&q.from];
    for j in &q.joins {
        from_items.push(&j.item);
    }
    let aliases: Vec<String> = from_items.iter().map(|f| item_alias(f)).collect();
    require_unique(&aliases)?;

    let mut pushed: Vec<Vec<Expr>> = vec![Vec::new(); from_items.len()];
    let mut post: Vec<Expr> = Vec::new();
    if let Some(w) = &q.where_clause {
        for conjunct in w.conjuncts() {
            match sole_input(conjunct, &aliases) {
                Some(idx) if from_items.len() > 1 => {
                    pushed[idx].push(strip_qualifier(conjunct, &aliases[idx]))
                }
                _ if from_items.len() == 1 => {
                    pushed[0].push(strip_qualifier(conjunct, &aliases[0]))
                }
                _ => post.push(conjunct.clone()),
            }
        }
    }

    // 2. Plan inputs left-deep.
    let mut tree = Tree::Leaf(plan_input(
        &q.from,
        Expr::and_all(pushed[0].clone()),
        catalog,
    )?);
    for (i, join) in q.joins.iter().enumerate() {
        let right = Tree::Leaf(plan_input(
            &join.item,
            Expr::and_all(pushed[i + 1].clone()),
            catalog,
        )?);
        let schema = tree.schema().concat(right.schema());
        // Split ON into equi-keys and residuals.
        let mut keys = Vec::new();
        let mut residuals = Vec::new();
        for c in join.on.conjuncts() {
            match as_equi_key(c, tree.schema(), right.schema()) {
                Some(k) => keys.push(k),
                None => residuals.push(compile(c, &schema)?),
            }
        }
        if keys.is_empty() {
            return Err(BlendError::SqlPlan(
                "JOIN requires at least one equality condition".into(),
            ));
        }
        let residual = fold_cexpr_and(residuals);
        let mut right = right;
        sideways_pushdown(&mut tree, &mut right, &keys);
        tree = Tree::Join {
            left: Box::new(tree),
            right: Box::new(right),
            keys,
            residual,
            schema,
        };
    }

    let input_schema = tree.schema().clone();
    let post_filter = match Expr::and_all(post) {
        Some(e) => Some(compile(&e, &input_schema)?),
        None => None,
    };

    // 3. Aggregation.
    let select_exprs: Vec<(Option<String>, Expr)> = expand_select(&q.select, &input_schema)?;
    // Resolve ORDER BY references to select aliases up front, so alias
    // sorting works with and without GROUP BY.
    let order_pre: Vec<(Expr, bool)> = q
        .order_by
        .iter()
        .map(|o| (resolve_alias(&o.expr, &select_exprs), o.desc))
        .collect();
    let has_agg = !q.group_by.is_empty()
        || select_exprs.iter().any(|(_, e)| e.contains_agg())
        || order_pre.iter().any(|(e, _)| e.contains_agg());

    #[allow(clippy::type_complexity)]
    let (group, current_schema, select_final, order_final): (
        Option<GroupPlan>,
        Schema,
        Vec<(Option<String>, Expr)>,
        Vec<(Expr, bool)>,
    ) = if has_agg {
        // Collect aggregates from everywhere they may appear.
        let mut agg_asts: Vec<&Expr> = Vec::new();
        for (_, e) in &select_exprs {
            e.collect_aggs(&mut agg_asts);
        }
        for (e, _) in &order_pre {
            e.collect_aggs(&mut agg_asts);
        }
        let agg_asts: Vec<Expr> = agg_asts.into_iter().cloned().collect();

        let group_exprs: Vec<CExpr> = q
            .group_by
            .iter()
            .map(|g| compile(g, &input_schema))
            .collect::<Result<_>>()?;
        let aggs: Vec<AggPlan> = agg_asts
            .iter()
            .map(|a| match a {
                Expr::Agg {
                    func,
                    distinct,
                    arg,
                } => {
                    if *distinct && *func != AggFunc::Count {
                        return Err(BlendError::SqlPlan(
                            "DISTINCT is only supported with COUNT".into(),
                        ));
                    }
                    Ok(AggPlan {
                        func: *func,
                        distinct: *distinct,
                        arg: arg
                            .as_ref()
                            .map(|e| compile(e, &input_schema))
                            .transpose()?,
                    })
                }
                _ => unreachable!("collect_aggs returns Agg nodes"),
            })
            .collect::<Result<_>>()?;

        // Post-aggregation schema: __g0..__gN, __a0..__aM.
        let mut cols = Vec::new();
        for i in 0..q.group_by.len() {
            cols.push(ColInfo::bare(&format!("__g{i}")));
        }
        for i in 0..aggs.len() {
            cols.push(ColInfo::bare(&format!("__a{i}")));
        }
        let post_schema = Schema::new(cols);

        // Rewrite select/order expressions onto the post-agg schema.
        let select_final = select_exprs
            .iter()
            .map(|(a, e)| {
                Ok((
                    a.clone(),
                    substitute_agg(e, &q.group_by, &agg_asts).ok_or_else(|| {
                        BlendError::SqlPlan(format!(
                            "expression {e:?} must appear in GROUP BY or be an aggregate"
                        ))
                    })?,
                ))
            })
            .collect::<Result<Vec<_>>>()?;
        let order_final = order_pre
            .iter()
            .map(|(e, desc)| {
                Ok((
                    substitute_agg(e, &q.group_by, &agg_asts).ok_or_else(|| {
                        BlendError::SqlPlan(
                            "ORDER BY expression must be grouped or aggregated".into(),
                        )
                    })?,
                    *desc,
                ))
            })
            .collect::<Result<Vec<_>>>()?;

        (
            Some(GroupPlan { group_exprs, aggs }),
            post_schema,
            select_final,
            order_final,
        )
    } else {
        (None, input_schema.clone(), select_exprs.clone(), order_pre)
    };

    // 4. Compile the projection. Output names come from the *original*
    // select expressions (aliases, then column names), not the rewritten
    // post-aggregation forms.
    let out_infos: Vec<ColInfo> = select_exprs
        .iter()
        .enumerate()
        .map(|(i, (alias, e))| match alias {
            Some(a) => ColInfo::bare(a),
            None => match e {
                Expr::Column { qualifier, name } => ColInfo {
                    qualifier: qualifier.clone(),
                    name: name.clone(),
                },
                _ => ColInfo::bare(&format!("col{i}")),
            },
        })
        .collect();
    let mut projection = Vec::new();
    for (info, (_, e)) in out_infos.iter().zip(select_final.iter()) {
        projection.push((info.clone(), compile(e, &current_schema)?));
    }

    // 5. Compile ORDER BY (aliases were resolved up front).
    let mut order_by = Vec::new();
    for (e, desc) in order_final {
        order_by.push((compile(&e, &current_schema)?, desc));
    }

    let out_cols: Vec<ColInfo> = out_infos.iter().map(|c| ColInfo::bare(&c.name)).collect();
    Ok(QueryPlan {
        tree,
        post_filter,
        group,
        projection,
        order_by,
        limit: q.limit,
        output_schema: Schema::new(out_cols.clone()),
        requalified_schema: Schema::new(out_cols),
    })
}

/// Replace a bare column reference that names a select alias with the
/// aliased expression (standard SQL ORDER BY alias resolution).
fn resolve_alias(e: &Expr, select: &[(Option<String>, Expr)]) -> Expr {
    if let Expr::Column {
        qualifier: None,
        name,
    } = e
    {
        if let Some((_, aliased)) = select
            .iter()
            .find(|(a, _)| a.as_deref() == Some(name.as_str()))
        {
            return aliased.clone();
        }
    }
    e.clone()
}

/// Effective alias of a FROM item (explicit alias, else the table name;
/// subqueries require an alias only when referenced, so default to "__sq").
fn item_alias(f: &FromItem) -> String {
    if let Some(a) = &f.alias {
        return a.clone();
    }
    match &f.source {
        TableSource::Named(n) => n.clone(),
        TableSource::Subquery(_) => "__sq".to_string(),
    }
}

fn require_unique(aliases: &[String]) -> Result<()> {
    let mut seen = FxHashSet::default();
    for a in aliases {
        if !seen.insert(a.clone()) {
            return Err(BlendError::SqlPlan(format!("duplicate table alias `{a}`")));
        }
    }
    Ok(())
}

/// If every column in `e` is qualified with the same single alias, return
/// that input's index.
fn sole_input(e: &Expr, aliases: &[String]) -> Option<usize> {
    let mut quals: FxHashSet<&str> = FxHashSet::default();
    collect_qualifiers(e, &mut quals);
    if quals.len() != 1 {
        return None;
    }
    let q = *quals.iter().next().expect("len 1");
    aliases.iter().position(|a| a == q)
}

fn collect_qualifiers<'a>(e: &'a Expr, out: &mut FxHashSet<&'a str>) {
    match e {
        Expr::Column { qualifier, .. } => {
            // Unqualified columns poison pushdown (can't attribute them).
            out.insert(qualifier.as_deref().unwrap_or("\0unqualified"));
        }
        Expr::Unary { expr, .. } | Expr::Abs(expr) | Expr::CastInt(expr) => {
            collect_qualifiers(expr, out)
        }
        Expr::Binary { left, right, .. } => {
            collect_qualifiers(left, out);
            collect_qualifiers(right, out);
        }
        Expr::InList { expr, list, .. } => {
            collect_qualifiers(expr, out);
            for i in list {
                collect_qualifiers(i, out);
            }
        }
        Expr::IsNull { expr, .. } => collect_qualifiers(expr, out),
        Expr::Agg { arg: Some(a), .. } => collect_qualifiers(a, out),
        _ => {}
    }
}

/// Remove a qualifier from column references so a pushed-down predicate
/// compiles inside the single-input context.
fn strip_qualifier(e: &Expr, alias: &str) -> Expr {
    match e {
        Expr::Column { qualifier, name } if qualifier.as_deref() == Some(alias) => Expr::Column {
            qualifier: None,
            name: name.clone(),
        },
        Expr::Unary { op, expr } => Expr::Unary {
            op: *op,
            expr: Box::new(strip_qualifier(expr, alias)),
        },
        Expr::Binary { left, op, right } => Expr::Binary {
            left: Box::new(strip_qualifier(left, alias)),
            op: *op,
            right: Box::new(strip_qualifier(right, alias)),
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => Expr::InList {
            expr: Box::new(strip_qualifier(expr, alias)),
            list: list.iter().map(|i| strip_qualifier(i, alias)).collect(),
            negated: *negated,
        },
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(strip_qualifier(expr, alias)),
            negated: *negated,
        },
        Expr::Abs(inner) => Expr::Abs(Box::new(strip_qualifier(inner, alias))),
        Expr::CastInt(inner) => Expr::CastInt(Box::new(strip_qualifier(inner, alias))),
        other => other.clone(),
    }
}

/// Plan one FROM item, ANDing `extra` into its predicate.
fn plan_input(f: &FromItem, extra: Option<Expr>, catalog: &dyn Catalog) -> Result<InputPlan> {
    let alias = item_alias(f);
    match &f.source {
        TableSource::Named(name) => {
            let table = catalog
                .table(name)
                .ok_or_else(|| BlendError::SqlPlan(format!("unknown table `{name}` in catalog")))?;
            plan_scan(table, &alias, extra).map(|s| InputPlan::Scan(Box::new(s)))
        }
        TableSource::Subquery(sub) => {
            // Push the extra predicate inside the subquery when that is
            // semantics-preserving (no GROUP BY / LIMIT under it).
            let mut sub = (**sub).clone();
            if let Some(extra) = extra {
                if sub.group_by.is_empty() && sub.limit.is_none() {
                    let inner_alias = item_alias(&sub.from);
                    // Only safe with a single input; otherwise keep it at
                    // subquery level via WHERE.
                    let rewritten = if sub.joins.is_empty() {
                        strip_qualifier(&extra, &inner_alias)
                    } else {
                        extra
                    };
                    sub.where_clause = match sub.where_clause.take() {
                        Some(w) => Expr::and_all(vec![w, rewritten]),
                        None => Some(rewritten),
                    };
                } else {
                    return Err(BlendError::SqlPlan(
                        "cannot push predicate into aggregated subquery".into(),
                    ));
                }
            }
            let mut plan = plan_query(&sub, catalog)?;
            // Re-qualify output columns with the outer alias.
            plan.requalified_schema = Schema::new(
                plan.output_schema
                    .cols
                    .iter()
                    .map(|c| ColInfo::qualified(&alias, &c.name))
                    .collect(),
            );
            Ok(InputPlan::Query(Box::new(plan), alias))
        }
    }
}

/// Plan a base-table scan: classify predicate conjuncts, choose the access
/// path by exact cardinality, and compile what remains as residual.
fn plan_scan(table: Arc<dyn FactTable>, alias: &str, predicate: Option<Expr>) -> Result<ScanPlan> {
    let schema = Schema::new(
        FACT_COLUMNS
            .iter()
            .map(|c| ColInfo::qualified(alias, c))
            .collect(),
    );

    let mut fast = FastFilters::empty();
    let mut value_list: Option<Vec<String>> = None;
    let mut table_list: Option<Vec<u32>> = None;
    let mut generic: Vec<Expr> = Vec::new();

    if let Some(pred) = &predicate {
        for c in pred.conjuncts() {
            match classify_conjunct(c) {
                Classified::ValueIn(vs) => merge_value_list(&mut value_list, vs),
                Classified::TableIn(ts) => merge_table_list(&mut table_list, ts),
                Classified::TableNotIn(ts) => {
                    let set = fast.table_not_set.get_or_insert_with(FxHashSet::default);
                    set.extend(ts);
                }
                Classified::RowIdLt(n) => {
                    let bound = fast.rowid_lt.get_or_insert(n);
                    *bound = (*bound).min(n);
                }
                Classified::QuadrantNull(want_null) => match fast.quadrant_null {
                    // `Quadrant IS NULL AND Quadrant IS NOT NULL` is
                    // unsatisfiable; an impossible row-id bound makes the
                    // scan match nothing (last-conjunct-wins would silently
                    // drop one side and depend on predicate order).
                    Some(prev) if prev != want_null => fast.rowid_lt = Some(0),
                    _ => fast.quadrant_null = Some(want_null),
                },
                Classified::Other => generic.push(c.clone()),
            }
        }
    }

    // Canonical driving order: postings are visited in sorted, deduplicated
    // literal order, so the chosen plan and the emitted row order do not
    // depend on how the predicate happened to spell its IN lists. (A
    // duplicated literal would otherwise also emit its postings twice.)
    // Query fingerprinting (`fingerprint`) relies on this to treat
    // list-order-permuted queries as one cacheable query.
    if let Some(vs) = value_list.as_mut() {
        vs.sort_unstable();
        vs.dedup();
    }
    if let Some(ts) = table_list.as_mut() {
        ts.sort_unstable();
        ts.dedup();
    }

    // Exact cardinalities from the engine's catalog.
    let n_rows = table.len();
    let value_card = value_list
        .as_ref()
        .map(|vs| vs.iter().map(|v| table.posting_len(v)).sum::<usize>());
    let table_card = table_list.as_ref().map(|ts| {
        ts.iter()
            .map(|t| table.table_postings(*t).len())
            .sum::<usize>()
    });

    let access = match (value_card, table_card) {
        (Some(vc), Some(tc)) if vc <= tc => AccessPath::ValueIndex {
            n_values: value_list.as_ref().map_or(0, Vec::len),
            estimated: vc,
        },
        (Some(_), Some(tc)) => AccessPath::TableIndex {
            n_tables: table_list.as_ref().map_or(0, Vec::len),
            estimated: tc,
        },
        (Some(vc), None) => AccessPath::ValueIndex {
            n_values: value_list.as_ref().map_or(0, Vec::len),
            estimated: vc,
        },
        (None, Some(tc)) => AccessPath::TableIndex {
            n_tables: table_list.as_ref().map_or(0, Vec::len),
            estimated: tc,
        },
        (None, None) => AccessPath::SeqScan { estimated: n_rows },
    };

    // Whichever candidate is not driving becomes a fast residual.
    let mut driving_values = Vec::new();
    let mut driving_tables = Vec::new();
    match &access {
        AccessPath::ValueIndex { .. } => {
            driving_values = value_list.unwrap_or_default();
            if let Some(ts) = table_list {
                fast.table_set = Some(ts.into_iter().collect());
            }
        }
        AccessPath::TableIndex { .. } => {
            driving_tables = table_list.unwrap_or_default();
            if let Some(vs) = value_list {
                let refs: Vec<&str> = vs.iter().map(String::as_str).collect();
                fast.value_probe = Some(table.make_probe(&refs));
            }
        }
        AccessPath::SeqScan { .. } => {
            if let Some(vs) = value_list {
                let refs: Vec<&str> = vs.iter().map(String::as_str).collect();
                fast.value_probe = Some(table.make_probe(&refs));
            }
            if let Some(ts) = table_list {
                fast.table_set = Some(ts.into_iter().collect());
            }
        }
    }

    let residual = match Expr::and_all(generic) {
        Some(e) => Some(compile(&e, &schema)?),
        None => None,
    };

    let kernel = fast.compile_kernel();
    Ok(ScanPlan {
        table,
        alias: alias.to_string(),
        access,
        driving_values,
        driving_tables,
        fast,
        kernel,
        residual,
        schema,
    })
}

enum Classified {
    ValueIn(Vec<String>),
    TableIn(Vec<u32>),
    TableNotIn(Vec<u32>),
    RowIdLt(u32),
    QuadrantNull(bool),
    Other,
}

fn classify_conjunct(e: &Expr) -> Classified {
    match e {
        Expr::InList {
            expr,
            list,
            negated,
        } => match unqualified_fact_col(expr) {
            Some("cellvalue") if !negated => {
                let mut vs = Vec::with_capacity(list.len());
                for item in list {
                    match item {
                        Expr::Str(s) => vs.push(s.clone()),
                        Expr::Int(i) => vs.push(i.to_string()),
                        Expr::Float(f) => vs.push(f.to_string()),
                        _ => return Classified::Other,
                    }
                }
                Classified::ValueIn(vs)
            }
            Some("tableid") => {
                let mut ts = Vec::with_capacity(list.len());
                for item in list {
                    match u32_literal(item) {
                        Some(t) => ts.push(t),
                        None => return Classified::Other,
                    }
                }
                if *negated {
                    Classified::TableNotIn(ts)
                } else {
                    Classified::TableIn(ts)
                }
            }
            _ => Classified::Other,
        },
        Expr::Binary {
            left,
            op: BinOp::Eq,
            right,
        } => match (unqualified_fact_col(left), u32_literal(right)) {
            (Some("cellvalue"), _) => match right.as_ref() {
                Expr::Str(s) => Classified::ValueIn(vec![s.clone()]),
                _ => Classified::Other,
            },
            (Some("tableid"), Some(t)) => Classified::TableIn(vec![t]),
            _ => Classified::Other,
        },
        Expr::Binary {
            left,
            op: BinOp::Lt,
            right,
        } => match (unqualified_fact_col(left), u32_literal(right)) {
            (Some("rowid"), Some(n)) => Classified::RowIdLt(n),
            _ => Classified::Other,
        },
        Expr::Binary {
            left,
            op: BinOp::Le,
            right,
        } => match (unqualified_fact_col(left), u32_literal(right)) {
            (Some("rowid"), Some(n)) => Classified::RowIdLt(n.saturating_add(1)),
            _ => Classified::Other,
        },
        Expr::IsNull { expr, negated } => match unqualified_fact_col(expr) {
            Some("quadrant") => Classified::QuadrantNull(!negated),
            _ => Classified::Other,
        },
        _ => Classified::Other,
    }
}

/// A literal usable as a `u32` id/bound: a non-negative `Int`, or an
/// integral `Float` spelling of one (`TableId = 2.0` must classify — and
/// therefore plan and order rows — exactly like `TableId = 2`, which it
/// compares equal to). Out-of-range literals fall back to the generic
/// residual path instead of wrapping.
fn u32_literal(e: &Expr) -> Option<u32> {
    match e {
        Expr::Int(i) => u32::try_from(*i).ok(),
        Expr::Float(f) if f.fract() == 0.0 && *f >= 0.0 && *f <= u32::MAX as f64 => Some(*f as u32),
        _ => None,
    }
}

/// Column name if `e` is a (possibly alias-qualified) fact column.
fn unqualified_fact_col(e: &Expr) -> Option<&str> {
    match e {
        Expr::Column { name, .. } if FACT_COLUMNS.contains(&name.as_str()) => Some(name.as_str()),
        _ => None,
    }
}

fn merge_value_list(acc: &mut Option<Vec<String>>, vs: Vec<String>) {
    match acc {
        // Two CellValue IN conjuncts intersect; keep the smaller for the
        // access path (the other is re-checked by residual anyway — but we
        // conservatively keep the intersection).
        Some(existing) => {
            let set: FxHashSet<&str> = vs.iter().map(String::as_str).collect();
            existing.retain(|v| set.contains(v.as_str()));
        }
        None => *acc = Some(vs),
    }
}

fn merge_table_list(acc: &mut Option<Vec<u32>>, ts: Vec<u32>) {
    match acc {
        Some(existing) => {
            let set: FxHashSet<u32> = ts.into_iter().collect();
            existing.retain(|t| set.contains(t));
        }
        None => *acc = Some(ts),
    }
}

/// Sideways information passing: when two identity scans of the same fact
/// table join on `TableId`, and one side is selective (index-driven) while
/// the other would scan sequentially, derive the selective side's distinct
/// table ids from its postings and drive the other side through the table
/// index instead.
///
/// This is what a real column store's optimizer does with join bloom
/// filters / zone maps, and it is the reason the paper's correlation seeker
/// (Listing 3) is viable: the `Quadrant IS NOT NULL` side would otherwise
/// scan the whole lake index for every query.
fn sideways_pushdown(left: &mut Tree, right: &mut Tree, keys: &[(usize, usize)]) {
    // TableId lives at offset 1 in the canonical fact-tuple layout; both
    // sides must be identity projections over a base scan.
    if !keys.contains(&(FACT_TABLEID_OFFSET, FACT_TABLEID_OFFSET)) {
        return;
    }
    let (Some(l_est), Some(r_est)) = (
        identity_scan(left).map(|s| s.access.estimated()),
        identity_scan(right).map(|s| s.access.estimated()),
    ) else {
        return;
    };
    // Feed the smaller index-driven side into the larger sequential side.
    let (src_est, dst_est, src_first) = if l_est <= r_est {
        (l_est, r_est, true)
    } else {
        (r_est, l_est, false)
    };
    // Only worthwhile when the destination is a seq scan and the source is
    // meaningfully selective.
    const MAX_SOURCE_POSITIONS: usize = 200_000;
    if src_est > MAX_SOURCE_POSITIONS || src_est * 2 > dst_est {
        return;
    }
    let (src_tree, dst_tree) = if src_first {
        (&mut *left, &mut *right)
    } else {
        (&mut *right, &mut *left)
    };
    let Some(src) = identity_scan_mut(src_tree) else {
        return;
    };
    if !matches!(
        src.access,
        AccessPath::ValueIndex { .. } | AccessPath::TableIndex { .. }
    ) {
        return;
    }
    let ids = scan_table_ids(src);
    let Some(dst) = identity_scan_mut(dst_tree) else {
        return;
    };
    if !matches!(dst.access, AccessPath::SeqScan { .. }) {
        return;
    }
    let new_est: usize = ids.iter().map(|&t| dst.table.table_postings(t).len()).sum();
    if new_est >= dst.access.estimated() {
        return;
    }
    // A previously chosen value probe (if any) stays as a fast residual.
    dst.access = AccessPath::TableIndex {
        n_tables: ids.len(),
        estimated: new_est,
    };
    dst.driving_tables = ids;
}

/// Offset of `TableId` in the canonical fact-tuple layout.
const FACT_TABLEID_OFFSET: usize = 1;

/// The base scan behind a tree, provided every intermediate query is an
/// identity projection (no grouping/limit/filter/ordering), so tuple
/// offsets line up with the physical fact columns. Also used by the
/// positional executor to unwrap the identity subqueries the MC/C seeker
/// templates generate.
pub(crate) fn identity_scan(tree: &Tree) -> Option<&ScanPlan> {
    match tree {
        Tree::Leaf(InputPlan::Scan(s)) => Some(s),
        Tree::Leaf(InputPlan::Query(qp, _))
            if qp.group.is_none()
                && qp.limit.is_none()
                && qp.post_filter.is_none()
                && qp.order_by.is_empty()
                && qp
                    .projection
                    .iter()
                    .enumerate()
                    .all(|(i, (_, e))| matches!(e, CExpr::Col(j) if *j == i)) =>
        {
            identity_scan(&qp.tree)
        }
        _ => None,
    }
}

fn identity_scan_mut(tree: &mut Tree) -> Option<&mut ScanPlan> {
    match tree {
        Tree::Leaf(InputPlan::Scan(s)) => Some(s),
        Tree::Leaf(InputPlan::Query(qp, _))
            if qp.group.is_none()
                && qp.limit.is_none()
                && qp.post_filter.is_none()
                && qp.order_by.is_empty()
                && qp
                    .projection
                    .iter()
                    .enumerate()
                    .all(|(i, (_, e))| matches!(e, CExpr::Col(j) if *j == i)) =>
        {
            identity_scan_mut(&mut qp.tree)
        }
        _ => None,
    }
}

/// Distinct table ids a scan's driving access can produce (a safe
/// over-approximation: fast residuals other than the table filters are
/// ignored).
fn scan_table_ids(scan: &ScanPlan) -> Vec<u32> {
    let mut ids: FxHashSet<u32> = FxHashSet::default();
    match &scan.access {
        AccessPath::ValueIndex { .. } => {
            for v in &scan.driving_values {
                for &pos in scan.table.postings(v) {
                    ids.insert(scan.table.table_at(pos as usize));
                }
            }
        }
        AccessPath::TableIndex { .. } => {
            ids.extend(scan.driving_tables.iter().copied());
        }
        AccessPath::SeqScan { .. } => {
            return Vec::new();
        }
    }
    if let Some(set) = &scan.fast.table_set {
        ids.retain(|t| set.contains(t));
    }
    if let Some(set) = &scan.fast.table_not_set {
        ids.retain(|t| !set.contains(t));
    }
    let mut out: Vec<u32> = ids.into_iter().collect();
    out.sort_unstable();
    out
}

/// Recognize `a.x = b.y` with sides in different inputs.
fn as_equi_key(e: &Expr, left: &Schema, right: &Schema) -> Option<(usize, usize)> {
    if let Expr::Binary {
        left: l,
        op: BinOp::Eq,
        right: r,
    } = e
    {
        if let (
            Expr::Column {
                qualifier: ql,
                name: nl,
            },
            Expr::Column {
                qualifier: qr,
                name: nr,
            },
        ) = (l.as_ref(), r.as_ref())
        {
            let l_in_left = left.resolve(ql.as_deref(), nl).ok();
            let r_in_right = right.resolve(qr.as_deref(), nr).ok();
            if let (Some(a), Some(b)) = (l_in_left, r_in_right) {
                return Some((a, b));
            }
            // Reversed orientation.
            let l_in_right = right.resolve(ql.as_deref(), nl).ok();
            let r_in_left = left.resolve(qr.as_deref(), nr).ok();
            if let (Some(b), Some(a)) = (l_in_right, r_in_left) {
                return Some((a, b));
            }
        }
    }
    None
}

fn fold_cexpr_and(mut es: Vec<CExpr>) -> Option<CExpr> {
    let first = if es.is_empty() {
        return None;
    } else {
        es.remove(0)
    };
    Some(es.into_iter().fold(first, |acc, e| {
        CExpr::Binary(Box::new(acc), BinOp::And, Box::new(e))
    }))
}

/// Expand the select list; `*` becomes one item per input column.
fn expand_select(items: &[SelectItem], input: &Schema) -> Result<Vec<(Option<String>, Expr)>> {
    let mut out = Vec::new();
    for item in items {
        match item {
            SelectItem::Wildcard => {
                for c in &input.cols {
                    out.push((
                        None,
                        Expr::Column {
                            qualifier: c.qualifier.clone(),
                            name: c.name.clone(),
                        },
                    ));
                }
            }
            SelectItem::Expr { expr, alias } => out.push((alias.clone(), expr.clone())),
        }
    }
    Ok(out)
}

/// Rewrite an expression onto the post-aggregation schema: group-by
/// subtrees become `__gN`, aggregate calls become `__aM`. Returns `None`
/// if a bare column survives (i.e. is neither grouped nor aggregated).
fn substitute_agg(e: &Expr, groups: &[Expr], aggs: &[Expr]) -> Option<Expr> {
    if let Some(i) = groups.iter().position(|g| g == e) {
        return Some(Expr::col(&format!("__g{i}")));
    }
    if let Some(i) = aggs.iter().position(|a| a == e) {
        return Some(Expr::col(&format!("__a{i}")));
    }
    Some(match e {
        Expr::Column { .. } => return None,
        Expr::Unary { op, expr } => Expr::Unary {
            op: *op,
            expr: Box::new(substitute_agg(expr, groups, aggs)?),
        },
        Expr::Binary { left, op, right } => Expr::Binary {
            left: Box::new(substitute_agg(left, groups, aggs)?),
            op: *op,
            right: Box::new(substitute_agg(right, groups, aggs)?),
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => Expr::InList {
            expr: Box::new(substitute_agg(expr, groups, aggs)?),
            list: list.clone(),
            negated: *negated,
        },
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(substitute_agg(expr, groups, aggs)?),
            negated: *negated,
        },
        Expr::Abs(inner) => Expr::Abs(Box::new(substitute_agg(inner, groups, aggs)?)),
        Expr::CastInt(inner) => Expr::CastInt(Box::new(substitute_agg(inner, groups, aggs)?)),
        leaf => leaf.clone(),
    })
}

/// Scalar evaluation of the fast filters for one physical position.
///
/// No executor runs this anymore — scans evaluate the compiled
/// [`FilterKernel`] a batch at a time through
/// [`FactTable::filter_batch`] / [`FactTable::filter_range`] — but it stays
/// alive as the **test oracle**: the `filter_kernel_parity` proptest suite
/// pins every engine's batched output to this function byte-for-byte, and
/// the `filter_kernels` bench uses it as the scalar baseline.
#[inline]
pub fn fast_filters_pass(table: &dyn FactTable, pos: usize, fast: &FastFilters) -> bool {
    if let Some(bound) = fast.rowid_lt {
        if table.row_at(pos) >= bound {
            return false;
        }
    }
    if let Some(set) = &fast.table_set {
        if !set.contains(&table.table_at(pos)) {
            return false;
        }
    }
    if let Some(set) = &fast.table_not_set {
        if set.contains(&table.table_at(pos)) {
            return false;
        }
    }
    if let Some(want_null) = fast.quadrant_null {
        if table.quadrant_at(pos).is_none() != want_null {
            return false;
        }
    }
    if let Some(probe) = &fast.value_probe {
        if !table.probe_at(pos, probe) {
            return false;
        }
    }
    true
}

/// Materialize the 6-column tuple for a physical position.
#[inline]
pub fn materialize(table: &dyn FactTable, pos: usize) -> Vec<SqlValue> {
    vec![
        SqlValue::Text(Arc::from(table.value_at(pos))),
        SqlValue::Int(table.table_at(pos) as i64),
        SqlValue::Int(table.column_at(pos) as i64),
        SqlValue::Int(table.row_at(pos) as i64),
        SqlValue::U128(table.superkey_at(pos)),
        match table.quadrant_at(pos) {
            None => SqlValue::Null,
            Some(b) => SqlValue::Int(b as i64),
        },
    ]
}

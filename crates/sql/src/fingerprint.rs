//! Canonical query fingerprints: the key under which the serving tier
//! coalesces in-flight duplicates and memoizes results.
//!
//! BLEND's seekers compile to a handful of SQL templates, so a serving
//! workload is dominated by queries that differ only in spelling:
//! whitespace, identifier case, the order of `IN`-list literals, the order
//! of `AND`ed predicates, `1.0` vs `1`, or the rewriter's empty-postings
//! rendering (`TableId IN ()` vs the literal `1 = 0` it emits instead).
//! [`fingerprint_sql`] parses a query and normalizes the AST into a
//! canonical encoding such that **fingerprint-equal queries produce
//! byte-identical results** — the contract the result cache and coalescer
//! depend on, pinned by the `fingerprint_parity` proptest suite.
//!
//! Normalizations applied (each is justified against engine semantics):
//!
//! * **Case/whitespace/comments** — free: the lexer skips comments and the
//!   parser lowercases identifiers and keywords.
//! * **Constant folding** — literal-only subtrees with no arithmetic are
//!   evaluated through the engine's own [`CExpr`](crate::expr::CExpr)
//!   evaluator, so `1 = 0`, `NOT (1 = 1)`, and `'a' IN ('b','a')` all
//!   canonicalize to their value. Using the real evaluator (not a
//!   re-implementation) means folds cannot drift from execution semantics.
//! * **Float literals** — `-0.0` ≡ `0.0`, and integral floats fold to
//!   integers (`1.0` ≡ `1`): [`SqlValue`] compares and hashes these equal,
//!   and the planner classifies integral-float id literals exactly like
//!   their integer spellings.
//! * **`IN`-list order and duplicates** — elements sort and dedup. Sound
//!   because membership sets are order-free *and* the planner visits
//!   driving postings in sorted-deduped order (see `plan_scan`), so row
//!   order cannot depend on list spelling.
//! * **`AND`/`OR` chains** — flattened, operands sorted and deduped,
//!   identities dropped (`x AND TRUE` ≡ `x`, `x OR FALSE` ≡ `x`) and
//!   annihilators folded (`x AND FALSE` ≡ `FALSE`, `x OR TRUE` ≡ `TRUE`),
//!   all valid in the engine's three-valued logic. A `WHERE` that folds to
//!   `TRUE` canonicalizes as absent.
//! * **Empty `IN` ≡ `1 = 0`** — the rewriter renders an empty injected
//!   postings list as `AND 1 = 0`; both spellings canonicalize to `FALSE`.
//!   Restricted to never-null id columns (`TableId`/`ColumnId`/`RowId`) in
//!   queries over named base tables, because `x IN ()` evaluates to `NULL`
//!   (not `FALSE`) for a `NULL` `x`, which differs under `NOT`.
//!
//! Deliberately **not** normalized: select-item order and aliases (they
//!   name output columns), join order, `GROUP BY` key order, `ORDER BY`
//!   keys, and comparison operand order (`TableId = 1` vs `1 = TableId`
//!   classify differently in the planner and could drive different scan
//!   orders). The fingerprint is conservative: a missed equivalence only
//!   costs a cache miss, while a false equivalence serves wrong bytes.
//!
//! The canonical text itself rides in the [`QueryFingerprint`] alongside
//! its [`blend_common::hash`] digest: cache keys compare the full text, so
//! a 64-bit hash collision can cost sharding quality but never correctness.

use std::sync::Arc;

use blend_common::hash::hash_str;
use blend_common::Result;

use crate::ast::{AggFunc, BinOp, Expr, Query, SelectItem, TableSource, UnaryOp};
use crate::expr::{compile, Schema};
use crate::parser::parse;
use crate::value::SqlValue;

/// A stable identity for all spellings of one query. Equality compares
/// the full canonical text — the hash is a routing/sharding accelerator,
/// never the authority.
#[derive(Debug, Clone)]
pub struct QueryFingerprint {
    hash: u64,
    canon: Arc<str>,
}

impl QueryFingerprint {
    /// 64-bit digest of the canonical text (shard selection, quick reject).
    pub fn hash(&self) -> u64 {
        self.hash
    }

    /// The canonical encoding (the authoritative identity).
    pub fn canon(&self) -> &str {
        &self.canon
    }

    /// Shared handle to the canonical text (cheap to key maps with).
    pub fn canon_arc(&self) -> Arc<str> {
        Arc::clone(&self.canon)
    }
}

impl PartialEq for QueryFingerprint {
    fn eq(&self, other: &Self) -> bool {
        self.hash == other.hash && self.canon == other.canon
    }
}

impl Eq for QueryFingerprint {}

impl std::hash::Hash for QueryFingerprint {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

/// Parse `sql` and fingerprint it. Fails only when the query does not
/// parse — callers treat that as "not coalescable" and let execution
/// surface the real error.
pub fn fingerprint_sql(sql: &str) -> Result<QueryFingerprint> {
    parse(sql).map(|q| fingerprint_query(&q))
}

/// Fingerprint an already-parsed query.
pub fn fingerprint_query(q: &Query) -> QueryFingerprint {
    let canon = canon_query(q);
    QueryFingerprint {
        hash: hash_str(&canon),
        canon: Arc::from(canon.as_str()),
    }
}

/// Canonical markers for folded boolean constants.
const TRUE: &str = "b:true";
const FALSE: &str = "b:false";
const NULL: &str = "null";

fn canon_query(q: &Query) -> String {
    // The empty-IN ⇄ FALSE fold is only sound when id columns certainly
    // come from a base fact table (a subquery could alias a nullable
    // expression AS tableid). One flag for the whole tree keeps the rule
    // simple and conservative.
    let fold_empty_in = !query_has_subquery(q);
    let mut out = String::with_capacity(128);
    canon_query_into(q, fold_empty_in, &mut out);
    out
}

fn query_has_subquery(q: &Query) -> bool {
    let is_sub = |s: &TableSource| matches!(s, TableSource::Subquery(_));
    is_sub(&q.from.source) || q.joins.iter().any(|j| is_sub(&j.item.source))
}

fn canon_query_into(q: &Query, fold: bool, out: &mut String) {
    out.push_str("sel[");
    for (i, item) in q.select.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        match item {
            SelectItem::Wildcard => out.push('*'),
            SelectItem::Expr { expr, alias } => {
                out.push_str(&canon_expr(expr, fold));
                if let Some(a) = alias {
                    out.push_str(" as ");
                    out.push_str(a);
                }
            }
        }
    }
    out.push_str("]from[");
    canon_from(&q.from.source, q.from.alias.as_deref(), fold, out);
    out.push_str("]join[");
    for (i, j) in q.joins.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        canon_from(&j.item.source, j.item.alias.as_deref(), fold, out);
        out.push_str(" on ");
        out.push_str(&canon_expr(&j.on, fold));
    }
    out.push_str("]where[");
    if let Some(w) = &q.where_clause {
        let c = canon_expr(w, fold);
        // `WHERE TRUE` keeps every row exactly like no WHERE at all.
        if c != TRUE {
            out.push_str(&c);
        }
    }
    out.push_str("]group[");
    for (i, g) in q.group_by.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&canon_expr(g, fold));
    }
    out.push_str("]order[");
    for (i, o) in q.order_by.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&canon_expr(&o.expr, fold));
        out.push_str(if o.desc { " desc" } else { " asc" });
    }
    out.push_str("]limit[");
    if let Some(n) = q.limit {
        out.push_str(&n.to_string());
    }
    out.push(']');
}

fn canon_from(src: &TableSource, alias: Option<&str>, fold: bool, out: &mut String) {
    match src {
        TableSource::Named(name) => {
            out.push_str("n:");
            out.push_str(name);
        }
        TableSource::Subquery(sub) => {
            out.push('(');
            canon_query_into(sub, fold, out);
            out.push(')');
        }
    }
    if let Some(a) = alias {
        out.push(' ');
        out.push_str(a);
    }
}

/// Canonical value encoding. `Float` literals normalize `-0.0` to `0.0`
/// and fold integral values to `Int` — [`SqlValue`]'s `PartialEq`/`Hash`
/// already treat those pairs as equal, so execution cannot tell the
/// spellings apart.
fn canon_value(v: &SqlValue) -> String {
    match v {
        SqlValue::Null => NULL.to_string(),
        SqlValue::Bool(b) => format!("b:{b}"),
        SqlValue::Int(i) => format!("i:{i}"),
        SqlValue::Float(f) => {
            let f = if *f == 0.0 { 0.0 } else { *f };
            const MAX_EXACT: f64 = 9_007_199_254_740_992.0; // 2^53
            if f.fract() == 0.0 && f.abs() < MAX_EXACT {
                format!("i:{}", f as i64)
            } else {
                // Bit pattern: total, and distinguishes every non-equal
                // float (NaN literals are unreachable from SQL text).
                format!("f:{:016x}", f.to_bits())
            }
        }
        // Length prefix keeps arbitrary payload bytes unambiguous inside
        // the canonical encoding.
        SqlValue::Text(s) => format!("s:{}:{s}", s.len()),
        SqlValue::U128(u) => format!("u:{u}"),
    }
}

/// A bare literal's value, without going through the compiler. This is
/// the hot case — seeker `IN` lists are hundreds of plain literals — and
/// skipping `compile` for it keeps fingerprinting cheap enough to sit on
/// the serving tier's submission path.
fn literal_value(e: &Expr) -> Option<SqlValue> {
    match e {
        Expr::Int(i) => Some(SqlValue::Int(*i)),
        Expr::Float(f) => Some(SqlValue::Float(*f)),
        Expr::Str(s) => Some(SqlValue::Text(Arc::from(s.as_str()))),
        Expr::Bool(b) => Some(SqlValue::Bool(*b)),
        Expr::Null => Some(SqlValue::Null),
        _ => None,
    }
}

/// Fold a literal-only subtree to its value by compiling it against an
/// empty schema and evaluating with the engine's own evaluator — fold
/// semantics cannot drift from execution semantics that way. `fold_safe`
/// prunes subtrees that certainly cannot fold (any column reference,
/// aggregate, or `*`) so the compile attempt is only paid where it can
/// succeed. Arithmetic is excluded wholesale: `1/0` and overflow must
/// surface at execution, not panic at fingerprint time, and no
/// equivalence the cache needs depends on folding arithmetic.
fn try_fold(e: &Expr) -> Option<SqlValue> {
    if let Some(v) = literal_value(e) {
        return Some(v);
    }
    if !fold_safe(e) {
        return None;
    }
    let compiled = compile(e, &Schema::default()).ok()?;
    Some(compiled.eval(&[]))
}

fn fold_safe(e: &Expr) -> bool {
    match e {
        Expr::Binary { left, op, right } => {
            !matches!(
                op,
                BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod
            ) && fold_safe(left)
                && fold_safe(right)
        }
        Expr::Unary { expr, .. } => fold_safe(expr),
        Expr::InList { expr, list, .. } => fold_safe(expr) && list.iter().all(fold_safe),
        Expr::IsNull { expr, .. } => fold_safe(expr),
        Expr::Agg { .. } | Expr::Star | Expr::Abs(_) | Expr::CastInt(_) => false,
        // A column can never compile against the empty schema; saying so
        // here spares every enclosing subtree a doomed compile attempt.
        Expr::Column { .. } => false,
        _ => true,
    }
}

/// Columns that can never hold NULL in a base fact table: the storage
/// position ids. Gates the empty-IN fold (see module docs).
fn is_never_null_id_col(e: &Expr) -> bool {
    matches!(
        e,
        Expr::Column { name, .. } if matches!(name.as_str(), "tableid" | "columnid" | "rowid")
    )
}

fn canon_expr(e: &Expr, fold: bool) -> String {
    if let Some(v) = try_fold(e) {
        return canon_value(&v);
    }
    match e {
        Expr::Column { qualifier, name } => match qualifier {
            Some(q) => format!("c:{q}.{name}"),
            None => format!("c:{name}"),
        },
        // Literal arms are normally handled by the fold above; kept for
        // totality.
        Expr::Int(i) => canon_value(&SqlValue::Int(*i)),
        Expr::Float(f) => canon_value(&SqlValue::Float(*f)),
        Expr::Str(s) => canon_value(&SqlValue::Text(Arc::from(s.as_str()))),
        Expr::Bool(b) => canon_value(&SqlValue::Bool(*b)),
        Expr::Null => NULL.to_string(),
        Expr::Star => "*".to_string(),
        Expr::Unary { op, expr } => {
            let inner = canon_expr(expr, fold);
            match op {
                UnaryOp::Neg => format!("neg({inner})"),
                UnaryOp::Not => match inner.as_str() {
                    // Three-valued NOT over an operand that normalized to
                    // a constant.
                    TRUE => FALSE.to_string(),
                    FALSE => TRUE.to_string(),
                    NULL => NULL.to_string(),
                    _ => format!("not({inner})"),
                },
            }
        }
        Expr::Binary { op, .. } if matches!(op, BinOp::And | BinOp::Or) => {
            canon_logic(e, *op, fold)
        }
        Expr::Binary { left, op, right } => {
            let l = canon_expr(left, fold);
            let r = canon_expr(right, fold);
            format!("{}({l},{r})", op_tag(*op))
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let lhs = canon_expr(expr, fold);
            let mut items: Vec<String> = list.iter().map(|i| canon_expr(i, fold)).collect();
            items.sort_unstable();
            items.dedup();
            if items.is_empty() && fold && is_never_null_id_col(expr) {
                // `id IN ()` matches nothing, `id NOT IN ()` matches
                // everything — exactly FALSE/TRUE for a non-null lhs.
                // This is what unifies the rewriter's `AND 1 = 0`
                // empty-postings rendering with `TableId IN ()`.
                return if *negated { TRUE } else { FALSE }.to_string();
            }
            format!(
                "{}({lhs};{})",
                if *negated { "nin" } else { "in" },
                items.join(",")
            )
        }
        Expr::IsNull { expr, negated } => {
            let inner = canon_expr(expr, fold);
            format!("{}({inner})", if *negated { "notnull" } else { "isnull" })
        }
        Expr::Agg {
            func,
            distinct,
            arg,
        } => {
            let name = match func {
                AggFunc::Count => "count",
                AggFunc::Sum => "sum",
                AggFunc::Min => "min",
                AggFunc::Max => "max",
                AggFunc::Avg => "avg",
            };
            let inner = match arg {
                None => "*".to_string(),
                Some(a) => canon_expr(a, fold),
            };
            format!(
                "{name}({}{inner})",
                if *distinct { "distinct " } else { "" }
            )
        }
        Expr::Abs(inner) => format!("abs({})", canon_expr(inner, fold)),
        Expr::CastInt(inner) => format!("castint({})", canon_expr(inner, fold)),
    }
}

fn op_tag(op: BinOp) -> &'static str {
    match op {
        BinOp::Or => "or",
        BinOp::And => "and",
        BinOp::Eq => "eq",
        BinOp::Neq => "neq",
        BinOp::Lt => "lt",
        BinOp::Le => "le",
        BinOp::Gt => "gt",
        BinOp::Ge => "ge",
        BinOp::Add => "add",
        BinOp::Sub => "sub",
        BinOp::Mul => "mul",
        BinOp::Div => "div",
        BinOp::Mod => "mod",
    }
}

/// Canonicalize an `AND`/`OR` chain: flatten, normalize each operand,
/// apply identity/annihilator folds, then sort + dedup. All steps are
/// sound in three-valued logic (`combine_and`/`combine_or` are
/// commutative, associative, and idempotent, with `TRUE`/`FALSE` as the
/// respective identities and `FALSE`/`TRUE` as annihilators).
fn canon_logic(e: &Expr, op: BinOp, fold: bool) -> String {
    let mut operands = Vec::new();
    flatten_logic(e, op, &mut operands);
    let (identity, annihilator, tag) = match op {
        BinOp::And => (TRUE, FALSE, "and"),
        _ => (FALSE, TRUE, "or"),
    };
    let mut items = Vec::with_capacity(operands.len());
    for o in operands {
        let c = canon_expr(o, fold);
        if c == annihilator {
            return annihilator.to_string();
        }
        if c != identity {
            items.push(c);
        }
    }
    items.sort_unstable();
    items.dedup();
    match items.len() {
        0 => identity.to_string(),
        1 => items.pop().unwrap(),
        _ => format!("{tag}({})", items.join(",")),
    }
}

fn flatten_logic<'a>(e: &'a Expr, op: BinOp, out: &mut Vec<&'a Expr>) {
    if let Expr::Binary { left, op: o, right } = e {
        if *o == op {
            flatten_logic(left, op, out);
            flatten_logic(right, op, out);
            return;
        }
    }
    out.push(e);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(sql: &str) -> QueryFingerprint {
        fingerprint_sql(sql).expect("query parses")
    }

    fn assert_same(a: &str, b: &str) {
        let (fa, fb) = (fp(a), fp(b));
        assert_eq!(fa, fb, "\n  {a}\n  {b}\n  {} != {}", fa.canon(), fb.canon());
        assert_eq!(fa.hash(), fb.hash());
    }

    fn assert_differ(a: &str, b: &str) {
        assert_ne!(fp(a), fp(b), "{a} vs {b} must not collide");
    }

    #[test]
    fn whitespace_case_and_comments_normalize() {
        assert_same(
            "SELECT TableId FROM AllTables WHERE CellValue IN ('a')",
            "select   tableid\nFROM alltables  -- comment\nWHERE cellvalue IN ('a')",
        );
    }

    #[test]
    fn in_list_order_and_duplicates_normalize() {
        assert_same(
            "SELECT TableId FROM AllTables WHERE CellValue IN ('a','b','c')",
            "SELECT TableId FROM AllTables WHERE CellValue IN ('c','a','b','a')",
        );
        assert_differ(
            "SELECT TableId FROM AllTables WHERE CellValue IN ('a','b')",
            "SELECT TableId FROM AllTables WHERE CellValue IN ('a','d')",
        );
    }

    #[test]
    fn conjunct_order_normalizes() {
        assert_same(
            "SELECT * FROM AllTables WHERE CellValue IN ('x') AND TableId IN (1,2) AND RowId < 5",
            "SELECT * FROM AllTables WHERE RowId < 5 AND TableId IN (2,1) AND CellValue IN ('x')",
        );
    }

    #[test]
    fn float_literals_normalize() {
        assert_same(
            "SELECT * FROM AllTables WHERE TableId = 1",
            "SELECT * FROM AllTables WHERE TableId = 1.0",
        );
        assert_same(
            "SELECT * FROM AllTables WHERE RowId < 0.0",
            "SELECT * FROM AllTables WHERE RowId < -0.0",
        );
        assert_differ(
            "SELECT * FROM AllTables WHERE RowId < 1.5",
            "SELECT * FROM AllTables WHERE RowId < 1",
        );
    }

    #[test]
    fn empty_in_matches_rewriter_false_rendering() {
        assert_same(
            "SELECT TableId FROM AllTables WHERE CellValue IN ('a') AND TableId IN ()",
            "SELECT TableId FROM AllTables WHERE CellValue IN ('a') AND 1 = 0",
        );
        // NOT IN () keeps every row, like no conjunct at all.
        assert_same(
            "SELECT TableId FROM AllTables WHERE CellValue IN ('a') AND TableId NOT IN ()",
            "SELECT TableId FROM AllTables WHERE CellValue IN ('a')",
        );
    }

    #[test]
    fn empty_in_on_nullable_lhs_does_not_fold() {
        // CellValue is not in the never-null id set; `cellvalue IN ()` must
        // not unify with FALSE.
        assert_differ(
            "SELECT TableId FROM AllTables WHERE CellValue IN ()",
            "SELECT TableId FROM AllTables WHERE 1 = 0",
        );
        // Inside a subquery-shaped query, even id columns stay unfolded.
        assert_differ(
            "SELECT * FROM (SELECT TableId FROM AllTables) q WHERE TableId IN ()",
            "SELECT * FROM (SELECT TableId FROM AllTables) q WHERE 1 = 0",
        );
    }

    #[test]
    fn tautologies_drop_and_annihilate() {
        assert_same(
            "SELECT TableId FROM AllTables WHERE CellValue IN ('a') AND 1 = 1",
            "SELECT TableId FROM AllTables WHERE CellValue IN ('a')",
        );
        assert_same(
            "SELECT TableId FROM AllTables WHERE 2 > 1",
            "SELECT TableId FROM AllTables",
        );
        assert_same(
            "SELECT TableId FROM AllTables WHERE CellValue IN ('a') OR 1 = 1",
            "SELECT TableId FROM AllTables",
        );
    }

    #[test]
    fn semantic_differences_stay_distinct() {
        assert_differ(
            "SELECT TableId FROM AllTables LIMIT 5",
            "SELECT TableId FROM AllTables LIMIT 6",
        );
        assert_differ(
            "SELECT TableId FROM AllTables ORDER BY TableId",
            "SELECT TableId FROM AllTables ORDER BY TableId DESC",
        );
        assert_differ(
            "SELECT TableId FROM AllTables",
            "SELECT ColumnId FROM AllTables",
        );
        // Comparison operand order is NOT normalized (planner classification
        // is side-sensitive).
        assert_differ(
            "SELECT * FROM AllTables WHERE TableId = 1 AND CellValue IN ('a')",
            "SELECT * FROM AllTables WHERE 1 = TableId AND CellValue IN ('a')",
        );
    }

    #[test]
    fn group_and_join_shapes_fingerprint_stably() {
        let a = "SELECT q1.TableId FROM (SELECT * FROM AllTables WHERE CellValue IN ('a','b')) q1 \
                 INNER JOIN (SELECT * FROM AllTables WHERE CellValue IN ('c')) q2 \
                 ON q1.TableId = q2.TableId AND q1.RowId = q2.RowId";
        let b = "select q1.tableid from (select * from alltables where cellvalue in ('b','a')) q1 \
                 inner join (select * from alltables where cellvalue in ('c')) q2 \
                 on q1.rowid = q2.rowid and q1.tableid = q2.tableid";
        assert_same(a, b);
    }

    #[test]
    fn unparseable_sql_is_an_error() {
        assert!(fingerprint_sql("SELECT FROM WHERE").is_err());
    }
}

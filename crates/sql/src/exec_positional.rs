//! Late-materialization (positional) executor for the BLEND query shapes.
//!
//! The tuple executor in [`crate::exec`] materializes a 6-wide
//! `Vec<SqlValue>` — including an `Arc<str>` clone of the cell value — for
//! every position a scan visits, clones whole tuples through joins, and
//! hashes `Vec<SqlValue>` keys in joins and GROUP BY. For the four seeker
//! templates (`SC`/`KW`/`MC`/`C`) all of that work is wasted: predicates,
//! join keys, and grouping keys only ever touch the integer fact columns,
//! and `COUNT(DISTINCT CellValue)` only needs value *identity*, not value
//! contents.
//!
//! This module executes those shapes positionally:
//!
//! * scans emit compact `Vec<u32>` position lists — predicates run as
//!   **batched filter kernels** straight against the [`FactTable`], no
//!   tuple is built (see *Selection-vector scans* below);
//! * the seeker self-joins (`q0.TableId = qN.TableId AND q0.RowId =
//!   qN.RowId`) become **flat hash joins**: 1–2 integer key columns pack
//!   into a `u64` (3–4 into a `u128`) and probe a CSR
//!   [`JoinTable`](crate::hashtable::JoinTable) built with two counting
//!   passes — zero per-key allocations, one hash per row (see *Flat
//!   join/group tables* below);
//! * `GROUP BY` over integer fact columns maps packed keys to **dense
//!   group ids** through an open-addressing
//!   [`GroupIndex`](crate::hashtable::GroupIndex), with aggregate state in
//!   struct-of-arrays vectors and `COUNT(DISTINCT CellValue)` counted by
//!   per-group sort-unique over gathered dictionary codes (column store)
//!   or dense string ids (row store) — never an owned `SqlValue`, never a
//!   per-group hash set;
//! * only the final projection materializes `SqlValue` rows.
//!
//! [`plan_positional`] recognizes eligible plans; anything it cannot prove
//! safe falls back to the tuple executor, so the two paths always agree
//! (enforced by the `exec_parity` integration tests). Which path ran is
//! observable via [`QueryReport::path`].
//!
//! ## Selection-vector scans
//!
//! A scan's cheap predicates are compiled **once per scan** into a
//! [`FilterKernel`](blend_storage::FilterKernel) (`ScanPlan::kernel`):
//! `CellValue IN` probes become dictionary-code sets on the column store,
//! and `TableId IN / NOT IN` hash sets lower into sorted slices or dense
//! bitmaps. The scan then evaluates whole candidate batches through the
//! engine's [`FactTable::filter_batch`] / [`FactTable::filter_range`]
//! entry points, which write survivors into a **selection vector** with
//! branch-free compaction passes — the column store indexes its contiguous
//! `tables`/`rows`/`codes` arrays directly and evaluates [`Seg::Range`]
//! segments straight off the column slices, never materializing the
//! candidate position list; the row store runs one fused check per tuple.
//! Per-worker [`ScanScratch`] buffers ride the morsel path via
//! `WorkerPool::run_with`, so parallel scans reuse selection-vector
//! capacity across every morsel a worker claims instead of allocating per
//! morsel. The scalar `fast_filters_pass` survives only as the parity
//! oracle (`tests/filter_kernel_parity.rs`).
//!
//! ## Flat join/group tables
//!
//! Join and GROUP BY used to pay one `FxHashMap` operation per row — the
//! join built `FxHashMap<u64, Vec<u32>>` (a heap `Vec` per distinct key),
//! grouping kept an `FxHashSet` per group for distinct counting. Both
//! phases now run on the flat operators in [`crate::hashtable`]:
//!
//! * **Join** — build-side keys pack once into a contiguous array; a
//!   [`JoinTable`](crate::hashtable::JoinTable) (CSR bucket runs over a
//!   power-of-two bucket array, two counting passes) serves match runs in
//!   ascending build-row order. The probe loop hashes each packed probe
//!   key once and walks one bucket run.
//! * **GROUP BY** — a [`GroupIndex`](crate::hashtable::GroupIndex)
//!   (open addressing, linear probing) assigns dense group ids in
//!   first-seen order; aggregates then run column-at-a-time over
//!   `(row, group id)` pairs into flat vectors — counts in `Vec<i64>`,
//!   min/max in `Vec<u32>`, and `COUNT(DISTINCT ...)` by radix-grouping
//!   the gathered code column by group id and sort-uniquing each group's
//!   contiguous run.
//!
//! Each build records [`HashTableStats`] (build nanos, bucket count, max
//! chain, radix partition count) in [`QueryReport::hash_tables`].
//!
//! ## Parallel execution
//!
//! All three phases ride the **persistent shared worker pool** through
//! admission-controlled per-phase grants ([`ParallelCtx::admit`]; see the
//! `blend-parallel` crate docs), each with an order-preserving strategy
//! that makes parallel output **byte-identical** to the sequential path at
//! every thread count and under every grant size:
//!
//! * scans split postings/table ranges into morsels and concatenate the
//!   per-morsel position lists in morsel order;
//! * joins **radix-partition the build side by key hash** (low hash bits;
//!   see `blend_parallel::radix`), so each worker builds a flat table over
//!   a disjoint key set and no merge is needed — a key's whole match list
//!   lives in one partition, ascending because partition scatter preserves
//!   input order. The probe side is chunked in row order and emitted in
//!   chunk order;
//! * GROUP BY radix-partitions rows by group-key hash, so each worker owns
//!   its groups outright: every group's aggregate state sees **exactly the
//!   sequential update sequence** (which is why even float SUM/AVG group in
//!   parallel bit-identically), and sorting the finished groups by their
//!   first-seen row reproduces the sequential output order. Only *global*
//!   (ungrouped) aggregation still chunk-merges, gated on exactly-merging
//!   aggregates (see `PosAggSpec::merge_exact`).
//!
//! With `threads == 1` (`BLEND_THREADS=1`), inputs under the morsel
//! threshold, or the machine-wide admission budget exhausted by other
//! in-flight queries (`BLEND_MAX_CONCURRENT_GRANTS`), every phase takes
//! its plain sequential loop on the query's own thread — concurrent load
//! degrades worker counts gracefully instead of oversubscribing, and
//! partitioning follows the *granted* width, which the order-preserving
//! merges make invisible in the output. Pool-backed phases record
//! partition counts, granted workers, and per-worker timings in
//! [`QueryReport::parallel`].
//!
//! ## Memory governance
//!
//! Every allocation-heavy site reserves bytes from the query's
//! [`blend_parallel::QueryMemory`] scope *before* allocating (see the
//! `blend_parallel::memory` crate docs for the reservation protocol and
//! degradation ladder):
//!
//! * each intermediate [`PosBatch`] **carries the reservation covering its
//!   position data** — consuming a batch (a join input, a filtered
//!   rebuild) or abandoning it on an error drops the reservation with it,
//!   so accounting follows batch lifetime with no explicit release;
//! * the join build and group index reserve through
//!   [`blend_parallel::reserve_laddered`] with a width-parameterized cost
//!   (`JoinTable::estimate_bytes` / `GroupIndex::estimate_bytes` plus
//!   radix scratch): on failure the phase retries at half width, then
//!   sequentially, and the chosen width feeds the partition math — the
//!   byte-identical-across-widths contract above is what makes ladder
//!   narrowing invisible in results;
//! * scratch (per-worker selection vectors, radix arrays, gathered key and
//!   aggregate columns) and outputs are reserved post-sizing; a failed
//!   reservation propagates `BlendError::MemoryExceeded` through the same
//!   typed-error channel as cancellation, and the no-partial-results
//!   machinery discards partials via `Drop`.

use std::sync::Arc;
use std::time::Instant;

use blend_common::{FxHashMap, FxHashSet};
use blend_parallel::{
    morselize, partition_count, radix_partition, radix_scratch_bytes, reserve_laddered, split_even,
    Interrupt, MemoryReservation, Morsel, ParallelCtx, RadixPartitions,
};
use blend_storage::{FactTable, ScanScratch, ValueProbe};

use crate::exec::HashTableStats;
use crate::hashtable::{GroupIndex, JoinKey, JoinTable, PROBE_BLOCK};

use crate::ast::{AggFunc, BinOp, UnaryOp};
use crate::exec::{self, AggState, ParallelPhase, QueryReport, ResultSet, ScanReport, Tuple};
use crate::expr::{
    combine_and, combine_or, eval_abs_value, eval_cast_int_value, eval_cmp_arith, eval_unary_value,
    CExpr,
};
use crate::plan::{identity_scan, AccessPath, AggPlan, QueryPlan, ScanPlan, Tree};
use crate::value::SqlValue;
use blend_common::Result;

/// Width of the canonical fact tuple.
const FACT_WIDTH: usize = 6;

/// Slot-count floor below which the group upsert skips slot prefetching:
/// a table this small lives in cache already, so the prefetch would be
/// pure overhead.
const PREFETCH_MIN_SLOTS: usize = 1 << 14;

/// The three u32-valued fact columns usable as join/group keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum IntCol {
    Table,
    Column,
    Row,
}

impl IntCol {
    fn from_offset(off: usize) -> Option<IntCol> {
        match off {
            1 => Some(IntCol::Table),
            2 => Some(IntCol::Column),
            3 => Some(IntCol::Row),
            _ => None,
        }
    }

    #[inline]
    fn at(self, table: &dyn FactTable, pos: u32) -> u32 {
        match self {
            IntCol::Table => table.table_at(pos as usize),
            IntCol::Column => table.column_at(pos as usize),
            IntCol::Row => table.row_at(pos as usize),
        }
    }

    fn gather(self, table: &dyn FactTable, positions: &[u32], out: &mut Vec<u32>) {
        match self {
            IntCol::Table => table.gather_tables(positions, out),
            IntCol::Column => table.gather_columns(positions, out),
            IntCol::Row => table.gather_rows(positions, out),
        }
    }
}

/// A compiled positional expression: like [`CExpr`], but column references
/// fetch directly from a leaf's storage position instead of a materialized
/// tuple, and constant `CellValue IN (...)` lists are specialized into
/// engine [`ValueProbe`]s (dictionary-code comparisons on the column store).
enum PExpr {
    Const(SqlValue),
    /// `CellValue` of a leaf — the only variant that allocates.
    Value(usize),
    /// An integer fact column of a leaf.
    Int(usize, IntCol),
    Superkey(usize),
    Quadrant(usize),
    /// `CellValue IN (constant strings)`, pre-compiled as an engine probe.
    InProbe {
        leaf: usize,
        probe: ValueProbe,
        negated: bool,
    },
    InSet(Box<PExpr>, Arc<FxHashSet<SqlValue>>, bool),
    IsNull(Box<PExpr>, bool),
    Unary(UnaryOp, Box<PExpr>),
    Binary(Box<PExpr>, BinOp, Box<PExpr>),
    CastInt(Box<PExpr>),
    Abs(Box<PExpr>),
}

impl PExpr {
    /// Evaluate over a positional row. `row[g - base]` is the storage
    /// position of global leaf `g`; `tables` is indexed by global leaf.
    fn eval(&self, tables: &[&dyn FactTable], base: usize, row: &[u32]) -> SqlValue {
        match self {
            PExpr::Const(v) => v.clone(),
            PExpr::Value(leaf) => {
                let pos = row[*leaf - base] as usize;
                SqlValue::Text(Arc::from(tables[*leaf].value_at(pos)))
            }
            PExpr::Int(leaf, col) => SqlValue::Int(col.at(tables[*leaf], row[*leaf - base]) as i64),
            PExpr::Superkey(leaf) => {
                SqlValue::U128(tables[*leaf].superkey_at(row[*leaf - base] as usize))
            }
            PExpr::Quadrant(leaf) => match tables[*leaf].quadrant_at(row[*leaf - base] as usize) {
                None => SqlValue::Null,
                Some(b) => SqlValue::Int(b as i64),
            },
            PExpr::InProbe {
                leaf,
                probe,
                negated,
            } => {
                // CellValue is never NULL, so this mirrors InSet on a
                // non-null text value exactly.
                let contained = tables[*leaf].probe_at(row[*leaf - base] as usize, probe);
                SqlValue::Bool(contained != *negated)
            }
            PExpr::InSet(e, set, negated) => {
                let v = e.eval(tables, base, row);
                if v.is_null() {
                    return SqlValue::Null;
                }
                SqlValue::Bool(set.contains(&v) != *negated)
            }
            PExpr::IsNull(e, negated) => {
                SqlValue::Bool(e.eval(tables, base, row).is_null() != *negated)
            }
            PExpr::Unary(op, e) => eval_unary_value(*op, e.eval(tables, base, row)),
            PExpr::Binary(l, op, r) => match op {
                BinOp::And => {
                    let lv = l.eval(tables, base, row);
                    if matches!(lv, SqlValue::Bool(false)) {
                        return SqlValue::Bool(false);
                    }
                    combine_and(lv, r.eval(tables, base, row))
                }
                BinOp::Or => {
                    let lv = l.eval(tables, base, row);
                    if matches!(lv, SqlValue::Bool(true)) {
                        return SqlValue::Bool(true);
                    }
                    combine_or(lv, r.eval(tables, base, row))
                }
                _ => eval_cmp_arith(*op, l.eval(tables, base, row), r.eval(tables, base, row)),
            },
            PExpr::CastInt(e) => eval_cast_int_value(e.eval(tables, base, row)),
            PExpr::Abs(e) => eval_abs_value(e.eval(tables, base, row)),
        }
    }

    /// Predicate view (NULL ⇒ false), mirroring `CExpr::eval_predicate`.
    #[inline]
    fn eval_predicate(&self, tables: &[&dyn FactTable], base: usize, row: &[u32]) -> bool {
        self.eval(tables, base, row).truthy()
    }

    /// Conservatively true when evaluation can only yield `Int` or `Null`.
    /// This is the condition under which partitioned f64 summation is
    /// exact: integer-valued partial sums (below 2^53) are exact in f64
    /// and their addition is associative, so regrouping across workers
    /// cannot change a SUM/AVG result.
    fn integer_valued(&self) -> bool {
        match self {
            PExpr::Int(..) | PExpr::Quadrant(_) | PExpr::CastInt(_) => true,
            PExpr::Const(v) => matches!(v, SqlValue::Int(_) | SqlValue::Null),
            PExpr::Abs(e) => e.integer_valued(),
            _ => false,
        }
    }
}

/// Compile a tuple expression into a positional one. `base` is the global
/// index of the first leaf in the schema the expression was compiled
/// against. Returns `None` for shapes the positional evaluator does not
/// handle (triggering tuple-path fallback).
fn compile_pexpr(e: &CExpr, base: usize, leaves: &[&ScanPlan]) -> Option<PExpr> {
    Some(match e {
        CExpr::Const(v) => PExpr::Const(v.clone()),
        CExpr::Col(i) => {
            let leaf = base + i / FACT_WIDTH;
            if leaf >= leaves.len() {
                return None;
            }
            match i % FACT_WIDTH {
                0 => PExpr::Value(leaf),
                4 => PExpr::Superkey(leaf),
                5 => PExpr::Quadrant(leaf),
                off => PExpr::Int(leaf, IntCol::from_offset(off)?),
            }
        }
        CExpr::Unary(op, inner) => PExpr::Unary(*op, Box::new(compile_pexpr(inner, base, leaves)?)),
        CExpr::Binary(l, op, r) => PExpr::Binary(
            Box::new(compile_pexpr(l, base, leaves)?),
            *op,
            Box::new(compile_pexpr(r, base, leaves)?),
        ),
        CExpr::InSet(inner, set, negated) => {
            let compiled = compile_pexpr(inner, base, leaves)?;
            if let PExpr::Value(leaf) = compiled {
                // Constant IN-list over CellValue: translate once into an
                // engine probe (dictionary codes on the column store).
                // Non-text constants can never equal a text cell, so
                // dropping them preserves the tuple path's semantics.
                let texts: Vec<&str> = set.iter().filter_map(SqlValue::as_str).collect();
                PExpr::InProbe {
                    leaf,
                    probe: leaves[leaf].table.make_probe(&texts),
                    negated: *negated,
                }
            } else {
                PExpr::InSet(Box::new(compiled), Arc::clone(set), *negated)
            }
        }
        CExpr::IsNull(inner, negated) => {
            PExpr::IsNull(Box::new(compile_pexpr(inner, base, leaves)?), *negated)
        }
        CExpr::CastInt(inner) => PExpr::CastInt(Box::new(compile_pexpr(inner, base, leaves)?)),
        CExpr::Abs(inner) => PExpr::Abs(Box::new(compile_pexpr(inner, base, leaves)?)),
    })
}

/// A positional join/group key column: an integer fact column of a leaf.
type PosCol = (usize, IntCol);

/// Positional operator tree (parallel to [`Tree`], leaves unwrapped).
enum PosNode {
    Scan {
        leaf: usize,
        residual: Option<PExpr>,
    },
    Join {
        left: Box<PosNode>,
        right: Box<PosNode>,
        /// Global index of the first leaf under this join.
        base: usize,
        n_left: usize,
        /// Equi-keys as (left column, right column), packed into one `u64`.
        keys: Vec<(PosCol, PosCol)>,
        residual: Option<PExpr>,
    },
}

/// One aggregate of the positional GROUP BY.
enum PosAggSpec {
    /// `COUNT(*)` — a plain counter.
    CountStar,
    /// `COUNT(DISTINCT CellValue)` over a leaf — sort-uniques dictionary
    /// codes (column store) or dense string ids (row store).
    DistinctValue { leaf: usize },
    /// `MIN(<integer fact column>)` — folds into a flat `Vec<u32>`.
    MinCol { leaf: usize, col: IntCol },
    /// `MAX(<integer fact column>)` — folds into a flat `Vec<u32>`.
    MaxCol { leaf: usize, col: IntCol },
    /// Anything else: evaluate the argument positionally and fold it into
    /// the tuple executor's [`AggState`].
    Generic { agg: usize, arg: Option<PExpr> },
}

impl PosAggSpec {
    /// True when per-chunk accumulation followed by a chunk-order merge is
    /// bit-identical to sequential accumulation: counting, distinct, and
    /// min/max states always are; SUM/AVG only when the argument is
    /// provably integer-valued (float addition is not associative). Only
    /// the *global* (ungrouped) parallel path needs this — keyed grouping
    /// radix-partitions rows by key, so every group's state sees the exact
    /// sequential update sequence and no merge happens at all.
    fn merge_exact(&self, agg_plans: &[AggPlan]) -> bool {
        match self {
            PosAggSpec::CountStar
            | PosAggSpec::DistinctValue { .. }
            | PosAggSpec::MinCol { .. }
            | PosAggSpec::MaxCol { .. } => true,
            PosAggSpec::Generic { agg, arg } => match agg_plans[*agg].func {
                AggFunc::Count | AggFunc::Min | AggFunc::Max => true,
                AggFunc::Sum | AggFunc::Avg => arg.as_ref().is_some_and(PExpr::integer_valued),
            },
        }
    }
}

/// Grouping stage shape.
struct PosGroup {
    keys: Vec<PosCol>,
    aggs: Vec<PosAggSpec>,
}

/// Projection stage shape for non-aggregated queries.
struct PosProject {
    exprs: Vec<PExpr>,
    order: Vec<PExpr>,
}

/// A plan admitted to the positional path.
pub(crate) struct PosPlan<'p> {
    leaves: Vec<&'p ScanPlan>,
    root: PosNode,
    post_filter: Option<PExpr>,
    group: Option<PosGroup>,
    project: Option<PosProject>,
}

/// Recognize a plan the positional executor can run: every leaf is a base
/// fact-table scan (possibly wrapped in identity subqueries, as the MC/C
/// templates produce), every join keys on 1–2 integer fact columns, group
/// keys are integer fact columns, and all residual/filter/projection
/// expressions compile positionally.
pub(crate) fn plan_positional(plan: &QueryPlan) -> Option<PosPlan<'_>> {
    let mut leaves: Vec<&ScanPlan> = Vec::new();
    let root = build_node(&plan.tree, &mut leaves)?;

    let post_filter = match &plan.post_filter {
        Some(f) => Some(compile_pexpr(f, 0, &leaves)?),
        None => None,
    };

    let group = match &plan.group {
        Some(g) => {
            let mut keys = Vec::with_capacity(g.group_exprs.len());
            for e in &g.group_exprs {
                match compile_pexpr(e, 0, &leaves)? {
                    PExpr::Int(leaf, col) => keys.push((leaf, col)),
                    _ => return None,
                }
            }
            // Keys pack into at most 128 bits (32 each).
            if keys.len() > 4 {
                return None;
            }
            let mut aggs = Vec::with_capacity(g.aggs.len());
            for (i, a) in g.aggs.iter().enumerate() {
                aggs.push(agg_spec(i, a, &leaves)?);
            }
            Some(PosGroup { keys, aggs })
        }
        None => None,
    };

    let project = if group.is_none() {
        let mut exprs = Vec::with_capacity(plan.projection.len());
        for (_, e) in &plan.projection {
            exprs.push(compile_pexpr(e, 0, &leaves)?);
        }
        let mut order = Vec::with_capacity(plan.order_by.len());
        for (e, _) in &plan.order_by {
            order.push(compile_pexpr(e, 0, &leaves)?);
        }
        Some(PosProject { exprs, order })
    } else {
        None
    };

    Some(PosPlan {
        leaves,
        root,
        post_filter,
        group,
        project,
    })
}

fn agg_spec(idx: usize, plan: &AggPlan, leaves: &[&ScanPlan]) -> Option<PosAggSpec> {
    match (plan.func, plan.distinct, &plan.arg) {
        (AggFunc::Count, false, None) => Some(PosAggSpec::CountStar),
        (AggFunc::Count, true, Some(CExpr::Col(i)))
            if i % FACT_WIDTH == 0 && i / FACT_WIDTH < leaves.len() =>
        {
            Some(PosAggSpec::DistinctValue {
                leaf: i / FACT_WIDTH,
            })
        }
        // MIN/MAX straight over an integer fact column fold into flat u32
        // vectors (DISTINCT is irrelevant to min/max but kept on the
        // generic path for byte-identical state handling).
        (AggFunc::Min | AggFunc::Max, false, Some(e)) => Some(match compile_pexpr(e, 0, leaves)? {
            PExpr::Int(leaf, col) if plan.func == AggFunc::Min => PosAggSpec::MinCol { leaf, col },
            PExpr::Int(leaf, col) => PosAggSpec::MaxCol { leaf, col },
            other => PosAggSpec::Generic {
                agg: idx,
                arg: Some(other),
            },
        }),
        (_, _, arg) => {
            let arg = match arg {
                Some(e) => Some(compile_pexpr(e, 0, leaves)?),
                None => None,
            };
            Some(PosAggSpec::Generic { agg: idx, arg })
        }
    }
}

fn build_node<'p>(tree: &'p Tree, leaves: &mut Vec<&'p ScanPlan>) -> Option<PosNode> {
    match tree {
        Tree::Leaf(input) => {
            // Unwrap identity subqueries down to the base scan; the scan
            // must expose the full 6-column fact layout for offset math.
            let scan = identity_scan(tree)?;
            if scan.schema.len() != FACT_WIDTH || input.schema().len() != FACT_WIDTH {
                return None;
            }
            let leaf = leaves.len();
            leaves.push(scan);
            let residual = match &scan.residual {
                Some(r) => {
                    let leaf_slice = &leaves[..];
                    Some(compile_pexpr(r, leaf, leaf_slice)?)
                }
                None => None,
            };
            Some(PosNode::Scan { leaf, residual })
        }
        Tree::Join {
            left,
            right,
            keys,
            residual,
            ..
        } => {
            let base = leaves.len();
            let l = build_node(left, leaves)?;
            let n_left = leaves.len() - base;
            let r = build_node(right, leaves)?;
            // 1–2 key columns pack into a u64, 3–4 into a u128.
            if keys.is_empty() || keys.len() > 4 {
                return None;
            }
            let mut pos_keys = Vec::with_capacity(keys.len());
            for &(lk, rk) in keys {
                let lcol = IntCol::from_offset(lk % FACT_WIDTH)?;
                let rcol = IntCol::from_offset(rk % FACT_WIDTH)?;
                let lleaf = base + lk / FACT_WIDTH;
                let rleaf = base + n_left + rk / FACT_WIDTH;
                if lleaf >= base + n_left || rleaf >= leaves.len() {
                    return None;
                }
                pos_keys.push(((lleaf, lcol), (rleaf, rcol)));
            }
            let residual = match residual {
                Some(r) => Some(compile_pexpr(r, base, leaves)?),
                None => None,
            };
            Some(PosNode::Join {
                left: Box::new(l),
                right: Box::new(r),
                base,
                n_left,
                keys: pos_keys,
                residual,
            })
        }
    }
}

// ---- execution -------------------------------------------------------------

/// A batch of positional rows: `stride` positions per row, one per leaf of
/// the producing subtree, stored flat. Each batch carries the memory
/// reservation covering its `data`, so intermediate results stay accounted
/// against the query's budget for exactly as long as they are alive —
/// dropping a batch (consumed by a join, discarded on error) releases its
/// bytes automatically.
struct PosBatch {
    stride: usize,
    data: Vec<u32>,
    mem: Option<MemoryReservation>,
}

impl PosBatch {
    fn len(&self) -> usize {
        self.data.len().checked_div(self.stride).unwrap_or(0)
    }

    #[inline]
    fn row(&self, i: usize) -> &[u32] {
        &self.data[i * self.stride..(i + 1) * self.stride]
    }

    /// One column (positions of a single leaf, subtree-local index).
    fn col(&self, local: usize) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.len());
        let mut i = local;
        while i < self.data.len() {
            out.push(self.data[i]);
            i += self.stride;
        }
        out
    }
}

/// Execute an admitted plan. `par` is the shared worker-pool context;
/// every phase falls back to its sequential loop when `par` says an input
/// is too small (or the pool has one thread).
/// How often (in rows) sequential inner loops poll the interrupt. A
/// power-of-two mask keeps the poll to one branch + one relaxed load per
/// `INTERRUPT_STRIDE` rows — unmeasurable against per-row expression work.
const INTERRUPT_STRIDE: usize = 4096;

#[inline]
fn poll_every(i: usize) -> bool {
    i & (INTERRUPT_STRIDE - 1) == 0
}

pub(crate) fn execute(
    plan: &QueryPlan,
    pos: &PosPlan<'_>,
    report: &mut QueryReport,
    par: &ParallelCtx,
) -> Result<ResultSet> {
    par.check_interrupt()?;
    let tables: Vec<&dyn FactTable> = pos.leaves.iter().map(|s| s.table.as_ref()).collect();

    let mut batch = exec_node(&pos.root, pos, &tables, report, par)?;

    if let Some(f) = &pos.post_filter {
        let mut data = Vec::with_capacity(batch.data.len());
        for i in 0..batch.len() {
            if poll_every(i) {
                par.check_interrupt()?;
            }
            let row = batch.row(i);
            if f.eval_predicate(&tables, 0, row) {
                data.extend_from_slice(row);
            }
        }
        // The surviving rows fit under the input batch's reservation;
        // shrink it to the compacted size instead of re-reserving.
        let dropped = batch.data.len() - data.len();
        let mut mem = batch.mem.take();
        if let Some(m) = &mut mem {
            m.shrink(dropped * 4);
        }
        batch = PosBatch {
            stride: batch.stride,
            data,
            mem,
        };
    }

    match (&pos.group, &plan.group) {
        (Some(shape), Some(gplan)) => {
            let tuples = exec_group(shape, &gplan.aggs, &batch, &tables, report, par)?;
            Ok(exec::project_sort_limit(plan, &tuples, report))
        }
        _ => {
            let project = pos
                .project
                .as_ref()
                .expect("non-grouped positional plan carries a projection");
            // Late materialization: SqlValue rows exist only here.
            // Superkey and Quadrant output columns are pre-gathered in bulk
            // through the fact tables' `gather_*` kernels (one virtual
            // dispatch per column instead of one per row, and the column
            // stores read their flat arrays sequentially); every other
            // expression still evaluates row at a time below.
            enum PreCol {
                Superkeys(Vec<u128>),
                Quadrants(Vec<Option<bool>>),
            }
            let mut cache = ColCache::new(&batch);
            let mut pre_gather = |e: &PExpr| -> Option<PreCol> {
                match e {
                    PExpr::Superkey(leaf) => {
                        let mut v = Vec::with_capacity(batch.len());
                        tables[*leaf].gather_superkeys(cache.positions(*leaf), &mut v);
                        Some(PreCol::Superkeys(v))
                    }
                    PExpr::Quadrant(leaf) => {
                        let mut v = Vec::with_capacity(batch.len());
                        tables[*leaf].gather_quadrants(cache.positions(*leaf), &mut v);
                        Some(PreCol::Quadrants(v))
                    }
                    _ => None,
                }
            };
            let expr_pre: Vec<Option<PreCol>> = project.exprs.iter().map(&mut pre_gather).collect();
            let order_pre: Vec<Option<PreCol>> =
                project.order.iter().map(&mut pre_gather).collect();
            // Pre-gathered columns must materialize exactly what
            // `PExpr::eval` would have (see its Superkey/Quadrant arms).
            let materialize = |pre: &Option<PreCol>, e: &PExpr, i: usize, row: &[u32]| match pre {
                Some(PreCol::Superkeys(v)) => SqlValue::U128(v[i]),
                Some(PreCol::Quadrants(v)) => match v[i] {
                    None => SqlValue::Null,
                    Some(b) => SqlValue::Int(b as i64),
                },
                None => e.eval(&tables, 0, row),
            };
            let mut decorated: Vec<(Vec<SqlValue>, Tuple)> = Vec::with_capacity(batch.len());
            for i in 0..batch.len() {
                if poll_every(i) {
                    par.check_interrupt()?;
                }
                let row = batch.row(i);
                let out: Tuple = project
                    .exprs
                    .iter()
                    .zip(&expr_pre)
                    .map(|(e, pre)| materialize(pre, e, i, row))
                    .collect();
                let keys: Vec<SqlValue> = project
                    .order
                    .iter()
                    .zip(&order_pre)
                    .map(|(e, pre)| materialize(pre, e, i, row))
                    .collect();
                decorated.push((keys, out));
            }
            Ok(exec::finish_decorated(plan, decorated, report))
        }
    }
}

fn exec_node(
    node: &PosNode,
    pos: &PosPlan<'_>,
    tables: &[&dyn FactTable],
    report: &mut QueryReport,
    par: &ParallelCtx,
) -> Result<PosBatch> {
    match node {
        PosNode::Scan { leaf, residual } => exec_scan(
            pos.leaves[*leaf],
            *leaf,
            residual.as_ref(),
            tables,
            report,
            par,
        ),
        PosNode::Join {
            left,
            right,
            base,
            n_left,
            keys,
            residual,
        } => {
            let lb = exec_node(left, pos, tables, report, par)?;
            let rb = exec_node(right, pos, tables, report, par)?;
            exec_join(
                lb,
                rb,
                *base,
                *n_left,
                keys,
                residual.as_ref(),
                tables,
                report,
                par,
            )
        }
    }
}

/// One ordered input segment of a filtered scan: a postings list or a
/// contiguous position range. Segments in access-path order, positions in
/// segment order, reproduce the sequential visit order exactly — which is
/// what makes the morsel-order merge byte-identical.
enum Seg<'a> {
    /// Inverted-index postings of one driving value.
    Postings(&'a [u32]),
    /// Physical positions `[lo, hi)` (a table range or the whole table).
    Range(usize, usize),
}

impl Seg<'_> {
    fn len(&self) -> usize {
        match self {
            Seg::Postings(p) => p.len(),
            Seg::Range(lo, hi) => hi - lo,
        }
    }
}

/// Positional scan: emit surviving positions; no tuple is materialized.
/// Mirrors the tuple executor's visit order and telemetry exactly. Large
/// filtered scans are morsel-partitioned across the pool; per-morsel
/// position lists concatenate in morsel order, so the emitted batch is
/// identical at every thread count.
fn exec_scan(
    scan: &ScanPlan,
    leaf: usize,
    residual: Option<&PExpr>,
    tables: &[&dyn FactTable],
    report: &mut QueryReport,
    par: &ParallelCtx,
) -> Result<PosBatch> {
    par.check_interrupt()?;
    let span = blend_obs::span_owned(format!("scan:{}", scan.alias));
    span.attr_str("access", scan.access.label());
    let table = scan.table.as_ref();
    let mut out: Vec<u32> = Vec::new();
    let mut scanned = 0usize;

    // Unfiltered index scans copy postings/ranges wholesale — the common
    // SC/KW case (no TID injection) never touches per-position logic.
    let unfiltered = residual.is_none() && scan.fast.is_empty();
    if unfiltered {
        match &scan.access {
            AccessPath::ValueIndex { .. } => {
                for v in &scan.driving_values {
                    out.extend_from_slice(table.postings(v));
                }
            }
            AccessPath::TableIndex { .. } => {
                for &t in &scan.driving_tables {
                    out.extend(table.table_postings(t).map(|p| p as u32));
                }
            }
            AccessPath::SeqScan { .. } => {
                out.extend(0..table.len() as u32);
            }
        }
        span.attr_u64("scanned", out.len() as u64);
        span.attr_u64("rows", out.len() as u64);
        report.scans.push(ScanReport {
            alias: scan.alias.clone(),
            access: scan.access.label().to_string(),
            estimated: scan.access.estimated(),
            scanned: out.len(),
            emitted: out.len(),
        });
        let mem = Some(par.memory().try_reserve("scan_out", out.capacity() * 4)?);
        return Ok(PosBatch {
            stride: 1,
            data: out,
            mem,
        });
    }

    // Ordered segments of the driving access path; a sequential pass over
    // them is exactly the original per-position loop.
    let segs: Vec<Seg<'_>> = match &scan.access {
        AccessPath::ValueIndex { .. } => scan
            .driving_values
            .iter()
            .map(|v| Seg::Postings(table.postings(v)))
            .collect(),
        AccessPath::TableIndex { .. } => scan
            .driving_tables
            .iter()
            .map(|&t| {
                let r = table.table_postings(t);
                Seg::Range(r.start, r.end)
            })
            .collect(),
        AccessPath::SeqScan { .. } => vec![Seg::Range(0, table.len())],
    };

    // One morsel = one batched kernel evaluation. Kernel survivors land
    // either straight in `out` (no residual — the common case) or in the
    // worker's reusable selection-vector scratch for the scalar residual
    // pass. Returns the number of candidate positions visited.
    let kernel = &scan.kernel;
    let scan_morsel = |m: &Morsel, scratch: &mut ScanScratch, out: &mut Vec<u32>| -> usize {
        scratch.sel.clear();
        let dst: &mut Vec<u32> = if residual.is_some() {
            &mut scratch.sel
        } else {
            &mut *out
        };
        let visited = match segs[m.segment] {
            Seg::Postings(p) => {
                let candidates = &p[m.start..m.end];
                table.filter_batch(kernel, candidates, dst);
                candidates.len()
            }
            // Ranges evaluate straight off the engine's column slices; the
            // candidate position list is never materialized.
            Seg::Range(lo, _) => {
                table.filter_range(kernel, lo + m.start, lo + m.end, dst);
                m.len()
            }
        };
        if let Some(res) = residual {
            for &pos in &scratch.sel {
                if res.eval_predicate(tables, leaf, std::slice::from_ref(&pos)) {
                    out.push(pos);
                }
            }
        }
        visited
    };

    let total: usize = segs.iter().map(Seg::len).sum();
    // Admission: a multi-morsel scan asks the controller for workers; an
    // empty grant (threads == 1, tiny input, or the budget held by other
    // in-flight queries) means the scan runs inline on the calling thread.
    // A single morsel would run inline anyway, so its grant is returned
    // immediately.
    let admitted = par.admit(total).and_then(|grant| {
        let lens: Vec<usize> = segs.iter().map(Seg::len).collect();
        let morsels = morselize(&lens, par.morsel_len());
        (morsels.len() > 1).then_some((grant, morsels))
    });
    let intr = par.interrupt();
    // Selection-vector scratch: one morsel-sized vector per participating
    // worker (or one total on the sequential path). Held only for the
    // duration of the scan.
    let scratch_width = admitted.as_ref().map_or(1, |(g, _)| g.granted());
    let _scratch_mem = par
        .memory()
        .try_reserve("scan_scratch", scratch_width * par.morsel_len() * 4)?;
    match admitted {
        Some((grant, morsels)) => {
            // Per-worker scratch: selection-vector capacity is allocated
            // once per worker, not once per morsel. Workers poll the
            // interrupt per morsel and bail with an empty partial; the
            // check after the run discards everything on Err (the
            // no-partial-results guarantee).
            let run = grant
                .pool()
                .run_with(morsels.len(), ScanScratch::default, |scratch, i| {
                    if intr.is_set() {
                        return (Vec::new(), 0);
                    }
                    let mut local = Vec::new();
                    let local_scanned = scan_morsel(&morsels[i], scratch, &mut local);
                    (local, local_scanned)
                });
            par.check_interrupt()?;
            out.reserve(run.results.iter().map(|(l, _)| l.len()).sum());
            for (local, local_scanned) in run.results {
                out.extend_from_slice(&local);
                scanned += local_scanned;
            }
            report.parallel.push(ParallelPhase {
                phase: format!("scan:{}", scan.alias),
                partitions: morsels.len(),
                granted: grant.granted(),
                worker_nanos: run.worker_nanos,
            });
        }
        _ => {
            // The sequential loop visits morsel-sized sub-ranges (kernel
            // survivors concatenate identically to whole-segment calls) so
            // a deadline is observed mid-segment, not only between
            // segments.
            let mut scratch = ScanScratch::default();
            let lens: Vec<usize> = segs.iter().map(Seg::len).collect();
            for m in morselize(&lens, par.morsel_len()) {
                par.check_interrupt()?;
                scanned += scan_morsel(&m, &mut scratch, &mut out);
            }
        }
    }

    span.attr_u64("scanned", scanned as u64);
    span.attr_u64("rows", out.len() as u64);
    report.scans.push(ScanReport {
        alias: scan.alias.clone(),
        access: scan.access.label().to_string(),
        estimated: scan.access.estimated(),
        scanned,
        emitted: out.len(),
    });
    let mem = Some(par.memory().try_reserve("scan_out", out.capacity() * 4)?);
    Ok(PosBatch {
        stride: 1,
        data: out,
        mem,
    })
}

/// Pack 1–2 u32 key columns into one `u64` per row (shift-fold, so a
/// single column packs to its plain value).
///
/// The common arities get dedicated zip loops over the column slices —
/// straight-line widen/shift/or chains the auto-vectorizer handles — with
/// the generic shift-fold kept as the fallback (and the shape the
/// specializations must match bit for bit).
fn pack_rows64(cols: &[Vec<u32>], n: usize) -> Vec<u64> {
    match cols {
        [a] => a[..n].iter().map(|&x| x as u64).collect(),
        [a, b] => a[..n]
            .iter()
            .zip(&b[..n])
            .map(|(&x, &y)| ((x as u64) << 32) | y as u64)
            .collect(),
        _ => (0..n)
            .map(|i| {
                let mut key = 0u64;
                for col in cols {
                    key = (key << 32) | col[i] as u64;
                }
                key
            })
            .collect(),
    }
}

/// Pack 3–4 u32 key columns into one `u128` per row (same shift-fold and
/// specialization scheme as [`pack_rows64`], one lane wider).
fn pack_rows128(cols: &[Vec<u32>], n: usize) -> Vec<u128> {
    match cols {
        [a, b, c] => (0..n)
            .map(|i| ((a[i] as u128) << 64) | ((b[i] as u128) << 32) | c[i] as u128)
            .collect(),
        [a, b, c, d] => (0..n)
            .map(|i| {
                ((a[i] as u128) << 96)
                    | ((b[i] as u128) << 64)
                    | ((c[i] as u128) << 32)
                    | d[i] as u128
            })
            .collect(),
        _ => (0..n)
            .map(|i| {
                let mut key = 0u128;
                for col in cols {
                    key = (key << 32) | col[i] as u128;
                }
                key
            })
            .collect(),
    }
}

/// Per-leaf position columns of a batch, extracted at most once. The MC
/// join keys (TableId, RowId) and the SC group keys (TableId, ColumnId)
/// both reference one leaf twice — without the cache every key column
/// would re-copy the same strided positions. Stride-1 batches borrow the
/// batch's data directly, copying nothing.
struct ColCache<'b> {
    batch: &'b PosBatch,
    cols: Vec<Option<Vec<u32>>>,
}

impl<'b> ColCache<'b> {
    fn new(batch: &'b PosBatch) -> Self {
        ColCache {
            batch,
            cols: vec![None; batch.stride],
        }
    }

    /// Positions of the (subtree-local) leaf column.
    fn positions(&mut self, local: usize) -> &[u32] {
        if self.batch.stride == 1 {
            return &self.batch.data;
        }
        self.cols[local].get_or_insert_with(|| self.batch.col(local))
    }
}

/// Positional hash join on packed `u64`/`u128` keys through the flat
/// [`JoinTable`]. Build/probe side selection and output row order mirror
/// the tuple executor's `hash_join` so the two paths produce byte-identical
/// results.
///
/// On large inputs the build side is **radix-partitioned by key hash** (low
/// hash bits), so each pool worker builds a flat table over a disjoint key
/// set — no partial-map merge exists; a key's whole match run lives in one
/// partition and stays ascending because partition scatter preserves input
/// order. The probe side is chunked in row order with outputs concatenated
/// in chunk order — the sequential probe order.
#[allow(clippy::too_many_arguments)]
fn exec_join(
    left: PosBatch,
    right: PosBatch,
    base: usize,
    n_left: usize,
    keys: &[(PosCol, PosCol)],
    residual: Option<&PExpr>,
    tables: &[&dyn FactTable],
    report: &mut QueryReport,
    par: &ParallelCtx,
) -> Result<PosBatch> {
    par.check_interrupt()?;
    let build_left = left.len() <= right.len();
    let (build, probe) = if build_left {
        (&left, &right)
    } else {
        (&right, &left)
    };
    let right_base = base + n_left;

    // Key columns for one side, gathered in bulk (one virtual dispatch per
    // column, not per row; positions extracted once per leaf).
    let side_keys = |batch: &PosBatch, side_base: usize, pick_left: bool| -> Vec<Vec<u32>> {
        let mut cache = ColCache::new(batch);
        keys.iter()
            .map(|&(lk, rk)| {
                let (leaf, col) = if pick_left { lk } else { rk };
                let mut vals = Vec::with_capacity(batch.len());
                col.gather(tables[leaf], cache.positions(leaf - side_base), &mut vals);
                vals
            })
            .collect()
    };
    let build_keys = side_keys(
        build,
        if build_left { base } else { right_base },
        build_left,
    );
    let probe_keys = side_keys(
        probe,
        if build_left { right_base } else { base },
        !build_left,
    );

    // Monomorphize on packed key width: u64 covers 1–2 key columns, u128
    // covers 3–4.
    let (out, n_out) = if keys.len() <= 2 {
        join_flat(
            build,
            probe,
            &pack_rows64(&build_keys, build.len()),
            &pack_rows64(&probe_keys, probe.len()),
            build_left,
            base,
            residual,
            tables,
            report,
            par,
        )
    } else {
        join_flat(
            build,
            probe,
            &pack_rows128(&build_keys, build.len()),
            &pack_rows128(&probe_keys, probe.len()),
            build_left,
            base,
            residual,
            tables,
            report,
            par,
        )
    }?;
    let stride = left.stride + right.stride;
    report.joins.push((build.len(), probe.len(), n_out));
    // The joined batch gets its own reservation; the input batches drop at
    // the end of this call, releasing theirs.
    let mem = Some(par.memory().try_reserve("join_out", out.capacity() * 4)?);
    Ok(PosBatch {
        stride,
        data: out,
        mem,
    })
}

/// The key-width-generic core of [`exec_join`]: build flat tables over the
/// (possibly radix-partitioned) build side, then probe in row order.
#[allow(clippy::too_many_arguments)]
fn join_flat<K: JoinKey>(
    build: &PosBatch,
    probe: &PosBatch,
    build_keys: &[K],
    probe_keys: &[K],
    build_left: bool,
    base: usize,
    residual: Option<&PExpr>,
    tables: &[&dyn FactTable],
    report: &mut QueryReport,
    par: &ParallelCtx,
) -> Result<(Vec<u32>, usize)> {
    let intr = par.interrupt();
    let n_build = build.len();
    let build_span = blend_obs::span("join.build");
    build_span.attr_u64("rows", n_build as u64);
    let t0 = Instant::now();
    // The packed key arrays were allocated by the caller; account for them
    // for the duration of the join.
    let _key_mem = par.memory().try_reserve(
        "join_keys",
        (build_keys.len() + probe_keys.len()) * std::mem::size_of::<K>(),
    )?;
    // Admission for the build phase: the radix fanout is sized from the
    // *granted* worker count, so a degraded grant builds fewer partitions
    // (the output is partition-count-invariant either way). The grant is
    // released when `build_grant` drops, before the probe phase asks for
    // its own.
    //
    // Memory ladder: price the build at the granted width (the parallel
    // path additionally hashes every row and radix-scatters it); under
    // pressure retry at half width, then the sequential single-table path,
    // and only then resolve `MemoryExceeded`. Output stays byte-identical
    // at every width because the merge is partition-count-invariant.
    let build_grant = par.admit(n_build);
    let desired = build_grant.as_ref().map_or(1, |g| g.granted());
    let (_build_mem, build_width, _rung) =
        reserve_laddered(par.memory(), "join_build", desired, |w| {
            let mut bytes = JoinTable::estimate_bytes(n_build);
            if w > 1 {
                bytes += n_build * 12 + radix_scratch_bytes(n_build, partition_count(w, n_build));
            }
            bytes
        })?;
    let build_grant = build_grant
        .filter(|_| build_width > 1)
        .map(|g| g.narrowed(build_width));
    let n_parts = build_grant
        .as_ref()
        .map_or(1, |_| partition_count(build_width, n_build));
    let pmask = (n_parts - 1) as u64;

    let flat_tables: Vec<JoinTable> = if n_parts == 1 {
        vec![JoinTable::build(build_keys, None)?]
    } else {
        let grant = build_grant
            .as_ref()
            .expect("n_parts > 1 only under a grant");
        // Radix-partition build rows by the low hash bits; each partition's
        // row list is ascending, so per-key match runs stay ascending.
        // `hash_all` runs the batched 8-lane mixers on the vector path and
        // the per-key loop otherwise — identical values either way.
        let hashes: Vec<u64> = K::hash_all(build_keys, "join_build_hashes")?;
        let parts: Vec<u32> = hashes.iter().map(|&h| (h & pmask) as u32).collect();
        let rp = radix_partition(&parts, n_parts)?;
        // Workers poll the interrupt per partition: an interrupted build
        // produces empty tables, which the check below throws away. A
        // worker whose table build fails its allocation surfaces the typed
        // error here, discarding every partial the same way.
        let run = grant.pool().run(n_parts, |p| {
            let part = if intr.is_set() { &[][..] } else { rp.part(p) };
            JoinTable::build_prehashed(&hashes, Some(part))
        });
        report.parallel.push(ParallelPhase {
            phase: "join-build".to_string(),
            partitions: n_parts,
            granted: build_width,
            worker_nanos: run.worker_nanos,
        });
        run.results.into_iter().collect::<Result<Vec<_>>>()?
    };
    drop(build_grant);
    par.check_interrupt()?;
    let buckets: usize = flat_tables.iter().map(JoinTable::buckets).sum();
    let max_chain = flat_tables
        .iter()
        .map(JoinTable::max_chain)
        .max()
        .unwrap_or(0);
    build_span.attr_u64("buckets", buckets as u64);
    build_span.attr_u64("max_chain", max_chain as u64);
    build_span.attr_u64("partitions", n_parts as u64);
    drop(build_span);
    report.hash_tables.push(HashTableStats {
        phase: "join".to_string(),
        build_nanos: t0.elapsed().as_nanos() as u64,
        buckets,
        max_chain,
        partitions: n_parts,
    });

    let stride = build.stride + probe.stride;
    // Probe rows are consumed in [`PROBE_BLOCK`]-row blocks. On the vector
    // path each block's keys go through the batched 8-lane mixers and the
    // destination buckets are prefetched (heads first, then the entry runs
    // the heads name) before any row walks its chain, so `matches_hashed`
    // mostly hits cache. The scalar path hashes the same block one key at a
    // time and skips the prefetch — the oracle shape. Blocking never
    // reorders anything: rows are still probed front to back, so the output
    // runs are byte-identical on both paths.
    let probe_chunk = |range: std::ops::Range<usize>| -> (Vec<u32>, usize) {
        let mut out: Vec<u32> = Vec::new();
        let mut joined: Vec<u32> = vec![0; stride];
        let mut n_out = 0usize;
        let vector = blend_simd::enabled();
        let mut hash_buf = [0u64; PROBE_BLOCK];
        let mut start = range.start;
        'blocks: while start < range.end {
            let end = (start + PROBE_BLOCK).min(range.end);
            let keys = &probe_keys[start..end];
            let hashes = &mut hash_buf[..keys.len()];
            if vector {
                K::hash_block(keys, hashes);
                if n_parts == 1 {
                    let flat = &flat_tables[0];
                    for &h in hashes.iter() {
                        flat.prefetch(h);
                    }
                    for &h in hashes.iter() {
                        flat.prefetch_entries(h);
                    }
                } else {
                    // Partitioned tables are small; pulling just the bucket
                    // heads ahead of the walk is the win here.
                    for &h in hashes.iter() {
                        flat_tables[(h & pmask) as usize].prefetch(h);
                    }
                }
            } else {
                for (o, k) in hashes.iter_mut().zip(keys) {
                    *o = k.hash64();
                }
            }
            for (j, (&key, &hash)) in keys.iter().zip(hashes.iter()).enumerate() {
                let i = start + j;
                if poll_every(i) && intr.is_set() {
                    break 'blocks;
                }
                // One hash per probe row selects both the radix partition
                // (low bits) and, inside `matches_hashed`, the bucket
                // (bits 32..).
                let flat = &flat_tables[(hash & pmask) as usize];
                let pt = probe.row(i);
                for bi in flat.matches_hashed(build_keys, key, hash) {
                    let bt = build.row(bi as usize);
                    let (lt, rt) = if build_left { (bt, pt) } else { (pt, bt) };
                    joined[..lt.len()].copy_from_slice(lt);
                    joined[lt.len()..].copy_from_slice(rt);
                    if let Some(res) = residual {
                        if !res.eval_predicate(tables, base, &joined) {
                            continue;
                        }
                    }
                    out.extend_from_slice(&joined);
                    n_out += 1;
                }
            }
            start = end;
        }
        (out, n_out)
    };

    let probe_span = blend_obs::span("join.probe");
    probe_span.attr_u64("rows", probe.len() as u64);
    let (out, n_out) = if let Some(grant) = par.admit(probe.len()) {
        let chunks = split_even(probe.len(), grant.granted());
        let run = grant
            .pool()
            .run(chunks.len(), |ci| probe_chunk(chunks[ci].clone()));
        report.parallel.push(ParallelPhase {
            phase: "join-probe".to_string(),
            partitions: chunks.len(),
            granted: grant.granted(),
            worker_nanos: run.worker_nanos,
        });
        par.check_interrupt()?;
        let mut out = Vec::with_capacity(run.results.iter().map(|(o, _)| o.len()).sum());
        let mut n_out = 0usize;
        for (local, local_n) in run.results {
            out.extend_from_slice(&local);
            n_out += local_n;
        }
        (out, n_out)
    } else {
        let result = probe_chunk(0..probe.len());
        par.check_interrupt()?;
        result
    };
    probe_span.attr_u64("matched", n_out as u64);
    Ok((out, n_out))
}

// ---- aggregation -----------------------------------------------------------

/// Pre-gathered input column of one aggregate spec (one bulk gather per
/// spec, done once before any partitioning so every radix partition reads
/// the same flat arrays).
enum SpecData {
    /// `COUNT(*)` / generic aggregates: nothing to pre-gather.
    None,
    /// Distinct via dictionary codes (column store), indexed by batch row.
    Codes(Vec<u32>),
    /// Distinct via strings (row store): the leaf's storage positions per
    /// batch row; dense string ids are assigned per partition.
    Positions(Vec<u32>),
    /// `MinCol`/`MaxCol` argument column, indexed by batch row.
    Ints(Vec<u32>),
}

/// Positional GROUP BY: group keys pack into a `u64` (≤2 columns, the
/// SC/KW shape) or a `u128` (3–4 columns, the C shape); a flat
/// [`GroupIndex`] assigns dense group ids in first-seen order and
/// aggregates accumulate column-at-a-time into struct-of-arrays state.
/// Group output order is first-seen, matching the tuple executor.
///
/// Large keyed inputs radix-partition rows by key hash so each pool worker
/// owns its groups outright — per-group update order is exactly the
/// sequential ascending row order (no merge, no exactness gate), and
/// sorting finished groups by first-seen row recovers the sequential
/// output order. Global (ungrouped) aggregation chunk-merges instead,
/// gated on exactly-merging aggregates ([`PosAggSpec::merge_exact`]).
fn exec_group<'a>(
    shape: &PosGroup,
    agg_plans: &[AggPlan],
    batch: &PosBatch,
    tables: &'a [&'a dyn FactTable],
    report: &mut QueryReport,
    par: &ParallelCtx,
) -> Result<Vec<Tuple>> {
    par.check_interrupt()?;
    let n_rows = batch.len();
    let mut cache = ColCache::new(batch);

    // Gather key columns in bulk (positions extracted once per leaf).
    let key_cols: Vec<Vec<u32>> = shape
        .keys
        .iter()
        .map(|&(leaf, col)| {
            let mut vals = Vec::with_capacity(n_rows);
            col.gather(tables[leaf], cache.positions(leaf), &mut vals);
            vals
        })
        .collect();

    // Pre-gather per-spec argument columns.
    let spec_data: Vec<SpecData> = shape
        .aggs
        .iter()
        .map(|spec| match spec {
            PosAggSpec::DistinctValue { leaf } if tables[*leaf].has_value_codes() => {
                let mut codes = Vec::with_capacity(n_rows);
                let ok = tables[*leaf].gather_value_codes(cache.positions(*leaf), &mut codes);
                debug_assert!(ok);
                SpecData::Codes(codes)
            }
            PosAggSpec::DistinctValue { leaf } => {
                SpecData::Positions(cache.positions(*leaf).to_vec())
            }
            PosAggSpec::MinCol { leaf, col } | PosAggSpec::MaxCol { leaf, col } => {
                let mut vals = Vec::with_capacity(n_rows);
                col.gather(tables[*leaf], cache.positions(*leaf), &mut vals);
                SpecData::Ints(vals)
            }
            _ => SpecData::None,
        })
        .collect();

    // Account for the gathered key/argument columns for the duration of
    // the grouping phase.
    let gather_bytes = key_cols.iter().map(|c| c.len() * 4).sum::<usize>()
        + spec_data
            .iter()
            .map(|d| match d {
                SpecData::None => 0,
                SpecData::Codes(v) | SpecData::Positions(v) | SpecData::Ints(v) => v.len() * 4,
            })
            .sum::<usize>();
    let _gather_mem = par.memory().try_reserve("group_gather", gather_bytes)?;

    if shape.keys.is_empty() {
        return group_global(shape, agg_plans, &spec_data, batch, tables, report, par);
    }

    // Monomorphize on packed key width.
    if shape.keys.len() <= 2 {
        let packed = pack_rows64(&key_cols, n_rows);
        group_keyed(
            &packed, shape, agg_plans, &spec_data, &key_cols, batch, tables, report, par,
        )
    } else {
        let packed = pack_rows128(&key_cols, n_rows);
        group_keyed(
            &packed, shape, agg_plans, &spec_data, &key_cols, batch, tables, report, par,
        )
    }
}

/// The key-width-generic core of the keyed GROUP BY.
#[allow(clippy::too_many_arguments)]
fn group_keyed<'a, K: JoinKey>(
    packed: &[K],
    shape: &PosGroup,
    agg_plans: &[AggPlan],
    spec_data: &[SpecData],
    key_cols: &[Vec<u32>],
    batch: &PosBatch,
    tables: &'a [&'a dyn FactTable],
    report: &mut QueryReport,
    par: &ParallelCtx,
) -> Result<Vec<Tuple>> {
    let intr = par.interrupt();
    let n_rows = packed.len();
    let span = blend_obs::span("group");
    span.attr_u64("rows", n_rows as u64);
    let t0 = Instant::now();
    // Admission for the grouping phase: fanout follows the granted worker
    // count; an empty grant takes the single-partition sequential path.
    //
    // Memory ladder: price the group state (row→gid map, group index,
    // packed keys) at the granted width — the parallel path additionally
    // hashes every row and radix-scatters it — narrowing to half width and
    // then the sequential single-partition loop under pressure. Group
    // output is partition-count-invariant, so degraded widths stay
    // byte-identical.
    let grant = par.admit(n_rows);
    let desired = grant.as_ref().map_or(1, |g| g.granted());
    let (_group_mem, group_width, _rung) =
        reserve_laddered(par.memory(), "group_build", desired, |w| {
            let mut bytes = n_rows * (4 + std::mem::size_of::<K>())
                + GroupIndex::<K>::estimate_bytes((n_rows / 4).min(1 << 16));
            if w > 1 {
                bytes += n_rows * 12 + radix_scratch_bytes(n_rows, partition_count(w, n_rows));
            }
            bytes
        })?;
    let grant = grant
        .filter(|_| group_width > 1)
        .map(|g| g.narrowed(group_width));
    let n_parts = grant
        .as_ref()
        .map_or(1, |_| partition_count(group_width, n_rows));

    if n_parts == 1 {
        let (groups, slots, max_probe) = group_partition(
            packed, None, None, shape, agg_plans, spec_data, key_cols, batch, tables, intr,
        )?;
        par.check_interrupt()?;
        span.attr_u64("groups", groups.len() as u64);
        span.attr_u64("partitions", 1);
        report.hash_tables.push(HashTableStats {
            phase: "group".to_string(),
            build_nanos: t0.elapsed().as_nanos() as u64,
            buckets: slots,
            max_chain: max_probe,
            partitions: 1,
        });
        // A single partition's groups are already in first-seen order.
        return Ok(groups.into_iter().map(|(_, t)| t).collect());
    }

    // Radix-partition rows by key hash (low bits): each worker owns its
    // groups outright, and within a partition rows keep ascending global
    // order, so every group's aggregates see the exact sequential update
    // sequence.
    let grant = grant.expect("n_parts > 1 only under a grant");
    let pmask = (n_parts - 1) as u64;
    let hashes: Vec<u64> = K::hash_all(packed, "group_hashes")?;
    let parts: Vec<u32> = hashes.iter().map(|&h| (h & pmask) as u32).collect();
    let rp = radix_partition(&parts, n_parts)?;
    let run = grant.pool().run(n_parts, |p| {
        group_partition(
            packed,
            Some(&hashes),
            Some(rp.part(p)),
            shape,
            agg_plans,
            spec_data,
            key_cols,
            batch,
            tables,
            intr,
        )
    });
    report.parallel.push(ParallelPhase {
        phase: "group".to_string(),
        partitions: n_parts,
        granted: group_width,
        worker_nanos: run.worker_nanos,
    });
    par.check_interrupt()?;

    let mut slots = 0usize;
    let mut max_probe = 0usize;
    let mut all: Vec<(u32, Tuple)> = Vec::new();
    for part in run.results {
        // A partition whose index growth failed its allocation surfaces
        // the typed error here; every other partial is discarded with it.
        let (groups, part_slots, part_probe) = part?;
        slots += part_slots;
        max_probe = max_probe.max(part_probe);
        all.extend(groups);
    }
    // Keys are disjoint across partitions, so first-seen rows are globally
    // unique per group; sorting by them reproduces the sequential
    // first-seen output order exactly.
    all.sort_unstable_by_key(|&(first_row, _)| first_row);
    span.attr_u64("groups", all.len() as u64);
    span.attr_u64("partitions", n_parts as u64);
    report.hash_tables.push(HashTableStats {
        phase: "group".to_string(),
        build_nanos: t0.elapsed().as_nanos() as u64,
        buckets: slots,
        max_chain: max_probe,
        partitions: n_parts,
    });
    Ok(all.into_iter().map(|(_, t)| t).collect())
}

/// One partition's grouped output: `(first-seen row, output tuple)` pairs
/// plus the group index's slot count and max probe length (telemetry).
type GroupedPartition = (Vec<(u32, Tuple)>, usize, usize);

/// Group one partition's rows (`None` = all rows): assign dense group ids
/// through a flat [`GroupIndex`], then run one column-at-a-time
/// accumulation pass per aggregate into struct-of-arrays state. Returns
/// one [`GroupedPartition`] in first-seen order.
#[allow(clippy::too_many_arguments)]
fn group_partition<'a, K: JoinKey>(
    packed: &[K],
    hashes: Option<&[u64]>,
    rows: Option<&[u32]>,
    shape: &PosGroup,
    agg_plans: &[AggPlan],
    spec_data: &[SpecData],
    key_cols: &[Vec<u32>],
    batch: &PosBatch,
    tables: &'a [&'a dyn FactTable],
    intr: &Interrupt,
) -> Result<GroupedPartition> {
    let part_n = rows.map_or(packed.len(), <[u32]>::len);
    let row_at = |idx: usize| -> usize {
        match rows {
            Some(r) => r[idx] as usize,
            None => idx,
        }
    };

    // Pass 1: dense group ids in first-seen order + first row per group.
    // Rows upsert in [`PROBE_BLOCK`]-row blocks: the vector path hashes
    // each block through the batched mixers (or gathers the radix pass's
    // precomputed hashes) and prefetches the destination slots before any
    // upsert runs, so the open-addressing walk mostly hits cache. Insert
    // order — and with it gid assignment and first-seen rows — is
    // untouched: rows still upsert front to back.
    let mut index: GroupIndex<K> = GroupIndex::with_capacity((part_n / 4).min(1 << 16))?;
    let mut first_rows: Vec<u32> = Vec::new();
    let mut row_gids: Vec<u32> = blend_common::try_vec_with_capacity(part_n, "group_row_gids")?;
    let vector = blend_simd::enabled();
    let mut hash_buf = [0u64; PROBE_BLOCK];
    let mut key_buf: Vec<K> = Vec::with_capacity(if vector { PROBE_BLOCK } else { 0 });
    let mut start = 0usize;
    while start < part_n {
        let end = (start + PROBE_BLOCK).min(part_n);
        let bl = end - start;
        if vector {
            // The radix path already hashed every key to pick partitions;
            // gather those instead of paying a second hash per row.
            match hashes {
                Some(h) => {
                    for (j, hb) in hash_buf[..bl].iter_mut().enumerate() {
                        *hb = h[row_at(start + j)];
                    }
                }
                None => {
                    key_buf.clear();
                    key_buf.extend((start..end).map(|idx| packed[row_at(idx)]));
                    K::hash_block(&key_buf, &mut hash_buf[..bl]);
                }
            }
            // Only worth priming once the table has outgrown cache. An
            // upsert below may grow the table mid-block, turning the rest
            // of the block's prefetches stale — merely useless, never
            // wrong.
            if index.slot_count() >= PREFETCH_MIN_SLOTS {
                for &h in &hash_buf[..bl] {
                    index.prefetch_slot(h);
                }
            }
        }
        for (j, &hb) in hash_buf[..bl].iter().enumerate() {
            let idx = start + j;
            // Cooperative bail: an interrupted partition returns no groups;
            // the caller's post-run check discards every partial.
            if poll_every(idx) && intr.is_set() {
                return Ok((Vec::new(), 0, 0));
            }
            let i = row_at(idx);
            let before = index.len();
            // Three hash sources, same values: the block buffer (vector,
            // where stage 1 above filled it), the radix pass's precomputed
            // array, or `insert_or_get`'s own per-key hash (scalar
            // sequential).
            let gid = if vector {
                index.insert_or_get_hashed(packed[i], hb)?
            } else {
                match hashes {
                    Some(h) => index.insert_or_get_hashed(packed[i], h[i])?,
                    None => index.insert_or_get(packed[i])?,
                }
            };
            if index.len() != before {
                first_rows.push(i as u32);
            }
            row_gids.push(gid);
        }
        start = end;
    }
    let n_groups = index.len();
    if intr.is_set() {
        return Ok((Vec::new(), 0, 0));
    }

    // Pass 2: accumulate each aggregate column-at-a-time into flat
    // vectors indexed by group id, finishing straight to output values.
    // Distinct specs share one gid-grouping CSR.
    let mut gid_csr: Option<RadixPartitions> = None;
    let mut finished: Vec<std::vec::IntoIter<SqlValue>> = Vec::with_capacity(shape.aggs.len());
    for (spec, data) in shape.aggs.iter().zip(spec_data) {
        let vals: Vec<SqlValue> = match (spec, data) {
            (PosAggSpec::CountStar, _) => {
                let mut counts = vec![0i64; n_groups];
                for &g in &row_gids {
                    counts[g as usize] += 1;
                }
                counts.into_iter().map(SqlValue::Int).collect()
            }
            (PosAggSpec::DistinctValue { .. }, SpecData::Codes(codes)) => {
                let csr = match &mut gid_csr {
                    Some(c) => c,
                    none => none.insert(radix_partition(&row_gids, n_groups)?),
                };
                distinct_counts(csr, n_groups, |idx| codes[row_at(idx)])
            }
            (PosAggSpec::DistinctValue { leaf }, SpecData::Positions(positions)) => {
                // Dense string ids: one map per partition, never per group.
                // Ids are bijective with distinct strings within the
                // partition, so sort-unique over ids counts strings.
                let mut ids: FxHashMap<&str, u32> = FxHashMap::default();
                let str_ids: Vec<u32> = (0..part_n)
                    .map(|idx| {
                        let s = tables[*leaf].value_at(positions[row_at(idx)] as usize);
                        let next = ids.len() as u32;
                        *ids.entry(s).or_insert(next)
                    })
                    .collect();
                let csr = match &mut gid_csr {
                    Some(c) => c,
                    none => none.insert(radix_partition(&row_gids, n_groups)?),
                };
                distinct_counts(csr, n_groups, |idx| str_ids[idx])
            }
            (PosAggSpec::MinCol { .. }, SpecData::Ints(col)) => {
                let mut mins = vec![u32::MAX; n_groups];
                for (idx, &g) in row_gids.iter().enumerate() {
                    let v = col[row_at(idx)];
                    let m = &mut mins[g as usize];
                    if v < *m {
                        *m = v;
                    }
                }
                mins.into_iter().map(|v| SqlValue::Int(v as i64)).collect()
            }
            (PosAggSpec::MaxCol { .. }, SpecData::Ints(col)) => {
                let mut maxs = vec![0u32; n_groups];
                for (idx, &g) in row_gids.iter().enumerate() {
                    let v = col[row_at(idx)];
                    let m = &mut maxs[g as usize];
                    if v > *m {
                        *m = v;
                    }
                }
                maxs.into_iter().map(|v| SqlValue::Int(v as i64)).collect()
            }
            (PosAggSpec::Generic { agg, arg }, _) => {
                let mut states: Vec<AggState> = (0..n_groups)
                    .map(|_| AggState::new(&agg_plans[*agg]))
                    .collect();
                for (idx, &g) in row_gids.iter().enumerate() {
                    let row = batch.row(row_at(idx));
                    states[g as usize].update_value(arg.as_ref().map(|e| e.eval(tables, 0, row)));
                }
                states.into_iter().map(AggState::finish).collect()
            }
            _ => unreachable!("spec/data built in lockstep"),
        };
        finished.push(vals.into_iter());
    }

    // Assemble output tuples: key values read at the group's first-seen
    // row, then one value per aggregate — the tuple executor's layout.
    let nk = shape.keys.len();
    let out = first_rows
        .iter()
        .map(|&first_row| {
            let mut row: Tuple = Vec::with_capacity(nk + finished.len());
            for col in key_cols {
                row.push(SqlValue::Int(col[first_row as usize] as i64));
            }
            row.extend(
                finished
                    .iter_mut()
                    .map(|it| it.next().expect("one value per group")),
            );
            (first_row, row)
        })
        .collect();
    Ok((out, index.slot_count(), index.max_probe()))
}

/// `COUNT(DISTINCT ...)` over pre-gathered u32 codes: the code column is
/// radix-grouped by dense group id (`csr`), then each group's contiguous
/// run is sort-uniqued in place — no per-group hash set, and the counting
/// passes stream at memory speed.
fn distinct_counts(
    csr: &RadixPartitions,
    n_groups: usize,
    code_of: impl Fn(usize) -> u32,
) -> Vec<SqlValue> {
    let mut codes: Vec<u32> = csr.items().iter().map(|&it| code_of(it as usize)).collect();
    let offsets = csr.offsets();
    (0..n_groups)
        .map(|g| {
            let run = &mut codes[offsets[g] as usize..offsets[g + 1] as usize];
            run.sort_unstable();
            let mut distinct = 0i64;
            let mut prev = None;
            for &c in run.iter() {
                if prev != Some(c) {
                    distinct += 1;
                    prev = Some(c);
                }
            }
            SqlValue::Int(distinct)
        })
        .collect()
}

/// Per-chunk accumulator of the global (ungrouped) aggregation path — flat
/// scalars instead of per-group maps. Distinct codes collect raw u32s and
/// sort-dedup once at finish (cheap, cache-friendly); distinct strings
/// keep an incremental set so duplicate-heavy row-store data never buffers
/// one `&str` per row. Both merge exactly in any chunk order (count-only,
/// order-free).
enum GlobalAccum<'a> {
    Count(i64),
    /// Raw dictionary codes, deduplicated at finish.
    Codes(Vec<u32>),
    /// Distinct borrowed cell values.
    Strs(FxHashSet<&'a str>),
    Min(Option<u32>),
    Max(Option<u32>),
    State(AggState),
}

impl<'a> GlobalAccum<'a> {
    /// Fold a later chunk's accumulator into this one. Chunks merge in
    /// chunk order, so `other` always covers strictly later rows.
    fn merge(&mut self, other: GlobalAccum<'a>) {
        match (self, other) {
            (GlobalAccum::Count(a), GlobalAccum::Count(b)) => *a += b,
            (GlobalAccum::Codes(a), GlobalAccum::Codes(b)) => a.extend(b),
            (GlobalAccum::Strs(a), GlobalAccum::Strs(b)) => a.extend(b),
            (GlobalAccum::Min(a), GlobalAccum::Min(b)) => {
                if let Some(v) = b {
                    if a.is_none_or(|cur| v < cur) {
                        *a = Some(v);
                    }
                }
            }
            (GlobalAccum::Max(a), GlobalAccum::Max(b)) => {
                if let Some(v) = b {
                    if a.is_none_or(|cur| v > cur) {
                        *a = Some(v);
                    }
                }
            }
            (GlobalAccum::State(a), GlobalAccum::State(b)) => a.merge(b),
            _ => unreachable!("chunk accumulators built in lockstep"),
        }
    }

    fn finish(self) -> SqlValue {
        match self {
            GlobalAccum::Count(n) => SqlValue::Int(n),
            GlobalAccum::Codes(mut codes) => {
                codes.sort_unstable();
                codes.dedup();
                SqlValue::Int(codes.len() as i64)
            }
            GlobalAccum::Strs(strs) => SqlValue::Int(strs.len() as i64),
            GlobalAccum::Min(v) | GlobalAccum::Max(v) => {
                v.map_or(SqlValue::Null, |x| SqlValue::Int(x as i64))
            }
            GlobalAccum::State(state) => state.finish(),
        }
    }
}

/// Global (ungrouped) aggregation: exactly one output row, even over zero
/// input rows. Parallelizes by contiguous row chunks merged in chunk order
/// when every aggregate merges exactly (see [`PosAggSpec::merge_exact`]).
fn group_global<'a>(
    shape: &PosGroup,
    agg_plans: &[AggPlan],
    spec_data: &[SpecData],
    batch: &PosBatch,
    tables: &'a [&'a dyn FactTable],
    report: &mut QueryReport,
    par: &ParallelCtx,
) -> Result<Vec<Tuple>> {
    let intr = par.interrupt();
    let n_rows = batch.len();
    let span = blend_obs::span("group.global");
    span.attr_u64("rows", n_rows as u64);
    let accum_chunk = |range: std::ops::Range<usize>| -> Vec<GlobalAccum<'a>> {
        let mut acc: Vec<GlobalAccum<'a>> = shape
            .aggs
            .iter()
            .zip(spec_data)
            .map(|(spec, data)| match (spec, data) {
                (PosAggSpec::CountStar, _) => GlobalAccum::Count(0),
                (PosAggSpec::DistinctValue { .. }, SpecData::Codes(_)) => {
                    GlobalAccum::Codes(Vec::new())
                }
                (PosAggSpec::DistinctValue { .. }, _) => GlobalAccum::Strs(FxHashSet::default()),
                (PosAggSpec::MinCol { .. }, _) => GlobalAccum::Min(None),
                (PosAggSpec::MaxCol { .. }, _) => GlobalAccum::Max(None),
                (PosAggSpec::Generic { agg, .. }, _) => {
                    GlobalAccum::State(AggState::new(&agg_plans[*agg]))
                }
            })
            .collect();
        for i in range {
            if poll_every(i) && intr.is_set() {
                break;
            }
            for ((a, spec), data) in acc.iter_mut().zip(&shape.aggs).zip(spec_data) {
                match (a, spec, data) {
                    (GlobalAccum::Count(n), ..) => *n += 1,
                    (GlobalAccum::Codes(codes), _, SpecData::Codes(col)) => codes.push(col[i]),
                    (
                        GlobalAccum::Strs(strs),
                        PosAggSpec::DistinctValue { leaf },
                        SpecData::Positions(positions),
                    ) => {
                        strs.insert(tables[*leaf].value_at(positions[i] as usize));
                    }
                    (GlobalAccum::Min(m), _, SpecData::Ints(col)) => {
                        let v = col[i];
                        if m.is_none_or(|cur| v < cur) {
                            *m = Some(v);
                        }
                    }
                    (GlobalAccum::Max(m), _, SpecData::Ints(col)) => {
                        let v = col[i];
                        if m.is_none_or(|cur| v > cur) {
                            *m = Some(v);
                        }
                    }
                    (GlobalAccum::State(state), PosAggSpec::Generic { arg, .. }, _) => {
                        state.update_value(arg.as_ref().map(|e| e.eval(tables, 0, batch.row(i))));
                    }
                    _ => unreachable!("accumulator/spec built in lockstep"),
                }
            }
        }
        acc
    };

    // Chunk-merging is only exact for the merge-exact aggregate set, so
    // admission is consulted only when the result cannot depend on it.
    let grant = shape
        .aggs
        .iter()
        .all(|s| s.merge_exact(agg_plans))
        .then(|| par.admit(n_rows))
        .flatten();
    let acc: Vec<GlobalAccum<'a>> = if let Some(grant) = grant {
        let chunks = split_even(n_rows, grant.granted());
        if chunks.len() > 1 {
            let run = grant
                .pool()
                .run(chunks.len(), |ci| accum_chunk(chunks[ci].clone()));
            report.parallel.push(ParallelPhase {
                phase: "group".to_string(),
                partitions: chunks.len(),
                granted: grant.granted(),
                worker_nanos: run.worker_nanos,
            });
            let mut results = run.results.into_iter();
            let mut acc = results.next().expect("at least one chunk");
            for later in results {
                for (dst, src) in acc.iter_mut().zip(later) {
                    dst.merge(src);
                }
            }
            acc
        } else {
            accum_chunk(0..n_rows)
        }
    } else {
        accum_chunk(0..n_rows)
    };
    par.check_interrupt()?;

    Ok(vec![acc.into_iter().map(GlobalAccum::finish).collect()])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{ExecPath, SqlEngine};
    use blend_storage::{build_engine, EngineKind};

    fn engine(kind: EngineKind) -> SqlEngine {
        let mut rows = Vec::new();
        for t in 0..4u32 {
            for r in 0..6u32 {
                rows.push(blend_storage::FactRow::new(
                    &format!("k{}", (t + r) % 5),
                    t,
                    0,
                    r,
                    ((t as u128) << 32) | r as u128,
                    None,
                ));
                rows.push(blend_storage::FactRow::new(
                    &format!("{}", r * 10),
                    t,
                    1,
                    r,
                    ((t as u128) << 32) | r as u128,
                    Some(r % 2 == 0),
                ));
            }
        }
        SqlEngine::with_alltables(build_engine(kind, rows))
    }

    fn both_paths(eng: &SqlEngine, sql: &str) -> (ResultSet, String, ResultSet) {
        let (a, ra) = eng.execute_with_report_path(sql, ExecPath::Auto).unwrap();
        let (b, _) = eng
            .execute_with_report_path(sql, ExecPath::TupleOnly)
            .unwrap();
        (a, ra.path, b)
    }

    #[test]
    fn sc_shape_is_admitted_on_both_engines() {
        for kind in [EngineKind::Row, EngineKind::Column] {
            let eng = engine(kind);
            let (a, path, b) = both_paths(
                &eng,
                "SELECT TableId AS t, COUNT(DISTINCT CellValue) AS score FROM AllTables \
                 WHERE CellValue IN ('k0','k2','k4') GROUP BY TableId, ColumnId \
                 ORDER BY score DESC LIMIT 10",
            );
            assert_eq!(path, "positional");
            assert_eq!(a, b);
            assert!(!a.is_empty());
        }
    }

    #[test]
    fn mc_join_shape_is_admitted() {
        for kind in [EngineKind::Row, EngineKind::Column] {
            let eng = engine(kind);
            let (a, path, b) = both_paths(
                &eng,
                "SELECT q0.TableId AS tid, q0.RowId AS rid, q0.SuperKey AS sk, \
                 q0.CellValue AS v0, q1.CellValue AS v1 FROM \
                 (SELECT * FROM AllTables WHERE CellValue IN ('k1','k3')) AS q0 \
                 INNER JOIN (SELECT * FROM AllTables WHERE CellValue IN ('10','30')) AS q1 \
                 ON q0.TableId = q1.TableId AND q0.RowId = q1.RowId",
            );
            assert_eq!(path, "positional");
            assert_eq!(a, b);
            assert!(!a.is_empty());
        }
    }

    #[test]
    fn correlation_shape_with_residual_and_three_group_keys() {
        for kind in [EngineKind::Row, EngineKind::Column] {
            let eng = engine(kind);
            let (a, path, b) = both_paths(
                &eng,
                "SELECT keys.TableId AS t, keys.ColumnId AS kc, nums.ColumnId AS nc, \
                 ABS((2 * SUM(((keys.CellValue IN ('k0','k1') AND nums.Quadrant = 0) OR \
                 (keys.CellValue IN ('k2','k3','k4') AND nums.Quadrant = 1))::int) - COUNT(*)) \
                 / COUNT(*)) AS score, COUNT(*) AS n \
                 FROM (SELECT * FROM AllTables WHERE RowId < 6 AND \
                 CellValue IN ('k0','k1','k2','k3','k4')) keys \
                 INNER JOIN (SELECT * FROM AllTables WHERE RowId < 6 AND \
                 Quadrant IS NOT NULL) nums \
                 ON keys.TableId = nums.TableId AND keys.RowId = nums.RowId \
                 AND keys.ColumnId <> nums.ColumnId \
                 GROUP BY keys.TableId, nums.ColumnId, keys.ColumnId \
                 ORDER BY score DESC",
            );
            assert_eq!(path, "positional");
            assert_eq!(a, b);
            assert!(!a.is_empty());
        }
    }

    #[test]
    fn global_aggregate_emits_one_row_even_when_empty() {
        let eng = engine(EngineKind::Column);
        let (a, path, b) = both_paths(
            &eng,
            "SELECT COUNT(*) AS n FROM AllTables WHERE CellValue IN ('no-such-value')",
        );
        assert_eq!(path, "positional");
        assert_eq!(a, b);
        assert_eq!(a.i64(0, "n"), Some(0));
    }

    #[test]
    fn expression_group_keys_fall_back() {
        let eng = engine(EngineKind::Column);
        let (rs, report) = eng
            .execute_with_report_path(
                "SELECT TableId + 1 AS t1, COUNT(*) AS n FROM AllTables GROUP BY TableId + 1",
                ExecPath::Auto,
            )
            .unwrap();
        assert_eq!(report.path, "tuple");
        assert!(!rs.is_empty());
    }

    /// Engine with parallel tuning forced low enough that every phase of
    /// every query in this module rides the pool.
    fn forced_parallel_engine(kind: EngineKind, threads: usize) -> SqlEngine {
        let mut eng = engine(kind);
        eng.set_parallel(Arc::new(ParallelCtx::with_tuning(threads, 1, 3)));
        eng
    }

    #[test]
    fn forced_parallel_execution_is_byte_identical() {
        let queries = [
            // SC shape: parallel scan + parallel group.
            "SELECT TableId AS t, COUNT(DISTINCT CellValue) AS score FROM AllTables \
             WHERE CellValue IN ('k0','k2','k4') GROUP BY TableId, ColumnId \
             ORDER BY score DESC LIMIT 10",
            // MC shape: parallel scans + parallel join build/probe.
            "SELECT q0.TableId AS tid, q0.RowId AS rid, q0.SuperKey AS sk, \
             q0.CellValue AS v0, q1.CellValue AS v1 FROM \
             (SELECT * FROM AllTables WHERE CellValue IN ('k1','k3')) AS q0 \
             INNER JOIN (SELECT * FROM AllTables WHERE CellValue IN ('10','30')) AS q1 \
             ON q0.TableId = q1.TableId AND q0.RowId = q1.RowId",
            // C shape: integer-valued SUM keeps the parallel group exact.
            "SELECT keys.TableId AS t, keys.ColumnId AS kc, nums.ColumnId AS nc, \
             ABS((2 * SUM(((keys.CellValue IN ('k0','k1') AND nums.Quadrant = 0) OR \
             (keys.CellValue IN ('k2','k3','k4') AND nums.Quadrant = 1))::int) - COUNT(*)) \
             / COUNT(*)) AS score, COUNT(*) AS n \
             FROM (SELECT * FROM AllTables WHERE RowId < 6 AND \
             CellValue IN ('k0','k1','k2','k3','k4')) keys \
             INNER JOIN (SELECT * FROM AllTables WHERE RowId < 6 AND \
             Quadrant IS NOT NULL) nums \
             ON keys.TableId = nums.TableId AND keys.RowId = nums.RowId \
             AND keys.ColumnId <> nums.ColumnId \
             GROUP BY keys.TableId, nums.ColumnId, keys.ColumnId \
             ORDER BY score DESC",
            // Global aggregate with a seq scan.
            "SELECT COUNT(*) AS n, MIN(RowId) AS lo, MAX(RowId) AS hi FROM AllTables \
             WHERE Quadrant IS NOT NULL",
        ];
        for kind in [EngineKind::Row, EngineKind::Column] {
            let reference = engine(kind);
            for sql in queries {
                let (want, want_rep) = reference
                    .execute_with_report_path(sql, ExecPath::Auto)
                    .unwrap();
                assert_eq!(want_rep.path, "positional", "{sql}");
                for threads in [2, 4, 8] {
                    let eng = forced_parallel_engine(kind, threads);
                    let (got, rep) = eng.execute_with_report_path(sql, ExecPath::Auto).unwrap();
                    assert_eq!(got, want, "{kind:?}/{threads}t: {sql}");
                    assert!(
                        rep.logical_eq(&want_rep),
                        "{kind:?}/{threads}t telemetry: {sql}"
                    );
                    // The pool actually ran: phases were recorded, with
                    // more than one partition and bounded worker counts.
                    assert!(!rep.parallel.is_empty(), "{kind:?}/{threads}t: {sql}");
                    for phase in &rep.parallel {
                        assert!(phase.partitions > 1, "{}: {sql}", phase.phase);
                        assert!(!phase.worker_nanos.is_empty());
                        assert!(phase.worker_nanos.len() <= threads);
                    }
                }
            }
        }
    }

    #[test]
    fn sequential_ctx_records_no_parallel_phases() {
        let mut eng = engine(EngineKind::Column);
        eng.set_parallel(Arc::new(ParallelCtx::with_tuning(1, 1, 3)));
        let (_, rep) = eng
            .execute_with_report_path(
                "SELECT TableId AS t, COUNT(*) AS n FROM AllTables GROUP BY TableId",
                ExecPath::Auto,
            )
            .unwrap();
        assert_eq!(rep.path, "positional");
        assert!(rep.parallel.is_empty());
    }

    #[test]
    fn keyed_float_sums_group_in_parallel_bit_identically() {
        // `SUM(RowId / 2)` produces non-integer values — a chunk-merge
        // would not be bit-exact, but the radix-partitioned keyed path
        // owns each group outright, so per-group f64 accumulation order is
        // exactly sequential and the parallel group phase stays admitted.
        let eng = forced_parallel_engine(EngineKind::Column, 4);
        let sql = "SELECT TableId AS t, SUM(RowId / 2) AS s FROM AllTables GROUP BY TableId";
        let (got, rep) = eng.execute_with_report_path(sql, ExecPath::Auto).unwrap();
        assert!(
            rep.parallel.iter().any(|p| p.phase == "group"),
            "keyed float SUM should group in parallel via radix partitions"
        );
        let (want, _) = eng
            .execute_with_report_path(sql, ExecPath::TupleOnly)
            .unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn global_float_sums_fall_back_to_sequential_grouping() {
        // The *global* path still chunk-merges, where float addition order
        // would change — it must refuse non-integer SUMs (results still
        // correct via the sequential loop).
        let eng = forced_parallel_engine(EngineKind::Column, 4);
        let sql = "SELECT SUM(RowId / 2) AS s FROM AllTables";
        let (got, rep) = eng.execute_with_report_path(sql, ExecPath::Auto).unwrap();
        assert!(
            rep.parallel.iter().all(|p| p.phase != "group"),
            "global float SUM must not group in parallel"
        );
        let (want, _) = eng
            .execute_with_report_path(sql, ExecPath::TupleOnly)
            .unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn wide_join_keys_take_the_positional_u128_path() {
        // 3 and 4 equi-key columns (4 via a repeated equality) pack into
        // the u128 key path; both must stay on the positional executor and
        // agree with the tuple oracle.
        let on3 = "q0.TableId = q1.TableId AND q0.ColumnId = q1.ColumnId \
                   AND q0.RowId = q1.RowId";
        let on4 = "q0.TableId = q1.TableId AND q0.ColumnId = q1.ColumnId \
                   AND q0.RowId = q1.RowId AND q0.TableId = q1.TableId";
        for on in [on3, on4] {
            for kind in [EngineKind::Row, EngineKind::Column] {
                let eng = engine(kind);
                let sql = format!(
                    "SELECT q0.TableId AS t, q0.ColumnId AS c, q0.RowId AS r, \
                     q1.CellValue AS v FROM \
                     (SELECT * FROM AllTables WHERE RowId < 4) AS q0 INNER JOIN \
                     (SELECT * FROM AllTables WHERE RowId < 4) AS q1 ON {on}"
                );
                let (a, path, b) = both_paths(&eng, &sql);
                assert_eq!(path, "positional", "{on}");
                assert_eq!(a, b, "{on}");
                assert!(!a.is_empty());
            }
        }
    }

    #[test]
    fn hash_table_telemetry_is_recorded() {
        let eng = engine(EngineKind::Column);
        // Join + group: one "join" and one "group" entry, sequential
        // (single partition) at default tuning on this tiny input.
        let (_, rep) = eng
            .execute_with_report_path(
                "SELECT q0.TableId AS t, COUNT(*) AS n FROM \
                 (SELECT * FROM AllTables WHERE CellValue IN ('k1','k3')) AS q0 \
                 INNER JOIN (SELECT * FROM AllTables WHERE CellValue IN ('10','30')) AS q1 \
                 ON q0.TableId = q1.TableId AND q0.RowId = q1.RowId \
                 GROUP BY q0.TableId",
                ExecPath::Auto,
            )
            .unwrap();
        assert_eq!(rep.path, "positional");
        let phases: Vec<&str> = rep.hash_tables.iter().map(|h| h.phase.as_str()).collect();
        assert_eq!(phases, vec!["join", "group"]);
        for h in &rep.hash_tables {
            assert_eq!(h.partitions, 1);
            assert!(h.buckets >= 1);
            assert!(h.buckets.is_power_of_two());
            assert!(h.max_chain >= 1);
        }

        // Forced-parallel run: radix partition counts land in telemetry.
        let eng = forced_parallel_engine(EngineKind::Column, 4);
        let (_, rep) = eng
            .execute_with_report_path(
                "SELECT TableId AS t, COUNT(DISTINCT CellValue) AS s FROM AllTables \
                 GROUP BY TableId, ColumnId",
                ExecPath::Auto,
            )
            .unwrap();
        let group = rep
            .hash_tables
            .iter()
            .find(|h| h.phase == "group")
            .expect("group stats recorded");
        assert!(group.partitions > 1);
        assert!(group.partitions.is_power_of_two());
    }

    #[test]
    fn never_true_injection_yields_empty_results_positionally() {
        // The rewriter's empty-intersection fragment (`AND 1 = 0`) must be
        // executable on the positional path too.
        let eng = engine(EngineKind::Column);
        let (a, path, b) = both_paths(
            &eng,
            "SELECT TableId AS t, COUNT(DISTINCT CellValue) AS score FROM AllTables \
             WHERE CellValue IN ('k0','k1') AND 1 = 0 GROUP BY TableId, ColumnId",
        );
        assert_eq!(path, "positional");
        assert_eq!(a, b);
        assert!(a.is_empty());
    }
}

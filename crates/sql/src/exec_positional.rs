//! Late-materialization (positional) executor for the BLEND query shapes.
//!
//! The tuple executor in [`crate::exec`] materializes a 6-wide
//! `Vec<SqlValue>` — including an `Arc<str>` clone of the cell value — for
//! every position a scan visits, clones whole tuples through joins, and
//! hashes `Vec<SqlValue>` keys in joins and GROUP BY. For the four seeker
//! templates (`SC`/`KW`/`MC`/`C`) all of that work is wasted: predicates,
//! join keys, and grouping keys only ever touch the integer fact columns,
//! and `COUNT(DISTINCT CellValue)` only needs value *identity*, not value
//! contents.
//!
//! This module executes those shapes positionally:
//!
//! * scans emit compact `Vec<u32>` position lists — predicates run as
//!   **batched filter kernels** straight against the [`FactTable`], no
//!   tuple is built (see *Selection-vector scans* below);
//! * the seeker self-joins (`q0.TableId = qN.TableId AND q0.RowId =
//!   qN.RowId`) become hash joins keyed on a packed `u64`
//!   (`TableId << 32 | RowId`) over position lists;
//! * `GROUP BY TableId[, ColumnId]` aggregates into an
//!   `FxHashMap<u64, _>` of packed keys, with `COUNT(DISTINCT CellValue)`
//!   hashing dictionary codes on the column store and borrowed `&str` on
//!   the row store — never an owned `SqlValue`;
//! * only the final projection materializes `SqlValue` rows.
//!
//! [`plan_positional`] recognizes eligible plans; anything it cannot prove
//! safe falls back to the tuple executor, so the two paths always agree
//! (enforced by the `exec_parity` integration tests). Which path ran is
//! observable via [`QueryReport::path`].
//!
//! ## Selection-vector scans
//!
//! A scan's cheap predicates are compiled **once per scan** into a
//! [`FilterKernel`](blend_storage::FilterKernel) (`ScanPlan::kernel`):
//! `CellValue IN` probes become dictionary-code sets on the column store,
//! and `TableId IN / NOT IN` hash sets lower into sorted slices or dense
//! bitmaps. The scan then evaluates whole candidate batches through the
//! engine's [`FactTable::filter_batch`] / [`FactTable::filter_range`]
//! entry points, which write survivors into a **selection vector** with
//! branch-free compaction passes — the column store indexes its contiguous
//! `tables`/`rows`/`codes` arrays directly and evaluates [`Seg::Range`]
//! segments straight off the column slices, never materializing the
//! candidate position list; the row store runs one fused check per tuple.
//! Per-worker [`ScanScratch`] buffers ride the morsel path via
//! `WorkerPool::run_with`, so parallel scans reuse selection-vector
//! capacity across every morsel a worker claims instead of allocating per
//! morsel. The scalar `fast_filters_pass` survives only as the parity
//! oracle (`tests/filter_kernel_parity.rs`).
//!
//! ## Parallel execution
//!
//! All three phases ride the shared [`ParallelCtx`] worker pool
//! (morsel-partitioned, see the `blend-parallel` crate docs), each with an
//! order-preserving merge that makes parallel output **byte-identical** to
//! the sequential path at every thread count:
//!
//! * scans split postings/table ranges into morsels and concatenate the
//!   per-morsel position lists in morsel order;
//! * hash joins build partition-local maps over contiguous build chunks
//!   (merged chunk-by-chunk, keeping per-key match lists ascending) and
//!   probe in contiguous chunks emitted in chunk order;
//! * GROUP BY runs per-worker aggregate maps over contiguous row chunks
//!   and merges them in chunk order, which reproduces the sequential
//!   first-seen group order exactly. The parallel grouping path is taken
//!   only when every aggregate merges exactly (counts, distincts, min/max,
//!   and integer-valued sums — see `PosAggSpec::merge_exact`).
//!
//! With `threads == 1` (`BLEND_THREADS=1`) or inputs under the morsel
//! threshold, every phase takes its plain sequential loop. Pool-backed
//! phases record partition counts and per-worker timings in
//! [`QueryReport::parallel`].

use std::collections::hash_map::Entry;
use std::sync::Arc;

use blend_common::{FxHashMap, FxHashSet};
use blend_parallel::{morselize, split_even, Morsel, ParallelCtx};
use blend_storage::{FactTable, ScanScratch, ValueProbe};

use crate::ast::{AggFunc, BinOp, UnaryOp};
use crate::exec::{self, AggState, ParallelPhase, QueryReport, ResultSet, ScanReport, Tuple};
use crate::expr::{
    combine_and, combine_or, eval_abs_value, eval_cast_int_value, eval_cmp_arith, eval_unary_value,
    CExpr,
};
use crate::plan::{identity_scan, AccessPath, AggPlan, QueryPlan, ScanPlan, Tree};
use crate::value::SqlValue;
use blend_common::Result;

/// Width of the canonical fact tuple.
const FACT_WIDTH: usize = 6;

/// The three u32-valued fact columns usable as join/group keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum IntCol {
    Table,
    Column,
    Row,
}

impl IntCol {
    fn from_offset(off: usize) -> Option<IntCol> {
        match off {
            1 => Some(IntCol::Table),
            2 => Some(IntCol::Column),
            3 => Some(IntCol::Row),
            _ => None,
        }
    }

    #[inline]
    fn at(self, table: &dyn FactTable, pos: u32) -> u32 {
        match self {
            IntCol::Table => table.table_at(pos as usize),
            IntCol::Column => table.column_at(pos as usize),
            IntCol::Row => table.row_at(pos as usize),
        }
    }

    fn gather(self, table: &dyn FactTable, positions: &[u32], out: &mut Vec<u32>) {
        match self {
            IntCol::Table => table.gather_tables(positions, out),
            IntCol::Column => table.gather_columns(positions, out),
            IntCol::Row => table.gather_rows(positions, out),
        }
    }
}

/// A compiled positional expression: like [`CExpr`], but column references
/// fetch directly from a leaf's storage position instead of a materialized
/// tuple, and constant `CellValue IN (...)` lists are specialized into
/// engine [`ValueProbe`]s (dictionary-code comparisons on the column store).
enum PExpr {
    Const(SqlValue),
    /// `CellValue` of a leaf — the only variant that allocates.
    Value(usize),
    /// An integer fact column of a leaf.
    Int(usize, IntCol),
    Superkey(usize),
    Quadrant(usize),
    /// `CellValue IN (constant strings)`, pre-compiled as an engine probe.
    InProbe {
        leaf: usize,
        probe: ValueProbe,
        negated: bool,
    },
    InSet(Box<PExpr>, Arc<FxHashSet<SqlValue>>, bool),
    IsNull(Box<PExpr>, bool),
    Unary(UnaryOp, Box<PExpr>),
    Binary(Box<PExpr>, BinOp, Box<PExpr>),
    CastInt(Box<PExpr>),
    Abs(Box<PExpr>),
}

impl PExpr {
    /// Evaluate over a positional row. `row[g - base]` is the storage
    /// position of global leaf `g`; `tables` is indexed by global leaf.
    fn eval(&self, tables: &[&dyn FactTable], base: usize, row: &[u32]) -> SqlValue {
        match self {
            PExpr::Const(v) => v.clone(),
            PExpr::Value(leaf) => {
                let pos = row[*leaf - base] as usize;
                SqlValue::Text(Arc::from(tables[*leaf].value_at(pos)))
            }
            PExpr::Int(leaf, col) => SqlValue::Int(col.at(tables[*leaf], row[*leaf - base]) as i64),
            PExpr::Superkey(leaf) => {
                SqlValue::U128(tables[*leaf].superkey_at(row[*leaf - base] as usize))
            }
            PExpr::Quadrant(leaf) => match tables[*leaf].quadrant_at(row[*leaf - base] as usize) {
                None => SqlValue::Null,
                Some(b) => SqlValue::Int(b as i64),
            },
            PExpr::InProbe {
                leaf,
                probe,
                negated,
            } => {
                // CellValue is never NULL, so this mirrors InSet on a
                // non-null text value exactly.
                let contained = tables[*leaf].probe_at(row[*leaf - base] as usize, probe);
                SqlValue::Bool(contained != *negated)
            }
            PExpr::InSet(e, set, negated) => {
                let v = e.eval(tables, base, row);
                if v.is_null() {
                    return SqlValue::Null;
                }
                SqlValue::Bool(set.contains(&v) != *negated)
            }
            PExpr::IsNull(e, negated) => {
                SqlValue::Bool(e.eval(tables, base, row).is_null() != *negated)
            }
            PExpr::Unary(op, e) => eval_unary_value(*op, e.eval(tables, base, row)),
            PExpr::Binary(l, op, r) => match op {
                BinOp::And => {
                    let lv = l.eval(tables, base, row);
                    if matches!(lv, SqlValue::Bool(false)) {
                        return SqlValue::Bool(false);
                    }
                    combine_and(lv, r.eval(tables, base, row))
                }
                BinOp::Or => {
                    let lv = l.eval(tables, base, row);
                    if matches!(lv, SqlValue::Bool(true)) {
                        return SqlValue::Bool(true);
                    }
                    combine_or(lv, r.eval(tables, base, row))
                }
                _ => eval_cmp_arith(*op, l.eval(tables, base, row), r.eval(tables, base, row)),
            },
            PExpr::CastInt(e) => eval_cast_int_value(e.eval(tables, base, row)),
            PExpr::Abs(e) => eval_abs_value(e.eval(tables, base, row)),
        }
    }

    /// Predicate view (NULL ⇒ false), mirroring `CExpr::eval_predicate`.
    #[inline]
    fn eval_predicate(&self, tables: &[&dyn FactTable], base: usize, row: &[u32]) -> bool {
        self.eval(tables, base, row).truthy()
    }

    /// Conservatively true when evaluation can only yield `Int` or `Null`.
    /// This is the condition under which partitioned f64 summation is
    /// exact: integer-valued partial sums (below 2^53) are exact in f64
    /// and their addition is associative, so regrouping across workers
    /// cannot change a SUM/AVG result.
    fn integer_valued(&self) -> bool {
        match self {
            PExpr::Int(..) | PExpr::Quadrant(_) | PExpr::CastInt(_) => true,
            PExpr::Const(v) => matches!(v, SqlValue::Int(_) | SqlValue::Null),
            PExpr::Abs(e) => e.integer_valued(),
            _ => false,
        }
    }
}

/// Compile a tuple expression into a positional one. `base` is the global
/// index of the first leaf in the schema the expression was compiled
/// against. Returns `None` for shapes the positional evaluator does not
/// handle (triggering tuple-path fallback).
fn compile_pexpr(e: &CExpr, base: usize, leaves: &[&ScanPlan]) -> Option<PExpr> {
    Some(match e {
        CExpr::Const(v) => PExpr::Const(v.clone()),
        CExpr::Col(i) => {
            let leaf = base + i / FACT_WIDTH;
            if leaf >= leaves.len() {
                return None;
            }
            match i % FACT_WIDTH {
                0 => PExpr::Value(leaf),
                4 => PExpr::Superkey(leaf),
                5 => PExpr::Quadrant(leaf),
                off => PExpr::Int(leaf, IntCol::from_offset(off)?),
            }
        }
        CExpr::Unary(op, inner) => PExpr::Unary(*op, Box::new(compile_pexpr(inner, base, leaves)?)),
        CExpr::Binary(l, op, r) => PExpr::Binary(
            Box::new(compile_pexpr(l, base, leaves)?),
            *op,
            Box::new(compile_pexpr(r, base, leaves)?),
        ),
        CExpr::InSet(inner, set, negated) => {
            let compiled = compile_pexpr(inner, base, leaves)?;
            if let PExpr::Value(leaf) = compiled {
                // Constant IN-list over CellValue: translate once into an
                // engine probe (dictionary codes on the column store).
                // Non-text constants can never equal a text cell, so
                // dropping them preserves the tuple path's semantics.
                let texts: Vec<&str> = set.iter().filter_map(SqlValue::as_str).collect();
                PExpr::InProbe {
                    leaf,
                    probe: leaves[leaf].table.make_probe(&texts),
                    negated: *negated,
                }
            } else {
                PExpr::InSet(Box::new(compiled), Arc::clone(set), *negated)
            }
        }
        CExpr::IsNull(inner, negated) => {
            PExpr::IsNull(Box::new(compile_pexpr(inner, base, leaves)?), *negated)
        }
        CExpr::CastInt(inner) => PExpr::CastInt(Box::new(compile_pexpr(inner, base, leaves)?)),
        CExpr::Abs(inner) => PExpr::Abs(Box::new(compile_pexpr(inner, base, leaves)?)),
    })
}

/// A positional join/group key column: an integer fact column of a leaf.
type PosCol = (usize, IntCol);

/// Positional operator tree (parallel to [`Tree`], leaves unwrapped).
enum PosNode {
    Scan {
        leaf: usize,
        residual: Option<PExpr>,
    },
    Join {
        left: Box<PosNode>,
        right: Box<PosNode>,
        /// Global index of the first leaf under this join.
        base: usize,
        n_left: usize,
        /// Equi-keys as (left column, right column), packed into one `u64`.
        keys: Vec<(PosCol, PosCol)>,
        residual: Option<PExpr>,
    },
}

/// One aggregate of the positional GROUP BY.
enum PosAggSpec {
    /// `COUNT(*)` — a plain counter.
    CountStar,
    /// `COUNT(DISTINCT CellValue)` over a leaf — hashes dictionary codes
    /// (column store) or borrowed `&str` (row store).
    DistinctValue { leaf: usize },
    /// Anything else: evaluate the argument positionally and fold it into
    /// the tuple executor's [`AggState`].
    Generic { agg: usize, arg: Option<PExpr> },
}

impl PosAggSpec {
    /// True when per-partition accumulation followed by a merge is
    /// bit-identical to sequential accumulation: counting, distinct, and
    /// min/max states always are; SUM/AVG only when the argument is
    /// provably integer-valued (float addition is not associative). The
    /// parallel GROUP BY path requires this of every aggregate — the four
    /// seeker shapes all qualify (the C shape sums an `(...)::int` cast).
    fn merge_exact(&self, agg_plans: &[AggPlan]) -> bool {
        match self {
            PosAggSpec::CountStar | PosAggSpec::DistinctValue { .. } => true,
            PosAggSpec::Generic { agg, arg } => match agg_plans[*agg].func {
                AggFunc::Count | AggFunc::Min | AggFunc::Max => true,
                AggFunc::Sum | AggFunc::Avg => arg.as_ref().is_some_and(PExpr::integer_valued),
            },
        }
    }
}

/// Grouping stage shape.
struct PosGroup {
    keys: Vec<PosCol>,
    aggs: Vec<PosAggSpec>,
}

/// Projection stage shape for non-aggregated queries.
struct PosProject {
    exprs: Vec<PExpr>,
    order: Vec<PExpr>,
}

/// A plan admitted to the positional path.
pub(crate) struct PosPlan<'p> {
    leaves: Vec<&'p ScanPlan>,
    root: PosNode,
    post_filter: Option<PExpr>,
    group: Option<PosGroup>,
    project: Option<PosProject>,
}

/// Recognize a plan the positional executor can run: every leaf is a base
/// fact-table scan (possibly wrapped in identity subqueries, as the MC/C
/// templates produce), every join keys on 1–2 integer fact columns, group
/// keys are integer fact columns, and all residual/filter/projection
/// expressions compile positionally.
pub(crate) fn plan_positional(plan: &QueryPlan) -> Option<PosPlan<'_>> {
    let mut leaves: Vec<&ScanPlan> = Vec::new();
    let root = build_node(&plan.tree, &mut leaves)?;

    let post_filter = match &plan.post_filter {
        Some(f) => Some(compile_pexpr(f, 0, &leaves)?),
        None => None,
    };

    let group = match &plan.group {
        Some(g) => {
            let mut keys = Vec::with_capacity(g.group_exprs.len());
            for e in &g.group_exprs {
                match compile_pexpr(e, 0, &leaves)? {
                    PExpr::Int(leaf, col) => keys.push((leaf, col)),
                    _ => return None,
                }
            }
            // Keys pack into at most 128 bits (32 each).
            if keys.len() > 4 {
                return None;
            }
            let mut aggs = Vec::with_capacity(g.aggs.len());
            for (i, a) in g.aggs.iter().enumerate() {
                aggs.push(agg_spec(i, a, &leaves)?);
            }
            Some(PosGroup { keys, aggs })
        }
        None => None,
    };

    let project = if group.is_none() {
        let mut exprs = Vec::with_capacity(plan.projection.len());
        for (_, e) in &plan.projection {
            exprs.push(compile_pexpr(e, 0, &leaves)?);
        }
        let mut order = Vec::with_capacity(plan.order_by.len());
        for (e, _) in &plan.order_by {
            order.push(compile_pexpr(e, 0, &leaves)?);
        }
        Some(PosProject { exprs, order })
    } else {
        None
    };

    Some(PosPlan {
        leaves,
        root,
        post_filter,
        group,
        project,
    })
}

fn agg_spec(idx: usize, plan: &AggPlan, leaves: &[&ScanPlan]) -> Option<PosAggSpec> {
    match (plan.func, plan.distinct, &plan.arg) {
        (AggFunc::Count, false, None) => Some(PosAggSpec::CountStar),
        (AggFunc::Count, true, Some(CExpr::Col(i)))
            if i % FACT_WIDTH == 0 && i / FACT_WIDTH < leaves.len() =>
        {
            Some(PosAggSpec::DistinctValue {
                leaf: i / FACT_WIDTH,
            })
        }
        (_, _, arg) => {
            let arg = match arg {
                Some(e) => Some(compile_pexpr(e, 0, leaves)?),
                None => None,
            };
            Some(PosAggSpec::Generic { agg: idx, arg })
        }
    }
}

fn build_node<'p>(tree: &'p Tree, leaves: &mut Vec<&'p ScanPlan>) -> Option<PosNode> {
    match tree {
        Tree::Leaf(input) => {
            // Unwrap identity subqueries down to the base scan; the scan
            // must expose the full 6-column fact layout for offset math.
            let scan = identity_scan(tree)?;
            if scan.schema.len() != FACT_WIDTH || input.schema().len() != FACT_WIDTH {
                return None;
            }
            let leaf = leaves.len();
            leaves.push(scan);
            let residual = match &scan.residual {
                Some(r) => {
                    let leaf_slice = &leaves[..];
                    Some(compile_pexpr(r, leaf, leaf_slice)?)
                }
                None => None,
            };
            Some(PosNode::Scan { leaf, residual })
        }
        Tree::Join {
            left,
            right,
            keys,
            residual,
            ..
        } => {
            let base = leaves.len();
            let l = build_node(left, leaves)?;
            let n_left = leaves.len() - base;
            let r = build_node(right, leaves)?;
            if keys.is_empty() || keys.len() > 2 {
                return None;
            }
            let mut pos_keys = Vec::with_capacity(keys.len());
            for &(lk, rk) in keys {
                let lcol = IntCol::from_offset(lk % FACT_WIDTH)?;
                let rcol = IntCol::from_offset(rk % FACT_WIDTH)?;
                let lleaf = base + lk / FACT_WIDTH;
                let rleaf = base + n_left + rk / FACT_WIDTH;
                if lleaf >= base + n_left || rleaf >= leaves.len() {
                    return None;
                }
                pos_keys.push(((lleaf, lcol), (rleaf, rcol)));
            }
            let residual = match residual {
                Some(r) => Some(compile_pexpr(r, base, leaves)?),
                None => None,
            };
            Some(PosNode::Join {
                left: Box::new(l),
                right: Box::new(r),
                base,
                n_left,
                keys: pos_keys,
                residual,
            })
        }
    }
}

// ---- execution -------------------------------------------------------------

/// A batch of positional rows: `stride` positions per row, one per leaf of
/// the producing subtree, stored flat.
struct PosBatch {
    stride: usize,
    data: Vec<u32>,
}

impl PosBatch {
    fn len(&self) -> usize {
        self.data.len().checked_div(self.stride).unwrap_or(0)
    }

    #[inline]
    fn row(&self, i: usize) -> &[u32] {
        &self.data[i * self.stride..(i + 1) * self.stride]
    }

    /// One column (positions of a single leaf, subtree-local index).
    fn col(&self, local: usize) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.len());
        let mut i = local;
        while i < self.data.len() {
            out.push(self.data[i]);
            i += self.stride;
        }
        out
    }
}

/// Execute an admitted plan. `par` is the shared worker-pool context;
/// every phase falls back to its sequential loop when `par` says an input
/// is too small (or the pool has one thread).
pub(crate) fn execute(
    plan: &QueryPlan,
    pos: &PosPlan<'_>,
    report: &mut QueryReport,
    par: &ParallelCtx,
) -> Result<ResultSet> {
    let tables: Vec<&dyn FactTable> = pos.leaves.iter().map(|s| s.table.as_ref()).collect();

    let mut batch = exec_node(&pos.root, pos, &tables, report, par);

    if let Some(f) = &pos.post_filter {
        let mut data = Vec::with_capacity(batch.data.len());
        for i in 0..batch.len() {
            let row = batch.row(i);
            if f.eval_predicate(&tables, 0, row) {
                data.extend_from_slice(row);
            }
        }
        batch = PosBatch {
            stride: batch.stride,
            data,
        };
    }

    match (&pos.group, &plan.group) {
        (Some(shape), Some(gplan)) => {
            let tuples = exec_group(shape, &gplan.aggs, &batch, &tables, report, par);
            Ok(exec::project_sort_limit(plan, &tuples, report))
        }
        _ => {
            let project = pos
                .project
                .as_ref()
                .expect("non-grouped positional plan carries a projection");
            // Late materialization: SqlValue rows exist only here.
            let mut decorated: Vec<(Vec<SqlValue>, Tuple)> = Vec::with_capacity(batch.len());
            for i in 0..batch.len() {
                let row = batch.row(i);
                let out: Tuple = project
                    .exprs
                    .iter()
                    .map(|e| e.eval(&tables, 0, row))
                    .collect();
                let keys: Vec<SqlValue> = project
                    .order
                    .iter()
                    .map(|e| e.eval(&tables, 0, row))
                    .collect();
                decorated.push((keys, out));
            }
            Ok(exec::finish_decorated(plan, decorated, report))
        }
    }
}

fn exec_node(
    node: &PosNode,
    pos: &PosPlan<'_>,
    tables: &[&dyn FactTable],
    report: &mut QueryReport,
    par: &ParallelCtx,
) -> PosBatch {
    match node {
        PosNode::Scan { leaf, residual } => exec_scan(
            pos.leaves[*leaf],
            *leaf,
            residual.as_ref(),
            tables,
            report,
            par,
        ),
        PosNode::Join {
            left,
            right,
            base,
            n_left,
            keys,
            residual,
        } => {
            let lb = exec_node(left, pos, tables, report, par);
            let rb = exec_node(right, pos, tables, report, par);
            exec_join(
                lb,
                rb,
                *base,
                *n_left,
                keys,
                residual.as_ref(),
                tables,
                report,
                par,
            )
        }
    }
}

/// One ordered input segment of a filtered scan: a postings list or a
/// contiguous position range. Segments in access-path order, positions in
/// segment order, reproduce the sequential visit order exactly — which is
/// what makes the morsel-order merge byte-identical.
enum Seg<'a> {
    /// Inverted-index postings of one driving value.
    Postings(&'a [u32]),
    /// Physical positions `[lo, hi)` (a table range or the whole table).
    Range(usize, usize),
}

impl Seg<'_> {
    fn len(&self) -> usize {
        match self {
            Seg::Postings(p) => p.len(),
            Seg::Range(lo, hi) => hi - lo,
        }
    }
}

/// Positional scan: emit surviving positions; no tuple is materialized.
/// Mirrors the tuple executor's visit order and telemetry exactly. Large
/// filtered scans are morsel-partitioned across the pool; per-morsel
/// position lists concatenate in morsel order, so the emitted batch is
/// identical at every thread count.
fn exec_scan(
    scan: &ScanPlan,
    leaf: usize,
    residual: Option<&PExpr>,
    tables: &[&dyn FactTable],
    report: &mut QueryReport,
    par: &ParallelCtx,
) -> PosBatch {
    let table = scan.table.as_ref();
    let mut out: Vec<u32> = Vec::new();
    let mut scanned = 0usize;

    // Unfiltered index scans copy postings/ranges wholesale — the common
    // SC/KW case (no TID injection) never touches per-position logic.
    let unfiltered = residual.is_none() && scan.fast.is_empty();
    if unfiltered {
        match &scan.access {
            AccessPath::ValueIndex { .. } => {
                for v in &scan.driving_values {
                    out.extend_from_slice(table.postings(v));
                }
            }
            AccessPath::TableIndex { .. } => {
                for &t in &scan.driving_tables {
                    out.extend(table.table_postings(t).map(|p| p as u32));
                }
            }
            AccessPath::SeqScan { .. } => {
                out.extend(0..table.len() as u32);
            }
        }
        report.scans.push(ScanReport {
            alias: scan.alias.clone(),
            access: scan.access.label().to_string(),
            estimated: scan.access.estimated(),
            scanned: out.len(),
            emitted: out.len(),
        });
        return PosBatch {
            stride: 1,
            data: out,
        };
    }

    // Ordered segments of the driving access path; a sequential pass over
    // them is exactly the original per-position loop.
    let segs: Vec<Seg<'_>> = match &scan.access {
        AccessPath::ValueIndex { .. } => scan
            .driving_values
            .iter()
            .map(|v| Seg::Postings(table.postings(v)))
            .collect(),
        AccessPath::TableIndex { .. } => scan
            .driving_tables
            .iter()
            .map(|&t| {
                let r = table.table_postings(t);
                Seg::Range(r.start, r.end)
            })
            .collect(),
        AccessPath::SeqScan { .. } => vec![Seg::Range(0, table.len())],
    };

    // One morsel = one batched kernel evaluation. Kernel survivors land
    // either straight in `out` (no residual — the common case) or in the
    // worker's reusable selection-vector scratch for the scalar residual
    // pass. Returns the number of candidate positions visited.
    let kernel = &scan.kernel;
    let scan_morsel = |m: &Morsel, scratch: &mut ScanScratch, out: &mut Vec<u32>| -> usize {
        scratch.sel.clear();
        let dst: &mut Vec<u32> = if residual.is_some() {
            &mut scratch.sel
        } else {
            &mut *out
        };
        let visited = match segs[m.segment] {
            Seg::Postings(p) => {
                let candidates = &p[m.start..m.end];
                table.filter_batch(kernel, candidates, dst);
                candidates.len()
            }
            // Ranges evaluate straight off the engine's column slices; the
            // candidate position list is never materialized.
            Seg::Range(lo, _) => {
                table.filter_range(kernel, lo + m.start, lo + m.end, dst);
                m.len()
            }
        };
        if let Some(res) = residual {
            for &pos in &scratch.sel {
                if res.eval_predicate(tables, leaf, std::slice::from_ref(&pos)) {
                    out.push(pos);
                }
            }
        }
        visited
    };

    let total: usize = segs.iter().map(Seg::len).sum();
    // A single morsel would run inline on the calling thread; only a real
    // multi-morsel run takes the pool (and records a parallel phase).
    let morsels = if par.should_parallelize(total) {
        let lens: Vec<usize> = segs.iter().map(Seg::len).collect();
        Some(morselize(&lens, par.morsel_len()))
    } else {
        None
    };
    match morsels {
        Some(morsels) if morsels.len() > 1 => {
            // Per-worker scratch: selection-vector capacity is allocated
            // once per worker, not once per morsel.
            let run = par
                .pool()
                .run_with(morsels.len(), ScanScratch::default, |scratch, i| {
                    let mut local = Vec::new();
                    let local_scanned = scan_morsel(&morsels[i], scratch, &mut local);
                    (local, local_scanned)
                });
            out.reserve(run.results.iter().map(|(l, _)| l.len()).sum());
            for (local, local_scanned) in run.results {
                out.extend_from_slice(&local);
                scanned += local_scanned;
            }
            report.parallel.push(ParallelPhase {
                phase: format!("scan:{}", scan.alias),
                partitions: morsels.len(),
                worker_nanos: run.worker_nanos,
            });
        }
        _ => {
            let mut scratch = ScanScratch::default();
            for (si, seg) in segs.iter().enumerate() {
                scanned += scan_morsel(
                    &Morsel {
                        segment: si,
                        start: 0,
                        end: seg.len(),
                    },
                    &mut scratch,
                    &mut out,
                );
            }
        }
    }

    report.scans.push(ScanReport {
        alias: scan.alias.clone(),
        access: scan.access.label().to_string(),
        estimated: scan.access.estimated(),
        scanned,
        emitted: out.len(),
    });
    PosBatch {
        stride: 1,
        data: out,
    }
}

/// Pack 1–2 u32 key values into a u64.
#[inline]
fn pack2(vals: [u32; 2], n: usize) -> u64 {
    if n == 1 {
        vals[0] as u64
    } else {
        ((vals[0] as u64) << 32) | vals[1] as u64
    }
}

/// Per-leaf position columns of a batch, extracted at most once. The MC
/// join keys (TableId, RowId) and the SC group keys (TableId, ColumnId)
/// both reference one leaf twice — without the cache every key column
/// would re-copy the same strided positions. Stride-1 batches borrow the
/// batch's data directly, copying nothing.
struct ColCache<'b> {
    batch: &'b PosBatch,
    cols: Vec<Option<Vec<u32>>>,
}

impl<'b> ColCache<'b> {
    fn new(batch: &'b PosBatch) -> Self {
        ColCache {
            batch,
            cols: vec![None; batch.stride],
        }
    }

    /// Positions of the (subtree-local) leaf column.
    fn positions(&mut self, local: usize) -> &[u32] {
        if self.batch.stride == 1 {
            return &self.batch.data;
        }
        self.cols[local].get_or_insert_with(|| self.batch.col(local))
    }
}

/// Positional hash join on packed u64 keys. Build/probe side selection and
/// output row order mirror the tuple executor's `hash_join` so the two
/// paths produce byte-identical results.
///
/// Both join phases ride the pool on large inputs: the build side splits
/// into contiguous chunks with partition-local maps merged chunk-by-chunk
/// (each local per-key match list is ascending and chunk `c` holds lower
/// indices than chunk `c+1`, so concatenation reproduces the sequential
/// per-key lists exactly), and the probe side is chunked with outputs
/// concatenated in chunk order — the sequential probe order.
#[allow(clippy::too_many_arguments)]
fn exec_join(
    left: PosBatch,
    right: PosBatch,
    base: usize,
    n_left: usize,
    keys: &[(PosCol, PosCol)],
    residual: Option<&PExpr>,
    tables: &[&dyn FactTable],
    report: &mut QueryReport,
    par: &ParallelCtx,
) -> PosBatch {
    let build_left = left.len() <= right.len();
    let (build, probe) = if build_left {
        (&left, &right)
    } else {
        (&right, &left)
    };
    let right_base = base + n_left;

    // Key columns for one side, gathered in bulk (one virtual dispatch per
    // column, not per row; positions extracted once per leaf).
    let side_keys = |batch: &PosBatch, side_base: usize, pick_left: bool| -> Vec<Vec<u32>> {
        let mut cache = ColCache::new(batch);
        keys.iter()
            .map(|&(lk, rk)| {
                let (leaf, col) = if pick_left { lk } else { rk };
                let mut vals = Vec::with_capacity(batch.len());
                col.gather(tables[leaf], cache.positions(leaf - side_base), &mut vals);
                vals
            })
            .collect()
    };
    let build_keys = side_keys(
        build,
        if build_left { base } else { right_base },
        build_left,
    );
    let probe_keys = side_keys(
        probe,
        if build_left { right_base } else { base },
        !build_left,
    );

    let nk = keys.len();
    let key_at = |cols: &[Vec<u32>], i: usize| -> u64 {
        let mut vals = [0u32; 2];
        for (k, col) in cols.iter().enumerate() {
            vals[k] = col[i];
        }
        pack2(vals, nk)
    };

    let mut table: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
    if par.should_parallelize(build.len()) {
        let chunks = split_even(build.len(), par.pool().threads());
        let run = par.pool().run(chunks.len(), |ci| {
            let mut local: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
            for i in chunks[ci].clone() {
                local
                    .entry(key_at(&build_keys, i))
                    .or_default()
                    .push(i as u32);
            }
            local
        });
        for local in run.results {
            for (k, mut v) in local {
                match table.entry(k) {
                    Entry::Occupied(mut e) => e.get_mut().append(&mut v),
                    Entry::Vacant(e) => {
                        e.insert(v);
                    }
                }
            }
        }
        report.parallel.push(ParallelPhase {
            phase: "join-build".to_string(),
            partitions: chunks.len(),
            worker_nanos: run.worker_nanos,
        });
    } else {
        for i in 0..build.len() {
            table
                .entry(key_at(&build_keys, i))
                .or_default()
                .push(i as u32);
        }
    }

    let stride = left.stride + right.stride;
    let probe_chunk = |range: std::ops::Range<usize>| -> (Vec<u32>, usize) {
        let mut out: Vec<u32> = Vec::new();
        let mut joined: Vec<u32> = vec![0; stride];
        let mut n_out = 0usize;
        for i in range {
            let Some(matches) = table.get(&key_at(&probe_keys, i)) else {
                continue;
            };
            let pt = probe.row(i);
            for &bi in matches {
                let bt = build.row(bi as usize);
                let (lt, rt) = if build_left { (bt, pt) } else { (pt, bt) };
                joined[..lt.len()].copy_from_slice(lt);
                joined[lt.len()..].copy_from_slice(rt);
                if let Some(res) = residual {
                    if !res.eval_predicate(tables, base, &joined) {
                        continue;
                    }
                }
                out.extend_from_slice(&joined);
                n_out += 1;
            }
        }
        (out, n_out)
    };

    let (out, n_out) = if par.should_parallelize(probe.len()) {
        let chunks = split_even(probe.len(), par.pool().threads());
        let run = par
            .pool()
            .run(chunks.len(), |ci| probe_chunk(chunks[ci].clone()));
        let mut out = Vec::with_capacity(run.results.iter().map(|(o, _)| o.len()).sum());
        let mut n_out = 0usize;
        for (local, local_n) in run.results {
            out.extend_from_slice(&local);
            n_out += local_n;
        }
        report.parallel.push(ParallelPhase {
            phase: "join-probe".to_string(),
            partitions: chunks.len(),
            worker_nanos: run.worker_nanos,
        });
        (out, n_out)
    } else {
        probe_chunk(0..probe.len())
    };
    report.joins.push((build.len(), probe.len(), n_out));
    PosBatch { stride, data: out }
}

// ---- aggregation -----------------------------------------------------------

/// Per-group aggregate state; the distinct-value variants are what make
/// `COUNT(DISTINCT CellValue)` allocation-free.
enum PosAggState<'a> {
    CountStar(i64),
    DistinctCodes(FxHashSet<u32>),
    DistinctStrs(FxHashSet<&'a str>),
    Generic(AggState),
}

impl<'a> PosAggState<'a> {
    /// Fold a later partition's state for the same group into this one
    /// (parallel GROUP BY merge). Chunks are merged in chunk order, so
    /// `other` always covers strictly later rows than `self`.
    fn merge(&mut self, other: PosAggState<'a>) {
        match (self, other) {
            (PosAggState::CountStar(a), PosAggState::CountStar(b)) => *a += b,
            (PosAggState::DistinctCodes(a), PosAggState::DistinctCodes(b)) => a.extend(b),
            (PosAggState::DistinctStrs(a), PosAggState::DistinctStrs(b)) => a.extend(b),
            (PosAggState::Generic(a), PosAggState::Generic(b)) => a.merge(b),
            _ => unreachable!("partition states built in lockstep"),
        }
    }

    fn finish(self) -> SqlValue {
        match self {
            PosAggState::CountStar(n) => SqlValue::Int(n),
            PosAggState::DistinctCodes(set) => SqlValue::Int(set.len() as i64),
            PosAggState::DistinctStrs(set) => SqlValue::Int(set.len() as i64),
            PosAggState::Generic(state) => state.finish(),
        }
    }
}

/// Positional GROUP BY: group keys pack into a `u64` (≤2 columns, the
/// SC/KW shape) or a `u128` (the C shape's 3 columns); aggregate updates
/// read from storage positions. Group output order is first-seen, matching
/// the tuple executor.
///
/// Large inputs whose aggregates all merge exactly (see
/// [`PosAggSpec::merge_exact`]) aggregate in parallel: per-worker maps over
/// contiguous row chunks, merged in chunk order. Chunk-order merging
/// reproduces sequential first-seen group order — a group's first chunk is
/// the chunk of its globally first row, and within a chunk local first-seen
/// order is global order restricted to that chunk.
fn exec_group<'a>(
    shape: &PosGroup,
    agg_plans: &[AggPlan],
    batch: &PosBatch,
    tables: &'a [&'a dyn FactTable],
    report: &mut QueryReport,
    par: &ParallelCtx,
) -> Vec<Tuple> {
    let n_rows = batch.len();
    let mut cache = ColCache::new(batch);

    // Gather key columns in bulk (positions extracted once per leaf).
    let key_cols: Vec<Vec<u32>> = shape
        .keys
        .iter()
        .map(|&(leaf, col)| {
            let mut vals = Vec::with_capacity(n_rows);
            col.gather(tables[leaf], cache.positions(leaf), &mut vals);
            vals
        })
        .collect();

    // Pre-gather dictionary codes for distinct-value aggregates where the
    // engine has them; fall back to borrowed-&str hashing otherwise.
    let prepared: Vec<Option<Vec<u32>>> = shape
        .aggs
        .iter()
        .map(|spec| match spec {
            PosAggSpec::DistinctValue { leaf } if tables[*leaf].has_value_codes() => {
                let mut codes = Vec::with_capacity(n_rows);
                let ok = tables[*leaf].gather_value_codes(cache.positions(*leaf), &mut codes);
                debug_assert!(ok);
                Some(codes)
            }
            _ => None,
        })
        .collect();

    let new_states = |states: &mut Vec<PosAggState<'a>>| {
        for (spec, pre) in shape.aggs.iter().zip(&prepared) {
            states.push(match spec {
                PosAggSpec::CountStar => PosAggState::CountStar(0),
                PosAggSpec::DistinctValue { .. } if pre.is_some() => {
                    PosAggState::DistinctCodes(FxHashSet::default())
                }
                PosAggSpec::DistinctValue { .. } => PosAggState::DistinctStrs(FxHashSet::default()),
                PosAggSpec::Generic { agg, .. } => {
                    PosAggState::Generic(AggState::new(&agg_plans[*agg]))
                }
            });
        }
    };

    // Fold row `i` into a group's aggregate states (shared by the
    // sequential loop and each parallel worker).
    let update_row = |i: usize, states: &mut [PosAggState<'a>]| {
        let row = batch.row(i);
        for ((state, spec), pre) in states.iter_mut().zip(&shape.aggs).zip(&prepared) {
            match (state, spec) {
                (PosAggState::CountStar(n), _) => *n += 1,
                (PosAggState::DistinctCodes(set), _) => {
                    set.insert(pre.as_ref().expect("codes gathered")[i]);
                }
                (PosAggState::DistinctStrs(set), PosAggSpec::DistinctValue { leaf }) => {
                    set.insert(tables[*leaf].value_at(row[*leaf] as usize));
                }
                (PosAggState::Generic(state), PosAggSpec::Generic { arg, .. }) => {
                    state.update_value(arg.as_ref().map(|e| e.eval(tables, 0, row)));
                }
                _ => unreachable!("state/spec built in lockstep"),
            }
        }
    };

    let global = shape.keys.is_empty();
    let nk = shape.keys.len();

    if par.should_parallelize(n_rows) && shape.aggs.iter().all(|s| s.merge_exact(agg_plans)) {
        // Per-worker aggregation over contiguous row chunks. Workers key
        // their local maps on a packed u128 (injective for ≤4 u32 key
        // columns) and remember each group's first row; the chunk-order
        // merge below keeps the globally-first row and folds later chunks'
        // states in.
        let key128 = |i: usize| -> u128 {
            let mut key: u128 = 0;
            for col in &key_cols {
                key = (key << 32) | col[i] as u128;
            }
            key
        };
        let chunks = split_even(n_rows, par.pool().threads());
        let run = par.pool().run(chunks.len(), |ci| {
            let mut index: FxHashMap<u128, u32> = FxHashMap::default();
            let mut locals: Vec<(u128, usize, Vec<PosAggState<'a>>)> = Vec::new();
            if global {
                let mut states = Vec::with_capacity(shape.aggs.len());
                new_states(&mut states);
                locals.push((0, chunks[ci].start, states));
            }
            for i in chunks[ci].clone() {
                let gi = if global {
                    0
                } else {
                    match index.entry(key128(i)) {
                        Entry::Occupied(e) => *e.get() as usize,
                        Entry::Vacant(e) => {
                            let gi = locals.len();
                            e.insert(gi as u32);
                            let mut states = Vec::with_capacity(shape.aggs.len());
                            new_states(&mut states);
                            locals.push((key128(i), i, states));
                            gi
                        }
                    }
                };
                update_row(i, &mut locals[gi].2);
            }
            locals
        });

        let mut index: FxHashMap<u128, u32> = FxHashMap::default();
        let mut groups: Vec<(usize, Vec<PosAggState<'a>>)> = Vec::new();
        for locals in run.results {
            for (key, first_row, states) in locals {
                if global && !groups.is_empty() {
                    for (dst, src) in groups[0].1.iter_mut().zip(states) {
                        dst.merge(src);
                    }
                    continue;
                }
                match index.entry(key) {
                    Entry::Vacant(e) => {
                        e.insert(groups.len() as u32);
                        groups.push((first_row, states));
                    }
                    Entry::Occupied(e) => {
                        let gi = *e.get() as usize;
                        for (dst, src) in groups[gi].1.iter_mut().zip(states) {
                            dst.merge(src);
                        }
                    }
                }
            }
        }
        report.parallel.push(ParallelPhase {
            phase: "group".to_string(),
            partitions: chunks.len(),
            worker_nanos: run.worker_nanos,
        });
        return finish_groups(groups, &key_cols, nk);
    }

    // Sequential path: first-seen row index per group (for key value
    // output) + states.
    let mut groups: Vec<(usize, Vec<PosAggState<'a>>)> = Vec::new();
    if global {
        let mut states = Vec::with_capacity(shape.aggs.len());
        new_states(&mut states);
        groups.push((0, states));
    }

    let mut index64: FxHashMap<u64, u32> = FxHashMap::default();
    let mut index128: FxHashMap<u128, u32> = FxHashMap::default();

    for i in 0..n_rows {
        let gi = if global {
            0
        } else if nk <= 2 {
            let mut vals = [0u32; 2];
            for (k, col) in key_cols.iter().enumerate() {
                vals[k] = col[i];
            }
            match index64.entry(pack2(vals, nk)) {
                Entry::Occupied(e) => *e.get() as usize,
                Entry::Vacant(e) => {
                    let gi = groups.len();
                    e.insert(gi as u32);
                    let mut states = Vec::with_capacity(shape.aggs.len());
                    new_states(&mut states);
                    groups.push((i, states));
                    gi
                }
            }
        } else {
            let mut key: u128 = 0;
            for col in &key_cols {
                key = (key << 32) | col[i] as u128;
            }
            match index128.entry(key) {
                Entry::Occupied(e) => *e.get() as usize,
                Entry::Vacant(e) => {
                    let gi = groups.len();
                    e.insert(gi as u32);
                    let mut states = Vec::with_capacity(shape.aggs.len());
                    new_states(&mut states);
                    groups.push((i, states));
                    gi
                }
            }
        };

        update_row(i, &mut groups[gi].1);
    }

    finish_groups(groups, &key_cols, nk)
}

/// Materialize post-aggregation tuples: key columns (read at the group's
/// first-seen row) then aggregates, exactly like the tuple executor's
/// group output.
fn finish_groups(
    groups: Vec<(usize, Vec<PosAggState<'_>>)>,
    key_cols: &[Vec<u32>],
    nk: usize,
) -> Vec<Tuple> {
    groups
        .into_iter()
        .map(|(first_row, states)| {
            let mut row: Tuple = Vec::with_capacity(nk + states.len());
            for col in key_cols {
                row.push(SqlValue::Int(col[first_row] as i64));
            }
            row.extend(states.into_iter().map(PosAggState::finish));
            row
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{ExecPath, SqlEngine};
    use blend_storage::{build_engine, EngineKind};

    fn engine(kind: EngineKind) -> SqlEngine {
        let mut rows = Vec::new();
        for t in 0..4u32 {
            for r in 0..6u32 {
                rows.push(blend_storage::FactRow::new(
                    &format!("k{}", (t + r) % 5),
                    t,
                    0,
                    r,
                    ((t as u128) << 32) | r as u128,
                    None,
                ));
                rows.push(blend_storage::FactRow::new(
                    &format!("{}", r * 10),
                    t,
                    1,
                    r,
                    ((t as u128) << 32) | r as u128,
                    Some(r % 2 == 0),
                ));
            }
        }
        SqlEngine::with_alltables(build_engine(kind, rows))
    }

    fn both_paths(eng: &SqlEngine, sql: &str) -> (ResultSet, String, ResultSet) {
        let (a, ra) = eng.execute_with_report_path(sql, ExecPath::Auto).unwrap();
        let (b, _) = eng
            .execute_with_report_path(sql, ExecPath::TupleOnly)
            .unwrap();
        (a, ra.path, b)
    }

    #[test]
    fn sc_shape_is_admitted_on_both_engines() {
        for kind in [EngineKind::Row, EngineKind::Column] {
            let eng = engine(kind);
            let (a, path, b) = both_paths(
                &eng,
                "SELECT TableId AS t, COUNT(DISTINCT CellValue) AS score FROM AllTables \
                 WHERE CellValue IN ('k0','k2','k4') GROUP BY TableId, ColumnId \
                 ORDER BY score DESC LIMIT 10",
            );
            assert_eq!(path, "positional");
            assert_eq!(a, b);
            assert!(!a.is_empty());
        }
    }

    #[test]
    fn mc_join_shape_is_admitted() {
        for kind in [EngineKind::Row, EngineKind::Column] {
            let eng = engine(kind);
            let (a, path, b) = both_paths(
                &eng,
                "SELECT q0.TableId AS tid, q0.RowId AS rid, q0.SuperKey AS sk, \
                 q0.CellValue AS v0, q1.CellValue AS v1 FROM \
                 (SELECT * FROM AllTables WHERE CellValue IN ('k1','k3')) AS q0 \
                 INNER JOIN (SELECT * FROM AllTables WHERE CellValue IN ('10','30')) AS q1 \
                 ON q0.TableId = q1.TableId AND q0.RowId = q1.RowId",
            );
            assert_eq!(path, "positional");
            assert_eq!(a, b);
            assert!(!a.is_empty());
        }
    }

    #[test]
    fn correlation_shape_with_residual_and_three_group_keys() {
        for kind in [EngineKind::Row, EngineKind::Column] {
            let eng = engine(kind);
            let (a, path, b) = both_paths(
                &eng,
                "SELECT keys.TableId AS t, keys.ColumnId AS kc, nums.ColumnId AS nc, \
                 ABS((2 * SUM(((keys.CellValue IN ('k0','k1') AND nums.Quadrant = 0) OR \
                 (keys.CellValue IN ('k2','k3','k4') AND nums.Quadrant = 1))::int) - COUNT(*)) \
                 / COUNT(*)) AS score, COUNT(*) AS n \
                 FROM (SELECT * FROM AllTables WHERE RowId < 6 AND \
                 CellValue IN ('k0','k1','k2','k3','k4')) keys \
                 INNER JOIN (SELECT * FROM AllTables WHERE RowId < 6 AND \
                 Quadrant IS NOT NULL) nums \
                 ON keys.TableId = nums.TableId AND keys.RowId = nums.RowId \
                 AND keys.ColumnId <> nums.ColumnId \
                 GROUP BY keys.TableId, nums.ColumnId, keys.ColumnId \
                 ORDER BY score DESC",
            );
            assert_eq!(path, "positional");
            assert_eq!(a, b);
            assert!(!a.is_empty());
        }
    }

    #[test]
    fn global_aggregate_emits_one_row_even_when_empty() {
        let eng = engine(EngineKind::Column);
        let (a, path, b) = both_paths(
            &eng,
            "SELECT COUNT(*) AS n FROM AllTables WHERE CellValue IN ('no-such-value')",
        );
        assert_eq!(path, "positional");
        assert_eq!(a, b);
        assert_eq!(a.i64(0, "n"), Some(0));
    }

    #[test]
    fn expression_group_keys_fall_back() {
        let eng = engine(EngineKind::Column);
        let (rs, report) = eng
            .execute_with_report_path(
                "SELECT TableId + 1 AS t1, COUNT(*) AS n FROM AllTables GROUP BY TableId + 1",
                ExecPath::Auto,
            )
            .unwrap();
        assert_eq!(report.path, "tuple");
        assert!(!rs.is_empty());
    }

    /// Engine with parallel tuning forced low enough that every phase of
    /// every query in this module rides the pool.
    fn forced_parallel_engine(kind: EngineKind, threads: usize) -> SqlEngine {
        let mut eng = engine(kind);
        eng.set_parallel(Arc::new(ParallelCtx::with_tuning(threads, 1, 3)));
        eng
    }

    #[test]
    fn forced_parallel_execution_is_byte_identical() {
        let queries = [
            // SC shape: parallel scan + parallel group.
            "SELECT TableId AS t, COUNT(DISTINCT CellValue) AS score FROM AllTables \
             WHERE CellValue IN ('k0','k2','k4') GROUP BY TableId, ColumnId \
             ORDER BY score DESC LIMIT 10",
            // MC shape: parallel scans + parallel join build/probe.
            "SELECT q0.TableId AS tid, q0.RowId AS rid, q0.SuperKey AS sk, \
             q0.CellValue AS v0, q1.CellValue AS v1 FROM \
             (SELECT * FROM AllTables WHERE CellValue IN ('k1','k3')) AS q0 \
             INNER JOIN (SELECT * FROM AllTables WHERE CellValue IN ('10','30')) AS q1 \
             ON q0.TableId = q1.TableId AND q0.RowId = q1.RowId",
            // C shape: integer-valued SUM keeps the parallel group exact.
            "SELECT keys.TableId AS t, keys.ColumnId AS kc, nums.ColumnId AS nc, \
             ABS((2 * SUM(((keys.CellValue IN ('k0','k1') AND nums.Quadrant = 0) OR \
             (keys.CellValue IN ('k2','k3','k4') AND nums.Quadrant = 1))::int) - COUNT(*)) \
             / COUNT(*)) AS score, COUNT(*) AS n \
             FROM (SELECT * FROM AllTables WHERE RowId < 6 AND \
             CellValue IN ('k0','k1','k2','k3','k4')) keys \
             INNER JOIN (SELECT * FROM AllTables WHERE RowId < 6 AND \
             Quadrant IS NOT NULL) nums \
             ON keys.TableId = nums.TableId AND keys.RowId = nums.RowId \
             AND keys.ColumnId <> nums.ColumnId \
             GROUP BY keys.TableId, nums.ColumnId, keys.ColumnId \
             ORDER BY score DESC",
            // Global aggregate with a seq scan.
            "SELECT COUNT(*) AS n, MIN(RowId) AS lo, MAX(RowId) AS hi FROM AllTables \
             WHERE Quadrant IS NOT NULL",
        ];
        for kind in [EngineKind::Row, EngineKind::Column] {
            let reference = engine(kind);
            for sql in queries {
                let (want, want_rep) = reference
                    .execute_with_report_path(sql, ExecPath::Auto)
                    .unwrap();
                assert_eq!(want_rep.path, "positional", "{sql}");
                for threads in [2, 4, 8] {
                    let eng = forced_parallel_engine(kind, threads);
                    let (got, rep) = eng.execute_with_report_path(sql, ExecPath::Auto).unwrap();
                    assert_eq!(got, want, "{kind:?}/{threads}t: {sql}");
                    assert!(
                        rep.logical_eq(&want_rep),
                        "{kind:?}/{threads}t telemetry: {sql}"
                    );
                    // The pool actually ran: phases were recorded, with
                    // more than one partition and bounded worker counts.
                    assert!(!rep.parallel.is_empty(), "{kind:?}/{threads}t: {sql}");
                    for phase in &rep.parallel {
                        assert!(phase.partitions > 1, "{}: {sql}", phase.phase);
                        assert!(!phase.worker_nanos.is_empty());
                        assert!(phase.worker_nanos.len() <= threads);
                    }
                }
            }
        }
    }

    #[test]
    fn sequential_ctx_records_no_parallel_phases() {
        let mut eng = engine(EngineKind::Column);
        eng.set_parallel(Arc::new(ParallelCtx::with_tuning(1, 1, 3)));
        let (_, rep) = eng
            .execute_with_report_path(
                "SELECT TableId AS t, COUNT(*) AS n FROM AllTables GROUP BY TableId",
                ExecPath::Auto,
            )
            .unwrap();
        assert_eq!(rep.path, "positional");
        assert!(rep.parallel.is_empty());
    }

    #[test]
    fn float_sums_fall_back_to_sequential_grouping() {
        // `SUM(RowId / 2)` can produce non-integer values, whose partition
        // merge would not be bit-exact; the parallel group path must refuse
        // it (results still correct via the sequential group loop).
        let eng = forced_parallel_engine(EngineKind::Column, 4);
        let sql = "SELECT TableId AS t, SUM(RowId / 2) AS s FROM AllTables GROUP BY TableId";
        let (got, rep) = eng.execute_with_report_path(sql, ExecPath::Auto).unwrap();
        assert!(
            rep.parallel.iter().all(|p| p.phase != "group"),
            "float SUM must not group in parallel"
        );
        let (want, _) = eng
            .execute_with_report_path(sql, ExecPath::TupleOnly)
            .unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn never_true_injection_yields_empty_results_positionally() {
        // The rewriter's empty-intersection fragment (`AND 1 = 0`) must be
        // executable on the positional path too.
        let eng = engine(EngineKind::Column);
        let (a, path, b) = both_paths(
            &eng,
            "SELECT TableId AS t, COUNT(DISTINCT CellValue) AS score FROM AllTables \
             WHERE CellValue IN ('k0','k1') AND 1 = 0 GROUP BY TableId, ColumnId",
        );
        assert_eq!(path, "positional");
        assert_eq!(a, b);
        assert!(a.is_empty());
    }
}

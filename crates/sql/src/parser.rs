//! Recursive-descent parser for the SQL subset.

use blend_common::{BlendError, Result};

use crate::ast::*;
use crate::lexer::{tokenize, Token};

/// Parse one query (a trailing `;` is tolerated and ignored).
pub fn parse(sql: &str) -> Result<Query> {
    let sql = sql.trim().trim_end_matches(';');
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let q = p.query()?;
    if p.pos != p.tokens.len() {
        return Err(BlendError::SqlParse(format!(
            "trailing tokens starting at {:?}",
            p.tokens[p.pos]
        )));
    }
    Ok(q)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Is the current token the given keyword (case-insensitive)?
    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    /// Consume a keyword if present.
    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(BlendError::SqlParse(format!(
                "expected `{kw}`, found {:?}",
                self.peek()
            )))
        }
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Token) -> Result<()> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(BlendError::SqlParse(format!(
                "expected {t:?}, found {:?}",
                self.peek()
            )))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s.to_lowercase()),
            other => Err(BlendError::SqlParse(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    // ---- query ---------------------------------------------------------

    fn query(&mut self) -> Result<Query> {
        self.expect_kw("SELECT")?;
        let select = self.select_list()?;
        self.expect_kw("FROM")?;
        let from = self.parse_from_item()?;
        let mut joins = Vec::new();
        loop {
            let inner = self.eat_kw("INNER");
            if self.eat_kw("JOIN") {
                let item = self.parse_from_item()?;
                self.expect_kw("ON")?;
                let on = self.expr()?;
                joins.push(Join { item, on });
            } else if inner {
                return Err(BlendError::SqlParse("`INNER` without `JOIN`".into()));
            } else {
                break;
            }
        }
        let where_clause = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            loop {
                group_by.push(self.expr()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        let mut order_by = Vec::new();
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let expr = self.expr()?;
                let desc = if self.eat_kw("DESC") {
                    true
                } else {
                    self.eat_kw("ASC");
                    false
                };
                order_by.push(OrderItem { expr, desc });
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("LIMIT") {
            match self.next() {
                Some(Token::Int(n)) if n >= 0 => Some(n as usize),
                other => {
                    return Err(BlendError::SqlParse(format!(
                        "expected LIMIT count, found {other:?}"
                    )))
                }
            }
        } else {
            None
        };
        Ok(Query {
            select,
            from,
            joins,
            where_clause,
            group_by,
            order_by,
            limit,
        })
    }

    fn select_list(&mut self) -> Result<Vec<SelectItem>> {
        let mut items = Vec::new();
        loop {
            if self.eat(&Token::Star) {
                items.push(SelectItem::Wildcard);
            } else {
                let expr = self.expr()?;
                let alias = if self.eat_kw("AS") {
                    Some(self.ident()?)
                } else if let Some(Token::Ident(s)) = self.peek() {
                    // Bare alias, unless the ident is a clause keyword.
                    if is_clause_keyword(s) {
                        None
                    } else {
                        Some(self.ident()?)
                    }
                } else {
                    None
                };
                items.push(SelectItem::Expr { expr, alias });
            }
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        Ok(items)
    }

    fn parse_from_item(&mut self) -> Result<FromItem> {
        let source = if self.eat(&Token::LParen) {
            let q = self.query()?;
            self.expect(&Token::RParen)?;
            TableSource::Subquery(Box::new(q))
        } else {
            TableSource::Named(self.ident()?)
        };
        let alias = if self.eat_kw("AS") {
            Some(self.ident()?)
        } else if let Some(Token::Ident(s)) = self.peek() {
            if is_clause_keyword(s) {
                None
            } else {
                Some(self.ident()?)
            }
        } else {
            None
        };
        Ok(FromItem { source, alias })
    }

    // ---- expressions -----------------------------------------------------

    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut left = self.and_expr()?;
        while self.eat_kw("OR") {
            let right = self.and_expr()?;
            left = Expr::Binary {
                left: Box::new(left),
                op: BinOp::Or,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut left = self.not_expr()?;
        while self.at_kw("AND") {
            self.pos += 1;
            let right = self.not_expr()?;
            left = Expr::Binary {
                left: Box::new(left),
                op: BinOp::And,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_kw("NOT") {
            let inner = self.not_expr()?;
            Ok(Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(inner),
            })
        } else {
            self.cmp_expr()
        }
    }

    fn cmp_expr(&mut self) -> Result<Expr> {
        let left = self.add_expr()?;
        // IS [NOT] NULL
        if self.at_kw("IS") {
            self.pos += 1;
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(Expr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        // [NOT] IN (...)
        let negated_in = if self.at_kw("NOT") {
            // lookahead: NOT IN
            if matches!(self.tokens.get(self.pos + 1), Some(Token::Ident(s)) if s.eq_ignore_ascii_case("IN"))
            {
                self.pos += 2;
                true
            } else {
                return Ok(left); // leave `NOT` for caller (shouldn't happen)
            }
        } else if self.eat_kw("IN") {
            false
        } else {
            // plain comparison?
            let op = match self.peek() {
                Some(Token::Eq) => Some(BinOp::Eq),
                Some(Token::Neq) => Some(BinOp::Neq),
                Some(Token::Lt) => Some(BinOp::Lt),
                Some(Token::Le) => Some(BinOp::Le),
                Some(Token::Gt) => Some(BinOp::Gt),
                Some(Token::Ge) => Some(BinOp::Ge),
                _ => None,
            };
            return match op {
                Some(op) => {
                    self.pos += 1;
                    let right = self.add_expr()?;
                    Ok(Expr::Binary {
                        left: Box::new(left),
                        op,
                        right: Box::new(right),
                    })
                }
                None => Ok(left),
            };
        };
        self.expect(&Token::LParen)?;
        let mut list = Vec::new();
        if !self.eat(&Token::RParen) {
            loop {
                list.push(self.expr()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
        }
        Ok(Expr::InList {
            expr: Box::new(left),
            list,
            negated: negated_in,
        })
    }

    fn add_expr(&mut self) -> Result<Expr> {
        let mut left = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinOp::Add,
                Some(Token::Minus) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let right = self.mul_expr()?;
            left = Expr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn mul_expr(&mut self) -> Result<Expr> {
        let mut left = self.cast_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinOp::Mul,
                Some(Token::Slash) => BinOp::Div,
                Some(Token::Percent) => BinOp::Mod,
                _ => break,
            };
            self.pos += 1;
            let right = self.cast_expr()?;
            left = Expr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn cast_expr(&mut self) -> Result<Expr> {
        let mut e = self.primary()?;
        while self.eat(&Token::DoubleColon) {
            let ty = self.ident()?;
            match ty.as_str() {
                "int" | "integer" | "int4" | "int8" => e = Expr::CastInt(Box::new(e)),
                other => {
                    return Err(BlendError::SqlParse(format!(
                        "unsupported cast target `{other}`"
                    )))
                }
            }
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.next() {
            Some(Token::Int(n)) => Ok(Expr::Int(n)),
            Some(Token::Float(f)) => Ok(Expr::Float(f)),
            Some(Token::Str(s)) => Ok(Expr::Str(s)),
            Some(Token::Minus) => {
                let inner = self.primary()?;
                Ok(Expr::Unary {
                    op: UnaryOp::Neg,
                    expr: Box::new(inner),
                })
            }
            Some(Token::LParen) => {
                let e = self.expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Some(Token::Ident(id)) => self.ident_tail(id),
            other => Err(BlendError::SqlParse(format!(
                "unexpected token in expression: {other:?}"
            ))),
        }
    }

    /// Continue parsing after an identifier: literal keywords, function
    /// calls, or (qualified) column references.
    fn ident_tail(&mut self, id: String) -> Result<Expr> {
        let upper = id.to_uppercase();
        match upper.as_str() {
            "NULL" => return Ok(Expr::Null),
            "TRUE" => return Ok(Expr::Bool(true)),
            "FALSE" => return Ok(Expr::Bool(false)),
            _ => {}
        }
        if self.peek() == Some(&Token::LParen) {
            self.pos += 1; // consume (
            return self.call_tail(&upper);
        }
        if self.eat(&Token::Dot) {
            let name = self.ident()?;
            return Ok(Expr::Column {
                qualifier: Some(id.to_lowercase()),
                name,
            });
        }
        Ok(Expr::Column {
            qualifier: None,
            name: id.to_lowercase(),
        })
    }

    fn call_tail(&mut self, func: &str) -> Result<Expr> {
        let agg = match func {
            "COUNT" => Some(AggFunc::Count),
            "SUM" => Some(AggFunc::Sum),
            "MIN" => Some(AggFunc::Min),
            "MAX" => Some(AggFunc::Max),
            "AVG" => Some(AggFunc::Avg),
            _ => None,
        };
        if let Some(func) = agg {
            if self.eat(&Token::Star) {
                self.expect(&Token::RParen)?;
                if func != AggFunc::Count {
                    return Err(BlendError::SqlParse("only COUNT(*) accepts `*`".into()));
                }
                return Ok(Expr::Agg {
                    func,
                    distinct: false,
                    arg: None,
                });
            }
            let distinct = self.eat_kw("DISTINCT");
            let arg = self.expr()?;
            self.expect(&Token::RParen)?;
            return Ok(Expr::Agg {
                func,
                distinct,
                arg: Some(Box::new(arg)),
            });
        }
        match func {
            "ABS" => {
                let arg = self.expr()?;
                self.expect(&Token::RParen)?;
                Ok(Expr::Abs(Box::new(arg)))
            }
            other => Err(BlendError::SqlParse(format!(
                "unsupported function `{other}`"
            ))),
        }
    }
}

fn is_clause_keyword(s: &str) -> bool {
    matches!(
        s.to_uppercase().as_str(),
        "FROM"
            | "WHERE"
            | "GROUP"
            | "ORDER"
            | "LIMIT"
            | "INNER"
            | "JOIN"
            | "ON"
            | "AND"
            | "OR"
            | "NOT"
            | "IN"
            | "IS"
            | "AS"
            | "BY"
            | "ASC"
            | "DESC"
            | "SELECT"
            | "UNION"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_listing_1() {
        // Paper Listing 1: the SC seeker.
        let q = parse(
            "SELECT TableId FROM AllTables \
             WHERE CellValue IN ('hr', 'marketing') \
             GROUP BY TableId, ColumnId \
             ORDER BY COUNT(DISTINCT CellValue) DESC \
             LIMIT 10;",
        )
        .unwrap();
        assert_eq!(q.select.len(), 1);
        assert_eq!(q.group_by.len(), 2);
        assert_eq!(q.order_by.len(), 1);
        assert!(q.order_by[0].desc);
        assert_eq!(q.limit, Some(10));
        assert!(matches!(
            q.order_by[0].expr,
            Expr::Agg {
                func: AggFunc::Count,
                distinct: true,
                ..
            }
        ));
    }

    #[test]
    fn parses_listing_2() {
        // Paper Listing 2: first phase of the MC seeker.
        let q = parse(
            "SELECT * FROM \
             (SELECT * FROM AllTables WHERE CellValue IN ('a')) AS Q1_index_hits \
             INNER JOIN \
             (SELECT * FROM AllTables WHERE CellValue IN ('b')) AS Q2_index_hits \
             ON Q1_index_hits.TableId = Q2_index_hits.TableId \
             AND Q1_index_hits.RowId = Q2_index_hits.RowId",
        )
        .unwrap();
        assert_eq!(q.joins.len(), 1);
        assert!(matches!(q.from.source, TableSource::Subquery(_)));
        assert_eq!(q.from.alias.as_deref(), Some("q1_index_hits"));
        let on = &q.joins[0].on;
        assert_eq!(on.conjuncts().len(), 2);
    }

    #[test]
    fn parses_listing_3_style_score() {
        // The QCR score expression of Listing 3.
        let q = parse(
            "SELECT keys.TableId FROM \
             (SELECT * FROM AllTables WHERE RowId < 256 AND CellValue IN ('x')) keys \
             INNER JOIN \
             (SELECT * FROM AllTables WHERE RowId < 256 AND Quadrant IS NOT NULL) nums \
             ON keys.TableId = nums.TableId AND keys.RowId = nums.RowId \
             GROUP BY keys.TableId, nums.ColumnId, keys.ColumnId \
             ORDER BY ABS((2 * SUM(((keys.CellValue IN ('k0') AND nums.Quadrant = 0) OR \
             (keys.CellValue IN ('k1') AND nums.Quadrant = 1))::int) - COUNT(*)) / COUNT(*)) DESC \
             LIMIT 5",
        )
        .unwrap();
        assert_eq!(q.group_by.len(), 3);
        assert!(q.order_by[0].expr.contains_agg());
        let mut aggs = Vec::new();
        q.order_by[0].expr.collect_aggs(&mut aggs);
        assert_eq!(aggs.len(), 2); // SUM(...) and COUNT(*)
    }

    #[test]
    fn bare_and_as_aliases() {
        let q = parse("SELECT TableId tid, COUNT(*) AS c FROM AllTables GROUP BY TableId").unwrap();
        match &q.select[0] {
            SelectItem::Expr { alias, .. } => assert_eq!(alias.as_deref(), Some("tid")),
            _ => panic!(),
        }
        match &q.select[1] {
            SelectItem::Expr { alias, .. } => assert_eq!(alias.as_deref(), Some("c")),
            _ => panic!(),
        }
    }

    #[test]
    fn not_in_parses() {
        let q = parse("SELECT * FROM AllTables WHERE TableId NOT IN (1, 2, 3)").unwrap();
        match q.where_clause.unwrap() {
            Expr::InList { negated, list, .. } => {
                assert!(negated);
                assert_eq!(list.len(), 3);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn empty_in_list_allowed() {
        // The rewriter can inject an empty intermediate result.
        let q = parse("SELECT * FROM AllTables WHERE TableId IN ()").unwrap();
        match q.where_clause.unwrap() {
            Expr::InList { list, .. } => assert!(list.is_empty()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn precedence_or_and() {
        let q = parse("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3").unwrap();
        // Must parse as a OR (b AND c).
        match q.where_clause.unwrap() {
            Expr::Binary {
                op: BinOp::Or,
                right,
                ..
            } => {
                assert!(matches!(*right, Expr::Binary { op: BinOp::And, .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn arithmetic_precedence() {
        let q = parse("SELECT 1 + 2 * 3 FROM t").unwrap();
        match &q.select[0] {
            SelectItem::Expr { expr, .. } => match expr {
                Expr::Binary {
                    op: BinOp::Add,
                    right,
                    ..
                } => {
                    assert!(matches!(**right, Expr::Binary { op: BinOp::Mul, .. }));
                }
                other => panic!("{other:?}"),
            },
            _ => panic!(),
        }
    }

    #[test]
    fn rejects_trailing_tokens_and_garbage() {
        assert!(parse("SELECT * FROM t WHERE").is_err());
        assert!(parse("SELECT * FROM t extra stuff everywhere (").is_err());
        assert!(parse("FROM t").is_err());
    }

    #[test]
    fn rejects_sum_star() {
        assert!(parse("SELECT SUM(*) FROM t").is_err());
    }

    #[test]
    fn cast_int_and_is_null() {
        let q = parse("SELECT (a = 1)::int FROM t WHERE b IS NOT NULL").unwrap();
        match &q.select[0] {
            SelectItem::Expr { expr, .. } => assert!(matches!(expr, Expr::CastInt(_))),
            _ => panic!(),
        }
        assert!(matches!(
            q.where_clause.unwrap(),
            Expr::IsNull { negated: true, .. }
        ));
    }

    #[test]
    fn unary_minus_and_not() {
        let q = parse("SELECT -x FROM t WHERE NOT a = 1 AND NOT (b = 2)").unwrap();
        match &q.select[0] {
            SelectItem::Expr { expr, .. } => {
                assert!(matches!(
                    expr,
                    Expr::Unary {
                        op: UnaryOp::Neg,
                        ..
                    }
                ))
            }
            _ => panic!(),
        }
        let w = q.where_clause.unwrap();
        assert_eq!(w.conjuncts().len(), 2);
    }
}

//! Physical execution of planned queries.
//!
//! Execution is materializing (each operator returns a `Vec` of tuples),
//! which keeps the engine simple and is appropriate for the highly selective
//! index workloads BLEND generates: access paths cut candidate sets down
//! before anything is materialized.

use blend_common::{FxHashMap, FxHashSet, Result};
use blend_parallel::ParallelCtx;

use blend_storage::ScanScratch;

use crate::ast::AggFunc;
use crate::expr::CExpr;
use crate::plan::{
    materialize, AccessPath, AggPlan, GroupPlan, InputPlan, QueryPlan, ScanPlan, Tree,
};
use crate::value::SqlValue;

/// One tuple.
pub type Tuple = Vec<SqlValue>;

/// Per-scan execution telemetry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanReport {
    /// Scan alias (`keys`, `nums`, `alltables`, ...).
    pub alias: String,
    /// Chosen access path label.
    pub access: String,
    /// Cardinality estimate the access path was chosen with.
    pub estimated: usize,
    /// Positions actually visited.
    pub scanned: usize,
    /// Tuples surviving all scan predicates.
    pub emitted: usize,
}

/// Parallel-execution telemetry for one positional-executor phase that ran
/// on the worker pool. Sequential fallbacks record nothing, so a
/// `BLEND_THREADS=1` run — or a phase denied by admission control under
/// concurrent load — leaves no entry here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParallelPhase {
    /// Phase label: `scan:<alias>`, `join-build`, `join-probe`, `group`.
    pub phase: String,
    /// Number of work partitions (morsels or contiguous chunks).
    pub partitions: usize,
    /// Workers the admission controller granted this phase, **including
    /// the calling thread**. Equals the context's thread budget when the
    /// machine is idle; smaller under concurrent load (the machine-wide
    /// token budget is shared by every in-flight query).
    pub granted: usize,
    /// Busy wall-clock time per participating worker, in nanoseconds.
    pub worker_nanos: Vec<u64>,
}

/// Flat hash-table telemetry for one join or GROUP BY phase of the
/// positional executor (see `blend_sql::hashtable`): how the table was
/// built and how healthy its key distribution is. Printed by the bench
/// harness alongside [`memory_breakdown`].
///
/// [`memory_breakdown`]: blend_storage::FactTable::memory_breakdown
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HashTableStats {
    /// Phase label: `"join"` or `"group"`.
    pub phase: String,
    /// Wall-clock nanos spent building the flat structure. For joins this
    /// covers radix partitioning plus the counting/scatter table builds
    /// (probing is excluded — it is the separately-timed phase output).
    /// For GROUP BY it covers the whole fused grouping phase: the
    /// group-id index pass *and* the aggregate accumulation passes, which
    /// have no separable "probe" side — so join and group nanos are not
    /// directly comparable.
    pub build_nanos: u64,
    /// Total buckets (join) / index slots (group) across all radix
    /// partitions.
    pub buckets: usize,
    /// Fullest bucket run (join) / longest probe sequence (group) across
    /// all radix partitions.
    pub max_chain: usize,
    /// Radix partition count (1 = the sequential, unpartitioned path).
    pub partitions: usize,
}

/// Per-request serving telemetry: where a request's wall-clock went and
/// how it ended. The `blend_serve` queue attaches the full view (queue
/// wait + execution); direct engine calls record execution time from the
/// root span with a zero queue wait, so every successful query has
/// end-to-end timing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServingStats {
    /// Nanoseconds between enqueue and the start of execution (queue
    /// residency plus the blocking admission wait).
    pub queue_wait_nanos: u64,
    /// Nanoseconds spent executing (0 when the request never started).
    pub exec_nanos: u64,
    /// Terminal outcome: `"ok"`, `"timeout"`, `"cancelled"`,
    /// `"overloaded"`, or — through the serving tier's workload-shape
    /// layer — `"cache_hit"` (served from the fingerprint-keyed result
    /// cache) or `"coalesced_hit"` (resolved from a fingerprint-identical
    /// in-flight execution).
    pub outcome: String,
}

/// Whole-query execution telemetry (the `EXPLAIN ANALYZE` stand-in used by
/// tests and the optimizer experiments).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueryReport {
    pub scans: Vec<ScanReport>,
    /// (build side rows, probe side rows, output rows) per join.
    pub joins: Vec<(usize, usize, usize)>,
    pub result_rows: usize,
    /// Executor that ran the top-level query: `"positional"` (the
    /// late-materialization path for recognized BLEND shapes) or `"tuple"`
    /// (the general materializing path).
    pub path: String,
    /// Pool-backed phases of the positional executor, in execution order.
    pub parallel: Vec<ParallelPhase>,
    /// Flat join/group hash-table builds, in execution order.
    pub hash_tables: Vec<HashTableStats>,
    /// End-to-end serving telemetry (queue wait is 0 for direct calls).
    pub serving: Option<ServingStats>,
    /// The unified `EXPLAIN ANALYZE` span tree for this query: scan, join
    /// build/probe, group, and global-agg phases with wall nanos and
    /// attributes, rooted at the engine's `query` span. `None` when
    /// instrumentation is disabled ([`blend_obs::set_enabled`]).
    pub profile: Option<blend_obs::Profile>,
}

impl QueryReport {
    /// Logical-telemetry equality: same scans, join cardinalities, result
    /// rows, and executor path. Ignores [`QueryReport::parallel`],
    /// [`QueryReport::hash_tables`], [`QueryReport::serving`], and
    /// [`QueryReport::profile`], whose partition counts, table sizing, and
    /// timings legitimately vary with the thread count and serving
    /// conditions — everything else must be byte-identical at every thread
    /// count (the parity suite's contract).
    pub fn logical_eq(&self, other: &QueryReport) -> bool {
        self.scans == other.scans
            && self.joins == other.joins
            && self.result_rows == other.result_rows
            && self.path == other.path
    }
}

/// A materialized query result.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    /// Output column labels, in select-list order.
    pub columns: Vec<String>,
    /// Row-major values.
    pub rows: Vec<Tuple>,
}

impl ResultSet {
    /// Index of a column label.
    pub fn col(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the result has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Typed accessor: i64 at (row, column label).
    pub fn i64(&self, row: usize, col: &str) -> Option<i64> {
        self.rows.get(row)?.get(self.col(col)?)?.as_i64()
    }

    /// Typed accessor: f64 at (row, column label).
    pub fn f64(&self, row: usize, col: &str) -> Option<f64> {
        self.rows.get(row)?.get(self.col(col)?)?.as_f64()
    }

    /// Typed accessor: str at (row, column label).
    pub fn str(&self, row: usize, col: &str) -> Option<&str> {
        self.rows.get(row)?.get(self.col(col)?)?.as_str()
    }

    /// Approximate heap footprint in bytes: the admission cost a memoized
    /// copy of this result charges against a cache's byte budget and the
    /// bytes the memory governor reserves for a materialized result.
    /// Counts *capacities*, not lengths — spare `Vec` capacity and string
    /// over-allocation are resident bytes too — plus the `Arc<str>` heap
    /// header on text payloads (`Text`/`U128` payloads dominate real
    /// seeker results). Same per-value accounting style as the storage
    /// engines' `memory_breakdown`.
    pub fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        // An `Arc<str>` allocation carries strong + weak counts ahead of
        // the string bytes.
        const ARC_HEADER: usize = 2 * size_of::<usize>();
        let mut bytes = size_of::<Self>();
        bytes += self.columns.capacity() * size_of::<String>();
        for c in &self.columns {
            bytes += c.capacity();
        }
        bytes += self.rows.capacity() * size_of::<Tuple>();
        for row in &self.rows {
            bytes += row.capacity() * size_of::<SqlValue>();
            for v in row {
                if let SqlValue::Text(s) = v {
                    bytes += ARC_HEADER + s.len();
                }
            }
        }
        bytes
    }

    /// Entire column as u32s (lossy on purpose: ids are u32 everywhere).
    pub fn column_u32(&self, col: &str) -> Vec<u32> {
        match self.col(col) {
            None => Vec::new(),
            Some(i) => self
                .rows
                .iter()
                .filter_map(|r| r[i].as_i64().map(|v| v as u32))
                .collect(),
        }
    }
}

/// Execute a plan sequentially, collecting telemetry. Routes recognized
/// BLEND shapes to the late-materialization positional executor; everything
/// else runs on the general tuple-at-a-time path.
pub fn execute_plan(plan: &QueryPlan, report: &mut QueryReport) -> Result<ResultSet> {
    execute_plan_path(plan, report, true, &ParallelCtx::sequential())
}

/// [`execute_plan`] with explicit executor selection and parallel context.
/// `allow_positional = false` forces the tuple path everywhere (benchmark
/// baseline and parity tests). `par` is the shared worker-pool context the
/// positional executor's scan/join/group phases ride; the tuple path is
/// always sequential (it is the reference implementation).
pub fn execute_plan_path(
    plan: &QueryPlan,
    report: &mut QueryReport,
    allow_positional: bool,
    par: &ParallelCtx,
) -> Result<ResultSet> {
    if allow_positional {
        if let Some(pos) = crate::exec_positional::plan_positional(plan) {
            report.path = "positional".to_string();
            return crate::exec_positional::execute(plan, &pos, report, par);
        }
    }
    report.path = "tuple".to_string();
    execute_tuple(plan, report, allow_positional, par)
}

/// Subquery dispatch: same routing as the top level, but without touching
/// `QueryReport::path` (which describes the top-level query only).
fn execute_sub(
    plan: &QueryPlan,
    report: &mut QueryReport,
    allow_positional: bool,
    par: &ParallelCtx,
) -> Result<ResultSet> {
    if allow_positional {
        if let Some(pos) = crate::exec_positional::plan_positional(plan) {
            return crate::exec_positional::execute(plan, &pos, report, par);
        }
    }
    execute_tuple(plan, report, allow_positional, par)
}

/// The materializing tuple-at-a-time executor.
fn execute_tuple(
    plan: &QueryPlan,
    report: &mut QueryReport,
    allow_positional: bool,
    par: &ParallelCtx,
) -> Result<ResultSet> {
    par.check_interrupt()?;
    let mut tuples = exec_tree(&plan.tree, report, allow_positional, par)?;

    if let Some(f) = &plan.post_filter {
        par.check_interrupt()?;
        tuples.retain(|t| f.eval_predicate(t));
    }

    if let Some(group) = &plan.group {
        tuples = exec_group(group, tuples, par)?;
    }

    par.check_interrupt()?;
    Ok(project_sort_limit(plan, &tuples, report))
}

/// Shared query tail: evaluate the projection and order keys over input
/// tuples, sort, apply LIMIT, and label the result. Used by both executors
/// for aggregated queries (the positional path projects non-aggregated
/// queries straight from positions instead).
pub(crate) fn project_sort_limit(
    plan: &QueryPlan,
    tuples: &[Tuple],
    report: &mut QueryReport,
) -> ResultSet {
    let mut decorated: Vec<(Vec<SqlValue>, Tuple)> = Vec::with_capacity(tuples.len());
    for t in tuples {
        let out: Tuple = plan.projection.iter().map(|(_, e)| e.eval(t)).collect();
        let keys: Vec<SqlValue> = plan.order_by.iter().map(|(e, _)| e.eval(t)).collect();
        decorated.push((keys, out));
    }
    finish_decorated(plan, decorated, report)
}

/// Sort decorated rows by their order keys, truncate to LIMIT, and build
/// the final [`ResultSet`].
pub(crate) fn finish_decorated(
    plan: &QueryPlan,
    mut decorated: Vec<(Vec<SqlValue>, Tuple)>,
    report: &mut QueryReport,
) -> ResultSet {
    if !plan.order_by.is_empty() {
        decorated.sort_by(|a, b| {
            for (i, (_, desc)) in plan.order_by.iter().enumerate() {
                let ord = a.0[i].order_cmp(&b.0[i]);
                let ord = if *desc { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            // Deterministic tiebreak on the projected tuple.
            for (x, y) in a.1.iter().zip(&b.1) {
                let ord = x.order_cmp(y);
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
    }
    if let Some(k) = plan.limit {
        decorated.truncate(k);
    }

    let rows: Vec<Tuple> = decorated.into_iter().map(|(_, t)| t).collect();
    report.result_rows = rows.len();
    ResultSet {
        columns: plan.output_labels(),
        rows,
    }
}

fn exec_tree(
    tree: &Tree,
    report: &mut QueryReport,
    allow_positional: bool,
    par: &ParallelCtx,
) -> Result<Vec<Tuple>> {
    match tree {
        Tree::Leaf(InputPlan::Scan(scan)) => exec_scan(scan, report, par),
        Tree::Leaf(InputPlan::Query(sub, _)) => {
            let rs = execute_sub(sub, report, allow_positional, par)?;
            Ok(rs.rows)
        }
        Tree::Join {
            left,
            right,
            keys,
            residual,
            ..
        } => {
            let lt = exec_tree(left, report, allow_positional, par)?;
            let rt = exec_tree(right, report, allow_positional, par)?;
            hash_join(lt, rt, keys, residual.as_ref(), report, par)
        }
    }
}

fn exec_scan(scan: &ScanPlan, report: &mut QueryReport, par: &ParallelCtx) -> Result<Vec<Tuple>> {
    par.check_interrupt()?;
    let span = blend_obs::span_owned(format!("scan:{}", scan.alias));
    let table = scan.table.as_ref();
    let mut out = Vec::new();
    let mut scanned = 0usize;
    let mut scratch = ScanScratch::default();

    // Fast filters run through the same compiled kernel as the positional
    // executor — one batched `filter_batch`/`filter_range` call per
    // candidate segment into the reusable selection vector. Only the
    // survivors materialize tuples (the residual still needs them).
    let emit = |sel: &[u32], out: &mut Vec<Tuple>| {
        for &pos in sel {
            let tuple = materialize(table, pos as usize);
            if let Some(res) = &scan.residual {
                if !res.eval_predicate(&tuple) {
                    continue;
                }
            }
            out.push(tuple);
        }
    };

    match &scan.access {
        AccessPath::ValueIndex { .. } => {
            for v in &scan.driving_values {
                par.check_interrupt()?;
                let postings = table.postings(v);
                scanned += postings.len();
                scratch.sel.clear();
                table.filter_batch(&scan.kernel, postings, &mut scratch.sel);
                emit(&scratch.sel, &mut out);
            }
        }
        AccessPath::TableIndex { .. } => {
            for &t in &scan.driving_tables {
                par.check_interrupt()?;
                let range = table.table_postings(t);
                scanned += range.len();
                scratch.sel.clear();
                table.filter_range(&scan.kernel, range.start, range.end, &mut scratch.sel);
                emit(&scratch.sel, &mut out);
            }
        }
        AccessPath::SeqScan { .. } => {
            // One batched kernel pass per morsel-sized range so a deadline
            // is observed mid-table (survivors concatenate identically to
            // a single whole-table call).
            let n = table.len();
            let mut lo = 0usize;
            while lo < n {
                par.check_interrupt()?;
                let hi = (lo + par.morsel_len()).min(n);
                scanned += hi - lo;
                scratch.sel.clear();
                table.filter_range(&scan.kernel, lo, hi, &mut scratch.sel);
                emit(&scratch.sel, &mut out);
                lo = hi;
            }
        }
    }

    span.attr_str("access", scan.access.label());
    span.attr_u64("scanned", scanned as u64);
    span.attr_u64("rows", out.len() as u64);
    report.scans.push(ScanReport {
        alias: scan.alias.clone(),
        access: scan.access.label().to_string(),
        estimated: scan.access.estimated(),
        scanned,
        emitted: out.len(),
    });
    Ok(out)
}

fn hash_join(
    left: Vec<Tuple>,
    right: Vec<Tuple>,
    keys: &[(usize, usize)],
    residual: Option<&CExpr>,
    report: &mut QueryReport,
    par: &ParallelCtx,
) -> Result<Vec<Tuple>> {
    par.check_interrupt()?;
    // Build on the smaller side; output column order is always left++right.
    let build_left = left.len() <= right.len();
    let (build, probe) = if build_left {
        (&left, &right)
    } else {
        (&right, &left)
    };
    let build_key = |t: &Tuple| -> Vec<SqlValue> {
        keys.iter()
            .map(|&(l, r)| t[if build_left { l } else { r }].clone())
            .collect()
    };
    let probe_key = |t: &Tuple| -> Vec<SqlValue> {
        keys.iter()
            .map(|&(l, r)| t[if build_left { r } else { l }].clone())
            .collect()
    };

    let build_span = blend_obs::span("join.build");
    let mut table: FxHashMap<Vec<SqlValue>, Vec<usize>> = FxHashMap::default();
    for (i, t) in build.iter().enumerate() {
        if i & 0xFFF == 0 {
            par.check_interrupt()?;
        }
        // SQL join semantics: NULL keys never match.
        let k = build_key(t);
        if k.iter().any(SqlValue::is_null) {
            continue;
        }
        table.entry(k).or_default().push(i);
    }
    build_span.attr_u64("rows", build.len() as u64);
    drop(build_span);

    let probe_span = blend_obs::span("join.probe");
    let mut out = Vec::new();
    for (pi, pt) in probe.iter().enumerate() {
        if pi & 0xFFF == 0 {
            par.check_interrupt()?;
        }
        let k = probe_key(pt);
        if k.iter().any(SqlValue::is_null) {
            continue;
        }
        if let Some(matches) = table.get(&k) {
            for &bi in matches {
                let bt = &build[bi];
                let (lt, rt) = if build_left { (bt, pt) } else { (pt, bt) };
                let mut joined = Vec::with_capacity(lt.len() + rt.len());
                joined.extend(lt.iter().cloned());
                joined.extend(rt.iter().cloned());
                if let Some(res) = residual {
                    if !res.eval_predicate(&joined) {
                        continue;
                    }
                }
                out.push(joined);
            }
        }
    }
    probe_span.attr_u64("rows", probe.len() as u64);
    probe_span.attr_u64("matched", out.len() as u64);
    drop(probe_span);
    report.joins.push((build.len(), probe.len(), out.len()));
    Ok(out)
}

// ---- aggregation -----------------------------------------------------------

pub(crate) enum AggState {
    Count(i64),
    CountDistinct(FxHashSet<SqlValue>),
    Sum { acc: f64, all_int: bool, seen: bool },
    Min(Option<SqlValue>),
    Max(Option<SqlValue>),
    Avg { sum: f64, n: i64 },
}

impl AggState {
    pub(crate) fn new(plan: &AggPlan) -> AggState {
        match (plan.func, plan.distinct) {
            (AggFunc::Count, true) => AggState::CountDistinct(FxHashSet::default()),
            (AggFunc::Count, false) => AggState::Count(0),
            (AggFunc::Sum, _) => AggState::Sum {
                acc: 0.0,
                all_int: true,
                seen: false,
            },
            (AggFunc::Min, _) => AggState::Min(None),
            (AggFunc::Max, _) => AggState::Max(None),
            (AggFunc::Avg, _) => AggState::Avg { sum: 0.0, n: 0 },
        }
    }

    fn update(&mut self, plan: &AggPlan, tuple: &Tuple) {
        self.update_value(plan.arg.as_ref().map(|e| e.eval(tuple)));
    }

    /// Fold one already-evaluated argument (`None` = no argument, i.e.
    /// `COUNT(*)`). The positional executor evaluates arguments from
    /// storage positions and feeds them here.
    pub(crate) fn update_value(&mut self, arg: Option<SqlValue>) {
        match self {
            AggState::Count(n) => match &arg {
                // COUNT(*) counts rows; COUNT(x) counts non-null x.
                None => *n += 1,
                Some(v) if !v.is_null() => *n += 1,
                _ => {}
            },
            AggState::CountDistinct(set) => {
                if let Some(v) = arg {
                    if !v.is_null() {
                        set.insert(v);
                    }
                }
            }
            AggState::Sum { acc, all_int, seen } => {
                if let Some(v) = arg {
                    if let Some(f) = v.as_f64() {
                        *acc += f;
                        *seen = true;
                        if matches!(v, SqlValue::Float(_)) {
                            *all_int = false;
                        }
                    }
                }
            }
            AggState::Min(cur) => {
                if let Some(v) = arg {
                    if !v.is_null() {
                        let replace = match cur {
                            None => true,
                            Some(c) => v.order_cmp(c).is_lt(),
                        };
                        if replace {
                            *cur = Some(v);
                        }
                    }
                }
            }
            AggState::Max(cur) => {
                if let Some(v) = arg {
                    if !v.is_null() {
                        let replace = match cur {
                            None => true,
                            Some(c) => v.order_cmp(c).is_gt(),
                        };
                        if replace {
                            *cur = Some(v);
                        }
                    }
                }
            }
            AggState::Avg { sum, n } => {
                if let Some(f) = arg.and_then(|v| v.as_f64()) {
                    *sum += f;
                    *n += 1;
                }
            }
        }
    }

    /// Fold the state of a later input chunk into this one. Chunk merging
    /// is exact for counting, distinct, and min/max states and for
    /// integer-valued sums (integer partial sums are exact in f64, so
    /// regrouping additions cannot change the result); the positional
    /// executor's *global* (ungrouped) aggregation is its only remaining
    /// chunk-merge path and takes it only when every aggregate satisfies
    /// one of those (see `PosAggSpec::merge_exact`) — keyed grouping
    /// radix-partitions by key instead, which needs no merge at all.
    ///
    /// Tie semantics for MIN/MAX match sequential first-seen: `other` holds
    /// strictly later rows, so it replaces `self` only on a strict win.
    pub(crate) fn merge(&mut self, other: AggState) {
        match (self, other) {
            (AggState::Count(a), AggState::Count(b)) => *a += b,
            (AggState::CountDistinct(a), AggState::CountDistinct(b)) => a.extend(b),
            (
                AggState::Sum { acc, all_int, seen },
                AggState::Sum {
                    acc: acc2,
                    all_int: all_int2,
                    seen: seen2,
                },
            ) => {
                *acc += acc2;
                *all_int &= all_int2;
                *seen |= seen2;
            }
            (AggState::Min(cur), AggState::Min(other)) => {
                if let Some(v) = other {
                    let replace = match cur {
                        None => true,
                        Some(c) => v.order_cmp(c).is_lt(),
                    };
                    if replace {
                        *cur = Some(v);
                    }
                }
            }
            (AggState::Max(cur), AggState::Max(other)) => {
                if let Some(v) = other {
                    let replace = match cur {
                        None => true,
                        Some(c) => v.order_cmp(c).is_gt(),
                    };
                    if replace {
                        *cur = Some(v);
                    }
                }
            }
            (AggState::Avg { sum, n }, AggState::Avg { sum: sum2, n: n2 }) => {
                *sum += sum2;
                *n += n2;
            }
            _ => unreachable!("partition states built from the same plan"),
        }
    }

    pub(crate) fn finish(self) -> SqlValue {
        match self {
            AggState::Count(n) => SqlValue::Int(n),
            AggState::CountDistinct(set) => SqlValue::Int(set.len() as i64),
            AggState::Sum { acc, all_int, seen } => {
                if !seen {
                    SqlValue::Null
                } else if all_int {
                    SqlValue::Int(acc as i64)
                } else {
                    SqlValue::Float(acc)
                }
            }
            AggState::Min(v) | AggState::Max(v) => v.unwrap_or(SqlValue::Null),
            AggState::Avg { sum, n } => {
                if n == 0 {
                    SqlValue::Null
                } else {
                    SqlValue::Float(sum / n as f64)
                }
            }
        }
    }
}

fn exec_group(group: &GroupPlan, tuples: Vec<Tuple>, par: &ParallelCtx) -> Result<Vec<Tuple>> {
    par.check_interrupt()?;
    let span = blend_obs::span(if group.group_exprs.is_empty() {
        "group.global"
    } else {
        "group"
    });
    span.attr_u64("rows", tuples.len() as u64);
    // Key order must be deterministic for stable results; keep first-seen
    // order via an index map built on top of the hash map.
    let mut index: FxHashMap<Vec<SqlValue>, usize> = FxHashMap::default();
    let mut groups: Vec<(Vec<SqlValue>, Vec<AggState>)> = Vec::new();

    let global = group.group_exprs.is_empty();
    if global {
        groups.push((Vec::new(), group.aggs.iter().map(AggState::new).collect()));
    }

    for (ti, t) in tuples.iter().enumerate() {
        if ti & 0xFFF == 0 {
            par.check_interrupt()?;
        }
        let key: Vec<SqlValue> = group.group_exprs.iter().map(|e| e.eval(t)).collect();
        let gi = if global {
            0
        } else {
            match index.get(&key) {
                Some(&i) => i,
                None => {
                    let i = groups.len();
                    index.insert(key.clone(), i);
                    groups.push((key.clone(), group.aggs.iter().map(AggState::new).collect()));
                    i
                }
            }
        };
        for (state, plan) in groups[gi].1.iter_mut().zip(&group.aggs) {
            state.update(plan, t);
        }
    }

    Ok(groups
        .into_iter()
        .map(|(key, states)| {
            let mut row = key;
            row.extend(states.into_iter().map(AggState::finish));
            row
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn result_set_accessors() {
        let rs = ResultSet {
            columns: vec!["tableid".into(), "score".into()],
            rows: vec![
                vec![SqlValue::Int(3), SqlValue::Float(0.5)],
                vec![SqlValue::Int(7), SqlValue::Float(0.25)],
            ],
        };
        assert_eq!(rs.col("score"), Some(1));
        assert_eq!(rs.i64(0, "tableid"), Some(3));
        assert_eq!(rs.f64(1, "score"), Some(0.25));
        assert_eq!(rs.column_u32("tableid"), vec![3, 7]);
        assert_eq!(rs.len(), 2);
        assert!(rs.str(0, "tableid").is_none());
    }

    #[test]
    fn approx_bytes_counts_capacities_and_arc_headers() {
        use std::mem::size_of;
        // Over-allocated vectors: the spare capacity is resident and must
        // be charged, or a budget check under-admits real memory use.
        let mut rows: Vec<Tuple> = Vec::with_capacity(8);
        let mut row: Tuple = Vec::with_capacity(4);
        row.push(SqlValue::Int(1));
        row.push(SqlValue::Text(std::sync::Arc::from("hello")));
        rows.push(row);
        let mut columns: Vec<String> = Vec::with_capacity(3);
        let mut label = String::with_capacity(16);
        label.push_str("id");
        columns.push(label);
        columns.push("v".to_string());
        let rs = ResultSet { columns, rows };

        let expect = size_of::<ResultSet>()
            + 3 * size_of::<String>()            // columns vec capacity
            + 16 + 1                             // label capacities
            + 8 * size_of::<Tuple>()             // rows vec capacity
            + 4 * size_of::<SqlValue>()          // row capacity
            + 2 * size_of::<usize>() + 5; // Arc<str> header + "hello"
        assert_eq!(rs.approx_bytes(), expect);

        // Tightening capacities can only shrink the estimate, never below
        // the length-based floor.
        let floor = size_of::<ResultSet>()
            + 2 * size_of::<String>()
            + 3
            + size_of::<Tuple>()
            + 2 * size_of::<SqlValue>()
            + 2 * size_of::<usize>()
            + 5;
        assert!(rs.approx_bytes() >= floor);
    }

    #[test]
    fn agg_state_count_and_distinct() {
        let plan_star = AggPlan {
            func: AggFunc::Count,
            distinct: false,
            arg: None,
        };
        let mut s = AggState::new(&plan_star);
        for _ in 0..3 {
            s.update(&plan_star, &vec![]);
        }
        assert_eq!(s.finish(), SqlValue::Int(3));

        let plan_d = AggPlan {
            func: AggFunc::Count,
            distinct: true,
            arg: Some(CExpr::Col(0)),
        };
        let mut s = AggState::new(&plan_d);
        for v in ["a", "b", "a"] {
            s.update(&plan_d, &vec![SqlValue::from(v)]);
        }
        s.update(&plan_d, &vec![SqlValue::Null]); // nulls don't count
        assert_eq!(s.finish(), SqlValue::Int(2));
    }

    #[test]
    fn agg_state_sum_min_max_avg() {
        let mk = |func| AggPlan {
            func,
            distinct: false,
            arg: Some(CExpr::Col(0)),
        };
        let data = [SqlValue::Int(4), SqlValue::Null, SqlValue::Int(1)];

        let p = mk(AggFunc::Sum);
        let mut s = AggState::new(&p);
        for v in &data {
            s.update(&p, &vec![v.clone()]);
        }
        assert_eq!(s.finish(), SqlValue::Int(5));

        let p = mk(AggFunc::Min);
        let mut s = AggState::new(&p);
        for v in &data {
            s.update(&p, &vec![v.clone()]);
        }
        assert_eq!(s.finish(), SqlValue::Int(1));

        let p = mk(AggFunc::Max);
        let mut s = AggState::new(&p);
        for v in &data {
            s.update(&p, &vec![v.clone()]);
        }
        assert_eq!(s.finish(), SqlValue::Int(4));

        let p = mk(AggFunc::Avg);
        let mut s = AggState::new(&p);
        for v in &data {
            s.update(&p, &vec![v.clone()]);
        }
        assert_eq!(s.finish(), SqlValue::Float(2.5));
    }

    #[test]
    fn sum_of_floats_stays_float() {
        let p = AggPlan {
            func: AggFunc::Sum,
            distinct: false,
            arg: Some(CExpr::Col(0)),
        };
        let mut s = AggState::new(&p);
        s.update(&p, &vec![SqlValue::Float(0.5)]);
        s.update(&p, &vec![SqlValue::Int(1)]);
        assert_eq!(s.finish(), SqlValue::Float(1.5));
    }

    #[test]
    fn empty_sum_is_null() {
        let p = AggPlan {
            func: AggFunc::Sum,
            distinct: false,
            arg: Some(CExpr::Col(0)),
        };
        let s = AggState::new(&p);
        assert_eq!(s.finish(), SqlValue::Null);
    }
}

//! Byte-budgeted memory governance: the reservation protocol and the
//! degradation ladder.
//!
//! Nothing in the executor bounded what a single query allocates — one
//! pathological join build or group state could OOM the process and kill
//! every in-flight request, defeating the typed-outcome guarantees of the
//! serving tier. This module is the missing robustness rung: a
//! process-global [`MemoryGovernor`] holds a byte budget
//! (`BLEND_MEMORY_BUDGET`, unset/0 = unbounded) and hands out hierarchical
//! RAII reservations, so memory pressure degrades queries *gracefully* —
//! shrink, serialize, shed; never crash.
//!
//! ## The reservation protocol (who reserves, where it's checked)
//!
//! * **Governor** — one per process ([`MemoryGovernor::global`]), owning
//!   the budget and the authoritative reserved-bytes count. Tests build
//!   private governors with [`MemoryGovernor::with_budget`].
//! * **Query** — the engine creates one [`QueryMemory`] per query and
//!   scopes it onto the shared `ParallelCtx`
//!   (`ParallelCtx::with_query_memory`), exactly like the per-request
//!   `Interrupt`. It charges the governor and tracks this query's
//!   current/peak bytes for the `QueryProfile` root attrs.
//! * **Operator** — every allocation-heavy site (join-table build, group
//!   index + aggregate state, radix scratch, scan selection/output
//!   vectors, result materialization, the serving result cache) asks the
//!   query's `QueryMemory` for a [`MemoryReservation`] *before*
//!   allocating. The reservation releases on `Drop`, so an early return —
//!   including a cancellation or a later `MemoryExceeded` — can never leak
//!   reserved bytes.
//!
//! ## The four-rung degradation ladder
//!
//! On reservation failure the system degrades in order, resolving typed
//! only when every rung is exhausted:
//!
//! 1. **Reclaim** — the governor invokes registered
//!    [`MemoryReclaimer`]s (the serving result cache registers itself; its
//!    `BLEND_RESULT_CACHE_BYTES` pool is a *child* of this budget) to
//!    evict reclaimable bytes, then retries. This happens inside
//!    [`QueryMemory::try_reserve`], so every call site benefits.
//! 2. **Narrow** — parallel operators retry their reservation at half the
//!    granted worker width (fewer radix partitions, smaller per-worker
//!    scratch) via [`reserve_laddered`].
//! 3. **Serialize** — retry at width 1: the sequential path with minimal
//!    scratch.
//! 4. **Shed** — resolve the request with
//!    `BlendError::MemoryExceeded`. Cooperative, like cancellation: the
//!    reservation failure propagates as a typed `Err` through the same
//!    no-partial-results machinery, partials are discarded by `Drop`, and
//!    the engine stays fully serviceable.
//!
//! ## Interaction with cancellation
//!
//! Reservations and interrupts compose but never interfere: a reservation
//! failure is surfaced through the same `Result` channel as
//! `Timeout`/`Cancelled`, checked at the same phase boundaries, and the
//! RAII release runs on unwind-free early return. A query that is both
//! over budget and past deadline resolves with whichever check fires
//! first — exactly one typed outcome either way.
//!
//! ## Observability
//!
//! `blend_mem_reserved_bytes` (gauge, authoritative mirror),
//! `blend_mem_reservation_fail_total`, `blend_mem_exceeded_total`,
//! `blend_mem_reclaims_total`, and `blend_mem_reclaimed_bytes`
//! (histogram of bytes freed per reclaim pass). [`GovernorStats`] exposes
//! the same numbers plus per-rung ladder counters for tests.
//!
//! ## Fault injection
//!
//! `BLEND_FAULTS=alloc:fail[@every]` (or
//! [`MemoryGovernor::set_alloc_fail_every`]) makes every `every`-th
//! reservation attempt fail synthetically — reclaim cannot rescue it, so
//! the storm suite can prove each ladder rung fires without needing a
//! precisely tuned real budget.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};

use blend_common::{BlendError, Result};

/// Environment variable naming the process-wide byte budget. Unset, empty,
/// unparseable, or `0` all mean *unbounded* (the governor stays off the
/// hot path entirely).
pub const MEMORY_ENV: &str = "BLEND_MEMORY_BUDGET";

/// A pool that can give bytes back under pressure (rung 1 of the ladder).
/// The serving result cache is the canonical implementor.
pub trait MemoryReclaimer: Send + Sync {
    /// Try to free at least `needed` bytes; return the bytes actually
    /// freed (releasing them from the governor is the implementor's job —
    /// it charged them, it releases them).
    fn reclaim(&self, needed: usize) -> usize;
}

struct MemMetrics {
    reserved: Arc<blend_obs::Gauge>,
    fails: Arc<blend_obs::Counter>,
    exceeded: Arc<blend_obs::Counter>,
    reclaims: Arc<blend_obs::Counter>,
    reclaimed_bytes: Arc<blend_obs::Histogram>,
}

fn mem_metrics() -> &'static MemMetrics {
    static METRICS: OnceLock<MemMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = blend_obs::registry();
        MemMetrics {
            reserved: r.gauge("blend_mem_reserved_bytes"),
            fails: r.counter("blend_mem_reservation_fail_total"),
            exceeded: r.counter("blend_mem_exceeded_total"),
            reclaims: r.counter("blend_mem_reclaims_total"),
            reclaimed_bytes: r.histogram("blend_mem_reclaimed_bytes"),
        }
    })
}

/// Snapshot of the governor's counters (tests, diagnostics).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GovernorStats {
    /// Bytes currently reserved across all queries and pools.
    pub reserved: usize,
    /// Reservation attempts that failed (after reclaim, incl. injected).
    pub reservation_fails: u64,
    /// Reclaim passes run (rung 1 firings).
    pub reclaims: u64,
    /// Operators that succeeded at narrowed width (rung 2 firings).
    pub narrowed: u64,
    /// Operators that fell back to the sequential path (rung 3 firings).
    pub sequential_fallbacks: u64,
    /// Reservations that exhausted the ladder (rung 4 firings).
    pub exceeded: u64,
}

/// Process-global byte budget and the authoritative reserved count.
pub struct MemoryGovernor {
    /// `usize::MAX` = unbounded.
    budget: usize,
    reserved: AtomicUsize,
    reclaimers: Mutex<Vec<Weak<dyn MemoryReclaimer>>>,
    /// Reclaim passes currently running; the serving tier consults this to
    /// tighten admission while the system is shedding bytes.
    reclaims_in_flight: AtomicUsize,
    /// Injected failure rate: every `n`-th reservation attempt fails
    /// synthetically. 0 = off.
    fail_every: AtomicUsize,
    fault_hits: AtomicUsize,
    // Ladder counters.
    fails: AtomicU64,
    reclaims: AtomicU64,
    narrowed: AtomicU64,
    seq_fallbacks: AtomicU64,
    exceeded: AtomicU64,
}

impl std::fmt::Debug for MemoryGovernor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoryGovernor")
            .field("budget", &self.budget)
            .field("reserved", &self.reserved.load(Ordering::Relaxed))
            .finish()
    }
}

impl MemoryGovernor {
    /// A governor with a concrete byte budget (`0` = unbounded).
    pub fn with_budget(budget_bytes: usize) -> MemoryGovernor {
        MemoryGovernor {
            budget: if budget_bytes == 0 {
                usize::MAX
            } else {
                budget_bytes
            },
            reserved: AtomicUsize::new(0),
            reclaimers: Mutex::new(Vec::new()),
            reclaims_in_flight: AtomicUsize::new(0),
            fail_every: AtomicUsize::new(0),
            fault_hits: AtomicUsize::new(0),
            fails: AtomicU64::new(0),
            reclaims: AtomicU64::new(0),
            narrowed: AtomicU64::new(0),
            seq_fallbacks: AtomicU64::new(0),
            exceeded: AtomicU64::new(0),
        }
    }

    /// An unbounded governor (every reservation succeeds without touching
    /// the global count).
    pub fn unbounded() -> MemoryGovernor {
        MemoryGovernor::with_budget(0)
    }

    /// The process-global governor: budget from `BLEND_MEMORY_BUDGET`,
    /// alloc-fault rate from any `alloc:fail[@every]` rule in
    /// `BLEND_FAULTS`. Read once; every `ParallelCtx` built without an
    /// explicit governor shares this instance.
    pub fn global() -> &'static Arc<MemoryGovernor> {
        static GLOBAL: OnceLock<Arc<MemoryGovernor>> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let budget = std::env::var(MEMORY_ENV)
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
                .unwrap_or(0);
            let gov = MemoryGovernor::with_budget(budget);
            if let Some(every) = alloc_fail_every_from_env() {
                gov.set_alloc_fail_every(every);
            }
            Arc::new(gov)
        })
    }

    /// The byte budget; `usize::MAX` when unbounded.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// True when no budget bounds reservations.
    pub fn is_unbounded(&self) -> bool {
        self.budget == usize::MAX
    }

    /// Bytes currently reserved (authoritative; the
    /// `blend_mem_reserved_bytes` gauge mirrors this).
    pub fn reserved_bytes(&self) -> usize {
        self.reserved.load(Ordering::Relaxed)
    }

    /// True while at least one reclaim pass is running. The serving tier
    /// halves its effective queue depth while this holds, so new work
    /// queues (or sheds) instead of piling onto a system that is actively
    /// giving bytes back.
    pub fn reclaiming(&self) -> bool {
        self.reclaims_in_flight.load(Ordering::Relaxed) > 0
    }

    /// Arm synthetic reservation failure: every `every`-th attempt fails
    /// (0 disarms). Reclaim cannot rescue an injected failure, so the
    /// ladder's later rungs are exercised deterministically.
    pub fn set_alloc_fail_every(&self, every: usize) {
        self.fail_every.store(every, Ordering::Relaxed);
    }

    /// Register a reclaimable pool for rung 1. Dead weak handles are
    /// pruned on the next reclaim pass.
    pub fn register_reclaimer(&self, r: Weak<dyn MemoryReclaimer>) {
        self.reclaimers
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(r);
    }

    /// Counter snapshot.
    pub fn stats(&self) -> GovernorStats {
        GovernorStats {
            reserved: self.reserved_bytes(),
            reservation_fails: self.fails.load(Ordering::Relaxed),
            reclaims: self.reclaims.load(Ordering::Relaxed),
            narrowed: self.narrowed.load(Ordering::Relaxed),
            sequential_fallbacks: self.seq_fallbacks.load(Ordering::Relaxed),
            exceeded: self.exceeded.load(Ordering::Relaxed),
        }
    }

    /// True when this attempt should fail synthetically.
    fn injected_failure(&self) -> bool {
        let every = self.fail_every.load(Ordering::Relaxed);
        if every == 0 {
            return false;
        }
        let n = self.fault_hits.fetch_add(1, Ordering::Relaxed);
        n % every == every - 1
    }

    /// Charge `bytes` against the budget. On overflow, runs one reclaim
    /// pass (rung 1) and retries once. Returns whether the charge stuck.
    /// Callers own releasing via [`MemoryGovernor::release`].
    pub fn try_charge(&self, bytes: usize) -> bool {
        if self.injected_failure() {
            self.fails.fetch_add(1, Ordering::Relaxed);
            mem_metrics().fails.inc();
            return false;
        }
        if self.is_unbounded() {
            return true;
        }
        if self.charge_once(bytes) {
            return true;
        }
        // Rung 1: reclaim, then retry exactly once.
        self.run_reclaim(bytes);
        if self.charge_once(bytes) {
            return true;
        }
        self.fails.fetch_add(1, Ordering::Relaxed);
        mem_metrics().fails.inc();
        false
    }

    fn charge_once(&self, bytes: usize) -> bool {
        let prev = self.reserved.fetch_add(bytes, Ordering::Relaxed);
        if prev.saturating_add(bytes) > self.budget {
            self.reserved.fetch_sub(bytes, Ordering::Relaxed);
            return false;
        }
        mem_metrics().reserved.add(bytes as i64);
        true
    }

    /// Return previously charged bytes to the budget.
    pub fn release(&self, bytes: usize) {
        if self.is_unbounded() || bytes == 0 {
            return;
        }
        self.reserved.fetch_sub(bytes, Ordering::Relaxed);
        mem_metrics().reserved.add(-(bytes as i64));
    }

    /// One reclaim pass over the registered pools. Pools release their own
    /// charges; this only asks, counts, and prunes dead handles.
    fn run_reclaim(&self, needed: usize) {
        let live: Vec<Arc<dyn MemoryReclaimer>> = {
            let mut list = self.reclaimers.lock().unwrap_or_else(|e| e.into_inner());
            list.retain(|w| w.strong_count() > 0);
            list.iter().filter_map(Weak::upgrade).collect()
        };
        if live.is_empty() {
            return;
        }
        self.reclaims_in_flight.fetch_add(1, Ordering::Relaxed);
        self.reclaims.fetch_add(1, Ordering::Relaxed);
        let m = mem_metrics();
        m.reclaims.inc();
        let mut freed = 0usize;
        for pool in live {
            freed += pool.reclaim(needed.saturating_sub(freed));
            if freed >= needed {
                break;
            }
        }
        m.reclaimed_bytes.record(freed as u64);
        self.reclaims_in_flight.fetch_sub(1, Ordering::Relaxed);
    }

    // Test-only rung bumps come through `reserve_laddered`.
    fn count_narrowed(&self) {
        self.narrowed.fetch_add(1, Ordering::Relaxed);
    }

    fn count_sequential(&self) {
        self.seq_fallbacks.fetch_add(1, Ordering::Relaxed);
    }

    fn count_exceeded(&self) {
        self.exceeded.fetch_add(1, Ordering::Relaxed);
        mem_metrics().exceeded.inc();
    }
}

/// Per-query memory scope: charges the governor, tracks this query's
/// current/peak bytes for profile attrs. One per query, created by the
/// engine and scoped onto the `ParallelCtx`.
#[derive(Debug)]
pub struct QueryMemory {
    gov: Arc<MemoryGovernor>,
    current: AtomicUsize,
    peak: AtomicUsize,
}

impl QueryMemory {
    /// Fresh scope on a governor.
    pub fn new(gov: Arc<MemoryGovernor>) -> QueryMemory {
        QueryMemory {
            gov,
            current: AtomicUsize::new(0),
            peak: AtomicUsize::new(0),
        }
    }

    /// The governor this scope charges.
    pub fn governor(&self) -> &Arc<MemoryGovernor> {
        &self.gov
    }

    /// Bytes this query currently holds.
    pub fn current_bytes(&self) -> usize {
        self.current.load(Ordering::Relaxed)
    }

    /// This query's high-water reservation.
    pub fn peak_bytes(&self) -> usize {
        self.peak.load(Ordering::Relaxed)
    }

    /// Reserve `bytes` for the operator at `site`. A zero-byte request
    /// always succeeds. On failure (after the governor's internal reclaim
    /// retry) returns `MemoryExceeded` naming the site — callers either
    /// ladder down ([`reserve_laddered`]) or propagate.
    pub fn try_reserve(
        self: &Arc<Self>,
        site: &'static str,
        bytes: usize,
    ) -> Result<MemoryReservation> {
        if !self.gov.try_charge(bytes) {
            return Err(BlendError::MemoryExceeded(format!(
                "{site} needs {bytes} B; budget {} B, reserved {} B",
                self.gov.budget(),
                self.gov.reserved_bytes()
            )));
        }
        self.note_acquired(bytes);
        Ok(MemoryReservation {
            qm: Arc::clone(self),
            bytes,
            site,
        })
    }

    fn note_acquired(&self, bytes: usize) {
        let cur = self.current.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.peak.fetch_max(cur, Ordering::Relaxed);
    }

    fn note_released(&self, bytes: usize) {
        self.current.fetch_sub(bytes, Ordering::Relaxed);
        self.gov.release(bytes);
    }
}

/// RAII grant of budgeted bytes. Dropping it returns the bytes to the
/// query scope and the governor, so early returns (cancellation, a later
/// reservation failure) can never leak reserved bytes.
#[derive(Debug)]
pub struct MemoryReservation {
    qm: Arc<QueryMemory>,
    bytes: usize,
    site: &'static str,
}

impl MemoryReservation {
    /// Bytes this reservation holds.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Grow the reservation in place (e.g. result rows materializing past
    /// the up-front estimate). On failure the original grant is untouched.
    pub fn grow(&mut self, delta: usize) -> Result<()> {
        if !self.qm.gov.try_charge(delta) {
            return Err(BlendError::MemoryExceeded(format!(
                "{} grow needs {delta} B; budget {} B, reserved {} B",
                self.site,
                self.qm.gov.budget(),
                self.qm.gov.reserved_bytes()
            )));
        }
        self.qm.note_acquired(delta);
        self.bytes += delta;
        Ok(())
    }

    /// Give back part of the grant (shrunk scratch, truncated output).
    pub fn shrink(&mut self, delta: usize) {
        let delta = delta.min(self.bytes);
        self.bytes -= delta;
        self.qm.note_released(delta);
    }
}

impl Drop for MemoryReservation {
    fn drop(&mut self) {
        self.qm.note_released(self.bytes);
    }
}

/// Which rung of the ladder a reservation succeeded at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LadderRung {
    /// Full requested width.
    Full,
    /// Half width (rung 2).
    Narrowed,
    /// Width 1, the sequential path (rung 3).
    Sequential,
}

/// Reserve memory for a width-scalable operator, walking the degradation
/// ladder: full width → half width → sequential. `cost(w)` prices the
/// operator's allocations at worker width `w`. Returns the reservation,
/// the width it was granted at, and the rung that succeeded; errors with
/// `MemoryExceeded` only when even the sequential footprint does not fit
/// (rung 4).
pub fn reserve_laddered(
    qm: &Arc<QueryMemory>,
    site: &'static str,
    desired_width: usize,
    cost: impl Fn(usize) -> usize,
) -> Result<(MemoryReservation, usize, LadderRung)> {
    let desired = desired_width.max(1);
    let mut rungs = [(desired, LadderRung::Full), (0, LadderRung::Narrowed)];
    let mut n = 1;
    if desired / 2 > 1 {
        rungs[1] = (desired / 2, LadderRung::Narrowed);
        n = 2;
    }
    let mut last_err = None;
    for &(w, rung) in &rungs[..n] {
        match qm.try_reserve(site, cost(w)) {
            Ok(res) => {
                if rung == LadderRung::Narrowed {
                    qm.governor().count_narrowed();
                }
                return Ok((res, w, rung));
            }
            Err(e) => last_err = Some(e),
        }
    }
    if desired > 1 {
        // Rung 3: the sequential path.
        if let Ok(res) = qm.try_reserve(site, cost(1)) {
            qm.governor().count_sequential();
            return Ok((res, 1, LadderRung::Sequential));
        }
    }
    qm.governor().count_exceeded();
    Err(last_err.unwrap_or_else(|| {
        BlendError::MemoryExceeded(format!("{site}: sequential footprint over budget"))
    }))
}

/// Parse an `alloc:fail[@every]` rule out of `BLEND_FAULTS`, if present.
/// The full grammar lives in the serving tier's `FaultPlan`; the governor
/// only recognizes its own site so engine-level tests (no serving tier)
/// still get injection.
pub fn alloc_fail_every_from_env() -> Option<usize> {
    let spec = std::env::var("BLEND_FAULTS").ok()?;
    alloc_fail_every(&spec)
}

/// Parse an `alloc:fail[@every]` rule out of a `BLEND_FAULTS`-grammar
/// spec. Returns the rate (`1` for a bare `alloc:fail`).
pub fn alloc_fail_every(spec: &str) -> Option<usize> {
    for rule in spec.split(',').map(str::trim) {
        if let Some(rest) = rule.strip_prefix("alloc:fail") {
            return match rest.strip_prefix('@') {
                Some(n) => n.parse::<usize>().ok().map(|n| n.max(1)),
                None if rest.is_empty() => Some(1),
                None => None,
            };
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scope(budget: usize) -> Arc<QueryMemory> {
        Arc::new(QueryMemory::new(Arc::new(MemoryGovernor::with_budget(
            budget,
        ))))
    }

    #[test]
    fn unbounded_reservations_always_succeed_without_charging() {
        let qm = scope(0);
        assert!(qm.governor().is_unbounded());
        let r = qm.try_reserve("scan", usize::MAX / 2).unwrap();
        assert_eq!(qm.governor().reserved_bytes(), 0, "no global charge");
        assert_eq!(qm.peak_bytes(), usize::MAX / 2, "query peak still tracked");
        drop(r);
        assert_eq!(qm.current_bytes(), 0);
    }

    #[test]
    fn bounded_reservations_charge_and_release() {
        let qm = scope(1000);
        let a = qm.try_reserve("join_build", 600).unwrap();
        assert_eq!(qm.governor().reserved_bytes(), 600);
        let err = qm.try_reserve("group", 500).unwrap_err();
        assert!(matches!(&err, BlendError::MemoryExceeded(m) if m.contains("group")));
        drop(a);
        assert_eq!(qm.governor().reserved_bytes(), 0);
        let _b = qm.try_reserve("group", 500).unwrap();
        assert_eq!(qm.peak_bytes(), 600);
        assert_eq!(qm.governor().stats().reservation_fails, 1);
    }

    #[test]
    fn grow_and_shrink_adjust_in_place() {
        let qm = scope(1000);
        let mut r = qm.try_reserve("result", 400).unwrap();
        r.grow(300).unwrap();
        assert_eq!(r.bytes(), 700);
        assert!(r.grow(400).is_err(), "grow past budget fails typed");
        assert_eq!(r.bytes(), 700, "failed grow leaves grant untouched");
        r.shrink(200);
        assert_eq!(qm.governor().reserved_bytes(), 500);
        drop(r);
        assert_eq!(qm.governor().reserved_bytes(), 0);
    }

    #[test]
    fn ladder_narrows_then_serializes_then_sheds() {
        // cost(w) = w * 100: full width 8 → 800, half 4 → 400, seq → 100.
        let cost = |w: usize| w * 100;

        let qm = scope(1000);
        let (r, w, rung) = reserve_laddered(&qm, "join", 8, cost).unwrap();
        assert_eq!((w, rung), (8, LadderRung::Full));
        drop(r);

        let qm = scope(500);
        let (r, w, rung) = reserve_laddered(&qm, "join", 8, cost).unwrap();
        assert_eq!((w, rung), (4, LadderRung::Narrowed));
        assert_eq!(qm.governor().stats().narrowed, 1);
        drop(r);

        let qm = scope(150);
        let (r, w, rung) = reserve_laddered(&qm, "join", 8, cost).unwrap();
        assert_eq!((w, rung), (1, LadderRung::Sequential));
        assert_eq!(qm.governor().stats().sequential_fallbacks, 1);
        drop(r);

        let qm = scope(50);
        let err = reserve_laddered(&qm, "join", 8, cost).unwrap_err();
        assert!(matches!(err, BlendError::MemoryExceeded(_)));
        assert_eq!(qm.governor().stats().exceeded, 1);
        assert_eq!(qm.governor().reserved_bytes(), 0, "nothing leaked");
    }

    #[test]
    fn reclaimer_rescues_a_failing_reservation() {
        struct Pool {
            gov: Arc<MemoryGovernor>,
            held: Mutex<usize>,
        }
        impl MemoryReclaimer for Pool {
            fn reclaim(&self, _needed: usize) -> usize {
                let mut held = self.held.lock().unwrap();
                let freed = *held;
                *held = 0;
                self.gov.release(freed);
                freed
            }
        }
        let gov = Arc::new(MemoryGovernor::with_budget(1000));
        assert!(gov.try_charge(800));
        let pool = Arc::new(Pool {
            gov: gov.clone(),
            held: Mutex::new(800),
        });
        gov.register_reclaimer(Arc::downgrade(&pool) as Weak<dyn MemoryReclaimer>);

        let qm = Arc::new(QueryMemory::new(gov.clone()));
        // 600 doesn't fit beside the pool's 800 — reclaim must rescue it.
        let r = qm.try_reserve("join_build", 600).unwrap();
        assert_eq!(gov.stats().reclaims, 1);
        assert_eq!(gov.reserved_bytes(), 600);
        drop(r);
    }

    #[test]
    fn injected_alloc_faults_fail_at_the_configured_rate() {
        let qm = scope(0); // unbounded: only injection can fail
        qm.governor().set_alloc_fail_every(3);
        let outcomes: Vec<bool> = (0..9).map(|_| qm.try_reserve("scan", 64).is_ok()).collect();
        assert_eq!(outcomes.iter().filter(|ok| !**ok).count(), 3);
        qm.governor().set_alloc_fail_every(0);
        assert!(qm.try_reserve("scan", 64).is_ok());
    }

    #[test]
    fn alloc_fault_grammar_parses() {
        assert_eq!(alloc_fail_every("alloc:fail"), Some(1));
        assert_eq!(alloc_fail_every("alloc:fail@7"), Some(7));
        assert_eq!(
            alloc_fail_every("dequeue:delay:20@2, alloc:fail@3"),
            Some(3)
        );
        assert_eq!(alloc_fail_every("exec:poison@5"), None);
        assert_eq!(alloc_fail_every("alloc:fail@x"), None);
    }
}

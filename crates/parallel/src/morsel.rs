//! Partitioning arithmetic: morsels, even range splitting, and greedy
//! size-aware bin-packing.

use std::ops::Range;

/// One unit of claimable work: a contiguous sub-range `[start, end)` of
/// ordered segment `segment`.
///
/// Segments are whatever ordered inputs the caller scans — postings lists,
/// table position ranges, a whole position space. Morsels are indexed, so
/// per-morsel outputs concatenated in morsel index order reproduce a
/// sequential pass over the segments exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Morsel {
    /// Index of the segment this morsel belongs to.
    pub segment: usize,
    /// Start offset within the segment (inclusive).
    pub start: usize,
    /// End offset within the segment (exclusive).
    pub end: usize,
}

impl Morsel {
    /// Number of items in the morsel.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the morsel covers nothing.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// Split ordered segments of the given lengths into morsels of at most
/// `morsel_len` items (clamped to at least 1). Oversized segments are
/// chopped, so one huge postings list spreads across many workers instead
/// of pinning one; empty segments yield no morsels.
pub fn morselize(segment_lens: &[usize], morsel_len: usize) -> Vec<Morsel> {
    let morsel_len = morsel_len.max(1);
    let mut out = Vec::new();
    for (segment, &len) in segment_lens.iter().enumerate() {
        let mut start = 0usize;
        while start < len {
            let end = (start + morsel_len).min(len);
            out.push(Morsel {
                segment,
                start,
                end,
            });
            start = end;
        }
    }
    out
}

/// Split `0..len` into at most `parts` contiguous ranges whose lengths
/// differ by at most one (row-count balanced). Returns fewer ranges when
/// `len < parts` — never an empty range — and nothing for `len == 0`.
pub fn split_even(len: usize, parts: usize) -> Vec<Range<usize>> {
    let parts = parts.max(1).min(len);
    if parts == 0 {
        return Vec::new();
    }
    let base = len / parts;
    let rem = len % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0usize;
    for p in 0..parts {
        let size = base + usize::from(p < rem);
        out.push(start..start + size);
        start += size;
    }
    debug_assert_eq!(start, len);
    out
}

/// Greedy size-aware chunking (longest-processing-time bin-packing): assign
/// item indices to `bins` bins so per-bin total weight stays balanced even
/// under heavy skew — the fix for static `i % bins` striping, where one
/// huge item serializes a whole phase.
///
/// Items are placed heaviest-first into the currently lightest bin; each
/// bin's indices are returned in ascending order and bins may be empty when
/// there are fewer items than bins. Deterministic: ties break on the lower
/// bin index, equal weights on the lower item index.
pub fn balanced_chunks(weights: &[usize], bins: usize) -> Vec<Vec<usize>> {
    let bins = bins.max(1);
    let mut order: Vec<usize> = (0..weights.len()).collect();
    // Stable sort: equal weights keep ascending item order.
    order.sort_by(|&a, &b| weights[b].cmp(&weights[a]));

    let mut totals = vec![0usize; bins];
    let mut out: Vec<Vec<usize>> = vec![Vec::new(); bins];
    for idx in order {
        let lightest = totals
            .iter()
            .enumerate()
            .min_by_key(|&(_, t)| *t)
            .map(|(b, _)| b)
            .expect("at least one bin");
        totals[lightest] += weights[idx];
        out[lightest].push(idx);
    }
    for bin in &mut out {
        bin.sort_unstable();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn morsels_cover_segments_in_order() {
        let morsels = morselize(&[5, 0, 3], 2);
        assert_eq!(
            morsels,
            vec![
                Morsel {
                    segment: 0,
                    start: 0,
                    end: 2
                },
                Morsel {
                    segment: 0,
                    start: 2,
                    end: 4
                },
                Morsel {
                    segment: 0,
                    start: 4,
                    end: 5
                },
                Morsel {
                    segment: 2,
                    start: 0,
                    end: 2
                },
                Morsel {
                    segment: 2,
                    start: 2,
                    end: 3
                },
            ]
        );
        assert!(morsels.iter().all(|m| !m.is_empty() && m.len() <= 2));
    }

    #[test]
    fn zero_morsel_len_is_clamped() {
        assert_eq!(morselize(&[2], 0).len(), 2);
    }

    #[test]
    fn split_even_balances_and_covers() {
        for (len, parts) in [(10, 3), (3, 10), (0, 4), (16, 4), (1, 1)] {
            let ranges = split_even(len, parts);
            assert!(ranges.len() <= parts);
            assert!(ranges.iter().all(|r| !r.is_empty()));
            let covered: usize = ranges.iter().map(|r| r.len()).sum();
            assert_eq!(covered, len);
            // Contiguous and in order.
            let mut pos = 0;
            for r in &ranges {
                assert_eq!(r.start, pos);
                pos = r.end;
            }
            // Balanced within one item.
            if let (Some(min), Some(max)) = (
                ranges.iter().map(|r| r.len()).min(),
                ranges.iter().map(|r| r.len()).max(),
            ) {
                assert!(max - min <= 1);
            }
        }
    }

    #[test]
    fn balanced_chunks_spread_skewed_weights() {
        // One huge item (100) + nine small (1): static i % 4 striping would
        // put items 0,4,8 (102 weight) in bin 0; LPT isolates the giant.
        let weights = [100, 1, 1, 1, 1, 1, 1, 1, 1, 1];
        let bins = balanced_chunks(&weights, 4);
        assert_eq!(bins.len(), 4);
        let totals: Vec<usize> = bins
            .iter()
            .map(|b| b.iter().map(|&i| weights[i]).sum())
            .collect();
        // The giant sits alone; the nine small items share the other bins.
        assert!(totals.contains(&100));
        assert_eq!(totals.iter().sum::<usize>(), 109);
        assert_eq!(*totals.iter().filter(|&&t| t != 100).max().unwrap(), 3);
        // Every index appears exactly once, ascending within its bin.
        let mut all: Vec<usize> = bins.iter().flatten().copied().collect();
        assert!(bins.iter().all(|b| b.windows(2).all(|w| w[0] < w[1])));
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn balanced_chunks_deterministic_under_ties() {
        let weights = [2, 2, 2, 2];
        assert_eq!(balanced_chunks(&weights, 2), balanced_chunks(&weights, 2));
        // More bins than items leaves trailing bins empty.
        let bins = balanced_chunks(&[5], 3);
        assert_eq!(bins[0], vec![0]);
        assert!(bins[1].is_empty() && bins[2].is_empty());
    }
}

//! Admission control: a machine-wide budget of worker tokens.
//!
//! The persistent pool makes workers shared; admission control makes them
//! *rationed*. An [`Admission`] controller holds a fixed budget of tokens,
//! each standing for one pool worker a query phase may enlist beyond its
//! own calling thread. Every parallel phase acquires a grant before fanning
//! out and releases it (by dropping the [`AdmissionGrant`]) when the phase
//! ends, so N concurrent queries share one thread allotment instead of
//! oversubscribing the machine N-fold.
//!
//! Two acquisition modes:
//!
//! * [`try_acquire`](Admission::try_acquire) — never blocks; returns
//!   whatever is available, down to an empty grant. Query phases use this:
//!   an empty grant means "run sequentially on your own thread", which is
//!   graceful degradation rather than queuing (the calling thread exists
//!   anyway, so total thread pressure stays bounded by callers + budget).
//! * [`acquire`](Admission::acquire) — blocks until at least one token is
//!   free. This is the building block for serving layers that prefer
//!   queuing over degradation (the ROADMAP's async request queue). The
//!   concurrency suite's proptest pins its liveness: random grant/release
//!   sequences never exceed the budget and always drain.

use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

use blend_common::Result;

use crate::cancel::Interrupt;
use crate::pool::lock_clean;

/// Admission metric cells (`blend_admission_*`), resolved once and shared
/// by every controller in the process.
struct AdmissionMetrics {
    /// Tokens currently held by live grants.
    tokens_in_use: Arc<blend_obs::Gauge>,
    /// Non-empty grants handed out.
    grants: Arc<blend_obs::Counter>,
    /// Time spent blocked in `acquire`/`acquire_within` (the non-blocking
    /// `try_acquire` never waits and is not recorded).
    acquire_wait: Arc<blend_obs::Histogram>,
}

fn admission_metrics() -> &'static AdmissionMetrics {
    static METRICS: OnceLock<AdmissionMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = blend_obs::registry();
        AdmissionMetrics {
            tokens_in_use: r.gauge("blend_admission_tokens_in_use"),
            grants: r.counter("blend_admission_grants_total"),
            acquire_wait: r.histogram("blend_admission_acquire_wait_nanos"),
        }
    })
}

/// Environment variable overriding the process-wide admission budget (the
/// maximum number of concurrently granted helper-worker tokens). Defaults
/// to `threads - 1` of the shared context, i.e. the whole pool.
pub const GRANTS_ENV: &str = "BLEND_MAX_CONCURRENT_GRANTS";

/// A token-bucket admission controller. Cheap to share (`Arc`); one
/// instance per thread budget — the process-shared context owns one sized
/// from the environment, tests build their own to force contention.
#[derive(Debug)]
pub struct Admission {
    budget: usize,
    available: Mutex<usize>,
    released: Condvar,
}

impl Admission {
    /// Controller with `budget` grantable tokens.
    pub fn new(budget: usize) -> Arc<Admission> {
        Arc::new(Admission {
            budget,
            available: Mutex::new(budget),
            released: Condvar::new(),
        })
    }

    /// The total token budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Tokens not currently granted (a snapshot; immediately stale under
    /// concurrency — tests use it only at quiescent points).
    pub fn available(&self) -> usize {
        *lock_clean(&self.available)
    }

    /// Take up to `desired` tokens without blocking. The grant may be
    /// empty; callers must then fall back to sequential execution.
    pub fn try_acquire(self: &Arc<Self>, desired: usize) -> AdmissionGrant {
        if desired == 0 || self.budget == 0 {
            return AdmissionGrant::empty();
        }
        let mut available = lock_clean(&self.available);
        let tokens = (*available).min(desired);
        *available -= tokens;
        drop(available);
        if tokens > 0 {
            let m = admission_metrics();
            m.tokens_in_use.add(tokens as i64);
            m.grants.inc();
        }
        AdmissionGrant {
            admission: (tokens > 0).then(|| self.clone()),
            tokens,
        }
    }

    /// Take up to `desired` tokens, blocking until at least one is free.
    /// Returns an empty grant immediately when `desired == 0` or the
    /// budget is zero (so a degenerate controller can never deadlock its
    /// callers).
    pub fn acquire(self: &Arc<Self>, desired: usize) -> AdmissionGrant {
        if desired == 0 || self.budget == 0 {
            return AdmissionGrant::empty();
        }
        let start = Instant::now();
        let mut available = lock_clean(&self.available);
        while *available == 0 {
            available = self
                .released
                .wait(available)
                .unwrap_or_else(|e| e.into_inner());
        }
        let tokens = (*available).min(desired);
        *available -= tokens;
        drop(available);
        let m = admission_metrics();
        m.acquire_wait.record(start.elapsed().as_nanos() as u64);
        m.tokens_in_use.add(tokens as i64);
        m.grants.inc();
        AdmissionGrant {
            admission: Some(self.clone()),
            tokens,
        }
    }

    /// [`acquire`](Admission::acquire) bounded by an [`Interrupt`]: blocks
    /// until at least one token is free, the deadline expires, or the
    /// token is cancelled — whichever comes first. Returns the typed
    /// `Err(Timeout)` / `Err(Cancelled)` instead of waiting forever, and
    /// never holds tokens on the error path (the grant is only assembled
    /// after a successful wait, so nothing can leak).
    ///
    /// Like the other modes, `desired == 0` or a zero budget returns an
    /// empty grant immediately — a degenerate controller must not turn
    /// every request into a timeout.
    pub fn acquire_within(
        self: &Arc<Self>,
        desired: usize,
        interrupt: &Interrupt,
    ) -> Result<AdmissionGrant> {
        if desired == 0 || self.budget == 0 {
            return Ok(AdmissionGrant::empty());
        }
        // Poll the interrupt at least this often even while blocked, so a
        // cancel (which has no wakeup edge on this condvar) is observed
        // promptly rather than only on the next release.
        const CANCEL_POLL: Duration = Duration::from_millis(10);
        let start = Instant::now();
        let mut available = lock_clean(&self.available);
        while *available == 0 {
            if let Err(e) = interrupt.check() {
                drop(available);
                admission_metrics()
                    .acquire_wait
                    .record(start.elapsed().as_nanos() as u64);
                return Err(e);
            }
            let wait = match interrupt.deadline().remaining() {
                Some(left) => left.min(CANCEL_POLL),
                None => CANCEL_POLL,
            };
            let (guard, _timed_out) = self
                .released
                .wait_timeout(available, wait)
                .unwrap_or_else(|e| e.into_inner());
            available = guard;
        }
        interrupt.check()?;
        let tokens = (*available).min(desired);
        *available -= tokens;
        drop(available);
        let m = admission_metrics();
        m.acquire_wait.record(start.elapsed().as_nanos() as u64);
        m.tokens_in_use.add(tokens as i64);
        m.grants.inc();
        Ok(AdmissionGrant {
            admission: Some(self.clone()),
            tokens,
        })
    }

    fn release(&self, tokens: usize) {
        admission_metrics().tokens_in_use.add(-(tokens as i64));
        let mut available = lock_clean(&self.available);
        *available += tokens;
        debug_assert!(*available <= self.budget, "token over-release");
        drop(available);
        // Wake every waiter: a release of k tokens may satisfy several
        // blocked acquires, and waking all of them (rather than one) is
        // what rules out lost wakeups when waiters race a try_acquire.
        self.released.notify_all();
    }
}

/// RAII token grant: holds `tokens` helper-worker tokens until dropped.
#[derive(Debug)]
pub struct AdmissionGrant {
    /// `None` for empty grants, which hold nothing and release nothing.
    admission: Option<Arc<Admission>>,
    tokens: usize,
}

impl AdmissionGrant {
    /// A grant of zero tokens (the sequential-fallback signal).
    pub fn empty() -> AdmissionGrant {
        AdmissionGrant {
            admission: None,
            tokens: 0,
        }
    }

    /// Number of helper-worker tokens held.
    pub fn tokens(&self) -> usize {
        self.tokens
    }

    /// True when no tokens were granted.
    pub fn is_empty(&self) -> bool {
        self.tokens == 0
    }
}

impl Drop for AdmissionGrant {
    fn drop(&mut self) {
        if let Some(admission) = self.admission.take() {
            admission.release(self.tokens);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn try_acquire_degrades_to_empty() {
        let adm = Admission::new(3);
        let g1 = adm.try_acquire(2);
        assert_eq!(g1.tokens(), 2);
        let g2 = adm.try_acquire(2);
        assert_eq!(g2.tokens(), 1, "partial grant under pressure");
        let g3 = adm.try_acquire(2);
        assert!(g3.is_empty(), "exhausted budget grants nothing");
        drop(g1);
        assert_eq!(adm.available(), 2);
        drop((g2, g3));
        assert_eq!(adm.available(), 3);
    }

    #[test]
    fn zero_budget_never_blocks() {
        let adm = Admission::new(0);
        assert!(adm.try_acquire(4).is_empty());
        assert!(adm.acquire(4).is_empty(), "acquire on zero budget returns");
        assert!(adm.acquire(0).is_empty());
    }

    #[test]
    fn acquire_blocks_until_release() {
        let adm = Admission::new(1);
        let held = adm.acquire(1);
        assert_eq!(held.tokens(), 1);
        let adm2 = adm.clone();
        let waiter = std::thread::spawn(move || adm2.acquire(1).tokens());
        // Give the waiter time to block, then release.
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(held);
        assert_eq!(waiter.join().unwrap(), 1);
        assert_eq!(adm.available(), 1);
    }

    #[test]
    fn desired_is_capped_by_budget() {
        let adm = Admission::new(2);
        let g = adm.acquire(100);
        assert_eq!(g.tokens(), 2);
    }

    #[test]
    fn acquire_within_times_out_on_full_budget() {
        use crate::cancel::{CancellationToken, Deadline, Interrupt};
        let adm = Admission::new(1);
        let held = adm.acquire(1);
        let i = Interrupt::new(
            CancellationToken::new(),
            Deadline::after(std::time::Duration::from_millis(5)),
        );
        let err = adm.acquire_within(1, &i).unwrap_err();
        assert!(matches!(err, blend_common::BlendError::Timeout(_)));
        drop(held);
        assert_eq!(adm.available(), 1, "no tokens leaked by the timeout");
        let g = adm.acquire_within(1, &Interrupt::never()).unwrap();
        assert_eq!(g.tokens(), 1);
    }

    #[test]
    fn acquire_within_observes_cancel_while_blocked() {
        use crate::cancel::{CancellationToken, Deadline, Interrupt};
        let adm = Admission::new(1);
        let held = adm.acquire(1);
        let token = CancellationToken::new();
        let i = Interrupt::new(token.clone(), Deadline::none());
        let adm2 = adm.clone();
        let waiter = std::thread::spawn(move || adm2.acquire_within(1, &i));
        std::thread::sleep(std::time::Duration::from_millis(30));
        token.cancel();
        let err = waiter.join().unwrap().unwrap_err();
        assert!(matches!(err, blend_common::BlendError::Cancelled(_)));
        drop(held);
        assert_eq!(adm.available(), 1);
    }

    #[test]
    fn acquire_within_zero_budget_returns_empty_not_timeout() {
        use crate::cancel::{CancellationToken, Deadline, Interrupt};
        let adm = Admission::new(0);
        let i = Interrupt::new(CancellationToken::new(), Deadline::after(Duration::ZERO));
        let g = adm.acquire_within(4, &i).unwrap();
        assert!(g.is_empty());
    }
}

//! The persistent worker pool.
//!
//! Workers are **long-lived OS threads** parked on a shared injector queue:
//! a [`WorkerPool`] handle submits one *batch* per [`run`](WorkerPool::run)
//! call, idle workers claim helper slots on it, and the calling thread
//! always participates as a worker of its own batch. Because the caller
//! makes progress regardless of how busy the pool is, a `run` can never
//! deadlock waiting for workers — under load it simply degrades toward
//! running inline on the caller.
//!
//! Tasks may still borrow from the caller's stack (fact tables, compiled
//! expressions, position batches) exactly as they could under the old
//! scoped design: the batch is bridged to the long-lived workers through a
//! lifetime-erased job pointer, and `run` does not return until every
//! worker that touched the batch has left it (a scoped handoff — see the
//! safety notes on [`JobRef`]). Call sites are unchanged.
//!
//! Scheduling inside a batch is unchanged too: workers claim task indices
//! dynamically from a shared atomic cursor — morsel-driven scheduling — so
//! unequal task costs balance themselves instead of serializing behind the
//! unluckiest worker, and results come back in task order.

use std::any::Any;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::thread::JoinHandle;
use std::time::Instant;

/// Lock a mutex, recovering from poisoning (a panicking task is contained
/// by `catch_unwind` before any pool lock is taken, but recovery keeps the
/// pool serviceable even if that invariant is ever violated). Shared with
/// the admission controller.
pub(crate) fn lock_clean<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Pool-wide metric cells (`blend_pool_*`), resolved once. Process-global
/// on purpose: every core aggregates into one fleet-level family.
struct PoolMetrics {
    /// Total busy wall nanos across all participating workers (callers
    /// included), summed per batch.
    busy_nanos: std::sync::Arc<blend_obs::Counter>,
    /// Tasks executed across all batches.
    tasks: std::sync::Arc<blend_obs::Counter>,
    /// Batches submitted through `run`/`run_with`.
    batches: std::sync::Arc<blend_obs::Counter>,
    /// Time a queued batch waited before a pool worker first entered it.
    queue_residency: std::sync::Arc<blend_obs::Histogram>,
}

fn pool_metrics() -> &'static PoolMetrics {
    static METRICS: OnceLock<PoolMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = blend_obs::registry();
        PoolMetrics {
            busy_nanos: r.counter("blend_pool_busy_nanos_total"),
            tasks: r.counter("blend_pool_tasks_total"),
            batches: r.counter("blend_pool_batches_total"),
            queue_residency: r.histogram("blend_pool_queue_residency_nanos"),
        }
    })
}

/// Result of one [`WorkerPool::run`] call.
#[derive(Debug)]
pub struct PoolRun<T> {
    /// Per-task results, in task order (independent of which worker ran
    /// which task).
    pub results: Vec<T>,
    /// Busy wall-clock time per participating worker, in nanoseconds.
    /// Length is the number of workers that actually served the batch —
    /// the caller plus every pool worker that claimed a helper slot (1 on
    /// the sequential path).
    pub worker_nanos: Vec<u64>,
}

// ---- type-erased batch handoff ---------------------------------------------

/// One in-flight batch, type-erased for the injector queue.
///
/// Implementors must tolerate `execute` being called concurrently from
/// several threads (each call serves one worker slot) and must **never
/// unwind** out of `execute`.
trait Job: Sync {
    /// Does the batch still have unclaimed tasks? Called under the
    /// injector lock; a drained (or poisoned) batch is unlinked from the
    /// queue instead of entered, so a worker never claims a slot it would
    /// immediately abandon.
    fn has_work(&self) -> bool;
    /// A worker claimed a helper slot. Called under the injector lock, so
    /// the submitting thread can read a final count after unlinking the
    /// batch from the queue.
    fn enter(&self);
    /// Serve one worker slot: claim tasks until the batch is exhausted,
    /// then signal the submitter.
    fn execute(&self);
}

/// Lifetime-erased pointer to a stack-allocated batch.
///
/// # Safety
///
/// The pointee lives on the submitting caller's stack inside
/// `run_persistent`, which upholds the handoff contract:
///
/// * the batch is enqueued at most once, and `run_persistent` does not
///   return before (a) the batch is unlinked from the injector queue and
///   (b) every worker that `enter`ed it has finished `execute` — so the
///   pointer is never dereferenced after the frame dies;
/// * workers only obtain the pointer from the queue while holding the
///   injector lock, and `enter` is called under that same lock, so the
///   unlink step observes a final `enter` count.
#[derive(Clone, Copy)]
struct JobRef(*const (dyn Job + 'static));

// SAFETY: the pointee is Sync (Job: Sync) and outlives every dereference
// per the handoff contract above.
unsafe impl Send for JobRef {}

impl JobRef {
    /// Erase the lifetime of a borrowed job. Caller must uphold the
    /// [`JobRef`] handoff contract.
    unsafe fn erase<'a>(job: &'a (dyn Job + 'a)) -> JobRef {
        JobRef(std::mem::transmute::<
            *const (dyn Job + 'a),
            *const (dyn Job + 'static),
        >(job as *const _))
    }

    fn same(&self, other: &JobRef) -> bool {
        std::ptr::eq(self.0 as *const (), other.0 as *const ())
    }
}

/// A queued batch plus the number of helper slots still unclaimed.
struct QueuedJob {
    job: JobRef,
    slots: usize,
    /// When the batch was enqueued; feeds the queue-residency histogram
    /// the first time a pool worker enters it.
    submitted: Instant,
    entered_once: bool,
}

// ---- the shared injector and its workers -----------------------------------

struct InjectorState {
    queue: VecDeque<QueuedJob>,
    shutdown: bool,
    spawned: usize,
}

/// State shared between pool handles and worker threads. Workers hold only
/// this (not [`PoolCore`]), so dropping the last core handle can join them.
struct Injector {
    state: Mutex<InjectorState>,
    /// Signalled when work arrives or shutdown begins.
    work: Condvar,
    /// Live worker count — incremented before each spawn, decremented when
    /// a worker exits (lifecycle tests assert this reaches zero on drop).
    live: Arc<AtomicUsize>,
}

fn worker_loop(inj: Arc<Injector>) {
    /// Decrements `live` even if the loop exits abnormally.
    struct LiveGuard(Arc<AtomicUsize>);
    impl Drop for LiveGuard {
        fn drop(&mut self) {
            self.0.fetch_sub(1, Ordering::SeqCst);
        }
    }
    let _guard = LiveGuard(inj.live.clone());

    loop {
        let job = {
            let mut st = lock_clean(&inj.state);
            loop {
                if st.shutdown {
                    return;
                }
                if let Some(q) = st.queue.front_mut() {
                    let job = q.job;
                    // SAFETY (both dereferences): the job is still linked
                    // in the queue, so the submitter is inside
                    // `run_persistent` and the pointee is alive; `enter`
                    // under the lock makes this worker visible to the
                    // submitter's unlink step.
                    if !unsafe { (*job.0).has_work() } {
                        // Drained or poisoned batch: unlink it instead of
                        // entering, so a worker returning from this very
                        // batch cannot re-claim a slot just to find the
                        // cursor exhausted (which would double-count it in
                        // the batch's worker telemetry).
                        st.queue.pop_front();
                        continue;
                    }
                    q.slots -= 1;
                    if !q.entered_once {
                        q.entered_once = true;
                        pool_metrics()
                            .queue_residency
                            .record(q.submitted.elapsed().as_nanos() as u64);
                    }
                    unsafe { (*job.0).enter() };
                    if q.slots == 0 {
                        st.queue.pop_front();
                    }
                    break job;
                }
                st = inj.work.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        };
        // SAFETY: this worker `enter`ed the batch above, so the submitter
        // will not return (and the pointee will not die) until `execute`
        // finishes. `execute` never unwinds, so the worker survives
        // panicking tasks and returns to the queue.
        unsafe { (*job.0).execute() };
    }
}

/// The persistent core behind one or more [`WorkerPool`] handles: worker
/// threads plus the injector they serve. Dropping the last handle shuts the
/// workers down and joins them (no leaked threads).
struct PoolCore {
    inj: Arc<Injector>,
    /// Whether `submit` may spawn additional workers on demand (the
    /// process-global core grows to the widest handle that uses it;
    /// dedicated cores are fixed at construction).
    growable: bool,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl PoolCore {
    fn new(workers: usize, growable: bool) -> Arc<PoolCore> {
        let inj = Arc::new(Injector {
            state: Mutex::new(InjectorState {
                queue: VecDeque::new(),
                shutdown: false,
                spawned: 0,
            }),
            work: Condvar::new(),
            live: Arc::new(AtomicUsize::new(0)),
        });
        let core = Arc::new(PoolCore {
            inj,
            growable,
            handles: Mutex::new(Vec::new()),
        });
        if workers > 0 {
            let mut st = lock_clean(&core.inj.state);
            let mut handles = lock_clean(&core.handles);
            core.spawn_locked(&mut st, &mut handles, workers);
        }
        core
    }

    /// Spawn workers up to `target` total. Both locks held by the caller
    /// (lock order: state, then handles).
    fn spawn_locked(
        &self,
        st: &mut InjectorState,
        handles: &mut Vec<JoinHandle<()>>,
        target: usize,
    ) {
        while st.spawned < target {
            let inj = self.inj.clone();
            inj.live.fetch_add(1, Ordering::SeqCst);
            let handle = std::thread::Builder::new()
                .name(format!("blend-worker-{}", st.spawned))
                .spawn(move || worker_loop(inj));
            match handle {
                Ok(h) => {
                    st.spawned += 1;
                    handles.push(h);
                }
                Err(_) => {
                    // Spawn failure (resource exhaustion): undo the live
                    // count and stop growing — the caller thread still
                    // serves every batch, so correctness is unaffected.
                    self.inj.live.fetch_sub(1, Ordering::SeqCst);
                    break;
                }
            }
        }
    }

    /// Enqueue a batch offering `slots` helper slots.
    fn submit(&self, job: JobRef, slots: usize) {
        {
            let mut st = lock_clean(&self.inj.state);
            if self.growable && st.spawned < slots {
                let mut handles = lock_clean(&self.handles);
                self.spawn_locked(&mut st, &mut handles, slots);
            }
            st.queue.push_back(QueuedJob {
                job,
                slots,
                submitted: Instant::now(),
                entered_once: false,
            });
        }
        self.inj.work.notify_all();
    }

    /// Unlink a batch from the queue (releasing unclaimed helper slots).
    /// After this returns, no further worker can `enter` the batch.
    fn retire(&self, job: JobRef) {
        let mut st = lock_clean(&self.inj.state);
        st.queue.retain(|q| !q.job.same(&job));
    }

    fn live_workers(&self) -> usize {
        self.inj.live.load(Ordering::SeqCst)
    }
}

impl Drop for PoolCore {
    fn drop(&mut self) {
        {
            let mut st = lock_clean(&self.inj.state);
            st.shutdown = true;
            // A non-empty queue here means a batch outlived its run call.
            // That is a bug worth failing loudly on under test, but a
            // panic inside Drop during unwind (e.g. after a poisoned
            // worker already propagated a panic) escalates to an abort —
            // so release builds log and carry on with shutdown instead.
            if !st.queue.is_empty() {
                if cfg!(debug_assertions) && !std::thread::panicking() {
                    panic!("batch outlived its run call");
                }
                blend_obs::warn!("{} batch(es) still queued at pool shutdown", st.queue.len());
            }
        }
        self.inj.work.notify_all();
        for h in lock_clean(&self.handles).drain(..) {
            let _ = h.join();
        }
        // Same degrade for the live counter: every joined worker should
        // have decremented it on exit; a stale count after joining all
        // handles indicates a worker died without unwinding its epilogue.
        let live = self.inj.live.load(Ordering::SeqCst);
        if live != 0 {
            if cfg!(debug_assertions) && !std::thread::panicking() {
                panic!("{live} worker(s) still counted live after shutdown join");
            }
            blend_obs::warn!("{live} worker(s) still counted live after shutdown join");
        }
    }
}

/// The process-global core shared by every [`WorkerPool::shared`] handle
/// (and, through `ParallelCtx::from_env`, by every engine in the process).
/// Sized by its first user and grown on demand; lives for the process.
fn global_core(workers: usize) -> Arc<PoolCore> {
    static GLOBAL: OnceLock<Arc<PoolCore>> = OnceLock::new();
    GLOBAL.get_or_init(|| PoolCore::new(workers, true)).clone()
}

// ---- one run's batch -------------------------------------------------------

/// One participating worker's deposit: its `(task index, result)` pairs
/// plus its busy time in nanoseconds.
type WorkerDeposit<T> = (Vec<(usize, T)>, u64);

/// The batch-completion rendezvous. Heap-allocated (`Arc`) on purpose: a
/// helper's final touch — incrementing `exited` and notifying — must not
/// happen through the stack-allocated batch, because the moment the
/// submitter observes the final count it may destroy the batch frame while
/// a slower helper is still mid-notify. Helpers clone the `Arc` before
/// signalling, so the rendezvous memory outlives every signal regardless
/// of interleaving.
struct Rendezvous {
    /// Helper workers that finished `execute`.
    exited: Mutex<usize>,
    done: Condvar,
}

/// The concrete batch for one `run_with` call: the task cursor, the shared
/// result sink, panic containment, and the completion rendezvous.
struct RunJob<'a, S, T, FI, F> {
    n_tasks: usize,
    next: AtomicUsize,
    /// Helper workers that claimed a slot (excludes the caller). Written
    /// under the injector lock; read by the caller after `retire`.
    entered: AtomicUsize,
    rendezvous: Arc<Rendezvous>,
    /// Set on the first panic: other workers stop claiming tasks so the
    /// batch drains quickly and the panic propagates promptly.
    poisoned: AtomicBool,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    /// `(per-task results, busy nanos)` per participating worker.
    sink: Mutex<Vec<WorkerDeposit<T>>>,
    init: &'a FI,
    f: &'a F,
    _scratch: PhantomData<fn() -> S>,
}

impl<'a, S, T, FI, F> RunJob<'a, S, T, FI, F>
where
    FI: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
    T: Send,
{
    fn new(n_tasks: usize, init: &'a FI, f: &'a F) -> Self {
        RunJob {
            n_tasks,
            next: AtomicUsize::new(0),
            entered: AtomicUsize::new(0),
            rendezvous: Arc::new(Rendezvous {
                exited: Mutex::new(0),
                done: Condvar::new(),
            }),
            poisoned: AtomicBool::new(false),
            panic: Mutex::new(None),
            sink: Mutex::new(Vec::new()),
            init,
            f,
            _scratch: PhantomData,
        }
    }

    /// Serve one worker slot: build a scratch, claim tasks until the cursor
    /// runs out (or the batch is poisoned), deposit results. Panics inside
    /// a task are captured here — they poison the batch, never the worker.
    fn run_slot(&self) {
        let start = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut scratch = (self.init)();
            let mut local: Vec<(usize, T)> = Vec::new();
            while !self.poisoned.load(Ordering::Relaxed) {
                let i = self.next.fetch_add(1, Ordering::Relaxed);
                if i >= self.n_tasks {
                    break;
                }
                local.push((i, (self.f)(&mut scratch, i)));
            }
            local
        }));
        let nanos = start.elapsed().as_nanos() as u64;
        match outcome {
            Ok(local) => lock_clean(&self.sink).push((local, nanos)),
            Err(payload) => {
                self.poisoned.store(true, Ordering::Relaxed);
                lock_clean(&self.panic).get_or_insert(payload);
            }
        }
    }

    /// Wait until `target` helpers have exited the batch.
    fn wait_helpers(&self, target: usize) {
        let rendezvous = &self.rendezvous;
        let mut exited = lock_clean(&rendezvous.exited);
        while *exited < target {
            exited = rendezvous
                .done
                .wait(exited)
                .unwrap_or_else(|e| e.into_inner());
        }
    }
}

impl<S, T, FI, F> Job for RunJob<'_, S, T, FI, F>
where
    FI: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
    T: Send,
{
    fn has_work(&self) -> bool {
        self.next.load(Ordering::Relaxed) < self.n_tasks && !self.poisoned.load(Ordering::Relaxed)
    }

    fn enter(&self) {
        self.entered.fetch_add(1, Ordering::Relaxed);
    }

    fn execute(&self) {
        // Keep the rendezvous alive independently of the batch frame: the
        // increment below is the submitter's licence to destroy the batch,
        // so everything after it must go through this local Arc only.
        let rendezvous = self.rendezvous.clone();
        self.run_slot();
        let mut exited = lock_clean(&rendezvous.exited);
        *exited += 1;
        drop(exited);
        rendezvous.done.notify_all();
    }
}

// ---- the public handle -----------------------------------------------------

#[derive(Clone)]
enum Backing {
    /// Long-lived workers on a shared injector (the production mode).
    Persistent(Arc<PoolCore>),
    /// Spawn-and-join scoped threads per `run` call — the old design,
    /// retained as the benchmark baseline (`concurrent_queries` measures
    /// persistent vs. scoped) and as a zero-state fallback.
    Scoped,
}

/// A worker-pool handle: a thread-width budget over a backing pool.
///
/// Handles are cheap to clone and to narrow ([`with_width`]); all handles
/// onto the same persistent core share its workers, which is how many
/// concurrent queries serve from one machine-wide pool. `width == 1` (or a
/// single task) runs inline with zero synchronization, so a sequential
/// deployment pays nothing.
///
/// [`with_width`]: WorkerPool::with_width
#[derive(Clone)]
pub struct WorkerPool {
    backing: Backing,
    width: usize,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mode = match &self.backing {
            Backing::Persistent(_) => "persistent",
            Backing::Scoped => "scoped",
        };
        f.debug_struct("WorkerPool")
            .field("width", &self.width)
            .field("mode", &mode)
            .finish()
    }
}

impl WorkerPool {
    /// Pool with a **dedicated** persistent core: `threads - 1` long-lived
    /// workers are spawned now (the calling thread is the pool's remaining
    /// worker during each `run`) and joined when the last handle drops.
    pub fn new(threads: usize) -> Self {
        let width = threads.max(1);
        WorkerPool {
            backing: Backing::Persistent(PoolCore::new(width - 1, false)),
            width,
        }
    }

    /// Handle onto the **process-global** persistent core, capped at
    /// `threads` workers for this handle. The global core is created on
    /// first use and grows to the widest handle that asks; every engine in
    /// the process shares its workers, so building N engines never spawns
    /// N pools.
    pub fn shared(threads: usize) -> Self {
        let width = threads.max(1);
        WorkerPool {
            backing: Backing::Persistent(global_core(width - 1)),
            width,
        }
    }

    /// Pool that spawns scoped threads per `run` call (the pre-persistent
    /// design). Kept as the measured baseline and for one-shot contexts
    /// where keeping threads parked would be wasteful.
    pub fn scoped(threads: usize) -> Self {
        WorkerPool {
            backing: Backing::Scoped,
            width: threads.max(1),
        }
    }

    /// A handle onto the same backing pool with a different width budget
    /// (clamped to at least 1). This is how an admission grant scopes a
    /// phase down to its granted worker count without touching the pool.
    pub fn with_width(&self, width: usize) -> Self {
        WorkerPool {
            backing: self.backing.clone(),
            width: width.max(1),
        }
    }

    /// The thread budget of this handle (callers + helpers per run).
    pub fn threads(&self) -> usize {
        self.width
    }

    /// Live worker threads on the backing core (0 for scoped backings,
    /// which only hold threads during a `run`). Lifecycle tests use this to
    /// prove shutdown leaks nothing.
    pub fn live_workers(&self) -> usize {
        match &self.backing {
            Backing::Persistent(core) => core.live_workers(),
            Backing::Scoped => 0,
        }
    }

    /// Handle to the live-worker counter that survives dropping the pool
    /// (the drop test asserts it reaches zero after the join).
    #[cfg(test)]
    fn live_counter(&self) -> Arc<AtomicUsize> {
        match &self.backing {
            Backing::Persistent(core) => core.inj.live.clone(),
            Backing::Scoped => Arc::new(AtomicUsize::new(0)),
        }
    }

    /// Run `n_tasks` independent tasks, `f(i)` computing task `i`.
    ///
    /// Workers claim task indices dynamically from a shared cursor; at most
    /// `min(width, n_tasks)` workers serve the batch (the caller plus up to
    /// `width - 1` pool helpers — fewer when the pool is busy, with the
    /// caller absorbing the rest). Results come back in task order, so
    /// order-sensitive merges can simply concatenate them.
    ///
    /// A panic inside `f` poisons only this call: it propagates to the
    /// caller after every participating worker has left the batch, and the
    /// pool remains usable.
    pub fn run<T, F>(&self, n_tasks: usize, f: F) -> PoolRun<T>
    where
        F: Fn(usize) -> T + Sync,
        T: Send,
    {
        self.run_with(n_tasks, || (), |_, i| f(i))
    }

    /// [`run`](WorkerPool::run) with per-worker scratch state: `init()`
    /// builds one scratch per participating worker (one total on the
    /// sequential path), and that scratch is handed to `f` for every task
    /// the worker claims. This is the hook that lets scan morsels reuse
    /// selection-vector buffers across a whole query instead of allocating
    /// per morsel.
    pub fn run_with<S, T, FI, F>(&self, n_tasks: usize, init: FI, f: F) -> PoolRun<T>
    where
        FI: Fn() -> S + Sync,
        F: Fn(&mut S, usize) -> T + Sync,
        T: Send,
    {
        let run = if self.width == 1 || n_tasks <= 1 {
            let start = Instant::now();
            let mut scratch = init();
            let results: Vec<T> = (0..n_tasks).map(|i| f(&mut scratch, i)).collect();
            PoolRun {
                results,
                worker_nanos: vec![start.elapsed().as_nanos() as u64],
            }
        } else {
            match &self.backing {
                Backing::Persistent(core) => self.run_persistent(core, n_tasks, &init, &f),
                Backing::Scoped => self.run_scoped(n_tasks, &init, &f),
            }
        };
        let m = pool_metrics();
        m.batches.inc();
        m.tasks.add(n_tasks as u64);
        m.busy_nanos.add(run.worker_nanos.iter().sum());
        run
    }

    /// Persistent path: enqueue the batch, serve it from the calling
    /// thread, then rendezvous with every helper that joined.
    fn run_persistent<S, T, FI, F>(
        &self,
        core: &Arc<PoolCore>,
        n_tasks: usize,
        init: &FI,
        f: &F,
    ) -> PoolRun<T>
    where
        FI: Fn() -> S + Sync,
        F: Fn(&mut S, usize) -> T + Sync,
        T: Send,
    {
        let job = RunJob::new(n_tasks, init, f);
        let helpers = self.width.min(n_tasks) - 1;
        // SAFETY: upholds the JobRef handoff contract — the batch is
        // retired from the queue and all entered helpers are awaited below,
        // before `job` (and the borrows inside it) go out of scope. The
        // caller's own slot runs outside catch-free context: `run_slot`
        // contains panics internally, so this frame cannot unwind while
        // helpers still reference the batch.
        let job_ref = unsafe { JobRef::erase(&job) };
        if helpers > 0 {
            core.submit(job_ref, helpers);
        }

        job.run_slot();

        let target = if helpers > 0 {
            core.retire(job_ref);
            // All `enter`s happened under the injector lock before the
            // retire acquired it, so this read is final.
            job.entered.load(Ordering::Relaxed)
        } else {
            0
        };
        job.wait_helpers(target);

        let RunJob { panic, sink, .. } = job;
        if let Some(payload) = lock_clean(&panic).take() {
            resume_unwind(payload);
        }

        let per_worker = sink.into_inner().unwrap_or_else(|e| e.into_inner());
        let mut slots: Vec<Option<T>> = (0..n_tasks).map(|_| None).collect();
        let mut worker_nanos = Vec::with_capacity(per_worker.len());
        for (local, nanos) in per_worker {
            worker_nanos.push(nanos);
            for (i, v) in local {
                slots[i] = Some(v);
            }
        }
        PoolRun {
            results: slots
                .into_iter()
                .map(|s| s.expect("every task index claimed exactly once"))
                .collect(),
            worker_nanos,
        }
    }

    /// Scoped baseline path: spawn-and-join per call (the old design).
    fn run_scoped<S, T, FI, F>(&self, n_tasks: usize, init: &FI, f: &F) -> PoolRun<T>
    where
        FI: Fn() -> S + Sync,
        F: Fn(&mut S, usize) -> T + Sync,
        T: Send,
    {
        let workers = self.width.min(n_tasks);
        let next = AtomicUsize::new(0);

        // Each worker collects (task index, result) pairs privately; the
        // merge below re-orders them by task index, so no shared mutable
        // output buffer (and no locking) is needed.
        let mut per_worker: Vec<(Vec<(usize, T)>, u64)> = Vec::with_capacity(workers);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let start = Instant::now();
                        let mut scratch = init();
                        let mut local = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n_tasks {
                                break;
                            }
                            local.push((i, f(&mut scratch, i)));
                        }
                        (local, start.elapsed().as_nanos() as u64)
                    })
                })
                .collect();
            for h in handles {
                per_worker.push(h.join().expect("pool worker panicked"));
            }
        });

        let mut slots: Vec<Option<T>> = (0..n_tasks).map(|_| None).collect();
        let mut worker_nanos = Vec::with_capacity(workers);
        for (local, nanos) in per_worker {
            worker_nanos.push(nanos);
            for (i, v) in local {
                slots[i] = Some(v);
            }
        }
        PoolRun {
            results: slots
                .into_iter()
                .map(|s| s.expect("every task index claimed exactly once"))
                .collect(),
            worker_nanos,
        }
    }

    /// Parallel map over a slice, preserving element order.
    pub fn map<I, T, F>(&self, items: &[I], f: F) -> Vec<T>
    where
        I: Sync,
        F: Fn(&I) -> T + Sync,
        T: Send,
    {
        self.run(items.len(), |i| f(&items[i])).results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn pools(threads: usize) -> Vec<WorkerPool> {
        vec![WorkerPool::new(threads), WorkerPool::scoped(threads)]
    }

    #[test]
    fn results_come_back_in_task_order() {
        for threads in [1, 2, 4, 8] {
            for pool in pools(threads) {
                let run = pool.run(37, |i| i * i);
                assert_eq!(run.results, (0..37).map(|i| i * i).collect::<Vec<_>>());
                assert!(!run.worker_nanos.is_empty());
                assert!(run.worker_nanos.len() <= threads.max(1));
            }
        }
    }

    #[test]
    fn workers_borrow_caller_state() {
        let data: Vec<u64> = (0..1000).collect();
        for pool in pools(4) {
            let sums = pool.map(&[0usize, 250, 500, 750], |&lo| {
                data[lo..lo + 250].iter().sum::<u64>()
            });
            assert_eq!(sums.iter().sum::<u64>(), data.iter().sum::<u64>());
        }
    }

    #[test]
    fn zero_tasks_is_empty() {
        let run: PoolRun<()> = WorkerPool::new(4).run(0, |_| unreachable!("no task to run"));
        assert!(run.results.is_empty());
    }

    #[test]
    fn run_with_reuses_per_worker_scratch() {
        for threads in [1, 3, 8] {
            for pool in pools(threads) {
                // The scratch records how many tasks it has served; with
                // more tasks than workers, some scratch must serve several
                // tasks.
                let run = pool.run_with(32, Vec::<usize>::new, |scratch, i| {
                    scratch.push(i);
                    scratch.len()
                });
                assert_eq!(run.results.len(), 32);
                assert!(run.results.iter().any(|&served| served > 1));
            }
        }
    }

    #[test]
    fn uneven_tasks_all_complete() {
        // Task cost skew: dynamic claiming must still cover every index.
        for pool in pools(3) {
            let run = pool.run(16, |i| {
                if i == 0 {
                    std::thread::sleep(Duration::from_millis(5));
                }
                i
            });
            assert_eq!(run.results, (0..16).collect::<Vec<_>>());
        }
    }

    #[test]
    fn narrowed_handles_share_one_core() {
        let pool = WorkerPool::new(6);
        assert_eq!(pool.live_workers(), 5);
        let narrow = pool.with_width(2);
        assert_eq!(narrow.threads(), 2);
        // Narrowing is a view, not a new pool: no extra threads appear.
        assert_eq!(narrow.live_workers(), 5);
        let run = narrow.run(10, |i| i + 1);
        assert_eq!(run.results, (1..=10).collect::<Vec<_>>());
        assert!(run.worker_nanos.len() <= 2);
    }

    #[test]
    fn drop_joins_all_workers() {
        let pool = WorkerPool::new(5);
        assert_eq!(pool.live_workers(), 4, "workers park at construction");
        // Exercise the pool so workers have actually served a batch.
        let run = pool.run(64, |i| i);
        assert_eq!(run.results.len(), 64);

        let live = pool.live_counter();
        let second_handle = pool.clone();
        drop(pool);
        // Clones keep the core alive...
        assert_eq!(second_handle.live_workers(), 4);
        drop(second_handle);
        // ...and the final drop joins every worker synchronously.
        assert_eq!(live.load(Ordering::SeqCst), 0, "leaked worker threads");
    }

    #[test]
    fn panic_poisons_only_its_run_and_propagates_after_join() {
        let pool = WorkerPool::new(4);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(64, |i| {
                if i == 13 {
                    panic!("boom-13");
                }
                i
            })
        }));
        let payload = result.expect_err("panic must propagate to the run caller");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or_else(|| payload.downcast_ref::<String>().map_or("", |s| s));
        assert!(msg.contains("boom-13"), "unexpected payload: {msg:?}");

        // The workers survived the poisoned batch...
        assert_eq!(pool.live_workers(), 3, "a task panic must not kill workers");
        // ...and the pool serves later batches normally.
        let run = pool.run(32, |i| i * 2);
        assert_eq!(run.results, (0..32).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn concurrent_runs_share_one_pool() {
        let pool = WorkerPool::new(4);
        std::thread::scope(|scope| {
            for t in 0..6usize {
                let pool = &pool;
                scope.spawn(move || {
                    for round in 0..8usize {
                        let run = pool.run(40, |i| i * 3 + t + round);
                        let want: Vec<usize> = (0..40).map(|i| i * 3 + t + round).collect();
                        assert_eq!(run.results, want);
                    }
                });
            }
        });
        assert_eq!(pool.live_workers(), 3);
    }

    #[test]
    fn shared_handles_reuse_the_global_core() {
        let a = WorkerPool::shared(3);
        let before = a.live_workers();
        let b = WorkerPool::shared(3);
        // Same process-global core: no additional workers were spawned.
        assert_eq!(b.live_workers(), before);
        let run = b.run(16, |i| i + 7);
        assert_eq!(run.results, (7..23).collect::<Vec<_>>());
    }
}

//! A scoped worker pool with dynamic task claiming.
//!
//! Built on the vendored `crossbeam::thread::scope`, so workers may borrow
//! from the caller's stack (fact tables, compiled expressions, position
//! batches) without any `Arc` plumbing. Tasks are claimed from a shared
//! atomic cursor — morsel-driven scheduling — so unequal task costs balance
//! themselves instead of serializing behind the unluckiest worker.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Result of one [`WorkerPool::run`] call.
#[derive(Debug)]
pub struct PoolRun<T> {
    /// Per-task results, in task order (independent of which worker ran
    /// which task).
    pub results: Vec<T>,
    /// Busy wall-clock time per worker, in nanoseconds. Length is the
    /// number of workers that actually ran (1 on the sequential path).
    pub worker_nanos: Vec<u64>,
}

/// A fixed-width scoped worker pool.
///
/// The pool itself is just a thread budget — threads are spawned per
/// [`run`](WorkerPool::run) call inside a scope and joined before it
/// returns, which is what lets tasks borrow caller state. With `threads ==
/// 1` (or a single task) no thread is spawned at all; the closure runs
/// inline, so a sequential deployment pays zero synchronization cost.
#[derive(Debug, Clone)]
pub struct WorkerPool {
    threads: usize,
}

impl WorkerPool {
    /// Pool with the given thread budget (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        WorkerPool {
            threads: threads.max(1),
        }
    }

    /// The thread budget.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run `n_tasks` independent tasks, `f(i)` computing task `i`.
    ///
    /// Workers claim task indices dynamically from a shared cursor;
    /// `min(threads, n_tasks)` workers run. Results come back in task
    /// order, so order-sensitive merges can simply concatenate them.
    ///
    /// A panic inside `f` propagates to the caller after all workers have
    /// been joined.
    pub fn run<T, F>(&self, n_tasks: usize, f: F) -> PoolRun<T>
    where
        F: Fn(usize) -> T + Sync,
        T: Send,
    {
        self.run_with(n_tasks, || (), |_, i| f(i))
    }

    /// [`run`](WorkerPool::run) with per-worker scratch state: `init()`
    /// builds one scratch per worker (one total on the sequential path),
    /// and that scratch is handed to `f` for every task the worker claims.
    /// This is the hook that lets scan morsels reuse selection-vector
    /// buffers across a whole query instead of allocating per morsel.
    pub fn run_with<S, T, FI, F>(&self, n_tasks: usize, init: FI, f: F) -> PoolRun<T>
    where
        FI: Fn() -> S + Sync,
        F: Fn(&mut S, usize) -> T + Sync,
        T: Send,
    {
        if self.threads == 1 || n_tasks <= 1 {
            let start = Instant::now();
            let mut scratch = init();
            let results: Vec<T> = (0..n_tasks).map(|i| f(&mut scratch, i)).collect();
            return PoolRun {
                results,
                worker_nanos: vec![start.elapsed().as_nanos() as u64],
            };
        }

        let workers = self.threads.min(n_tasks);
        let next = AtomicUsize::new(0);
        let (next_ref, f_ref, init_ref) = (&next, &f, &init);

        // Each worker collects (task index, result) pairs privately; the
        // merge below re-orders them by task index, so no shared mutable
        // output buffer (and no locking) is needed.
        let mut per_worker: Vec<(Vec<(usize, T)>, u64)> = Vec::with_capacity(workers);
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(move |_| {
                        let start = Instant::now();
                        let mut scratch = init_ref();
                        let mut local = Vec::new();
                        loop {
                            let i = next_ref.fetch_add(1, Ordering::Relaxed);
                            if i >= n_tasks {
                                break;
                            }
                            local.push((i, f_ref(&mut scratch, i)));
                        }
                        (local, start.elapsed().as_nanos() as u64)
                    })
                })
                .collect();
            for h in handles {
                per_worker.push(h.join().expect("pool worker panicked"));
            }
        })
        .expect("worker scope");

        let mut slots: Vec<Option<T>> = (0..n_tasks).map(|_| None).collect();
        let mut worker_nanos = Vec::with_capacity(workers);
        for (local, nanos) in per_worker {
            worker_nanos.push(nanos);
            for (i, v) in local {
                slots[i] = Some(v);
            }
        }
        PoolRun {
            results: slots
                .into_iter()
                .map(|s| s.expect("every task index claimed exactly once"))
                .collect(),
            worker_nanos,
        }
    }

    /// Parallel map over a slice, preserving element order.
    pub fn map<I, T, F>(&self, items: &[I], f: F) -> Vec<T>
    where
        I: Sync,
        F: Fn(&I) -> T + Sync,
        T: Send,
    {
        self.run(items.len(), |i| f(&items[i])).results
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_task_order() {
        for threads in [1, 2, 4, 8] {
            let pool = WorkerPool::new(threads);
            let run = pool.run(37, |i| i * i);
            assert_eq!(run.results, (0..37).map(|i| i * i).collect::<Vec<_>>());
            assert!(!run.worker_nanos.is_empty());
            assert!(run.worker_nanos.len() <= threads.max(1));
        }
    }

    #[test]
    fn workers_borrow_caller_state() {
        let data: Vec<u64> = (0..1000).collect();
        let pool = WorkerPool::new(4);
        let sums = pool.map(&[0usize, 250, 500, 750], |&lo| {
            data[lo..lo + 250].iter().sum::<u64>()
        });
        assert_eq!(sums.iter().sum::<u64>(), data.iter().sum::<u64>());
    }

    #[test]
    fn zero_tasks_is_empty() {
        let run: PoolRun<()> = WorkerPool::new(4).run(0, |_| unreachable!("no task to run"));
        assert!(run.results.is_empty());
    }

    #[test]
    fn run_with_reuses_per_worker_scratch() {
        for threads in [1, 3, 8] {
            let pool = WorkerPool::new(threads);
            // The scratch records how many tasks it has served; with more
            // tasks than workers, some scratch must serve several tasks.
            let run = pool.run_with(32, Vec::<usize>::new, |scratch, i| {
                scratch.push(i);
                scratch.len()
            });
            assert_eq!(run.results.len(), 32);
            assert!(run.results.iter().any(|&served| served > 1));
        }
    }

    #[test]
    fn uneven_tasks_all_complete() {
        // Task cost skew: dynamic claiming must still cover every index.
        let pool = WorkerPool::new(3);
        let run = pool.run(16, |i| {
            if i == 0 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            i
        });
        assert_eq!(run.results, (0..16).collect::<Vec<_>>());
    }
}

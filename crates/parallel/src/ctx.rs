//! The shared parallel-execution context handed down from plan execution.

use crate::pool::WorkerPool;

/// Environment variable overriding the worker thread count (`1` forces the
/// sequential fallback everywhere).
pub const THREADS_ENV: &str = "BLEND_THREADS";

/// Default minimum number of input items before a phase goes parallel.
/// Below this, scoped-thread spawn cost dwarfs the work.
const DEFAULT_MIN_PARALLEL: usize = 4096;

/// Default morsel length (items per claimable work unit) for scans.
const DEFAULT_MORSEL_LEN: usize = 16 * 1024;

/// Shared parallel-execution configuration: the worker pool plus the
/// thresholds that decide when a phase is worth partitioning.
///
/// One `ParallelCtx` (behind an `Arc`) is attached to the SQL engine and
/// handed down from plan execution to every seeker query, so the whole
/// system shares a single thread budget. Every consumer must implement a
/// sequential fallback: [`should_parallelize`](ParallelCtx::should_parallelize)
/// returns `false` when `threads == 1` or the input is below the morsel
/// threshold, and the caller then runs its ordinary single-threaded loop.
#[derive(Debug, Clone)]
pub struct ParallelCtx {
    pool: WorkerPool,
    min_parallel: usize,
    morsel_len: usize,
}

impl ParallelCtx {
    /// Context with the given thread budget and default tuning.
    pub fn new(threads: usize) -> Self {
        Self::with_tuning(threads, DEFAULT_MIN_PARALLEL, DEFAULT_MORSEL_LEN)
    }

    /// Context with explicit tuning (tests force tiny thresholds to
    /// exercise the parallel paths on small inputs).
    pub fn with_tuning(threads: usize, min_parallel: usize, morsel_len: usize) -> Self {
        ParallelCtx {
            pool: WorkerPool::new(threads),
            min_parallel: min_parallel.max(1),
            morsel_len: morsel_len.max(1),
        }
    }

    /// Strictly sequential context (the `threads == 1` fallback).
    pub fn sequential() -> Self {
        Self::new(1)
    }

    /// Context from the environment: `BLEND_THREADS` when set (clamped to
    /// at least 1), otherwise the machine's available parallelism.
    pub fn from_env() -> Self {
        let threads = std::env::var(THREADS_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
        Self::new(threads)
    }

    /// The worker pool.
    pub fn pool(&self) -> &WorkerPool {
        &self.pool
    }

    /// The thread budget.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// Target items per morsel.
    pub fn morsel_len(&self) -> usize {
        self.morsel_len
    }

    /// Should a phase over `n_items` run on the pool? `false` means the
    /// caller must take its sequential path.
    pub fn should_parallelize(&self, n_items: usize) -> bool {
        self.threads() > 1 && n_items >= self.min_parallel
    }
}

impl Default for ParallelCtx {
    fn default() -> Self {
        Self::from_env()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_ctx_never_parallelizes() {
        let ctx = ParallelCtx::sequential();
        assert_eq!(ctx.threads(), 1);
        assert!(!ctx.should_parallelize(usize::MAX));
    }

    #[test]
    fn threshold_gates_parallelism() {
        let ctx = ParallelCtx::with_tuning(4, 100, 10);
        assert!(!ctx.should_parallelize(99));
        assert!(ctx.should_parallelize(100));
        assert_eq!(ctx.morsel_len(), 10);
        assert_eq!(ctx.threads(), 4);
    }

    #[test]
    fn tuning_clamps_zeroes() {
        let ctx = ParallelCtx::with_tuning(0, 0, 0);
        assert_eq!(ctx.threads(), 1);
        assert_eq!(ctx.morsel_len(), 1);
        assert!(!ctx.should_parallelize(1));
    }
}

//! The shared parallel-execution context handed down from plan execution.

use std::sync::{Arc, OnceLock};

use blend_common::Result;

use crate::admission::{Admission, AdmissionGrant, GRANTS_ENV};
use crate::cancel::Interrupt;
use crate::memory::{MemoryGovernor, QueryMemory};
use crate::pool::WorkerPool;

/// Environment variable overriding the worker thread count (`1` forces the
/// sequential fallback everywhere).
pub const THREADS_ENV: &str = "BLEND_THREADS";

/// Default minimum number of input items before a phase goes parallel.
/// Below this, fan-out bookkeeping dwarfs the work.
const DEFAULT_MIN_PARALLEL: usize = 4096;

/// Default morsel length (items per claimable work unit) for scans.
const DEFAULT_MORSEL_LEN: usize = 16 * 1024;

/// Shared parallel-execution configuration: a handle onto a worker pool,
/// the admission controller rationing that pool, and the thresholds that
/// decide when a phase is worth partitioning.
///
/// One `ParallelCtx` (behind an `Arc`) is attached to the SQL engine and
/// handed down from plan execution to every seeker query. Contexts built
/// from the environment ([`from_env`](ParallelCtx::from_env) /
/// [`shared_from_env`](ParallelCtx::shared_from_env) / `Default`) all share
/// the **process-global persistent pool and admission budget**, so however
/// many engines a process builds, heavy traffic draws from a single
/// machine-wide thread allotment. Explicitly-sized contexts
/// ([`new`](ParallelCtx::new), [`with_tuning`](ParallelCtx::with_tuning),
/// [`with_admission`](ParallelCtx::with_admission)) get a dedicated pool
/// and controller — the isolated mode tests and benchmarks rely on.
///
/// Every consumer must implement a sequential fallback:
/// [`admit`](ParallelCtx::admit) returns `None` when `threads == 1`, when
/// the input is below the morsel threshold, **or when the admission budget
/// is exhausted by other in-flight queries** — and the caller then runs its
/// ordinary single-threaded loop on its own thread.
#[derive(Debug, Clone)]
pub struct ParallelCtx {
    pool: WorkerPool,
    admission: Arc<Admission>,
    min_parallel: usize,
    morsel_len: usize,
    interrupt: Interrupt,
    /// Per-query memory scope. Contexts built by constructors share one
    /// scope on the global governor; the engine swaps in a fresh scope per
    /// query via [`with_query_memory`](ParallelCtx::with_query_memory).
    memory: Arc<QueryMemory>,
}

impl ParallelCtx {
    /// Context with a dedicated pool of the given thread budget and
    /// default tuning.
    pub fn new(threads: usize) -> Self {
        Self::with_tuning(threads, DEFAULT_MIN_PARALLEL, DEFAULT_MORSEL_LEN)
    }

    /// Context with a dedicated pool and explicit tuning (tests force tiny
    /// thresholds to exercise the parallel paths on small inputs). The
    /// admission budget defaults to the whole pool (`threads - 1` helper
    /// tokens).
    pub fn with_tuning(threads: usize, min_parallel: usize, morsel_len: usize) -> Self {
        let threads = threads.max(1);
        Self::with_admission(threads, min_parallel, morsel_len, threads - 1)
    }

    /// [`with_tuning`](ParallelCtx::with_tuning) with an explicit admission
    /// budget (the concurrency suite forces budgets smaller than the
    /// offered load to pin graceful degradation).
    pub fn with_admission(
        threads: usize,
        min_parallel: usize,
        morsel_len: usize,
        budget: usize,
    ) -> Self {
        Self::with_pool(
            WorkerPool::new(threads),
            min_parallel,
            morsel_len,
            Admission::new(budget),
        )
    }

    /// Context over an explicit pool handle and admission controller — the
    /// building block the other constructors (and the scoped-baseline
    /// benchmark) assemble.
    pub fn with_pool(
        pool: WorkerPool,
        min_parallel: usize,
        morsel_len: usize,
        admission: Arc<Admission>,
    ) -> Self {
        ParallelCtx {
            pool,
            admission,
            min_parallel: min_parallel.max(1),
            morsel_len: morsel_len.max(1),
            interrupt: Interrupt::never(),
            memory: Arc::new(QueryMemory::new(MemoryGovernor::global().clone())),
        }
    }

    /// Strictly sequential context (the `threads == 1` fallback).
    pub fn sequential() -> Self {
        Self::new(1)
    }

    /// Context from the environment, backed by the **process-global**
    /// persistent pool: thread budget from `BLEND_THREADS` (clamped to at
    /// least 1) or the machine's available parallelism, admission budget
    /// from `BLEND_MAX_CONCURRENT_GRANTS` or `threads - 1`. Calling this
    /// many times never spawns more than one pool.
    ///
    /// The process-global **admission budget is fixed by the first call**
    /// (while the global pool itself grows to the widest handle that asks):
    /// set the environment variables before constructing any engine.
    /// Changing them mid-process affects new handles' thread *widths* but
    /// not the shared token budget — embedders that need a different
    /// budget per context should build isolated ones via
    /// [`with_admission`](ParallelCtx::with_admission).
    pub fn from_env() -> Self {
        let threads = env_usize(THREADS_ENV)
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
            .max(1);
        let budget = env_usize(GRANTS_ENV).unwrap_or(threads - 1);
        ParallelCtx {
            pool: WorkerPool::shared(threads),
            admission: global_admission(budget),
            min_parallel: DEFAULT_MIN_PARALLEL,
            morsel_len: DEFAULT_MORSEL_LEN,
            interrupt: Interrupt::never(),
            memory: Arc::new(QueryMemory::new(MemoryGovernor::global().clone())),
        }
    }

    /// The one `Arc<ParallelCtx>` engines share: built from the
    /// environment on first use, then cloned. This is what makes "one pool
    /// per process" hold across every engine-construction site.
    pub fn shared_from_env() -> Arc<ParallelCtx> {
        static SHARED: OnceLock<Arc<ParallelCtx>> = OnceLock::new();
        SHARED
            .get_or_init(|| Arc::new(ParallelCtx::from_env()))
            .clone()
    }

    /// A per-request view of this context carrying the given interrupt: the
    /// same pool handle, admission bucket, and tuning, but every phase and
    /// loop run under it polls `interrupt`. This is how the serving tier
    /// scopes a deadline/cancel to one query without touching the shared
    /// context other requests execute under.
    pub fn with_interrupt(&self, interrupt: Interrupt) -> ParallelCtx {
        ParallelCtx {
            interrupt,
            ..self.clone()
        }
    }

    /// Rebind this context to a different memory governor (tests with
    /// private byte budgets — the env-configured global governor is
    /// process-wide). Engines derive each query's fresh scope from
    /// [`governor`](ParallelCtx::governor), so every query executed under
    /// the returned context charges `gov`.
    pub fn with_governor(&self, gov: Arc<MemoryGovernor>) -> ParallelCtx {
        self.with_query_memory(Arc::new(QueryMemory::new(gov)))
    }

    /// A per-query view of this context carrying a fresh memory scope:
    /// same pool, admission bucket, tuning, and interrupt, but
    /// reservations charge (and peak-track) under `memory`. The engine
    /// creates one scope per query so profile attrs and accounting are
    /// per-query, mirroring how `with_interrupt` scopes cancellation.
    pub fn with_query_memory(&self, memory: Arc<QueryMemory>) -> ParallelCtx {
        ParallelCtx {
            memory,
            ..self.clone()
        }
    }

    /// The interrupt this context executes under (never fires unless the
    /// context came from [`with_interrupt`](ParallelCtx::with_interrupt)).
    pub fn interrupt(&self) -> &Interrupt {
        &self.interrupt
    }

    /// The memory scope operators reserve through.
    pub fn memory(&self) -> &Arc<QueryMemory> {
        &self.memory
    }

    /// The governor this context's reservations charge.
    pub fn governor(&self) -> &Arc<MemoryGovernor> {
        self.memory.governor()
    }

    /// Phase-boundary checkpoint: `Err(Cancelled)` / `Err(Timeout)` once
    /// the request should stop, `Ok(())` otherwise.
    pub fn check_interrupt(&self) -> Result<()> {
        self.interrupt.check()
    }

    /// The worker pool handle (full width — phases should go through
    /// [`admit`](ParallelCtx::admit) instead to respect admission).
    pub fn pool(&self) -> &WorkerPool {
        &self.pool
    }

    /// The admission controller this context draws grants from.
    pub fn admission(&self) -> &Arc<Admission> {
        &self.admission
    }

    /// The thread budget.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// Target items per morsel.
    pub fn morsel_len(&self) -> usize {
        self.morsel_len
    }

    /// Should a phase over `n_items` even ask for workers? `false` means
    /// the caller must take its sequential path. This is the static half
    /// of the decision; [`admit`](ParallelCtx::admit) adds the dynamic
    /// admission half.
    pub fn should_parallelize(&self, n_items: usize) -> bool {
        self.threads() > 1 && n_items >= self.min_parallel
    }

    /// Ask the admission controller for workers to run a phase over
    /// `n_items`. Returns `None` — run sequentially — when the context is
    /// single-threaded, the input is below the parallel threshold, or no
    /// tokens are currently free (another query holds the budget). A
    /// returned grant holds `granted() - 1` budget tokens until dropped,
    /// and its [`pool`](PhaseGrant::pool) is the shared pool narrowed to
    /// exactly the granted width.
    pub fn admit(&self, n_items: usize) -> Option<PhaseGrant> {
        if !self.should_parallelize(n_items) {
            return None;
        }
        let grant = self.admission.try_acquire(self.threads() - 1);
        if grant.is_empty() {
            return None;
        }
        Some(PhaseGrant {
            pool: self.pool.with_width(grant.tokens() + 1),
            grant,
        })
    }
}

impl Default for ParallelCtx {
    fn default() -> Self {
        Self::from_env()
    }
}

/// An admitted phase: a pool handle narrowed to the granted worker count,
/// plus the RAII token grant. Dropping it (at phase end) returns the
/// tokens to the machine-wide budget.
#[derive(Debug)]
pub struct PhaseGrant {
    pool: WorkerPool,
    grant: AdmissionGrant,
}

impl PhaseGrant {
    /// The pool handle to run the phase on (width = granted workers).
    pub fn pool(&self) -> &WorkerPool {
        &self.pool
    }

    /// Total workers this phase may occupy, **including the calling
    /// thread** (i.e. helper tokens + 1). Partitioning arithmetic sizes
    /// itself from this, so a degraded grant produces fewer partitions.
    pub fn granted(&self) -> usize {
        self.grant.tokens() + 1
    }

    /// Narrow the phase to `width` total workers (rung 2 of the memory
    /// degradation ladder: smaller per-worker scratch). The grant keeps
    /// its admission tokens — over-holding is safe and the phase is
    /// already running — but the pool handle fans out to at most `width`.
    pub fn narrowed(self, width: usize) -> PhaseGrant {
        let width = width.clamp(1, self.granted());
        PhaseGrant {
            pool: self.pool.with_width(width),
            grant: self.grant,
        }
    }
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
}

/// The process-global admission controller paired with the global pool.
/// Sized by its first user (see [`ParallelCtx::from_env`]).
fn global_admission(budget: usize) -> Arc<Admission> {
    static GLOBAL: OnceLock<Arc<Admission>> = OnceLock::new();
    GLOBAL.get_or_init(|| Admission::new(budget)).clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_ctx_never_parallelizes() {
        let ctx = ParallelCtx::sequential();
        assert_eq!(ctx.threads(), 1);
        assert!(!ctx.should_parallelize(usize::MAX));
        assert!(ctx.admit(usize::MAX).is_none());
    }

    #[test]
    fn threshold_gates_parallelism() {
        let ctx = ParallelCtx::with_tuning(4, 100, 10);
        assert!(!ctx.should_parallelize(99));
        assert!(ctx.should_parallelize(100));
        assert!(ctx.admit(99).is_none());
        assert_eq!(ctx.morsel_len(), 10);
        assert_eq!(ctx.threads(), 4);
    }

    #[test]
    fn tuning_clamps_zeroes() {
        let ctx = ParallelCtx::with_tuning(0, 0, 0);
        assert_eq!(ctx.threads(), 1);
        assert_eq!(ctx.morsel_len(), 1);
        assert!(!ctx.should_parallelize(1));
    }

    #[test]
    fn admit_grants_full_width_when_uncontended() {
        let ctx = ParallelCtx::with_tuning(4, 1, 1);
        let g = ctx.admit(100).expect("tokens free");
        assert_eq!(g.granted(), 4);
        assert_eq!(g.pool().threads(), 4);
        assert_eq!(ctx.admission().available(), 0);
        drop(g);
        assert_eq!(ctx.admission().available(), 3);
    }

    #[test]
    fn admit_degrades_under_contention() {
        let ctx = ParallelCtx::with_admission(4, 1, 1, 2);
        let first = ctx.admit(100).expect("budget free");
        assert_eq!(first.granted(), 3, "2 tokens + the caller");
        // Budget exhausted: a concurrent phase falls back to sequential.
        assert!(ctx.admit(100).is_none());
        drop(first);
        let after = ctx.admit(100).expect("tokens returned");
        assert_eq!(after.granted(), 3);
    }

    #[test]
    fn clones_share_the_admission_budget() {
        let ctx = ParallelCtx::with_admission(4, 1, 1, 1);
        let peer = ctx.clone();
        let g = ctx.admit(10).expect("token free");
        assert!(peer.admit(10).is_none(), "clone draws from the same bucket");
        drop(g);
        assert!(peer.admit(10).is_some());
    }

    #[test]
    fn with_interrupt_scopes_to_one_view() {
        use crate::cancel::{CancellationToken, Deadline, Interrupt};
        let ctx = ParallelCtx::with_tuning(2, 1, 1);
        let token = CancellationToken::new();
        let scoped = ctx.with_interrupt(Interrupt::new(token.clone(), Deadline::none()));
        assert!(scoped.check_interrupt().is_ok());
        token.cancel();
        assert!(scoped.check_interrupt().is_err());
        // The originating context is untouched — other requests keep going.
        assert!(ctx.check_interrupt().is_ok());
        // Shared plumbing is the same pool + bucket.
        assert!(Arc::ptr_eq(ctx.admission(), scoped.admission()));
        assert_eq!(ctx.threads(), scoped.threads());
    }

    #[test]
    fn env_contexts_share_one_pool() {
        let a = ParallelCtx::from_env();
        let b = ParallelCtx::from_env();
        // Same process-global core and admission bucket: constructing more
        // contexts never spawns more workers.
        assert_eq!(a.pool().live_workers(), b.pool().live_workers());
        assert!(Arc::ptr_eq(a.admission(), b.admission()));
        assert!(Arc::ptr_eq(
            ParallelCtx::shared_from_env().admission(),
            a.admission()
        ));
    }
}

//! Cooperative cancellation and deadlines for in-flight queries.
//!
//! The serving tier needs two ways to stop a query that is already
//! running: a client-driven **cancellation token** (the client went away,
//! or an operator killed the request) and a **deadline** (the request's
//! latency budget expired). Both are *cooperative*: nothing preempts a
//! worker mid-morsel. Instead an [`Interrupt`] — the pair of token and
//! deadline — rides on the `ParallelCtx` handed down to the executor, and
//! well-known sites poll it:
//!
//! * `Admission::acquire_within` re-checks before and during every blocked
//!   wait, so a queued request can never sleep past its deadline.
//! * The positional executor calls [`Interrupt::check`] at every phase
//!   boundary (scan → join build → probe → group → global agg) and inside
//!   every morsel / partition / probe-chunk loop, both on the sequential
//!   path and inside pool-run closures.
//! * The plan executor checks between seekers.
//!
//! Pool closures cannot return `Result` (their partials are merged
//! positionally), so inside a fan-out workers poll [`Interrupt::is_set`]
//! and bail early with whatever partial they have; the *caller* then calls
//! `check()?` right after the run and discards every partial on `Err`.
//! That yields the **no-partial-results guarantee**: a query either
//! completes and returns byte-identical output, or it returns a typed
//! `BlendError::{Cancelled, Timeout}` and nothing else escapes.
//!
//! `Interrupt::default()` never fires and costs one relaxed atomic load
//! per poll, so the non-serving paths (tests, benches, embedders calling
//! the engine directly) pay nothing.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use blend_common::{BlendError, Result};

/// A shared cancel flag. Cloning is cheap (`Arc`); any clone can
/// [`cancel`](CancellationToken::cancel) and every clone observes it.
#[derive(Debug, Clone, Default)]
pub struct CancellationToken {
    cancelled: Arc<AtomicBool>,
}

impl CancellationToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancellationToken {
        CancellationToken::default()
    }

    /// Trip the flag. Idempotent; visible to all clones.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Release);
    }

    /// Has any clone been cancelled?
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
    }
}

/// An optional absolute time limit. `Copy`, so it travels freely through
/// closures and worker state.
#[derive(Debug, Clone, Copy, Default)]
pub struct Deadline {
    at: Option<Instant>,
}

impl Deadline {
    /// No time limit (never expires).
    pub fn none() -> Deadline {
        Deadline::default()
    }

    /// Expires `budget` from now.
    pub fn after(budget: Duration) -> Deadline {
        Deadline {
            at: Instant::now().checked_add(budget),
        }
    }

    /// Expires at the given instant.
    pub fn at(at: Instant) -> Deadline {
        Deadline { at: Some(at) }
    }

    /// Is there a limit at all?
    pub fn is_some(&self) -> bool {
        self.at.is_some()
    }

    /// Has the limit passed?
    pub fn expired(&self) -> bool {
        self.at.is_some_and(|at| Instant::now() >= at)
    }

    /// Time left before expiry. `None` when unlimited; `Some(ZERO)` once
    /// expired (never negative).
    pub fn remaining(&self) -> Option<Duration> {
        self.at
            .map(|at| at.saturating_duration_since(Instant::now()))
    }
}

/// The interrupt a request carries through execution: a cancellation
/// token plus a deadline. The default interrupt never fires.
#[derive(Debug, Clone, Default)]
pub struct Interrupt {
    token: CancellationToken,
    deadline: Deadline,
}

impl Interrupt {
    /// An interrupt that never fires (what non-serving callers run under).
    pub fn never() -> Interrupt {
        Interrupt::default()
    }

    /// Interrupt from an explicit token and deadline.
    pub fn new(token: CancellationToken, deadline: Deadline) -> Interrupt {
        Interrupt { token, deadline }
    }

    /// The cancellation token (clone it to hand a cancel handle out).
    pub fn token(&self) -> &CancellationToken {
        &self.token
    }

    /// The deadline.
    pub fn deadline(&self) -> Deadline {
        self.deadline
    }

    /// Fast poll for fan-out inner loops: true once the query should stop.
    /// Workers that see `true` bail early; the caller turns the condition
    /// into a typed error via [`check`](Interrupt::check).
    pub fn is_set(&self) -> bool {
        self.token.is_cancelled() || self.deadline.expired()
    }

    /// Turn the current state into a typed error: `Err(Cancelled)` wins
    /// over `Err(Timeout)` when both hold (an explicit cancel is the more
    /// specific signal), `Ok(())` otherwise. This is the phase-boundary
    /// checkpoint the executors call.
    pub fn check(&self) -> Result<()> {
        if self.token.is_cancelled() {
            return Err(BlendError::Cancelled("query interrupted".into()));
        }
        if self.deadline.expired() {
            return Err(BlendError::Timeout("query deadline exceeded".into()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_interrupt_never_fires() {
        let i = Interrupt::never();
        assert!(!i.is_set());
        assert!(i.check().is_ok());
        assert!(!i.deadline().is_some());
        assert_eq!(i.deadline().remaining(), None);
    }

    #[test]
    fn cancel_is_shared_across_clones() {
        let t = CancellationToken::new();
        let i = Interrupt::new(t.clone(), Deadline::none());
        let peer = i.clone();
        assert!(!peer.is_set());
        t.cancel();
        assert!(peer.is_set());
        assert!(matches!(peer.check(), Err(BlendError::Cancelled(_))));
        t.cancel(); // idempotent
        assert!(t.is_cancelled());
    }

    #[test]
    fn expired_deadline_times_out() {
        let d = Deadline::after(Duration::ZERO);
        assert!(d.expired());
        assert_eq!(d.remaining(), Some(Duration::ZERO));
        let i = Interrupt::new(CancellationToken::new(), d);
        assert!(i.is_set());
        assert!(matches!(i.check(), Err(BlendError::Timeout(_))));
    }

    #[test]
    fn future_deadline_has_remaining_budget() {
        let d = Deadline::after(Duration::from_secs(3600));
        assert!(!d.expired());
        assert!(d.remaining().unwrap() > Duration::from_secs(3000));
        let i = Interrupt::new(CancellationToken::new(), d);
        assert!(i.check().is_ok());
    }

    #[test]
    fn cancel_takes_precedence_over_timeout() {
        let t = CancellationToken::new();
        t.cancel();
        let i = Interrupt::new(t, Deadline::after(Duration::ZERO));
        assert!(matches!(i.check(), Err(BlendError::Cancelled(_))));
    }
}

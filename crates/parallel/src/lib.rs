//! # blend-parallel — morsel-driven parallel execution
//!
//! BLEND's pitch is that every discovery task compiles to a handful of SQL
//! shapes over one fact table, which means one well-parallelized executor
//! speeds up *every* seeker at once. This crate is that shared substrate:
//! a reusable scoped worker pool plus the partitioning arithmetic the
//! executor, the index builder, and future scale work (sharding, batching,
//! concurrent query serving) all build on. Nothing here knows about SQL or
//! storage — consumers bring their own work items.
//!
//! ## The morsel/merge model
//!
//! Work is split into **morsels**: small contiguous sub-ranges of ordered
//! input segments (a postings list, a table range, the whole position
//! space). Workers claim morsels *dynamically* from a shared atomic cursor,
//! so a skewed segment never serializes a phase behind one worker the way
//! static `i % threads` striping does. Each morsel produces a private,
//! ordered partial result; because morsels are contiguous and indexed, the
//! partials concatenate **in morsel order** into exactly the output a
//! sequential pass over the same segments would produce. That
//! order-preserving merge is the invariant the whole subsystem leans on:
//! parallel execution is byte-identical to sequential execution, at every
//! thread count, which keeps results reproducible and lets a single parity
//! suite guard every phase.
//!
//! The same recipe covers the executor's three phases:
//!
//! * **Scan** — morsels over postings/ranges, per-morsel position lists,
//!   concatenated in morsel order.
//! * **Hash join** — the build side is [radix-partitioned](radix) by key
//!   hash so each worker builds a flat table over a *disjoint* key set (no
//!   merge step; per-key match lists stay ascending because partition
//!   scatter preserves input order); the probe side is chunked and emitted
//!   in chunk order.
//! * **GROUP BY** — rows are radix-partitioned by group-key hash so each
//!   worker owns its groups outright; per-group aggregate states see
//!   exactly the sequential update sequence, and sorting the finished
//!   groups by first-seen row reproduces the sequential output order.
//!
//! ## Components
//!
//! * [`WorkerPool`] — scoped threads (built on the vendored
//!   `crossbeam::thread::scope`) running `n` indexed tasks with dynamic
//!   claiming; returns results in task order plus per-worker busy times.
//! * [`morsel`] — [`morselize`](morsel::morselize) (segment → morsel
//!   splitting), [`split_even`](morsel::split_even) (row-count-balanced
//!   contiguous ranges), and [`balanced_chunks`](morsel::balanced_chunks)
//!   (greedy LPT bin-packing for unequal work items, used by the index
//!   builder).
//! * [`radix`] — [`radix_partition`](radix::radix_partition) (two-pass
//!   counting sort grouping items by partition id, ascending within each
//!   partition) and [`partition_count`](radix::partition_count) (the
//!   thread-count → radix-fanout policy), used by the flat join/group
//!   operators.
//! * [`ParallelCtx`] — the shared knob set (thread count, morsel length,
//!   sequential-fallback threshold) handed down from plan execution to
//!   every phase. `threads == 1` or inputs below the threshold take the
//!   sequential path, so single-threaded deployments pay nothing.

pub mod ctx;
pub mod morsel;
pub mod pool;
pub mod radix;

pub use ctx::ParallelCtx;
pub use morsel::{balanced_chunks, morselize, split_even, Morsel};
pub use pool::{PoolRun, WorkerPool};
pub use radix::{partition_count, radix_partition, RadixPartitions};

//! # blend-parallel — persistent pool, admission control, morsel execution
//!
//! BLEND's pitch is that every discovery task compiles to a handful of SQL
//! shapes over one fact table, which means one well-parallelized executor
//! speeds up *every* seeker at once — and discovery is an interactive,
//! many-users workload, so many of those queries are in flight at once.
//! This crate is the shared substrate for both facts: a **persistent
//! worker pool** serving every query in the process, an **admission
//! controller** rationing it, and the partitioning arithmetic the
//! executor, the index builder, and future scale work (sharding, async
//! serving, caching) all build on. Nothing here knows about SQL or
//! storage — consumers bring their own work items.
//!
//! ## The persistent pool
//!
//! Workers are long-lived OS threads parked on a shared injector queue
//! ([`WorkerPool`]); spawn-per-run is gone. Each [`run`](WorkerPool::run)
//! submits one batch, idle workers claim helper slots on it, and the
//! calling thread always serves its own batch too — so a run can never
//! deadlock on a busy pool, it just degrades toward running inline. Tasks
//! may still borrow the caller's stack exactly as under the old scoped
//! design: the batch is bridged to the workers through a scoped handoff
//! (`run` returns only after every participating worker has left the
//! batch), so `run`/`run_with`/`map` keep their signatures and callers
//! compiled unchanged. A panicking task poisons only its own `run` call —
//! the panic propagates to that caller after the batch drains, and the
//! workers survive to serve the next batch.
//!
//! Handles are cheap views: [`WorkerPool::shared`] points every engine in
//! the process at one global core, [`WorkerPool::with_width`] narrows a
//! handle to an admitted width, and [`WorkerPool::scoped`] retains the old
//! spawn-per-run design as the measured baseline.
//!
//! ## Admission control
//!
//! With one pool serving N concurrent queries, the scarce resource is
//! worker time. [`Admission`] holds a machine-wide budget of helper-worker
//! tokens (`BLEND_MAX_CONCURRENT_GRANTS`, default `threads - 1`); every
//! parallel phase asks [`ParallelCtx::admit`] for a [`PhaseGrant`] before
//! fanning out and releases it when the phase ends. Under load a phase
//! receives fewer workers than it wanted — down to `None`, the sequential
//! fallback on the query's own thread — so heavy traffic *degrades
//! gracefully* instead of oversubscribing: total thread pressure is
//! bounded by callers + budget at every instant. Grants are surfaced per
//! phase in `QueryReport::parallel` telemetry.
//!
//! ## Cancellation & deadlines
//!
//! Serving real users means queries must be *stoppable*. Every request can
//! carry an [`Interrupt`] — a [`CancellationToken`] plus a [`Deadline`] —
//! scoped onto the shared context via
//! [`ParallelCtx::with_interrupt`]. The protocol is cooperative and has
//! three kinds of check sites:
//!
//! 1. **Blocking waits** — [`Admission::acquire_within`] re-polls the
//!    interrupt while blocked on the token condvar, so a queued request
//!    returns a typed `Err(Timeout)`/`Err(Cancelled)` instead of sleeping
//!    past its budget.
//! 2. **Phase boundaries** — the SQL executors call
//!    [`ParallelCtx::check_interrupt`] before scan, join build, join
//!    probe, group, and global-agg phases, and the plan executor checks
//!    between seekers.
//! 3. **Inner loops** — sequential scan/probe/group loops check every few
//!    thousand rows; pool-run closures poll [`Interrupt::is_set`] per
//!    morsel / partition / chunk and bail early with a truncated partial.
//!
//! Pool tasks never unwind: a worker that observes the interrupt returns
//! whatever partial it has, and the **caller** re-checks right after the
//! run and discards *all* partials on `Err`. That is the no-partial-results
//! guarantee: a query either completes (byte-identical to sequential) or
//! surfaces exactly one typed `BlendError::{Cancelled, Timeout}` with no
//! output. `Interrupt::default()` never fires and costs one relaxed load
//! per poll, so non-serving callers are unaffected.
//!
//! ## Memory governance
//!
//! The same graceful-degradation posture applies to bytes: a process-wide
//! [`MemoryGovernor`] (`BLEND_MEMORY_BUDGET`, unset = unbounded) hands out
//! hierarchical RAII [`MemoryReservation`]s — query scope
//! ([`QueryMemory`], threaded through [`ParallelCtx::with_query_memory`]
//! exactly like interrupts) → operator reservations at every
//! allocation-heavy site. On reservation failure the system walks a
//! four-rung ladder (reclaim registered pools → narrow the phase's worker
//! width → the sequential path → typed `BlendError::MemoryExceeded`),
//! never aborting and never leaving partial results; see the [`memory`]
//! module docs for the full protocol and its interaction with
//! cancellation.
//!
//! ## The morsel/merge model
//!
//! Work is split into **morsels**: small contiguous sub-ranges of ordered
//! input segments (a postings list, a table range, the whole position
//! space). Workers claim morsels *dynamically* from a shared atomic cursor,
//! so a skewed segment never serializes a phase behind one worker the way
//! static `i % threads` striping does. Each morsel produces a private,
//! ordered partial result; because morsels are contiguous and indexed, the
//! partials concatenate **in morsel order** into exactly the output a
//! sequential pass over the same segments would produce. That
//! order-preserving merge is the invariant the whole subsystem leans on:
//! parallel execution is byte-identical to sequential execution, at every
//! thread count *and under every admission grant*, which keeps results
//! reproducible under concurrency and lets a single parity suite guard
//! every phase.
//!
//! The same recipe covers the executor's three phases:
//!
//! * **Scan** — morsels over postings/ranges, per-morsel position lists,
//!   concatenated in morsel order.
//! * **Hash join** — the build side is [radix-partitioned](radix) by key
//!   hash so each worker builds a flat table over a *disjoint* key set (no
//!   merge step; per-key match lists stay ascending because partition
//!   scatter preserves input order); the probe side is chunked and emitted
//!   in chunk order.
//! * **GROUP BY** — rows are radix-partitioned by group-key hash so each
//!   worker owns its groups outright; per-group aggregate states see
//!   exactly the sequential update sequence, and sorting the finished
//!   groups by first-seen row reproduces the sequential output order.
//!
//! ## Components
//!
//! * [`WorkerPool`] — persistent shared worker pool (dedicated, global, or
//!   scoped-baseline backing) running `n` indexed tasks with dynamic
//!   claiming; returns results in task order plus per-worker busy times.
//! * [`Admission`] / [`AdmissionGrant`] — the machine-wide token budget and
//!   its RAII grant.
//! * [`ParallelCtx`] / [`PhaseGrant`] — the shared knob set (thread count,
//!   morsel length, sequential-fallback threshold, admission) handed down
//!   from plan execution to every phase. [`ParallelCtx::shared_from_env`]
//!   is the one context engines share, so exactly one pool exists per
//!   process.
//! * [`memory`] — [`MemoryGovernor`] / [`QueryMemory`] /
//!   [`MemoryReservation`], the byte budget and its RAII grants, plus
//!   [`reserve_laddered`] (the width-scaled degradation ladder).
//! * [`morsel`] — [`morselize`](morsel::morselize) (segment → morsel
//!   splitting), [`split_even`](morsel::split_even) (row-count-balanced
//!   contiguous ranges), and [`balanced_chunks`](morsel::balanced_chunks)
//!   (greedy LPT bin-packing for unequal work items, used by the index
//!   builder).
//! * [`radix`] — [`radix_partition`](radix::radix_partition) (two-pass
//!   counting sort grouping items by partition id, ascending within each
//!   partition) and [`partition_count`](radix::partition_count) (the
//!   worker-count → radix-fanout policy), used by the flat join/group
//!   operators.

pub mod admission;
pub mod cancel;
pub mod ctx;
pub mod memory;
pub mod morsel;
pub mod pool;
pub mod radix;

pub use admission::{Admission, AdmissionGrant, GRANTS_ENV};
pub use cancel::{CancellationToken, Deadline, Interrupt};
pub use ctx::{ParallelCtx, PhaseGrant, THREADS_ENV};
pub use memory::{
    reserve_laddered, GovernorStats, LadderRung, MemoryGovernor, MemoryReclaimer,
    MemoryReservation, QueryMemory, MEMORY_ENV,
};
pub use morsel::{balanced_chunks, morselize, split_even, Morsel};
pub use pool::{PoolRun, WorkerPool};
pub use radix::{partition_count, radix_partition, radix_scratch_bytes, RadixPartitions};

//! Radix partitioning: counting-sort items into disjoint partitions.
//!
//! The flat join/group operators hand each pool worker a **disjoint key
//! partition** (rows whose key hashes share the low partition bits), so
//! per-worker hash tables never hold overlapping keys and the old
//! merge-maps-in-chunk-order step disappears. The partition step itself is
//! a two-pass counting sort — count occupancy, prefix-sum, scatter — the
//! same idiom the flat join table uses for its buckets.
//!
//! The invariant everything downstream leans on: within each partition,
//! item indices come back **in ascending input order** (the scatter pass
//! walks items in order and appends). A consumer that processes one
//! partition's items front to back therefore sees exactly the subsequence
//! a sequential pass would have seen, which is what keeps radix-partitioned
//! execution byte-identical to sequential execution.

/// Items grouped by partition in CSR form: partition `p` owns
/// `items[offsets[p]..offsets[p + 1]]`, ascending within each partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RadixPartitions {
    offsets: Vec<u32>,
    items: Vec<u32>,
}

impl RadixPartitions {
    /// Number of partitions.
    pub fn n_parts(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Item indices of partition `p`, in ascending input order.
    pub fn part(&self, p: usize) -> &[u32] {
        let lo = self.offsets[p] as usize;
        let hi = self.offsets[p + 1] as usize;
        &self.items[lo..hi]
    }

    /// CSR partition offsets (length `n_parts + 1`).
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// All item indices, grouped by partition.
    pub fn items(&self) -> &[u32] {
        &self.items
    }

    /// Decompose into `(offsets, items)` — for consumers that store the
    /// CSR arrays directly (e.g. the flat join table's bucket layout).
    pub fn into_parts(self) -> (Vec<u32>, Vec<u32>) {
        (self.offsets, self.items)
    }
}

/// Resident bytes of the CSR arrays [`radix_partition`] builds for `n`
/// items over `n_parts` partitions (offsets + cursor + items) — the
/// costing primitive the executor's radix-scratch reservations use.
pub fn radix_scratch_bytes(n_items: usize, n_parts: usize) -> usize {
    (n_parts + 1) * 4 + n_parts * 4 + n_items * 4
}

/// Group item indices `0..parts.len()` by their partition id with a two-pass
/// counting sort. `parts[i]` must be `< n_parts`; within each partition the
/// returned indices are ascending (see the module docs for why that order is
/// load-bearing). The scatter arrays are allocated fallibly: an OS-level
/// refusal surfaces as `BlendError::MemoryExceeded` instead of aborting.
pub fn radix_partition(parts: &[u32], n_parts: usize) -> blend_common::Result<RadixPartitions> {
    debug_assert!(parts.iter().all(|&p| (p as usize) < n_parts));
    // Pass 1: count per-partition occupancy (striped multi-histogram on the
    // vector path — see `blend_simd::hist`), prefix-summed into offsets.
    let mut offsets = blend_common::try_zeroed_vec::<u32>(n_parts + 1, "radix_offsets")?;
    blend_simd::count_parts(parts, &mut offsets[1..]);
    for p in 0..n_parts {
        offsets[p + 1] += offsets[p];
    }
    // Pass 2: scatter item indices; walking items in input order keeps each
    // partition's slice ascending (the shared kernel preserves exactly
    // that order — it is the invariant everything downstream leans on).
    let mut cursor = blend_common::try_vec_with_capacity::<u32>(n_parts, "radix_cursor")?;
    cursor.extend_from_slice(&offsets[..n_parts]);
    let mut items = blend_common::try_zeroed_vec::<u32>(parts.len(), "radix_scatter")?;
    blend_simd::scatter_parts(parts, &mut cursor, &mut items);
    Ok(RadixPartitions { offsets, items })
}

/// Radix partition count for a pool of `threads` workers over `items`
/// rows: 4× the thread count rounded up to a power of two (the partition
/// selector is a hash mask), capped so per-partition fixed costs stay
/// negligible. The 4× over-decomposition lets the pool's dynamic task
/// claiming balance skewed key distributions — with exactly one partition
/// per worker, the worker that draws the hottest keys would serialize the
/// phase.
///
/// Degenerate inputs shrink the count instead of emitting zero-sized CSR
/// buckets: a width-1 grant has no workers to balance across (one
/// partition), and fewer rows than partitions would leave most buckets
/// empty while still paying the full offsets/cursor allocation per
/// bucket — so the count halves until every partition can hold at least
/// one row. Shrinking (rather than collapsing straight to one) keeps
/// small-but-parallel inputs on the pool: a 12-row group at 4 threads
/// still fans out across 8 partitions instead of silently serializing.
pub fn partition_count(threads: usize, items: usize) -> usize {
    if threads <= 1 || items < 2 {
        return 1;
    }
    let mut parts = threads.saturating_mul(4).next_power_of_two().clamp(1, 256);
    while parts > 1 && items < parts {
        parts >>= 1;
    }
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitions_cover_all_items_ascending() {
        let parts = [2u32, 0, 2, 1, 0, 2, 2];
        let rp = radix_partition(&parts, 4).unwrap();
        assert_eq!(rp.n_parts(), 4);
        assert_eq!(rp.part(0), &[1, 4]);
        assert_eq!(rp.part(1), &[3]);
        assert_eq!(rp.part(2), &[0, 2, 5, 6]);
        assert!(rp.part(3).is_empty());
        // Every index appears exactly once.
        let mut all: Vec<u32> = rp.items().to_vec();
        all.sort_unstable();
        assert_eq!(all, (0..parts.len() as u32).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_yields_empty_partitions() {
        let rp = radix_partition(&[], 3).unwrap();
        assert_eq!(rp.n_parts(), 3);
        for p in 0..3 {
            assert!(rp.part(p).is_empty());
        }
        let rp0 = radix_partition(&[], 0).unwrap();
        assert_eq!(rp0.n_parts(), 0);
        assert!(rp0.items().is_empty());
    }

    #[test]
    fn single_partition_is_identity_order() {
        let parts = vec![0u32; 9];
        let rp = radix_partition(&parts, 1).unwrap();
        assert_eq!(rp.part(0), (0..9u32).collect::<Vec<_>>().as_slice());
    }

    #[test]
    fn partition_count_is_a_bounded_power_of_two() {
        const MANY: usize = 1 << 20;
        assert_eq!(partition_count(2, MANY), 8);
        assert_eq!(partition_count(3, MANY), 16);
        assert_eq!(partition_count(8, MANY), 32);
        assert_eq!(partition_count(1000, MANY), 256);
        for t in 0..100 {
            assert!(partition_count(t, MANY).is_power_of_two());
        }
    }

    #[test]
    fn partition_count_shrinks_degenerate_inputs() {
        const MANY: usize = 1 << 20;
        // Width-1 grants (and the no-grant width 0) have no workers to
        // balance across.
        assert_eq!(partition_count(0, MANY), 1);
        assert_eq!(partition_count(1, MANY), 1);
        // Empty and single-row inputs collapse all the way to one.
        assert_eq!(partition_count(8, 0), 1);
        assert_eq!(partition_count(8, 1), 1);
        // Fewer rows than the 4×-thread fanout halves the count until
        // every bucket can hold a row — small inputs stay parallel.
        assert_eq!(partition_count(8, 31), 16);
        assert_eq!(partition_count(8, 16), 16);
        assert_eq!(partition_count(8, 15), 8);
        assert_eq!(partition_count(8, 2), 2);
        // At or above `parts` rows the full fanout survives.
        assert_eq!(partition_count(8, 32), 32);
    }

    #[test]
    fn radix_partition_degenerate_single_partition_shapes() {
        // Single row, one partition: one bucket holding item 0.
        let rp = radix_partition(&[0], 1).unwrap();
        assert_eq!(rp.n_parts(), 1);
        assert_eq!(rp.part(0), &[0]);
        assert_eq!(rp.offsets(), &[0, 1]);
        // The collapsed count (`partition_count(1, _)` / rows < parts)
        // composes with `radix_partition` into the identity layout.
        let n = 9usize;
        let parts = vec![0u32; n];
        let rp = radix_partition(&parts, partition_count(1, n)).unwrap();
        assert_eq!(rp.n_parts(), 1);
        assert_eq!(rp.part(0), (0..n as u32).collect::<Vec<_>>().as_slice());
    }

    #[test]
    fn radix_partition_matches_scalar_counting_on_long_skewed_input() {
        // Long enough to engage the striped counting kernel; heavily
        // skewed so the stripes actually disagree with a naive split.
        let parts: Vec<u32> = (0..5000u32)
            .map(|i| if i % 7 == 0 { i % 4 } else { 3 })
            .collect();
        let rp = radix_partition(&parts, 4).unwrap();
        let mut counts = [0usize; 4];
        for &p in &parts {
            counts[p as usize] += 1;
        }
        for (p, &want) in counts.iter().enumerate() {
            assert_eq!(rp.part(p).len(), want);
            assert!(rp.part(p).windows(2).all(|w| w[0] < w[1]));
        }
    }
}

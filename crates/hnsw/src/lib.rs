//! HNSW — Hierarchical Navigable Small World graphs (Malkov & Yashunin).
//!
//! The paper's semantic baselines (Starmie, DeepJoin) owe their speed to an
//! HNSW index over column embeddings; reproducing their runtime profile
//! (Fig. 6a, Fig. 7) requires an actual graph index, not brute force. This
//! is a from-scratch implementation with the standard structure:
//!
//! * each point gets a geometric random level; layer 0 holds all points,
//!   higher layers are progressively sparser "express lanes";
//! * `insert` greedily descends from the entry point, then runs an
//!   `ef_construction`-bounded beam search per layer and links the `M`
//!   closest neighbors (with back-links, pruned to the layer cap);
//! * `search` descends greedily to layer 1 and beam-searches layer 0 with
//!   `ef_search`.
//!
//! Distances are abstracted behind [`Metric`]; [`CosineDistance`] works on
//! ℓ2-normalized vectors as produced by `blend-embed`.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rand::{Rng, SeedableRng};

use blend_common::FxHashSet;

/// Distance between two points (smaller = closer).
pub trait Metric<P>: Send + Sync {
    fn distance(&self, a: &P, b: &P) -> f32;
}

/// Cosine distance `1 - a·b` for ℓ2-normalized `Vec<f32>` points.
#[derive(Debug, Clone, Copy, Default)]
pub struct CosineDistance;

impl Metric<Vec<f32>> for CosineDistance {
    #[inline]
    fn distance(&self, a: &Vec<f32>, b: &Vec<f32>) -> f32 {
        let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
        1.0 - dot
    }
}

/// Euclidean distance for `Vec<f32>` points.
#[derive(Debug, Clone, Copy, Default)]
pub struct EuclideanDistance;

impl Metric<Vec<f32>> for EuclideanDistance {
    #[inline]
    fn distance(&self, a: &Vec<f32>, b: &Vec<f32>) -> f32 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f32>()
            .sqrt()
    }
}

/// Ordered f32 wrapper for heaps.
#[derive(Debug, Clone, Copy, PartialEq)]
struct D(f32);
impl Eq for D {}
impl PartialOrd for D {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for D {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// The HNSW index.
pub struct Hnsw<P, M: Metric<P>> {
    metric: M,
    points: Vec<P>,
    /// Top level of each point.
    levels: Vec<u8>,
    /// `neighbors[level][node]` — adjacency per layer. Nodes absent from a
    /// layer have empty lists.
    neighbors: Vec<Vec<Vec<u32>>>,
    entry: Option<u32>,
    /// Max links per node on layers > 0 (layer 0 allows 2M).
    m: usize,
    ef_construction: usize,
    level_mult: f64,
    rng: rand::rngs::StdRng,
}

impl<P, M: Metric<P>> Hnsw<P, M> {
    /// New empty index. Typical parameters: `m = 16`,
    /// `ef_construction = 100`.
    pub fn new(metric: M, m: usize, ef_construction: usize, seed: u64) -> Self {
        assert!(m >= 2, "HNSW needs m >= 2");
        Hnsw {
            metric,
            points: Vec::new(),
            levels: Vec::new(),
            neighbors: vec![Vec::new()],
            entry: None,
            m,
            ef_construction: ef_construction.max(m),
            level_mult: 1.0 / (m as f64).ln(),
            rng: rand::rngs::StdRng::seed_from_u64(seed),
        }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Access a stored point.
    pub fn point(&self, id: u32) -> &P {
        &self.points[id as usize]
    }

    /// Estimated resident bytes (points are counted by the caller since
    /// `P` is opaque; this covers the graph).
    pub fn graph_bytes(&self) -> usize {
        self.neighbors
            .iter()
            .flat_map(|layer| layer.iter())
            .map(|n| n.len() * 4 + std::mem::size_of::<Vec<u32>>())
            .sum()
    }

    fn random_level(&mut self) -> u8 {
        let u: f64 = self.rng.random::<f64>().max(1e-12);
        ((-u.ln() * self.level_mult).floor() as usize).min(31) as u8
    }

    /// Greedy descent on one layer: move to the closest neighbor until no
    /// improvement.
    fn greedy_step(&self, q: &P, mut cur: u32, level: usize) -> u32 {
        let mut cur_d = self.metric.distance(q, &self.points[cur as usize]);
        loop {
            let mut improved = false;
            for &n in &self.neighbors[level][cur as usize] {
                let d = self.metric.distance(q, &self.points[n as usize]);
                if d < cur_d {
                    cur = n;
                    cur_d = d;
                    improved = true;
                }
            }
            if !improved {
                return cur;
            }
        }
    }

    /// Beam search on one layer from `entries`, returning up to `ef`
    /// closest nodes as (distance, id) sorted ascending.
    fn search_layer(&self, q: &P, entries: &[u32], ef: usize, level: usize) -> Vec<(f32, u32)> {
        let mut visited: FxHashSet<u32> = FxHashSet::default();
        // Candidates: min-heap by distance; results: max-heap by distance.
        let mut candidates: BinaryHeap<Reverse<(D, u32)>> = BinaryHeap::new();
        let mut results: BinaryHeap<(D, u32)> = BinaryHeap::new();
        for &e in entries {
            if visited.insert(e) {
                let d = self.metric.distance(q, &self.points[e as usize]);
                candidates.push(Reverse((D(d), e)));
                results.push((D(d), e));
            }
        }
        while results.len() > ef {
            results.pop();
        }
        while let Some(Reverse((D(d), node))) = candidates.pop() {
            let worst = results.peek().map_or(f32::INFINITY, |(D(w), _)| *w);
            if d > worst && results.len() >= ef {
                break;
            }
            for &n in &self.neighbors[level][node as usize] {
                if !visited.insert(n) {
                    continue;
                }
                let dn = self.metric.distance(q, &self.points[n as usize]);
                let worst = results.peek().map_or(f32::INFINITY, |(D(w), _)| *w);
                if results.len() < ef || dn < worst {
                    candidates.push(Reverse((D(dn), n)));
                    results.push((D(dn), n));
                    if results.len() > ef {
                        results.pop();
                    }
                }
            }
        }
        let mut out: Vec<(f32, u32)> = results.into_iter().map(|(D(d), n)| (d, n)).collect();
        out.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        out
    }

    /// Insert a point, returning its id.
    pub fn insert(&mut self, point: P) -> u32 {
        let id = self.points.len() as u32;
        let level = self.random_level() as usize;
        self.points.push(point);
        self.levels.push(level as u8);
        while self.neighbors.len() <= level {
            let layer: Vec<Vec<u32>> = vec![Vec::new(); self.points.len()];
            self.neighbors.push(layer);
        }
        for layer in &mut self.neighbors {
            layer.resize(self.points.len(), Vec::new());
        }

        let Some(entry) = self.entry else {
            self.entry = Some(id);
            return id;
        };

        let top = self.levels[entry as usize] as usize;

        // Phase 1: greedy descent above the insertion level.
        let mut cur = entry;
        let mut l = top;
        while l > level {
            cur = self.greedy_step_owned(id, cur, l);
            l -= 1;
        }

        // Phase 2: beam search and linking from min(top, level) down to 0.
        let mut entries = vec![cur];
        let start = level.min(top);
        for lev in (0..=start).rev() {
            let found = {
                let q = &self.points[id as usize];
                self.search_layer(q, &entries, self.ef_construction, lev)
            };
            let cap = if lev == 0 { self.m * 2 } else { self.m };
            let selected: Vec<u32> = found.iter().take(cap).map(|&(_, n)| n).collect();
            // Bidirectional links with pruning.
            self.neighbors[lev][id as usize] = selected.clone();
            for n in selected {
                self.neighbors[lev][n as usize].push(id);
                if self.neighbors[lev][n as usize].len() > cap {
                    self.prune(n, lev, cap);
                }
            }
            entries = found.into_iter().map(|(_, n)| n).collect();
        }

        if level > top {
            self.entry = Some(id);
        }
        id
    }

    /// `greedy_step` helper that reads the query point by id (borrow-split).
    fn greedy_step_owned(&self, qid: u32, cur: u32, level: usize) -> u32 {
        // Safe: distinct indices, read-only.
        let q = &self.points[qid as usize];
        self.greedy_step(q, cur, level)
    }

    /// Keep only the `cap` closest neighbors of `node` on `level`.
    fn prune(&mut self, node: u32, level: usize, cap: usize) {
        let base = &self.points[node as usize];
        let mut with_d: Vec<(f32, u32)> = self.neighbors[level][node as usize]
            .iter()
            .map(|&n| (self.metric.distance(base, &self.points[n as usize]), n))
            .collect();
        with_d.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        with_d.truncate(cap);
        self.neighbors[level][node as usize] = with_d.into_iter().map(|(_, n)| n).collect();
    }

    /// k-nearest-neighbor search. Returns `(id, distance)` ascending.
    pub fn search(&self, q: &P, k: usize, ef_search: usize) -> Vec<(u32, f32)> {
        let Some(entry) = self.entry else {
            return Vec::new();
        };
        let top = self.levels[entry as usize] as usize;
        let mut cur = entry;
        for l in (1..=top).rev() {
            cur = self.greedy_step(q, cur, l);
        }
        let ef = ef_search.max(k);
        let found = self.search_layer(q, &[cur], ef, 0);
        found.into_iter().take(k).map(|(d, n)| (n, d)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn normed(v: Vec<f32>) -> Vec<f32> {
        let n = v.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-9);
        v.into_iter().map(|x| x / n).collect()
    }

    fn random_unit_vectors(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| normed((0..dim).map(|_| rng.random::<f32>() - 0.5).collect()))
            .collect()
    }

    fn brute_force_knn(points: &[Vec<f32>], q: &Vec<f32>, k: usize) -> Vec<u32> {
        let m = CosineDistance;
        let mut ds: Vec<(f32, u32)> = points
            .iter()
            .enumerate()
            .map(|(i, p)| (m.distance(q, p), i as u32))
            .collect();
        ds.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        ds.into_iter().take(k).map(|(_, i)| i).collect()
    }

    #[test]
    fn empty_index_returns_nothing() {
        let h: Hnsw<Vec<f32>, _> = Hnsw::new(CosineDistance, 8, 32, 1);
        assert!(h.search(&vec![1.0, 0.0], 5, 32).is_empty());
        assert!(h.is_empty());
    }

    #[test]
    fn single_point() {
        let mut h = Hnsw::new(CosineDistance, 8, 32, 1);
        let id = h.insert(normed(vec![1.0, 2.0, 3.0]));
        let r = h.search(&normed(vec![1.0, 2.0, 3.0]), 3, 16);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].0, id);
        assert!(r[0].1.abs() < 1e-5);
    }

    #[test]
    fn exact_match_is_found() {
        let points = random_unit_vectors(200, 16, 7);
        let mut h = Hnsw::new(CosineDistance, 12, 64, 7);
        for p in &points {
            h.insert(p.clone());
        }
        for (i, p) in points.iter().enumerate().step_by(17) {
            let r = h.search(p, 1, 64);
            assert_eq!(r[0].0, i as u32, "exact self-match");
        }
    }

    #[test]
    fn recall_against_brute_force() {
        let points = random_unit_vectors(500, 24, 42);
        let mut h = Hnsw::new(CosineDistance, 16, 128, 42);
        for p in &points {
            h.insert(p.clone());
        }
        let queries = random_unit_vectors(30, 24, 1234);
        let mut hits = 0usize;
        let mut total = 0usize;
        for q in &queries {
            let approx: FxHashSet<u32> = h.search(q, 10, 128).into_iter().map(|(i, _)| i).collect();
            let exact = brute_force_knn(&points, q, 10);
            total += exact.len();
            hits += exact.iter().filter(|e| approx.contains(e)).count();
        }
        let recall = hits as f64 / total as f64;
        assert!(recall >= 0.9, "HNSW recall too low: {recall}");
    }

    #[test]
    fn distances_sorted_ascending() {
        let points = random_unit_vectors(100, 8, 3);
        let mut h = Hnsw::new(CosineDistance, 8, 64, 3);
        for p in &points {
            h.insert(p.clone());
        }
        let r = h.search(&points[0], 10, 64);
        assert!(r.windows(2).all(|w| w[0].1 <= w[1].1));
    }

    #[test]
    fn graph_degree_bounded() {
        let points = random_unit_vectors(300, 8, 9);
        let mut h = Hnsw::new(CosineDistance, 6, 32, 9);
        for p in &points {
            h.insert(p.clone());
        }
        for (lev, layer) in h.neighbors.iter().enumerate() {
            let cap = if lev == 0 { 12 } else { 6 };
            for n in layer {
                assert!(
                    n.len() <= cap,
                    "degree {} > cap {cap} at level {lev}",
                    n.len()
                );
            }
        }
        assert!(h.graph_bytes() > 0);
    }

    #[test]
    fn euclidean_metric_works() {
        let mut h = Hnsw::new(EuclideanDistance, 8, 32, 5);
        for i in 0..50 {
            h.insert(vec![i as f32, 0.0]);
        }
        let r = h.search(&vec![20.2, 0.0], 3, 32);
        assert_eq!(r[0].0, 20);
    }
}

//! Embedded storage engines for BLEND's unified index.
//!
//! The paper deploys BLEND on two database engines — PostgreSQL (a row
//! store) and a commercial column store — and stores the entire unified
//! index as one relational fact table:
//!
//! ```text
//! AllTables(CellValue nvarchar, TableId int, ColumnId int, RowId int,
//!           SuperKey byte, Quadrant bool)
//! ```
//!
//! This crate provides both engines as in-process data structures behind the
//! common [`FactTable`] trait:
//!
//! * [`RowStore`] — tuples stored contiguously, strings inline; the analogue
//!   of the PostgreSQL deployment.
//! * [`ColumnStore`] — dictionary-encoded column vectors; the analogue of
//!   the commercial column store. IN-list probes compare 4-byte dictionary
//!   codes instead of strings, and per-row storage is much smaller — the two
//!   mechanisms behind every Row-vs-Column gap in the paper's figures.
//!
//! Both engines maintain the two *in-database indexes* the paper creates on
//! `AllTables` (Section V): an inverted index on `CellValue` (value →
//! positions) and an index on `TableId` (table → contiguous position range).
//! They also expose exact cardinality statistics, which the SQL layer's
//! access-path chooser uses the way a DBMS optimizer uses its catalog.
//!
//! Scan predicates evaluate through compiled [`FilterKernel`]s (see
//! [`filter`]): the SQL layer lowers its cheap per-position filters once
//! per scan, and the engines run them a batch at a time over selection
//! vectors — dictionary-code probes on the column store, fused tuple
//! checks on the row store — via [`FactTable::filter_batch`] /
//! [`FactTable::filter_range`].

pub mod column_store;
pub mod fact;
pub mod filter;
pub mod row_store;
pub mod stats;

pub use column_store::ColumnStore;
pub use fact::{
    decode_quadrant, FactRow, FactTable, MemoryBreakdown, ValueProbe, QUADRANT_NULL, QUADRANT_ONE,
    QUADRANT_ZERO,
};
pub use filter::{FilterKernel, IdSet, ScanScratch, ValuePred};
pub use row_store::RowStore;
pub use stats::FactStats;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Process-wide store generation, bumped whenever an index/lake rebuild
/// installs a new fact table (see [`bump_store_generation`]). Layers that
/// memoize query results key their entries on the generation observed when
/// the result was produced: after a rebuild the counter has moved on, so
/// stale entries can never match a post-rebuild lookup. Starts at 1 so 0
/// can serve as a "never observed" sentinel.
static STORE_GENERATION: AtomicU64 = AtomicU64::new(1);

/// The current store generation.
pub fn store_generation() -> u64 {
    STORE_GENERATION.load(Ordering::Acquire)
}

/// Advance the store generation (called on index/lake rebuild and catalog
/// swaps) and return the new value.
pub fn bump_store_generation() -> u64 {
    STORE_GENERATION.fetch_add(1, Ordering::AcqRel) + 1
}

/// Which engine to build — row store (PostgreSQL analogue) or column store
/// (commercial column store analogue).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// Tuple-at-a-time storage with inline strings.
    Row,
    /// Dictionary-encoded columnar storage.
    Column,
}

impl EngineKind {
    /// Human-readable engine label used in experiment output, matching the
    /// paper's "(Row)" / "(Column)" suffixes.
    pub fn label(&self) -> &'static str {
        match self {
            EngineKind::Row => "Row",
            EngineKind::Column => "Column",
        }
    }
}

/// Build a fact table with the chosen engine from raw index rows.
pub fn build_engine(kind: EngineKind, rows: Vec<FactRow>) -> Arc<dyn FactTable> {
    match kind {
        EngineKind::Row => Arc::new(RowStore::build(rows)),
        EngineKind::Column => Arc::new(ColumnStore::build(rows)),
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;

    /// A small, hand-checkable fact table used by both engine test suites:
    /// three tables, mixed text/numeric cells.
    pub fn sample_rows() -> Vec<FactRow> {
        let mut rows = Vec::new();
        // Table 0: columns [city, pop] with 3 rows.
        let data0 = [
            ("berlin", Some(false)),
            ("paris", None),
            ("rome", Some(true)),
        ];
        for (r, (city, _)) in data0.iter().enumerate() {
            rows.push(FactRow::new(city, 0, 0, r as u32, 0xF0 + r as u128, None));
        }
        for (r, q) in [Some(false), Some(true), Some(true)]
            .into_iter()
            .enumerate()
        {
            rows.push(FactRow::new(
                &format!("{}", 100 * (r + 1)),
                0,
                1,
                r as u32,
                0xF0 + r as u128,
                q,
            ));
        }
        // Table 1: one column sharing "berlin" and "rome".
        for (r, v) in ["berlin", "munich", "rome"].into_iter().enumerate() {
            rows.push(FactRow::new(v, 1, 0, r as u32, 0xA0 + r as u128, None));
        }
        // Table 2: numeric-only column.
        for r in 0..4u32 {
            rows.push(FactRow::new(
                &format!("{}", r * 10),
                2,
                0,
                r,
                0xB0 + r as u128,
                Some(r >= 2),
            ));
        }
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Both engines must answer identically; this is also covered by a
    /// property test in the SQL crate, but a direct spot check here keeps
    /// the contract local.
    #[test]
    fn engines_agree_on_sample() {
        let rows = test_support::sample_rows();
        let row = build_engine(EngineKind::Row, rows.clone());
        let col = build_engine(EngineKind::Column, rows);
        assert_eq!(row.len(), col.len());
        assert_eq!(row.n_tables(), col.n_tables());
        for pos in 0..row.len() {
            assert_eq!(row.value_at(pos), col.value_at(pos), "pos {pos}");
            assert_eq!(row.table_at(pos), col.table_at(pos));
            assert_eq!(row.column_at(pos), col.column_at(pos));
            assert_eq!(row.row_at(pos), col.row_at(pos));
            assert_eq!(row.superkey_at(pos), col.superkey_at(pos));
            assert_eq!(row.quadrant_at(pos), col.quadrant_at(pos));
        }
        assert_eq!(row.postings("berlin"), col.postings("berlin"));
        assert_eq!(row.table_postings(1), col.table_postings(1));
    }

    #[test]
    fn column_store_is_smaller() {
        // The storage claim behind Table VIII / the Row-vs-Column figures:
        // dictionary encoding shrinks the index footprint.
        let mut rows = Vec::new();
        for t in 0..20u32 {
            for r in 0..200u32 {
                rows.push(FactRow::new(
                    &format!("value-{}", r % 13), // heavy duplication
                    t,
                    0,
                    r,
                    r as u128,
                    None,
                ));
            }
        }
        let row = build_engine(EngineKind::Row, rows.clone());
        let col = build_engine(EngineKind::Column, rows);
        assert!(
            col.size_bytes() < row.size_bytes(),
            "column {} !< row {}",
            col.size_bytes(),
            row.size_bytes()
        );
    }

    #[test]
    fn value_codes_only_on_the_column_store() {
        let rows = test_support::sample_rows();
        let row = build_engine(EngineKind::Row, rows.clone());
        let col = build_engine(EngineKind::Column, rows);
        assert!(!row.has_value_codes());
        assert!(col.has_value_codes());
        for pos in 0..col.len() {
            assert!(row.value_code_at(pos).is_none());
            let code = col.value_code_at(pos).expect("column store has codes");
            // Codes are bijective with values: equal code <=> equal value.
            for other in 0..col.len() {
                assert_eq!(
                    col.value_code_at(other) == Some(code),
                    col.value_at(other) == col.value_at(pos),
                );
            }
        }
    }

    #[test]
    fn batch_gathers_match_point_accessors() {
        let rows = test_support::sample_rows();
        for kind in [EngineKind::Row, EngineKind::Column] {
            let t = build_engine(kind, rows.clone());
            let positions: Vec<u32> = (0..t.len() as u32).rev().collect();
            let (mut tables, mut columns, mut row_ids, mut codes) =
                (Vec::new(), Vec::new(), Vec::new(), Vec::new());
            t.gather_tables(&positions, &mut tables);
            t.gather_columns(&positions, &mut columns);
            t.gather_rows(&positions, &mut row_ids);
            let has_codes = t.gather_value_codes(&positions, &mut codes);
            assert_eq!(has_codes, t.has_value_codes());
            for (i, &p) in positions.iter().enumerate() {
                assert_eq!(tables[i], t.table_at(p as usize));
                assert_eq!(columns[i], t.column_at(p as usize));
                assert_eq!(row_ids[i], t.row_at(p as usize));
                if has_codes {
                    assert_eq!(Some(codes[i]), t.value_code_at(p as usize));
                }
            }
        }
    }

    #[test]
    fn engine_labels() {
        assert_eq!(EngineKind::Row.label(), "Row");
        assert_eq!(EngineKind::Column.label(), "Column");
    }
}

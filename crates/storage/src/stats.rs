//! Exact catalog statistics for the `AllTables` fact table.
//!
//! A real DBMS keeps histograms and distinct counts in its catalog; BLEND's
//! query rewriting leans on those ("cardinality estimates of the
//! intermediate results", Section III). Because our engines own the
//! inverted index they can afford *exact* statistics: postings lengths are
//! value frequencies, table ranges are table cardinalities.

/// Catalog statistics computed once at build time.
#[derive(Debug, Clone, PartialEq)]
pub struct FactStats {
    /// Total index rows (non-null lake cells).
    pub n_rows: usize,
    /// Number of distinct normalized cell values.
    pub n_distinct_values: usize,
    /// Number of lake tables present.
    pub n_tables: usize,
    /// Mean postings-list length (= mean value frequency).
    pub avg_value_frequency: f64,
    /// Length of the longest postings list (skew indicator).
    pub max_value_frequency: usize,
    /// Fraction of index rows with a non-NULL quadrant (numeric cells).
    pub numeric_fraction: f64,
}

impl FactStats {
    /// Compute stats from the canonical-sorted fact rows plus the finished
    /// postings directory sizes.
    pub fn compute(
        n_rows: usize,
        n_tables: usize,
        posting_lens: impl Iterator<Item = usize>,
        numeric_rows: usize,
    ) -> Self {
        let mut n_distinct = 0usize;
        let mut total = 0usize;
        let mut max = 0usize;
        for len in posting_lens {
            n_distinct += 1;
            total += len;
            max = max.max(len);
        }
        FactStats {
            n_rows,
            n_distinct_values: n_distinct,
            n_tables,
            avg_value_frequency: if n_distinct == 0 {
                0.0
            } else {
                total as f64 / n_distinct as f64
            },
            max_value_frequency: max,
            numeric_fraction: if n_rows == 0 {
                0.0
            } else {
                numeric_rows as f64 / n_rows as f64
            },
        }
    }

    /// Estimated positions matched by an IN-list, given the exact posting
    /// lengths of its members (they are disjoint, so the estimate is a sum —
    /// and exact).
    pub fn in_list_cardinality(&self, member_posting_lens: impl Iterator<Item = usize>) -> usize {
        member_posting_lens.sum()
    }

    /// Selectivity of one equality predicate on `CellValue` under the
    /// uniform assumption, used when a probe value is unknown.
    pub fn default_value_selectivity(&self) -> f64 {
        if self.n_rows == 0 || self.n_distinct_values == 0 {
            0.0
        } else {
            1.0 / self.n_distinct_values as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_aggregates_posting_lengths() {
        let s = FactStats::compute(10, 2, [3usize, 5, 2].into_iter(), 4);
        assert_eq!(s.n_rows, 10);
        assert_eq!(s.n_distinct_values, 3);
        assert_eq!(s.max_value_frequency, 5);
        assert!((s.avg_value_frequency - 10.0 / 3.0).abs() < 1e-12);
        assert!((s.numeric_fraction - 0.4).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = FactStats::compute(0, 0, std::iter::empty(), 0);
        assert_eq!(s.avg_value_frequency, 0.0);
        assert_eq!(s.default_value_selectivity(), 0.0);
        assert_eq!(s.numeric_fraction, 0.0);
    }

    #[test]
    fn in_list_cardinality_sums() {
        let s = FactStats::compute(100, 5, [10usize, 1].into_iter(), 0);
        assert_eq!(s.in_list_cardinality([10usize, 1].into_iter()), 11);
    }
}

//! Dictionary-encoded columnar engine — the commercial column store
//! analogue.

use blend_common::{FxHashMap, FxHashSet};

use crate::fact::{
    canonical_sort, decode_quadrant, scratch_component, table_ranges, FactRow, FactTable,
    MemoryBreakdown, ValueProbe, QUADRANT_NULL,
};
use crate::filter::{compact_by, extend_filtered_range, FilterKernel, IdSet, ValuePred};
use crate::stats::FactStats;

/// Column-store implementation of [`FactTable`].
///
/// `CellValue` is dictionary-encoded: the distinct normalized strings live
/// once in `dict`, and the column itself is a `Vec<u32>` of codes. The other
/// five attributes are plain column vectors (`Quadrant` packed into one
/// byte). Compared to [`crate::RowStore`] this
///
/// * shrinks the footprint (duplicated strings stored once — web-table lakes
///   are extremely repetitive), and
/// * turns IN-list probes into integer-set membership tests,
///
/// which together produce the column store's consistent win in the paper's
/// runtime figures.
pub struct ColumnStore {
    /// Distinct values; index = dictionary code.
    dict: Vec<Box<str>>,
    /// Value lookup: string → code.
    dict_index: FxHashMap<Box<str>, u32>,
    /// Per-position dictionary codes.
    codes: Vec<u32>,
    tables: Vec<u32>,
    columns: Vec<u32>,
    rows: Vec<u32>,
    superkeys: Vec<u128>,
    quadrants: Vec<u8>,
    /// Inverted index keyed by dictionary code (dense).
    postings_by_code: Vec<Vec<u32>>,
    ranges: Vec<(u32, u32)>,
    stats: FactStats,
}

impl ColumnStore {
    /// Build the store: canonical sort, dictionary, postings, statistics.
    pub fn build(mut fact_rows: Vec<FactRow>) -> Self {
        canonical_sort(&mut fact_rows);
        let ranges = table_ranges(&fact_rows);
        let n = fact_rows.len();

        let mut dict: Vec<Box<str>> = Vec::new();
        let mut dict_index: FxHashMap<Box<str>, u32> = FxHashMap::default();
        let mut codes = Vec::with_capacity(n);
        let mut tables = Vec::with_capacity(n);
        let mut columns = Vec::with_capacity(n);
        let mut rows = Vec::with_capacity(n);
        let mut superkeys = Vec::with_capacity(n);
        let mut quadrants = Vec::with_capacity(n);
        let mut numeric_rows = 0usize;

        for r in &fact_rows {
            let code = match dict_index.get(&r.value) {
                Some(&c) => c,
                None => {
                    let c = dict.len() as u32;
                    dict.push(r.value.clone());
                    dict_index.insert(r.value.clone(), c);
                    c
                }
            };
            codes.push(code);
            tables.push(r.table);
            columns.push(r.column);
            rows.push(r.row);
            superkeys.push(r.superkey);
            quadrants.push(r.quadrant_code());
            if r.quadrant.is_some() {
                numeric_rows += 1;
            }
        }

        let mut postings_by_code: Vec<Vec<u32>> = vec![Vec::new(); dict.len()];
        for (pos, &code) in codes.iter().enumerate() {
            postings_by_code[code as usize].push(pos as u32);
        }

        let n_tables = ranges.iter().filter(|(s, e)| e > s).count();
        let stats = FactStats::compute(
            n,
            n_tables,
            postings_by_code.iter().map(Vec::len),
            numeric_rows,
        );

        ColumnStore {
            dict,
            dict_index,
            codes,
            tables,
            columns,
            rows,
            superkeys,
            quadrants,
            postings_by_code,
            ranges,
            stats,
        }
    }

    /// Dictionary code of a value, if present.
    pub fn code_of(&self, value: &str) -> Option<u32> {
        self.dict_index.get(value).copied()
    }

    /// Dictionary size (distinct values).
    pub fn dict_len(&self) -> usize {
        self.dict.len()
    }

    /// Run the remaining predicates of a kernel as compaction passes over
    /// `sel[start..]`, one tight loop per predicate, each indexing its
    /// contiguous column array directly — dispatched through the
    /// `blend_simd` block-mask kernels ([`compact_by`] keeps the scalar
    /// twin alive as the parity oracle). `skip` names the predicate a
    /// range pass already consumed (see [`FactTable::filter_range`]);
    /// [`Pass::None`] runs them all.
    fn kernel_passes(&self, kernel: &FilterKernel, skip: Pass, sel: &mut Vec<u32>, start: usize) {
        if let Some(bound) = kernel.rowid_lt {
            if skip != Pass::RowId {
                let rows = &self.rows;
                compact_by(sel, start, |p| rows[p as usize] < bound);
            }
        }
        if let Some(set) = &kernel.table_in {
            if skip != Pass::TableIn {
                let tables = &self.tables;
                compact_by(sel, start, |p| set.contains(tables[p as usize]));
            }
        }
        if let Some(set) = &kernel.table_not_in {
            if skip != Pass::TableNotIn {
                let tables = &self.tables;
                compact_by(sel, start, |p| !set.contains(tables[p as usize]));
            }
        }
        if let Some(want_null) = kernel.quadrant_null {
            if skip != Pass::Quadrant {
                let quads = &self.quadrants;
                compact_by(sel, start, |p| {
                    (quads[p as usize] == QUADRANT_NULL) == want_null
                });
            }
        }
        if skip != Pass::Value {
            match &kernel.value {
                None => {}
                Some(ValuePred::Codes(set)) => {
                    let codes = &self.codes;
                    compact_by(sel, start, |p| set.contains(codes[p as usize]));
                }
                Some(ValuePred::Strings(set)) => {
                    // Cross-engine probe (slow path; the SQL layer always
                    // builds probes via the same engine).
                    compact_by(sel, start, |p| set.contains(self.value_at(p as usize)));
                }
            }
        }
    }

    /// Dictionary-code probe set of a kernel, when present.
    fn code_set(kernel: &FilterKernel) -> Option<&IdSet> {
        match &kernel.value {
            Some(ValuePred::Codes(set)) => Some(set),
            _ => None,
        }
    }
}

/// Which predicate a range pass already evaluated (so the compaction
/// cascade skips it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pass {
    None,
    RowId,
    TableIn,
    TableNotIn,
    Quadrant,
    Value,
}

impl FactTable for ColumnStore {
    fn engine(&self) -> &'static str {
        "Column"
    }

    fn len(&self) -> usize {
        self.codes.len()
    }

    fn n_tables(&self) -> u32 {
        self.ranges.len() as u32
    }

    #[inline]
    fn value_at(&self, pos: usize) -> &str {
        &self.dict[self.codes[pos] as usize]
    }

    #[inline]
    fn table_at(&self, pos: usize) -> u32 {
        self.tables[pos]
    }

    #[inline]
    fn column_at(&self, pos: usize) -> u32 {
        self.columns[pos]
    }

    #[inline]
    fn row_at(&self, pos: usize) -> u32 {
        self.rows[pos]
    }

    #[inline]
    fn superkey_at(&self, pos: usize) -> u128 {
        self.superkeys[pos]
    }

    #[inline]
    fn quadrant_at(&self, pos: usize) -> Option<bool> {
        decode_quadrant(self.quadrants[pos])
    }

    fn postings(&self, value: &str) -> &[u32] {
        match self.dict_index.get(value) {
            Some(&code) => &self.postings_by_code[code as usize],
            None => &[],
        }
    }

    fn table_postings(&self, table: u32) -> std::ops::Range<usize> {
        match self.ranges.get(table as usize) {
            Some(&(s, e)) => s as usize..e as usize,
            None => 0..0,
        }
    }

    fn make_probe(&self, values: &[&str]) -> ValueProbe {
        // Translate the IN-list to dictionary codes once; unknown values
        // vanish (they can never match).
        let set: FxHashSet<u32> = values
            .iter()
            .filter_map(|v| self.dict_index.get(*v).copied())
            .collect();
        ValueProbe::Codes(set)
    }

    #[inline]
    fn probe_at(&self, pos: usize, probe: &ValueProbe) -> bool {
        match probe {
            ValueProbe::Codes(set) => set.contains(&self.codes[pos]),
            ValueProbe::Strings(set) => set.contains(self.value_at(pos)),
        }
    }

    fn has_value_codes(&self) -> bool {
        true
    }

    #[inline]
    fn value_code_at(&self, pos: usize) -> Option<u32> {
        Some(self.codes[pos])
    }

    fn gather_tables(&self, positions: &[u32], out: &mut Vec<u32>) {
        out.extend(positions.iter().map(|&p| self.tables[p as usize]));
    }

    fn gather_columns(&self, positions: &[u32], out: &mut Vec<u32>) {
        out.extend(positions.iter().map(|&p| self.columns[p as usize]));
    }

    fn gather_rows(&self, positions: &[u32], out: &mut Vec<u32>) {
        out.extend(positions.iter().map(|&p| self.rows[p as usize]));
    }

    fn gather_value_codes(&self, positions: &[u32], out: &mut Vec<u32>) -> bool {
        out.extend(positions.iter().map(|&p| self.codes[p as usize]));
        true
    }

    fn gather_superkeys(&self, positions: &[u32], out: &mut Vec<u128>) {
        out.extend(positions.iter().map(|&p| self.superkeys[p as usize]));
    }

    fn gather_quadrants(&self, positions: &[u32], out: &mut Vec<Option<bool>>) {
        out.extend(
            positions
                .iter()
                .map(|&p| decode_quadrant(self.quadrants[p as usize])),
        );
    }

    /// Column-at-a-time kernel evaluation: candidates land in the selection
    /// vector once, then each predicate compacts it with a branch-free pass
    /// indexing the contiguous `rows`/`tables`/`quadrants`/`codes` arrays
    /// directly — no virtual calls, no string compares (value probes are
    /// dictionary-code [`IdSet`] tests).
    fn filter_batch(&self, kernel: &FilterKernel, positions: &[u32], sel: &mut Vec<u32>) {
        if kernel.never_matches() {
            return;
        }
        let start = sel.len();
        sel.extend_from_slice(positions);
        self.kernel_passes(kernel, Pass::None, sel, start);
    }

    /// Range scans never materialize the candidate list: the first active
    /// predicate streams survivors straight off its column slice, and the
    /// rest compact the selection vector.
    fn filter_range(&self, kernel: &FilterKernel, lo: usize, hi: usize, sel: &mut Vec<u32>) {
        if hi <= lo || kernel.never_matches() {
            return;
        }
        let start = sel.len();
        // The first active predicate streams survivors straight off its
        // column slice through the value-form kernel (`extend_range_over`):
        // block loads come off the contiguous array, the keep-mask build
        // auto-vectorizes, and rejected candidates cost no store at all.
        let first = if let Some(bound) = kernel.rowid_lt {
            blend_simd::extend_range_over(sel, lo, hi, &self.rows, |r| r < bound);
            Pass::RowId
        } else if let Some(set) = &kernel.table_in {
            blend_simd::extend_range_over(sel, lo, hi, &self.tables, |t| set.contains(t));
            Pass::TableIn
        } else if let Some(set) = &kernel.table_not_in {
            blend_simd::extend_range_over(sel, lo, hi, &self.tables, |t| !set.contains(t));
            Pass::TableNotIn
        } else if let Some(want_null) = kernel.quadrant_null {
            blend_simd::extend_range_over(sel, lo, hi, &self.quadrants, |q| {
                (q == QUADRANT_NULL) == want_null
            });
            Pass::Quadrant
        } else if let Some(set) = Self::code_set(kernel) {
            // Short IN-lists (the common SC probe: a handful of dictionary
            // codes) hand their padded needle block straight to the
            // broadcast-compare kernel — no per-element set probe at all.
            if let Some(needles) = set.small_needles() {
                blend_simd::extend_range_in8(sel, lo, hi, &self.codes, &needles);
            } else {
                blend_simd::extend_range_over(sel, lo, hi, &self.codes, |c| set.contains(c));
            }
            Pass::Value
        } else if let Some(ValuePred::Strings(set)) = &kernel.value {
            extend_filtered_range(sel, lo, hi, |p| set.contains(self.value_at(p as usize)));
            Pass::Value
        } else {
            // Empty kernel: the range itself is the selection.
            sel.extend((lo..hi).map(|p| p as u32));
            return;
        };
        self.kernel_passes(kernel, first, sel, start);
    }

    fn stats(&self) -> &FactStats {
        &self.stats
    }

    fn memory_breakdown(&self) -> MemoryBreakdown {
        let box_str = std::mem::size_of::<Box<str>>();
        let dict_strings: usize = self.dict.iter().map(|s| s.len() + box_str).sum();
        // The dictionary index owns a *second* copy of every distinct
        // string (keys are cloned on insert) plus hash-bucket overhead —
        // the payload the pre-kernel estimate missed.
        let dict_index: usize = self.dict_index.keys().map(|k| k.len() + box_str + 16).sum();
        let columns = self.codes.len() * (4 + 4 + 4 + 4 + 16 + 1);
        // Posting vectors are push-grown: their spare capacity is resident
        // memory too, so charge capacity, not length (the pre-governor
        // accounting undercounted by the growth slack). The outer Vec's
        // own slack is charged the same way.
        let postings: usize = self
            .postings_by_code
            .iter()
            .map(|v| v.capacity() * 4 + std::mem::size_of::<Vec<u32>>())
            .sum::<usize>()
            + (self.postings_by_code.capacity() - self.postings_by_code.len())
                * std::mem::size_of::<Vec<u32>>();
        MemoryBreakdown {
            engine: "Column",
            components: vec![
                ("dict-strings", dict_strings),
                ("dict-index", dict_index),
                ("columns", columns),
                ("postings", postings),
                ("table-ranges", self.ranges.len() * 8),
                scratch_component(self.len()),
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::sample_rows;

    #[test]
    fn dictionary_deduplicates() {
        let s = ColumnStore::build(sample_rows());
        // "berlin" and "rome" appear twice each but are stored once.
        let n_values = sample_rows().len();
        assert!(s.dict_len() < n_values);
        assert!(s.code_of("berlin").is_some());
        assert!(s.code_of("ghost").is_none());
    }

    #[test]
    fn postings_by_code_match_values() {
        let s = ColumnStore::build(sample_rows());
        for &p in s.postings("rome") {
            assert_eq!(s.value_at(p as usize), "rome");
        }
        assert_eq!(s.postings("rome").len(), 2);
    }

    #[test]
    fn codes_probe_filters() {
        let s = ColumnStore::build(sample_rows());
        let probe = s.make_probe(&["100", "200", "missing"]);
        assert_eq!(probe.len(), 2);
        let hits = (0..s.len()).filter(|&p| s.probe_at(p, &probe)).count();
        assert_eq!(hits, 2);
    }

    #[test]
    fn string_probe_also_accepted() {
        // Cross-engine probes should still work (slow path) — the SQL layer
        // always builds probes via the same engine, but the contract is
        // total.
        let s = ColumnStore::build(sample_rows());
        let mut set: blend_common::FxHashSet<Box<str>> = Default::default();
        set.insert("berlin".into());
        let hits = (0..s.len())
            .filter(|&p| s.probe_at(p, &ValueProbe::Strings(set.clone())))
            .count();
        assert_eq!(hits, 2);
    }

    #[test]
    fn quadrants_roundtrip() {
        let s = ColumnStore::build(sample_rows());
        let numerics = (0..s.len()).filter(|&p| s.quadrant_at(p).is_some()).count();
        assert_eq!(numerics, 7); // 3 pop cells + 4 table-2 cells
    }

    #[test]
    fn empty_store() {
        let s = ColumnStore::build(Vec::new());
        assert_eq!(s.len(), 0);
        assert_eq!(s.dict_len(), 0);
        assert!(s.postings("x").is_empty());
    }

    #[test]
    fn filter_degenerate_ranges_append_nothing_and_keep_prefix() {
        let s = ColumnStore::build(sample_rows());
        let kernel = FilterKernel {
            rowid_lt: Some(u32::MAX),
            ..FilterKernel::empty()
        };
        // lo == hi and reversed ranges: no-ops that never touch sel[..start].
        let mut sel = vec![7u32, 8];
        s.filter_range(&kernel, 3, 3, &mut sel);
        s.filter_range(&kernel, 5, 2, &mut sel);
        assert_eq!(sel, vec![7, 8]);
        // Empty position batch: same contract.
        s.filter_batch(&kernel, &[], &mut sel);
        assert_eq!(sel, vec![7, 8]);
        // A selection vector already at capacity must keep its prefix
        // bytes across the (reallocating) append.
        let mut sel: Vec<u32> = Vec::with_capacity(2);
        sel.extend([7u32, 8]);
        s.filter_range(&kernel, 0, s.len(), &mut sel);
        assert_eq!(&sel[..2], &[7, 8]);
        assert_eq!(sel.len(), 2 + s.len());
    }

    #[test]
    fn gather_superkeys_and_quadrants_match_scalar_accessors() {
        let s = ColumnStore::build(sample_rows());
        let positions: Vec<u32> = (0..s.len() as u32).rev().collect();
        let mut sks = Vec::new();
        s.gather_superkeys(&positions, &mut sks);
        let mut quads = Vec::new();
        s.gather_quadrants(&positions, &mut quads);
        for (i, &p) in positions.iter().enumerate() {
            assert_eq!(sks[i], s.superkey_at(p as usize));
            assert_eq!(quads[i], s.quadrant_at(p as usize));
        }
    }
}

//! Dictionary-encoded columnar engine — the commercial column store
//! analogue.

use blend_common::{FxHashMap, FxHashSet};

use crate::fact::{canonical_sort, decode_quadrant, table_ranges, FactRow, FactTable, ValueProbe};
use crate::stats::FactStats;

/// Column-store implementation of [`FactTable`].
///
/// `CellValue` is dictionary-encoded: the distinct normalized strings live
/// once in `dict`, and the column itself is a `Vec<u32>` of codes. The other
/// five attributes are plain column vectors (`Quadrant` packed into one
/// byte). Compared to [`crate::RowStore`] this
///
/// * shrinks the footprint (duplicated strings stored once — web-table lakes
///   are extremely repetitive), and
/// * turns IN-list probes into integer-set membership tests,
///
/// which together produce the column store's consistent win in the paper's
/// runtime figures.
pub struct ColumnStore {
    /// Distinct values; index = dictionary code.
    dict: Vec<Box<str>>,
    /// Value lookup: string → code.
    dict_index: FxHashMap<Box<str>, u32>,
    /// Per-position dictionary codes.
    codes: Vec<u32>,
    tables: Vec<u32>,
    columns: Vec<u32>,
    rows: Vec<u32>,
    superkeys: Vec<u128>,
    quadrants: Vec<u8>,
    /// Inverted index keyed by dictionary code (dense).
    postings_by_code: Vec<Vec<u32>>,
    ranges: Vec<(u32, u32)>,
    stats: FactStats,
}

impl ColumnStore {
    /// Build the store: canonical sort, dictionary, postings, statistics.
    pub fn build(mut fact_rows: Vec<FactRow>) -> Self {
        canonical_sort(&mut fact_rows);
        let ranges = table_ranges(&fact_rows);
        let n = fact_rows.len();

        let mut dict: Vec<Box<str>> = Vec::new();
        let mut dict_index: FxHashMap<Box<str>, u32> = FxHashMap::default();
        let mut codes = Vec::with_capacity(n);
        let mut tables = Vec::with_capacity(n);
        let mut columns = Vec::with_capacity(n);
        let mut rows = Vec::with_capacity(n);
        let mut superkeys = Vec::with_capacity(n);
        let mut quadrants = Vec::with_capacity(n);
        let mut numeric_rows = 0usize;

        for r in &fact_rows {
            let code = match dict_index.get(&r.value) {
                Some(&c) => c,
                None => {
                    let c = dict.len() as u32;
                    dict.push(r.value.clone());
                    dict_index.insert(r.value.clone(), c);
                    c
                }
            };
            codes.push(code);
            tables.push(r.table);
            columns.push(r.column);
            rows.push(r.row);
            superkeys.push(r.superkey);
            quadrants.push(r.quadrant_code());
            if r.quadrant.is_some() {
                numeric_rows += 1;
            }
        }

        let mut postings_by_code: Vec<Vec<u32>> = vec![Vec::new(); dict.len()];
        for (pos, &code) in codes.iter().enumerate() {
            postings_by_code[code as usize].push(pos as u32);
        }

        let n_tables = ranges.iter().filter(|(s, e)| e > s).count();
        let stats = FactStats::compute(
            n,
            n_tables,
            postings_by_code.iter().map(Vec::len),
            numeric_rows,
        );

        ColumnStore {
            dict,
            dict_index,
            codes,
            tables,
            columns,
            rows,
            superkeys,
            quadrants,
            postings_by_code,
            ranges,
            stats,
        }
    }

    /// Dictionary code of a value, if present.
    pub fn code_of(&self, value: &str) -> Option<u32> {
        self.dict_index.get(value).copied()
    }

    /// Dictionary size (distinct values).
    pub fn dict_len(&self) -> usize {
        self.dict.len()
    }
}

impl FactTable for ColumnStore {
    fn engine(&self) -> &'static str {
        "Column"
    }

    fn len(&self) -> usize {
        self.codes.len()
    }

    fn n_tables(&self) -> u32 {
        self.ranges.len() as u32
    }

    #[inline]
    fn value_at(&self, pos: usize) -> &str {
        &self.dict[self.codes[pos] as usize]
    }

    #[inline]
    fn table_at(&self, pos: usize) -> u32 {
        self.tables[pos]
    }

    #[inline]
    fn column_at(&self, pos: usize) -> u32 {
        self.columns[pos]
    }

    #[inline]
    fn row_at(&self, pos: usize) -> u32 {
        self.rows[pos]
    }

    #[inline]
    fn superkey_at(&self, pos: usize) -> u128 {
        self.superkeys[pos]
    }

    #[inline]
    fn quadrant_at(&self, pos: usize) -> Option<bool> {
        decode_quadrant(self.quadrants[pos])
    }

    fn postings(&self, value: &str) -> &[u32] {
        match self.dict_index.get(value) {
            Some(&code) => &self.postings_by_code[code as usize],
            None => &[],
        }
    }

    fn table_postings(&self, table: u32) -> std::ops::Range<usize> {
        match self.ranges.get(table as usize) {
            Some(&(s, e)) => s as usize..e as usize,
            None => 0..0,
        }
    }

    fn make_probe(&self, values: &[&str]) -> ValueProbe {
        // Translate the IN-list to dictionary codes once; unknown values
        // vanish (they can never match).
        let set: FxHashSet<u32> = values
            .iter()
            .filter_map(|v| self.dict_index.get(*v).copied())
            .collect();
        ValueProbe::Codes(set)
    }

    #[inline]
    fn probe_at(&self, pos: usize, probe: &ValueProbe) -> bool {
        match probe {
            ValueProbe::Codes(set) => set.contains(&self.codes[pos]),
            ValueProbe::Strings(set) => set.contains(self.value_at(pos)),
        }
    }

    fn has_value_codes(&self) -> bool {
        true
    }

    #[inline]
    fn value_code_at(&self, pos: usize) -> Option<u32> {
        Some(self.codes[pos])
    }

    fn gather_tables(&self, positions: &[u32], out: &mut Vec<u32>) {
        out.extend(positions.iter().map(|&p| self.tables[p as usize]));
    }

    fn gather_columns(&self, positions: &[u32], out: &mut Vec<u32>) {
        out.extend(positions.iter().map(|&p| self.columns[p as usize]));
    }

    fn gather_rows(&self, positions: &[u32], out: &mut Vec<u32>) {
        out.extend(positions.iter().map(|&p| self.rows[p as usize]));
    }

    fn gather_value_codes(&self, positions: &[u32], out: &mut Vec<u32>) -> bool {
        out.extend(positions.iter().map(|&p| self.codes[p as usize]));
        true
    }

    fn stats(&self) -> &FactStats {
        &self.stats
    }

    fn size_bytes(&self) -> usize {
        let dict_bytes: usize = self
            .dict
            .iter()
            .map(|s| s.len() + std::mem::size_of::<Box<str>>())
            .sum();
        let dict_index_bytes = self.dict.len() * 24; // hash bucket overhead
        let col_bytes = self.codes.len() * (4 + 4 + 4 + 4 + 16 + 1);
        let postings_bytes: usize = self
            .postings_by_code
            .iter()
            .map(|v| v.len() * 4 + std::mem::size_of::<Vec<u32>>())
            .sum();
        let range_bytes = self.ranges.len() * 8;
        dict_bytes + dict_index_bytes + col_bytes + postings_bytes + range_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::sample_rows;

    #[test]
    fn dictionary_deduplicates() {
        let s = ColumnStore::build(sample_rows());
        // "berlin" and "rome" appear twice each but are stored once.
        let n_values = sample_rows().len();
        assert!(s.dict_len() < n_values);
        assert!(s.code_of("berlin").is_some());
        assert!(s.code_of("ghost").is_none());
    }

    #[test]
    fn postings_by_code_match_values() {
        let s = ColumnStore::build(sample_rows());
        for &p in s.postings("rome") {
            assert_eq!(s.value_at(p as usize), "rome");
        }
        assert_eq!(s.postings("rome").len(), 2);
    }

    #[test]
    fn codes_probe_filters() {
        let s = ColumnStore::build(sample_rows());
        let probe = s.make_probe(&["100", "200", "missing"]);
        assert_eq!(probe.len(), 2);
        let hits = (0..s.len()).filter(|&p| s.probe_at(p, &probe)).count();
        assert_eq!(hits, 2);
    }

    #[test]
    fn string_probe_also_accepted() {
        // Cross-engine probes should still work (slow path) — the SQL layer
        // always builds probes via the same engine, but the contract is
        // total.
        let s = ColumnStore::build(sample_rows());
        let mut set: blend_common::FxHashSet<Box<str>> = Default::default();
        set.insert("berlin".into());
        let hits = (0..s.len())
            .filter(|&p| s.probe_at(p, &ValueProbe::Strings(set.clone())))
            .count();
        assert_eq!(hits, 2);
    }

    #[test]
    fn quadrants_roundtrip() {
        let s = ColumnStore::build(sample_rows());
        let numerics = (0..s.len()).filter(|&p| s.quadrant_at(p).is_some()).count();
        assert_eq!(numerics, 7); // 3 pop cells + 4 table-2 cells
    }

    #[test]
    fn empty_store() {
        let s = ColumnStore::build(Vec::new());
        assert_eq!(s.len(), 0);
        assert_eq!(s.dict_len(), 0);
        assert!(s.postings("x").is_empty());
    }
}

//! Vectorized filter kernels: compiled predicate sets evaluated a batch at
//! a time through selection vectors.
//!
//! The SQL layer's cheap per-position predicates (`CellValue IN`,
//! `TableId IN / NOT IN`, `RowId <`, `Quadrant IS [NOT] NULL`) used to run
//! one position at a time through `&dyn FactTable` accessors — 2–5 virtual
//! calls, a hash-set probe, and (on the row store) a string compare per
//! row. A [`FilterKernel`] is the batched compilation of those predicates,
//! built **once per scan**:
//!
//! * `CellValue IN (...)` keeps its engine lowering: dictionary codes on
//!   the column store (a u32 membership test instead of a string compare),
//!   a hashed string set on the row store;
//! * `TableId IN / NOT IN` hash sets lower into an [`IdSet`] — a sorted
//!   slice or a dense bitmap, chosen by cardinality vs. id domain;
//! * engines evaluate the kernel over whole position batches via
//!   [`FactTable::filter_batch`] / [`FactTable::filter_range`], writing
//!   survivors through a reusable selection vector instead of returning a
//!   verdict per call.
//!
//! The scalar oracle (`fast_filters_pass` in the SQL crate) stays alive as
//! the reference semantics; the `filter_kernel_parity` proptest suite pins
//! every engine's batched output to it byte-for-byte.
//!
//! [`FactTable::filter_batch`]: crate::FactTable::filter_batch
//! [`FactTable::filter_range`]: crate::FactTable::filter_range

use blend_common::FxHashSet;

/// A compiled membership set over u32 ids (table ids or dictionary codes).
///
/// Built once per scan; probed once per candidate position. The
/// representation is chosen at build time: a dense bitmap when it costs at
/// most ~4× the sorted slice (bitmap probes are one shift/mask, branch-free
/// and O(1)), otherwise a sorted slice probed by binary search — or a
/// linear OR-fold when tiny, which the compiler unrolls.
#[derive(Debug, Clone)]
pub enum IdSet {
    /// Sorted, deduplicated ids.
    Sorted(Box<[u32]>),
    /// Dense bitmap over `0..=max_id`; `len` distinct ids are set.
    Bitmap {
        /// One bit per id in `0..words.len() * 64`.
        words: Box<[u64]>,
        /// Number of distinct ids in the set.
        len: usize,
    },
}

/// Sorted-slice sets at most this long probe by linear OR-fold instead of
/// binary search (branch-free, unrolled).
const LINEAR_PROBE_MAX: usize = 8;

impl IdSet {
    /// Compile a set of ids, deduplicating and choosing the representation.
    pub fn build<I: IntoIterator<Item = u32>>(ids: I) -> IdSet {
        let mut v: Vec<u32> = ids.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        let Some(&max) = v.last() else {
            return IdSet::Sorted(Box::from([]));
        };
        let n_words = (max as usize >> 6) + 1;
        // Bitmap when its footprint is within ~4x of the sorted slice (with
        // a 1 KiB floor so small id domains — table ids, dictionary codes of
        // short IN-lists — always get the O(1) probe).
        if n_words * 8 <= (v.len() * 16).max(1024) {
            let mut words = vec![0u64; n_words];
            for &id in &v {
                words[(id >> 6) as usize] |= 1 << (id & 63);
            }
            IdSet::Bitmap {
                words: words.into_boxed_slice(),
                len: v.len(),
            }
        } else {
            IdSet::Sorted(v.into_boxed_slice())
        }
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, id: u32) -> bool {
        match self {
            IdSet::Sorted(s) if s.len() <= LINEAR_PROBE_MAX => {
                let mut hit = false;
                for &x in s.iter() {
                    hit |= x == id;
                }
                hit
            }
            IdSet::Sorted(s) => s.binary_search(&id).is_ok(),
            IdSet::Bitmap { words, .. } => {
                let w = (id >> 6) as usize;
                words
                    .get(w)
                    .is_some_and(|&word| (word >> (id & 63)) & 1 == 1)
            }
        }
    }

    /// The set's ids padded to a fixed 8-lane probe block (the first id
    /// repeated into unused lanes, so duplicate lanes never change the OR
    /// of the compares), when the set is small enough (1..=8 ids) for the
    /// `blend_simd` unrolled broadcast-compare kernel. Empty and larger
    /// sets return `None` and take the generic per-element probe.
    pub fn small_needles(&self) -> Option<[u32; 8]> {
        if self.is_empty() || self.len() > LINEAR_PROBE_MAX {
            return None;
        }
        let mut out = [0u32; 8];
        let mut n = 0usize;
        match self {
            IdSet::Sorted(s) => {
                for &id in s.iter() {
                    out[n] = id;
                    n += 1;
                }
            }
            IdSet::Bitmap { words, .. } => {
                for (w, &word) in words.iter().enumerate() {
                    let mut word = word;
                    while word != 0 {
                        out[n] = (w as u32) * 64 + word.trailing_zeros();
                        n += 1;
                        word &= word - 1;
                    }
                }
            }
        }
        let first = out[0];
        out[n..].fill(first);
        Some(out)
    }

    /// Number of distinct ids.
    pub fn len(&self) -> usize {
        match self {
            IdSet::Sorted(s) => s.len(),
            IdSet::Bitmap { len, .. } => *len,
        }
    }

    /// True when no id is in the set (it can never match).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Resident bytes of the compiled set.
    pub fn memory_bytes(&self) -> usize {
        match self {
            IdSet::Sorted(s) => s.len() * 4,
            IdSet::Bitmap { words, .. } => words.len() * 8,
        }
    }
}

/// The value predicate of a kernel, lowered per engine at probe-build time
/// (mirrors [`crate::ValueProbe`], but with the code set compiled into an
/// [`IdSet`] for branch-free batch probes).
#[derive(Debug, Clone)]
pub enum ValuePred {
    /// Dictionary codes (column store). IN-list values absent from the
    /// dictionary vanished when the probe was built.
    Codes(IdSet),
    /// Hashed owned strings (row store).
    Strings(FxHashSet<Box<str>>),
}

impl ValuePred {
    /// Resident bytes of the compiled predicate.
    pub fn memory_bytes(&self) -> usize {
        match self {
            ValuePred::Codes(set) => set.memory_bytes(),
            ValuePred::Strings(set) => set
                .iter()
                .map(|s| s.len() + std::mem::size_of::<Box<str>>() + 16)
                .sum(),
        }
    }
}

/// The batched compilation of a scan's cheap per-position predicates.
///
/// Compiled once per scan (see `FastFilters::compile_kernel` in the SQL
/// crate) and evaluated by the storage engines over whole position batches:
/// [`FactTable::filter_batch`] for position lists,
/// [`FactTable::filter_range`] for contiguous ranges. A field set to `None`
/// means that predicate is absent; an all-`None` kernel accepts everything.
///
/// [`FactTable::filter_batch`]: crate::FactTable::filter_batch
/// [`FactTable::filter_range`]: crate::FactTable::filter_range
#[derive(Debug, Clone, Default)]
pub struct FilterKernel {
    /// `CellValue IN (...)`, lowered per engine.
    pub value: Option<ValuePred>,
    /// `TableId IN (...)`.
    pub table_in: Option<IdSet>,
    /// `TableId NOT IN (...)`.
    pub table_not_in: Option<IdSet>,
    /// `RowId < n` (exclusive bound).
    pub rowid_lt: Option<u32>,
    /// `Quadrant IS NULL` (true) / `IS NOT NULL` (false).
    pub quadrant_null: Option<bool>,
}

impl FilterKernel {
    /// Kernel with no predicates (accepts every position).
    pub fn empty() -> Self {
        FilterKernel::default()
    }

    /// True when the kernel accepts every position, i.e. batch evaluation
    /// degenerates to a copy. Destructured so adding a predicate field
    /// forces this (and every engine's pass cascade) to be revisited.
    pub fn is_empty(&self) -> bool {
        let FilterKernel {
            value,
            table_in,
            table_not_in,
            rowid_lt,
            quadrant_null,
        } = self;
        value.is_none()
            && table_in.is_none()
            && table_not_in.is_none()
            && rowid_lt.is_none()
            && quadrant_null.is_none()
    }

    /// Resident bytes of the compiled predicate sets.
    pub fn memory_bytes(&self) -> usize {
        self.value.as_ref().map_or(0, ValuePred::memory_bytes)
            + self.table_in.as_ref().map_or(0, IdSet::memory_bytes)
            + self.table_not_in.as_ref().map_or(0, IdSet::memory_bytes)
    }

    /// True when the kernel provably rejects every position — an IN-list
    /// whose values all vanished at probe build (absent from the
    /// dictionary/index), an empty `TableId IN` set, or `RowId < 0`.
    /// Engines check this once per batch and skip the pass cascade
    /// entirely; callers' visit telemetry is unaffected (candidates still
    /// count as scanned, matching the scalar oracle's behavior).
    pub fn never_matches(&self) -> bool {
        self.rowid_lt == Some(0)
            || self.table_in.as_ref().is_some_and(IdSet::is_empty)
            || self.value.as_ref().is_some_and(|v| match v {
                ValuePred::Codes(set) => set.is_empty(),
                ValuePred::Strings(set) => set.is_empty(),
            })
    }
}

/// Stable in-place compaction of `sel[start..]`: survivors of `keep` slide
/// to the front, order preserved, `sel[..start]` untouched. Dispatches
/// through the `blend_simd` kernel layer: the vector path evaluates the
/// predicate into 64-wide keep-masks and moves only survivors (all-drop
/// blocks cost zero stores), the scalar twin is the branch-free
/// write-all/advance-on-keep loop — byte-identical output either way,
/// pinned by `tests/simd_parity.rs`.
#[inline]
pub fn compact_by(sel: &mut Vec<u32>, start: usize, keep: impl FnMut(u32) -> bool) {
    blend_simd::compact(sel, start, keep);
}

/// Append the survivors of the contiguous position range `lo..hi` to `sel`
/// without ever materializing the candidate list. Dispatches through
/// `blend_simd`: the vector path builds 64-wide keep-masks and appends
/// only survivors — eliding both the per-candidate stores and the `resize`
/// memset the scalar twin pays up front. `lo >= hi` appends nothing and
/// `sel[..start]` is never touched on either path.
#[inline]
pub fn extend_filtered_range(
    sel: &mut Vec<u32>,
    lo: usize,
    hi: usize,
    keep: impl FnMut(u32) -> bool,
) {
    blend_simd::extend_range(sel, lo, hi, keep);
}

/// Per-worker reusable scan buffers.
///
/// The morsel-partitioned scan path hands one `ScanScratch` to each pool
/// worker (via `WorkerPool::run_with`), so the selection vector's capacity
/// is paid once per worker per query instead of once per morsel.
#[derive(Debug, Default)]
pub struct ScanScratch {
    /// Selection vector: surviving positions of the current batch.
    pub sel: Vec<u32>,
}

impl ScanScratch {
    /// Per-worker scratch high-water bound for scans of a table with
    /// `n_rows` positions, used by the engines' memory breakdowns. The
    /// worst case is a non-morselized sequential scan, which streams the
    /// whole position range through one selection-vector batch — morselized
    /// parallel scans stay far below this (one morsel per batch).
    pub fn estimate_bytes(n_rows: usize) -> usize {
        n_rows * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idset_picks_bitmap_for_dense_small_domains() {
        let set = IdSet::build([1u32, 3, 5, 7, 900]);
        assert!(matches!(set, IdSet::Bitmap { .. }));
        assert_eq!(set.len(), 5);
        for id in 0..1100u32 {
            assert_eq!(set.contains(id), [1, 3, 5, 7, 900].contains(&id));
        }
    }

    #[test]
    fn idset_picks_sorted_for_sparse_ids() {
        let ids = [10u32, 1_000_000, 4_000_000_000];
        let set = IdSet::build(ids);
        assert!(matches!(set, IdSet::Sorted(_)));
        for id in ids {
            assert!(set.contains(id));
        }
        assert!(!set.contains(11));
        assert!(!set.contains(u32::MAX));
    }

    #[test]
    fn idset_dedups_and_handles_empty() {
        let set = IdSet::build([4u32, 4, 4, 2]);
        assert_eq!(set.len(), 2);
        let empty = IdSet::build(std::iter::empty());
        assert!(empty.is_empty());
        assert!(!empty.contains(0));
        assert_eq!(empty.memory_bytes(), 0);
    }

    #[test]
    fn idset_binary_search_path_matches_linear() {
        // > LINEAR_PROBE_MAX sparse entries forces the binary-search arm.
        let ids: Vec<u32> = (0..40u32).map(|i| i * 1_000_003).collect();
        let set = IdSet::build(ids.iter().copied());
        assert!(matches!(set, IdSet::Sorted(_)));
        for &id in &ids {
            assert!(set.contains(id));
            assert!(!set.contains(id + 1));
        }
    }

    #[test]
    fn empty_kernel_is_empty() {
        assert!(FilterKernel::empty().is_empty());
        let k = FilterKernel {
            rowid_lt: Some(3),
            ..FilterKernel::empty()
        };
        assert!(!k.is_empty());
        assert_eq!(k.memory_bytes(), 0);
    }

    #[test]
    fn never_matches_detects_provably_empty_predicates() {
        assert!(!FilterKernel::empty().never_matches());
        let empty_codes = FilterKernel {
            value: Some(ValuePred::Codes(IdSet::build(std::iter::empty()))),
            ..FilterKernel::empty()
        };
        assert!(empty_codes.never_matches());
        let empty_tables = FilterKernel {
            table_in: Some(IdSet::build(std::iter::empty())),
            ..FilterKernel::empty()
        };
        assert!(empty_tables.never_matches());
        assert!(FilterKernel {
            rowid_lt: Some(0),
            ..FilterKernel::empty()
        }
        .never_matches());
        // Non-empty sets (and NOT IN, which excludes rather than selects)
        // do not short-circuit.
        let live = FilterKernel {
            value: Some(ValuePred::Codes(IdSet::build([1u32]))),
            table_not_in: Some(IdSet::build(std::iter::empty())),
            rowid_lt: Some(1),
            ..FilterKernel::empty()
        };
        assert!(!live.never_matches());
    }

    #[test]
    fn compact_by_is_stable() {
        let mut sel = vec![9, 1, 2, 3, 4, 5];
        compact_by(&mut sel, 1, |p| p % 2 == 1);
        assert_eq!(sel, vec![9, 1, 3, 5]);
        compact_by(&mut sel, 0, |_| false);
        assert!(sel.is_empty());
    }

    #[test]
    fn extend_filtered_range_appends_survivors() {
        let mut sel = vec![7];
        extend_filtered_range(&mut sel, 10, 20, |p| p % 3 == 0);
        assert_eq!(sel, vec![7, 12, 15, 18]);
        // Degenerate and empty ranges are no-ops.
        extend_filtered_range(&mut sel, 5, 5, |_| true);
        #[allow(clippy::reversed_empty_ranges)]
        extend_filtered_range(&mut sel, 5, 3, |_| true);
        assert_eq!(sel, vec![7, 12, 15, 18]);
    }

    #[test]
    fn scratch_estimate_covers_a_full_range_batch() {
        assert_eq!(ScanScratch::estimate_bytes(0), 0);
        // A sequential scan streams the whole range through one batch, so
        // the bound is the full position count.
        assert_eq!(ScanScratch::estimate_bytes(150_000), 600_000);
    }
}

//! The `AllTables` fact-table schema and the engine-neutral [`FactTable`]
//! trait.

use crate::filter::{FilterKernel, ScanScratch, ValuePred};
use crate::stats::FactStats;

/// Encoded quadrant: cell is non-numeric (SQL NULL).
pub const QUADRANT_NULL: u8 = 0;
/// Encoded quadrant: numeric cell below its column average.
pub const QUADRANT_ZERO: u8 = 1;
/// Encoded quadrant: numeric cell at or above its column average.
pub const QUADRANT_ONE: u8 = 2;

/// One row of the unified index, i.e. one non-null cell of some lake table.
///
/// Mirrors the paper's Fig. 3: `CellValue, TableId, ColumnId, RowId,
/// SuperKey, Quadrant`. `SuperKey` is the XASH aggregate of the cell's whole
/// *row* (so every cell of a row carries the same super key), and `Quadrant`
/// is the boolean QCR bit, NULL for non-numeric cells.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FactRow {
    /// Normalized cell value.
    pub value: Box<str>,
    /// Lake table identifier.
    pub table: u32,
    /// Column position within the table.
    pub column: u32,
    /// Row position within the table.
    pub row: u32,
    /// XASH super key of the containing row.
    pub superkey: u128,
    /// Quadrant bit; `None` encodes SQL NULL (non-numeric cell).
    pub quadrant: Option<bool>,
}

impl FactRow {
    /// Convenience constructor used by the indexer and tests.
    pub fn new(
        value: &str,
        table: u32,
        column: u32,
        row: u32,
        superkey: u128,
        quadrant: Option<bool>,
    ) -> Self {
        FactRow {
            value: value.into(),
            table,
            column,
            row,
            superkey,
            quadrant,
        }
    }

    /// Encode the quadrant for compact columnar storage.
    #[inline]
    pub fn quadrant_code(&self) -> u8 {
        match self.quadrant {
            None => QUADRANT_NULL,
            Some(false) => QUADRANT_ZERO,
            Some(true) => QUADRANT_ONE,
        }
    }
}

/// Decode a stored quadrant code.
#[inline]
pub fn decode_quadrant(code: u8) -> Option<bool> {
    match code {
        QUADRANT_ZERO => Some(false),
        QUADRANT_ONE => Some(true),
        _ => None,
    }
}

/// An engine-specific pre-compiled probe for `CellValue IN (...)`
/// predicates.
///
/// The column store translates the IN-list once into dictionary codes and
/// then compares 4-byte integers per position; the row store falls back to a
/// hashed string set. This asymmetry is the main reason the column store
/// wins the paper's scan-heavy experiments.
#[derive(Debug, Clone)]
pub enum ValueProbe {
    /// Dictionary codes (column store). Values absent from the dictionary
    /// are simply not present.
    Codes(blend_common::FxHashSet<u32>),
    /// Owned string set (row store).
    Strings(blend_common::FxHashSet<Box<str>>),
}

impl ValueProbe {
    /// Number of distinct probe values that exist in the table.
    pub fn len(&self) -> usize {
        match self {
            ValueProbe::Codes(s) => s.len(),
            ValueProbe::Strings(s) => s.len(),
        }
    }

    /// True if no probe value exists in the table.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Engine-neutral interface to the `AllTables` fact table.
///
/// Positions (`pos`) are dense `0..len()` physical offsets. Rows are
/// clustered by `TableId` (both engines sort on build), so the in-DB table
/// index can hand out contiguous ranges.
pub trait FactTable: Send + Sync {
    /// `"Row"` or `"Column"`, for experiment labels.
    fn engine(&self) -> &'static str;

    /// Number of index rows (= non-null cells in the lake).
    fn len(&self) -> usize;

    /// True when the index is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of distinct lake tables.
    fn n_tables(&self) -> u32;

    /// `CellValue` at a position.
    fn value_at(&self, pos: usize) -> &str;

    /// `TableId` at a position.
    fn table_at(&self, pos: usize) -> u32;

    /// `ColumnId` at a position.
    fn column_at(&self, pos: usize) -> u32;

    /// `RowId` at a position.
    fn row_at(&self, pos: usize) -> u32;

    /// `SuperKey` at a position.
    fn superkey_at(&self, pos: usize) -> u128;

    /// `Quadrant` at a position (`None` = SQL NULL).
    fn quadrant_at(&self, pos: usize) -> Option<bool>;

    /// In-DB inverted index: positions holding this exact normalized value,
    /// in ascending position order. Empty slice when absent.
    fn postings(&self, value: &str) -> &[u32];

    /// Length of the postings list without materializing it (catalog
    /// statistic used for cost estimates).
    fn posting_len(&self, value: &str) -> usize {
        self.postings(value).len()
    }

    /// In-DB table index: the contiguous position range of a table,
    /// returned as positions for uniformity.
    fn table_postings(&self, table: u32) -> std::ops::Range<usize>;

    /// Build an engine-specific probe for an IN-list.
    fn make_probe(&self, values: &[&str]) -> ValueProbe;

    /// Test `CellValue[pos] IN probe`.
    fn probe_at(&self, pos: usize, probe: &ValueProbe) -> bool;

    /// True when [`FactTable::value_code_at`] yields dictionary codes.
    ///
    /// The positional executor uses codes for `COUNT(DISTINCT CellValue)`
    /// so distinct counting hashes 4-byte integers instead of strings.
    fn has_value_codes(&self) -> bool {
        false
    }

    /// Dictionary code of `CellValue` at a position, when the engine is
    /// dictionary-encoded (`None` on the row store). Codes are bijective
    /// with distinct values, so `COUNT(DISTINCT code) = COUNT(DISTINCT
    /// CellValue)`.
    fn value_code_at(&self, _pos: usize) -> Option<u32> {
        None
    }

    /// Batch accessor: append `TableId` for each position to `out`. One
    /// virtual dispatch per batch instead of one per position.
    fn gather_tables(&self, positions: &[u32], out: &mut Vec<u32>) {
        out.extend(positions.iter().map(|&p| self.table_at(p as usize)));
    }

    /// Batch accessor: append `ColumnId` for each position to `out`.
    fn gather_columns(&self, positions: &[u32], out: &mut Vec<u32>) {
        out.extend(positions.iter().map(|&p| self.column_at(p as usize)));
    }

    /// Batch accessor: append `RowId` for each position to `out`.
    fn gather_rows(&self, positions: &[u32], out: &mut Vec<u32>) {
        out.extend(positions.iter().map(|&p| self.row_at(p as usize)));
    }

    /// Batch accessor: append the dictionary code of `CellValue` for each
    /// position to `out`. Returns `false` (leaving `out` untouched) when the
    /// engine has no dictionary.
    fn gather_value_codes(&self, _positions: &[u32], _out: &mut Vec<u32>) -> bool {
        false
    }

    /// Batch accessor: append `SuperKey` for each position to `out` — the
    /// projection path's wide gather (16 bytes per row), specialized by the
    /// column store into a straight slice-indexed loop.
    fn gather_superkeys(&self, positions: &[u32], out: &mut Vec<u128>) {
        out.extend(positions.iter().map(|&p| self.superkey_at(p as usize)));
    }

    /// Batch accessor: append `Quadrant` (`None` = SQL NULL) for each
    /// position to `out`.
    fn gather_quadrants(&self, positions: &[u32], out: &mut Vec<Option<bool>>) {
        out.extend(positions.iter().map(|&p| self.quadrant_at(p as usize)));
    }

    /// Split the physical position space `0..len()` into at most `parts`
    /// contiguous ranges whose lengths differ by at most one — the
    /// row-count-balanced partitions a parallel scan hands its workers.
    /// Returns fewer (never empty) ranges when the table is smaller than
    /// `parts`, and none for an empty table. Because rows are clustered in
    /// canonical order (see [`canonical_sort`]), each range is itself a
    /// run of whole-or-partial table clusters, so per-partition scans keep
    /// the locality of the sequential scan.
    fn partitions(&self, parts: usize) -> Vec<std::ops::Range<usize>> {
        blend_parallel::split_even(self.len(), parts)
    }

    /// Scalar check of a compiled [`FilterKernel`] at one position — the
    /// reference semantics every batched entry point must reproduce (and
    /// the fallback the default batch implementations loop over). Engines
    /// should not override this; they override the batch entry points.
    #[inline]
    fn kernel_matches(&self, kernel: &FilterKernel, pos: usize) -> bool {
        if let Some(bound) = kernel.rowid_lt {
            if self.row_at(pos) >= bound {
                return false;
            }
        }
        if let Some(set) = &kernel.table_in {
            if !set.contains(self.table_at(pos)) {
                return false;
            }
        }
        if let Some(set) = &kernel.table_not_in {
            if set.contains(self.table_at(pos)) {
                return false;
            }
        }
        if let Some(want_null) = kernel.quadrant_null {
            if self.quadrant_at(pos).is_none() != want_null {
                return false;
            }
        }
        match &kernel.value {
            None => true,
            Some(ValuePred::Strings(set)) => set.contains(self.value_at(pos)),
            Some(ValuePred::Codes(set)) => match self.value_code_at(pos) {
                Some(code) => set.contains(code),
                // A codes predicate can only come from a dictionary engine;
                // mirror `probe_at`'s contract on mismatched engines.
                None => {
                    debug_assert!(false, "codes predicate against an engine without codes");
                    false
                }
            },
        }
    }

    /// Batched filter: append the subset of `positions` passing `kernel` to
    /// the selection vector `sel`, preserving input order. One virtual
    /// dispatch per batch; engines specialize this into per-predicate
    /// passes over their contiguous column arrays.
    fn filter_batch(&self, kernel: &FilterKernel, positions: &[u32], sel: &mut Vec<u32>) {
        if kernel.never_matches() {
            return;
        }
        sel.extend(
            positions
                .iter()
                .copied()
                .filter(|&p| self.kernel_matches(kernel, p as usize)),
        );
    }

    /// Batched filter over the contiguous position range `lo..hi`
    /// (a table-index range or a whole-table scan), appending survivors to
    /// `sel` in position order. Engines evaluate this straight off their
    /// column slices without materializing the candidate list.
    fn filter_range(&self, kernel: &FilterKernel, lo: usize, hi: usize, sel: &mut Vec<u32>) {
        if kernel.never_matches() {
            return;
        }
        sel.extend(
            (lo..hi)
                .filter(|&pos| self.kernel_matches(kernel, pos))
                .map(|pos| pos as u32),
        );
    }

    /// Exact catalog statistics.
    fn stats(&self) -> &FactStats;

    /// Structured estimate of resident bytes — the debug report the bench
    /// harness prints (per-component: dictionary payload, column vectors,
    /// in-DB indexes, per-worker scan scratch, ...). [`size_bytes`] is its
    /// total.
    ///
    /// [`size_bytes`]: FactTable::size_bytes
    fn memory_breakdown(&self) -> MemoryBreakdown;

    /// Estimated resident bytes of the table plus its in-DB indexes
    /// (Table VIII input).
    fn size_bytes(&self) -> usize {
        self.memory_breakdown().total()
    }
}

/// Per-component resident-memory estimate of an engine (the
/// [`FactTable::memory_breakdown`] debug report).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryBreakdown {
    /// Engine label (`"Row"` / `"Column"`).
    pub engine: &'static str,
    /// `(component, bytes)` pairs, in engine-defined order.
    pub components: Vec<(&'static str, usize)>,
}

impl MemoryBreakdown {
    /// Total estimated bytes across all components.
    pub fn total(&self) -> usize {
        self.components.iter().map(|(_, b)| b).sum()
    }

    /// Bytes of one named component, if present.
    pub fn get(&self, name: &str) -> Option<usize> {
        self.components
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, b)| *b)
    }

    /// Multi-line human-readable report (bench-harness output).
    pub fn report(&self) -> String {
        use std::fmt::Write;
        let mut out = format!("{} store memory breakdown:\n", self.engine);
        for (name, bytes) in &self.components {
            let _ = writeln!(out, "  {name:<16} {bytes:>12} B");
        }
        let _ = write!(out, "  {:<16} {:>12} B", "total", self.total());
        out
    }
}

/// Estimated per-worker scan-scratch component shared by both engines'
/// breakdowns: the selection-vector high-water mark of a scan over a table
/// with `n_rows` positions.
pub(crate) fn scratch_component(n_rows: usize) -> (&'static str, usize) {
    ("scan-scratch", ScanScratch::estimate_bytes(n_rows))
}

/// Sort raw fact rows into the canonical physical order shared by both
/// engines: clustered by table, then column, then row. Clustering by table
/// is what makes the `TableId` index a range; column-major order within a
/// table gives scans the locality a real column store would have.
///
/// This order is an **invariant** downstream code relies on:
/// [`table_ranges`] requires it (and `debug_assert`s it) to hand out
/// contiguous per-table ranges, and the parallel executor's
/// order-preserving merges assume both engines share one physical order.
/// Every engine build must call this before deriving ranges.
pub fn canonical_sort(rows: &mut [FactRow]) {
    rows.sort_by(|a, b| {
        (a.table, a.column, a.row)
            .cmp(&(b.table, b.column, b.row))
            .then_with(|| a.value.cmp(&b.value))
    });
}

/// Compute per-table contiguous ranges. Index in the returned vec = table
/// id; tables absent from the index get an empty range.
///
/// **Requires** `rows` to be in [`canonical_sort`] order — each table's
/// rows must form one contiguous run. The invariant is `debug_assert`ed
/// here (release builds skip the O(n) check); violating it would silently
/// truncate ranges to a table's *last* run and corrupt every table-index
/// scan built on top.
pub fn table_ranges(rows: &[FactRow]) -> Vec<(u32, u32)> {
    debug_assert!(
        rows.windows(2).all(|w| {
            (w[0].table, w[0].column, w[0].row) <= (w[1].table, w[1].column, w[1].row)
        }),
        "table_ranges requires rows in canonical_sort order"
    );
    let max_table = rows.iter().map(|r| r.table).max().map_or(0, |t| t + 1);
    let mut ranges = vec![(0u32, 0u32); max_table as usize];
    let mut i = 0usize;
    while i < rows.len() {
        let t = rows[i].table;
        let start = i;
        while i < rows.len() && rows[i].table == t {
            i += 1;
        }
        ranges[t as usize] = (start as u32, i as u32);
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadrant_encoding_roundtrips() {
        for q in [None, Some(false), Some(true)] {
            let r = FactRow::new("x", 0, 0, 0, 0, q);
            assert_eq!(decode_quadrant(r.quadrant_code()), q);
        }
    }

    #[test]
    fn canonical_sort_clusters_tables() {
        let mut rows = vec![
            FactRow::new("b", 1, 0, 0, 0, None),
            FactRow::new("a", 0, 1, 0, 0, None),
            FactRow::new("c", 0, 0, 1, 0, None),
            FactRow::new("d", 0, 0, 0, 0, None),
        ];
        canonical_sort(&mut rows);
        let order: Vec<(u32, u32, u32)> = rows.iter().map(|r| (r.table, r.column, r.row)).collect();
        assert_eq!(order, vec![(0, 0, 0), (0, 0, 1), (0, 1, 0), (1, 0, 0)]);
    }

    #[test]
    fn table_ranges_cover_and_handle_gaps() {
        let mut rows = vec![
            FactRow::new("a", 0, 0, 0, 0, None),
            FactRow::new("b", 2, 0, 0, 0, None),
            FactRow::new("c", 2, 0, 1, 0, None),
        ];
        canonical_sort(&mut rows);
        let ranges = table_ranges(&rows);
        assert_eq!(ranges, vec![(0, 1), (0, 0), (1, 3)]);
    }

    #[test]
    fn empty_rows_have_no_ranges() {
        assert!(table_ranges(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "canonical_sort order")]
    #[cfg(debug_assertions)]
    fn unsorted_rows_trip_the_invariant_assert() {
        let rows = vec![
            FactRow::new("b", 1, 0, 0, 0, None),
            FactRow::new("a", 0, 0, 0, 0, None),
        ];
        let _ = table_ranges(&rows);
    }

    #[test]
    fn fact_table_partitions_cover_the_position_space() {
        let rows = crate::test_support::sample_rows();
        let table = crate::build_engine(crate::EngineKind::Column, rows);
        let parts = table.partitions(4);
        assert_eq!(
            parts.iter().map(ExactSizeIterator::len).sum::<usize>(),
            table.len()
        );
        assert_eq!(parts.first().map(|r| r.start), Some(0));
        assert_eq!(parts.last().map(|r| r.end), Some(table.len()));
    }
}

//! Tuple-at-a-time storage engine — the PostgreSQL analogue.

use blend_common::{FxHashMap, FxHashSet};

use crate::fact::{
    canonical_sort, scratch_component, table_ranges, FactRow, FactTable, MemoryBreakdown,
    ValueProbe,
};
use crate::filter::{extend_filtered_range, FilterKernel, ValuePred};
use crate::stats::FactStats;

/// Row-store implementation of [`FactTable`].
///
/// Tuples live in one contiguous `Vec<FactRow>` with their string values
/// inline (each cell value owns an allocation — exactly the redundancy a
/// heap-file row store pays). The two in-DB indexes are a hash inverted
/// index on `CellValue` and a per-table range directory.
pub struct RowStore {
    rows: Vec<FactRow>,
    /// Inverted index: value → ascending positions.
    inverted: FxHashMap<Box<str>, Vec<u32>>,
    /// Table id → (start, end) position range.
    ranges: Vec<(u32, u32)>,
    stats: FactStats,
    string_bytes: usize,
}

impl RowStore {
    /// Build the store: canonical sort, postings, ranges, statistics.
    pub fn build(mut rows: Vec<FactRow>) -> Self {
        canonical_sort(&mut rows);
        let ranges = table_ranges(&rows);
        let mut inverted: FxHashMap<Box<str>, Vec<u32>> = FxHashMap::default();
        let mut numeric_rows = 0usize;
        let mut string_bytes = 0usize;
        for (pos, r) in rows.iter().enumerate() {
            inverted
                .entry(r.value.clone())
                .or_default()
                .push(pos as u32);
            if r.quadrant.is_some() {
                numeric_rows += 1;
            }
            string_bytes += r.value.len();
        }
        let n_tables = ranges.iter().filter(|(s, e)| e > s).count();
        let stats = FactStats::compute(
            rows.len(),
            n_tables,
            inverted.values().map(Vec::len),
            numeric_rows,
        );
        RowStore {
            rows,
            inverted,
            ranges,
            stats,
            string_bytes,
        }
    }
}

/// Fused scalar kernel check over one tuple: the row store has no column
/// vectors to cascade over, so its batch specialization evaluates every
/// predicate in a single pass per row — one pointer chase to the `FactRow`,
/// all fields adjacent, instead of one virtual accessor call per predicate.
#[inline]
fn keep_fact_row(kernel: &FilterKernel, r: &FactRow) -> bool {
    if let Some(bound) = kernel.rowid_lt {
        if r.row >= bound {
            return false;
        }
    }
    if let Some(set) = &kernel.table_in {
        if !set.contains(r.table) {
            return false;
        }
    }
    if let Some(set) = &kernel.table_not_in {
        if set.contains(r.table) {
            return false;
        }
    }
    if let Some(want_null) = kernel.quadrant_null {
        if r.quadrant.is_none() != want_null {
            return false;
        }
    }
    match &kernel.value {
        None => true,
        Some(ValuePred::Strings(set)) => set.contains(r.value.as_ref()),
        // Mirror `probe_at`: a codes predicate can only come from a
        // dictionary engine.
        Some(ValuePred::Codes(_)) => {
            debug_assert!(false, "codes predicate against a row store");
            false
        }
    }
}

impl FactTable for RowStore {
    fn engine(&self) -> &'static str {
        "Row"
    }

    fn len(&self) -> usize {
        self.rows.len()
    }

    fn n_tables(&self) -> u32 {
        self.ranges.len() as u32
    }

    #[inline]
    fn value_at(&self, pos: usize) -> &str {
        &self.rows[pos].value
    }

    #[inline]
    fn table_at(&self, pos: usize) -> u32 {
        self.rows[pos].table
    }

    #[inline]
    fn column_at(&self, pos: usize) -> u32 {
        self.rows[pos].column
    }

    #[inline]
    fn row_at(&self, pos: usize) -> u32 {
        self.rows[pos].row
    }

    #[inline]
    fn superkey_at(&self, pos: usize) -> u128 {
        self.rows[pos].superkey
    }

    #[inline]
    fn quadrant_at(&self, pos: usize) -> Option<bool> {
        self.rows[pos].quadrant
    }

    fn postings(&self, value: &str) -> &[u32] {
        self.inverted.get(value).map_or(&[], Vec::as_slice)
    }

    fn table_postings(&self, table: u32) -> std::ops::Range<usize> {
        match self.ranges.get(table as usize) {
            Some(&(s, e)) => s as usize..e as usize,
            None => 0..0,
        }
    }

    fn make_probe(&self, values: &[&str]) -> ValueProbe {
        // The row store has no dictionary: keep (deduplicated) owned strings
        // and hash-compare per position.
        let set: FxHashSet<Box<str>> = values
            .iter()
            .filter(|v| self.inverted.contains_key(**v))
            .map(|v| Box::from(*v))
            .collect();
        ValueProbe::Strings(set)
    }

    #[inline]
    fn probe_at(&self, pos: usize, probe: &ValueProbe) -> bool {
        match probe {
            ValueProbe::Strings(set) => set.contains(self.rows[pos].value.as_ref()),
            // A codes probe can only come from a column store; treat as a
            // logic error surfaced in debug builds, absent in release.
            ValueProbe::Codes(_) => {
                debug_assert!(false, "codes probe against a row store");
                false
            }
        }
    }

    fn gather_tables(&self, positions: &[u32], out: &mut Vec<u32>) {
        out.extend(positions.iter().map(|&p| self.rows[p as usize].table));
    }

    fn gather_columns(&self, positions: &[u32], out: &mut Vec<u32>) {
        out.extend(positions.iter().map(|&p| self.rows[p as usize].column));
    }

    fn gather_rows(&self, positions: &[u32], out: &mut Vec<u32>) {
        out.extend(positions.iter().map(|&p| self.rows[p as usize].row));
    }

    fn gather_superkeys(&self, positions: &[u32], out: &mut Vec<u128>) {
        out.extend(positions.iter().map(|&p| self.rows[p as usize].superkey));
    }

    fn gather_quadrants(&self, positions: &[u32], out: &mut Vec<Option<bool>>) {
        out.extend(positions.iter().map(|&p| self.rows[p as usize].quadrant));
    }

    /// Single fused pass: every predicate is evaluated in one tuple check
    /// per candidate (see [`keep_fact_row`]) — one pointer chase to the
    /// `FactRow`, all fields adjacent, instead of one virtual accessor
    /// call per predicate — streamed through the `blend_simd` candidate
    /// kernel (block keep-masks on the vector path, write-all/advance-on-
    /// keep on the scalar twin; byte-identical either way).
    fn filter_batch(&self, kernel: &FilterKernel, positions: &[u32], sel: &mut Vec<u32>) {
        if kernel.never_matches() {
            return;
        }
        let rows = &self.rows;
        blend_simd::extend_filtered(sel, positions, |p| keep_fact_row(kernel, &rows[p as usize]));
    }

    fn filter_range(&self, kernel: &FilterKernel, lo: usize, hi: usize, sel: &mut Vec<u32>) {
        if kernel.never_matches() {
            return;
        }
        let rows = &self.rows;
        extend_filtered_range(sel, lo, hi, |p| keep_fact_row(kernel, &rows[p as usize]));
    }

    fn stats(&self) -> &FactStats {
        &self.stats
    }

    fn memory_breakdown(&self) -> MemoryBreakdown {
        // Tuples: struct + heap string per row, plus spare capacity in the
        // row vector itself (push-grown, so up to ~2x the live length).
        let tuples = self.rows.capacity() * std::mem::size_of::<FactRow>() + self.string_bytes;
        // Inverted index: key strings + posting vectors (capacity, not len —
        // push-grown vectors carry spare capacity) + bucket overhead.
        let inverted: usize = self
            .inverted
            .iter()
            .map(|(k, v)| k.len() + std::mem::size_of::<Box<str>>() + v.capacity() * 4 + 48)
            .sum();
        MemoryBreakdown {
            engine: "Row",
            components: vec![
                ("tuples", tuples),
                ("inverted-index", inverted),
                ("table-ranges", self.ranges.len() * 8),
                scratch_component(self.len()),
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::sample_rows;

    #[test]
    fn postings_are_sorted_positions_of_value() {
        let s = RowStore::build(sample_rows());
        let ps = s.postings("berlin");
        assert_eq!(ps.len(), 2);
        assert!(ps.windows(2).all(|w| w[0] < w[1]));
        for &p in ps {
            assert_eq!(s.value_at(p as usize), "berlin");
        }
        assert!(s.postings("nonexistent").is_empty());
    }

    #[test]
    fn table_ranges_contain_only_their_table() {
        let s = RowStore::build(sample_rows());
        for t in 0..s.n_tables() {
            for pos in s.table_postings(t) {
                assert_eq!(s.table_at(pos), t);
            }
        }
        // Out-of-range table id yields an empty range, not a panic.
        assert!(s.table_postings(99).is_empty());
    }

    #[test]
    fn probe_matches_in_list_semantics() {
        let s = RowStore::build(sample_rows());
        let probe = s.make_probe(&["berlin", "rome", "ghost-value"]);
        assert_eq!(probe.len(), 2); // ghost-value filtered at probe build
        let hits: Vec<usize> = (0..s.len()).filter(|&p| s.probe_at(p, &probe)).collect();
        assert_eq!(hits.len(), 4); // berlin x2, rome x2
        for p in hits {
            assert!(matches!(s.value_at(p), "berlin" | "rome"));
        }
    }

    #[test]
    fn stats_reflect_content() {
        let s = RowStore::build(sample_rows());
        assert_eq!(s.stats().n_rows, s.len());
        assert_eq!(s.stats().n_tables, 3);
        assert!(s.stats().numeric_fraction > 0.0);
        assert_eq!(s.posting_len("berlin"), 2);
    }

    #[test]
    fn empty_store() {
        let s = RowStore::build(Vec::new());
        assert!(s.is_empty());
        assert_eq!(s.n_tables(), 0);
        assert!(s.postings("x").is_empty());
        assert_eq!(s.size_bytes(), 0);
    }

    #[test]
    fn filter_degenerate_ranges_append_nothing_and_keep_prefix() {
        let s = RowStore::build(sample_rows());
        let kernel = FilterKernel {
            rowid_lt: Some(u32::MAX),
            ..FilterKernel::default()
        };
        // lo == hi and reversed ranges: no-ops that never touch sel[..start].
        let mut sel = vec![7u32, 8];
        s.filter_range(&kernel, 3, 3, &mut sel);
        s.filter_range(&kernel, 5, 2, &mut sel);
        assert_eq!(sel, vec![7, 8]);
        // Empty position batch: same contract.
        s.filter_batch(&kernel, &[], &mut sel);
        assert_eq!(sel, vec![7, 8]);
        // A selection vector already at capacity must keep its prefix
        // bytes across the (reallocating) append.
        let mut sel: Vec<u32> = Vec::with_capacity(2);
        sel.extend([7u32, 8]);
        s.filter_range(&kernel, 0, s.len(), &mut sel);
        assert_eq!(&sel[..2], &[7, 8]);
        assert_eq!(sel.len(), 2 + s.len());
    }

    #[test]
    fn gather_superkeys_and_quadrants_match_scalar_accessors() {
        let s = RowStore::build(sample_rows());
        let positions: Vec<u32> = (0..s.len() as u32).rev().collect();
        let mut sks = Vec::new();
        s.gather_superkeys(&positions, &mut sks);
        let mut quads = Vec::new();
        s.gather_quadrants(&positions, &mut quads);
        for (i, &p) in positions.iter().enumerate() {
            assert_eq!(sks[i], s.superkey_at(p as usize));
            assert_eq!(quads[i], s.quadrant_at(p as usize));
        }
    }
}

//! Table IX — the user study.
//!
//! A survey of 18 data experts is not computationally reproducible; per the
//! substitution policy (DESIGN.md §4) the published response distribution
//! is embedded as data and re-rendered, so the repository still regenerates
//! the table and downstream text can cite it.

/// One survey line: question context, answer label, and the three reported
/// percentages (research, industry, all).
pub struct SurveyLine {
    pub question: &'static str,
    pub answer: &'static str,
    pub research: &'static str,
    pub industry: &'static str,
    pub all: &'static str,
}

/// The published Table IX data.
pub const TABLE_IX: &[SurveyLine] = &[
    SurveyLine {
        question: "Participants",
        answer: "count",
        research: "9",
        industry: "9",
        all: "18",
    },
    SurveyLine {
        question: "Q1 Find data within a single search (rarely 0% - often 100%)",
        answer: "mean",
        research: "27.5%",
        industry: "38.8%",
        all: "33.3%",
    },
    SurveyLine {
        question: "Q2 Single discovered table sufficient?",
        answer: "Yes | No",
        research: "11% | 89%",
        industry: "0% | 100%",
        all: "6% | 74%",
    },
    SurveyLine {
        question: "Q3 Most frequent tasks",
        answer: "Discovery for rows",
        research: "33%",
        industry: "67%",
        all: "50%",
    },
    SurveyLine {
        question: "",
        answer: "Correlation discovery",
        research: "44%",
        industry: "56%",
        all: "50%",
    },
    SurveyLine {
        question: "",
        answer: "Join discovery",
        research: "44%",
        industry: "33%",
        all: "39%",
    },
    SurveyLine {
        question: "",
        answer: "Keyword search",
        research: "44%",
        industry: "33%",
        all: "39%",
    },
    SurveyLine {
        question: "",
        answer: "Multi-column join discovery",
        research: "33%",
        industry: "22%",
        all: "28%",
    },
    SurveyLine {
        question: "Q4 How tasks are solved",
        answer: "Custom scripts",
        research: "100%",
        industry: "56%",
        all: "78%",
    },
    SurveyLine {
        question: "",
        answer: "SQL queries",
        research: "44%",
        industry: "56%",
        all: "50%",
    },
    SurveyLine {
        question: "",
        answer: "Asking people",
        research: "33%",
        industry: "56%",
        all: "44%",
    },
    SurveyLine {
        question: "",
        answer: "Open source tools",
        research: "56%",
        industry: "33%",
        all: "44%",
    },
    SurveyLine {
        question: "",
        answer: "Commercial tools",
        research: "22%",
        industry: "22%",
        all: "22%",
    },
    SurveyLine {
        question: "Q5 Preferred language",
        answer: "Python",
        research: "100%",
        industry: "89%",
        all: "94%",
    },
    SurveyLine {
        question: "",
        answer: "Java | SQL | C++",
        research: "78% | 78% | 56%",
        industry: "89% | 78% | 78%",
        all: "83% | 78% | 67%",
    },
    SurveyLine {
        question: "Q6 Data lake storage",
        answer: "DBMS | Files | Both",
        research: "33% | 44% | 22%",
        industry: "44% | 0% | 56%",
        all: "39% | 22% | 39%",
    },
    SurveyLine {
        question: "Q7 Would use DBMS with discovery indexes?",
        answer: "Yes | No",
        research: "100% | 0%",
        industry: "100% | 0%",
        all: "100% | 0%",
    },
    SurveyLine {
        question: "Q8 Preferred API, simple task",
        answer: "BLEND | Python | SQL",
        research: "34% | 22% | 44%",
        industry: "56% | 11% | 34%",
        all: "44% | 17% | 39%",
    },
    SurveyLine {
        question: "Q9 Preferred API, complex task",
        answer: "BLEND | Python",
        research: "89% | 11%",
        industry: "89% | 11%",
        all: "89% | 11%",
    },
];

/// Render the table.
pub fn render() -> String {
    let mut t =
        crate::harness::TextTable::new(&["question", "answer", "research", "industry", "all"]);
    for l in TABLE_IX {
        t.row(&[
            l.question.to_string(),
            l.answer.to_string(),
            l.research.to_string(),
            l.industry.to_string(),
            l.all.to_string(),
        ]);
    }
    let mut out = String::from(
        "Table IX — user study (published data, embedded; not re-run: surveys \
         of human experts are outside the reproduction's scope)\n\n",
    );
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn render_includes_headline_findings() {
        let r = super::render();
        assert!(r.contains("100% | 0%"), "Q7 unanimity missing");
        assert!(
            r.contains("89% | 11%"),
            "Q9 complex-task preference missing"
        );
        assert!(r.lines().count() > 15);
    }
}

//! Lines-of-code accounting for Table III.
//!
//! Counts the code between `// LOC-BEGIN(name)` and `// LOC-END(name)`
//! markers, skipping blank lines and pure comment lines — the same rule for
//! both the federated baselines (this crate, [`crate::federated`]) and the
//! BLEND plan definitions (`blend::tasks`). Both sources are embedded at
//! compile time so the numbers printed by `table3` always match the code
//! that actually ran.

/// Marker-delimited sources the experiment counts.
const SOURCES: &[&str] = &[
    include_str!("federated.rs"),
    include_str!("../../core/src/tasks.rs"),
];

/// Count effective lines of the named marked region across all embedded
/// sources. Returns 0 when the marker does not exist.
pub fn count(name: &str) -> usize {
    let begin = format!("LOC-BEGIN({name})");
    let end = format!("LOC-END({name})");
    for src in SOURCES {
        let Some(start) = src.find(&begin) else {
            continue;
        };
        let Some(stop) = src[start..].find(&end) else {
            continue;
        };
        let body = &src[start..start + stop];
        return body
            .lines()
            .skip(1) // the BEGIN marker line itself
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with("//"))
            .count();
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_baseline_regions() {
        for name in [
            "baseline_negative_examples",
            "baseline_imputation",
            "baseline_feature_discovery",
            "baseline_multi_objective",
        ] {
            let n = count(name);
            assert!(n >= 10, "baseline `{name}` suspiciously short: {n}");
        }
    }

    #[test]
    fn counts_blend_regions() {
        for name in [
            "blend_negative_examples",
            "blend_imputation",
            "blend_feature_discovery",
            "blend_multi_objective",
            "blend_union_search",
        ] {
            let n = count(name);
            assert!(n >= 3, "blend `{name}` missing: {n}");
        }
    }

    #[test]
    fn blend_tasks_are_much_shorter() {
        // The qualitative claim of Table III: an order-of-magnitude LOC gap
        // is not required here, but BLEND must be clearly shorter.
        for task in [
            "negative_examples",
            "imputation",
            "feature_discovery",
            "multi_objective",
        ] {
            let b = count(&format!("blend_{task}"));
            let f = count(&format!("baseline_{task}"));
            assert!(b < f, "task {task}: blend {b} lines !< baseline {f} lines");
        }
    }

    #[test]
    fn unknown_marker_counts_zero() {
        assert_eq!(count("nonexistent_marker"), 0);
    }
}

//! Experiment harness for the BLEND reproduction.
//!
//! One module (and one binary) per table/figure of the paper's evaluation
//! section; see DESIGN.md §5 for the experiment index and EXPERIMENTS.md
//! for paper-vs-measured results. Every experiment accepts a scale factor
//! from the `BLEND_SCALE` environment variable so the same harness runs as
//! a quick smoke test or a longer, more faithful sweep.

pub mod data;
pub mod federated;
pub mod harness;
pub mod loc;
pub mod user_study;

pub mod experiments {
    //! One submodule per paper table/figure.
    pub mod fig5;
    pub mod fig6;
    pub mod fig7;
    pub mod table2;
    pub mod table3;
    pub mod table4;
    pub mod table5;
    pub mod table6;
    pub mod table7;
    pub mod table8;
}

pub use data::synthetic_rows;
pub use harness::{obs_overhead_ns, scale_from_env, simd_ab_ns, Timer};

//! Shared synthetic fact-table data for the Criterion-style benches.

use blend_storage::FactRow;

/// Deterministic fact table: `n_tables * rows_per * cols` index rows with a
/// shared `v0..v996` vocabulary and a numeric last column (quadrant bits on
/// even rows). One definition serves every bench (`engines`,
/// `filter_kernels`, `join_group`, `concurrent_queries`) so their data
/// shapes cannot silently diverge.
pub fn synthetic_rows(n_tables: u32, rows_per: u32, cols: u32) -> Vec<FactRow> {
    let mut out = Vec::with_capacity((n_tables * rows_per * cols) as usize);
    for t in 0..n_tables {
        for r in 0..rows_per {
            for c in 0..cols {
                let v = format!("v{}", (t * 7 + r * 3 + c * 11) % 997);
                let quadrant = (c == cols - 1).then_some(r % 2 == 0);
                out.push(FactRow::new(
                    &v,
                    t,
                    c,
                    r,
                    ((t as u128) << 64) | r as u128,
                    quadrant,
                ));
            }
        }
    }
    out
}

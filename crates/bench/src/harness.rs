//! Shared experiment plumbing: scaling, timing, and text-table rendering.

use std::time::{Duration, Instant};

/// Experiment scale factor from `BLEND_SCALE` (default `default`).
///
/// 1.0 approximates the paper's scaled-down laptop setting; the defaults
/// per experiment are chosen so `repro_all` finishes in minutes.
pub fn scale_from_env(default: f64) -> f64 {
    std::env::var("BLEND_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|s| *s > 0.0)
        .unwrap_or(default)
}

/// Measure the best-of-`n` wall time of a closure (best-of reduces noise
/// the way criterion's minimum estimator does, at a fraction of the cost).
pub fn time_best_of<R>(n: usize, mut f: impl FnMut() -> R) -> (Duration, R) {
    assert!(n > 0);
    let mut best = Duration::MAX;
    let mut out = None;
    for _ in 0..n {
        let t0 = Instant::now();
        let r = f();
        let dt = t0.elapsed();
        if dt < best {
            best = dt;
        }
        out = Some(r);
    }
    (best, out.expect("n > 0"))
}

/// Interleaved A/B medians of one workload with observability collection
/// enabled vs disabled ([`blend_obs::set_enabled`]). Samples alternate
/// (on, off, on, off, ...) so drift — thermal, frequency scaling, page
/// cache — lands on both sides equally; each side's median is returned as
/// `(enabled_ns, disabled_ns)`. Collection is left enabled on return.
///
/// This is the measurement behind the benches' obs-overhead acceptance
/// bar (enabled must stay within a few percent of disabled on the hot
/// query shapes).
pub fn obs_overhead_ns(iters: usize, mut f: impl FnMut()) -> (u64, u64) {
    let mut sample = |on: bool| -> u64 {
        blend_obs::set_enabled(on);
        let t0 = Instant::now();
        f();
        t0.elapsed().as_nanos() as u64
    };
    // One unmeasured pair to warm caches and the registry cells.
    sample(true);
    sample(false);
    let mut on_ns: Vec<u64> = Vec::with_capacity(iters);
    let mut off_ns: Vec<u64> = Vec::with_capacity(iters);
    for _ in 0..iters.max(1) {
        on_ns.push(sample(true));
        off_ns.push(sample(false));
    }
    blend_obs::set_enabled(true);
    on_ns.sort_unstable();
    off_ns.sort_unstable();
    (on_ns[on_ns.len() / 2], off_ns[off_ns.len() / 2])
}

/// Interleaved A/B medians of one workload with the SIMD kernel layer
/// forced on vs off ([`blend_simd::force`]). Same alternation scheme as
/// [`obs_overhead_ns`]: samples alternate (on, off, on, off, ...) so
/// drift lands on both sides equally, one unmeasured warmup pair, each
/// side's median returned as `(simd_on_ns, simd_off_ns)`. Env-driven
/// dispatch is restored on return.
///
/// This is the measurement behind the benches' SIMD speedup acceptance
/// bar (the vector kernels must beat their scalar twins on the hot
/// shapes) and the `simd_on_ns`/`simd_off_ns` fields in the bench JSON.
pub fn simd_ab_ns(iters: usize, mut f: impl FnMut()) -> (u64, u64) {
    let mut sample = |on: bool| -> u64 {
        blend_simd::force(Some(on));
        let t0 = Instant::now();
        f();
        t0.elapsed().as_nanos() as u64
    };
    sample(true);
    sample(false);
    let mut on_ns: Vec<u64> = Vec::with_capacity(iters);
    let mut off_ns: Vec<u64> = Vec::with_capacity(iters);
    for _ in 0..iters.max(1) {
        on_ns.push(sample(true));
        off_ns.push(sample(false));
    }
    blend_simd::force(None);
    on_ns.sort_unstable();
    off_ns.sort_unstable();
    (on_ns[on_ns.len() / 2], off_ns[off_ns.len() / 2])
}

/// Accumulates durations and reports mean/total.
#[derive(Debug, Default, Clone)]
pub struct Timer {
    total: Duration,
    n: usize,
}

impl Timer {
    /// New empty timer.
    pub fn new() -> Self {
        Timer::default()
    }

    /// Time one closure invocation, accumulating.
    pub fn measure<R>(&mut self, f: impl FnOnce() -> R) -> R {
        let t0 = Instant::now();
        let r = f();
        self.total += t0.elapsed();
        self.n += 1;
        r
    }

    /// Add an externally measured duration.
    pub fn add(&mut self, d: Duration) {
        self.total += d;
        self.n += 1;
    }

    /// Mean duration per measurement.
    pub fn mean(&self) -> Duration {
        if self.n == 0 {
            Duration::ZERO
        } else {
            self.total / self.n as u32
        }
    }

    /// Total accumulated duration.
    pub fn total(&self) -> Duration {
        self.total
    }

    /// Number of measurements.
    pub fn count(&self) -> usize {
        self.n
    }
}

/// Fixed-width text-table renderer for experiment output.
#[derive(Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Table with a header row.
    pub fn new(header: &[&str]) -> Self {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a data row.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        self.rows.push(cells.to_vec());
        self
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let n_cols = self
            .header
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; n_cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                line.push_str(&format!("{cell:<w$}  ", w = w));
            }
            line.trim_end().to_string()
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Format a duration in adaptive units, compactly.
pub fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{:.0}µs", s * 1e6)
    }
}

/// Format a fraction as a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_accumulates() {
        let mut t = Timer::new();
        t.add(Duration::from_millis(10));
        t.add(Duration::from_millis(30));
        assert_eq!(t.count(), 2);
        assert_eq!(t.mean(), Duration::from_millis(20));
        assert_eq!(t.total(), Duration::from_millis(40));
    }

    #[test]
    fn empty_timer_mean_is_zero() {
        assert_eq!(Timer::new().mean(), Duration::ZERO);
    }

    #[test]
    fn text_table_alignment() {
        let mut t = TextTable::new(&["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["longer-name".into(), "2".into()]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a "));
        assert!(lines[3].starts_with("longer-name"));
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00s");
        assert_eq!(fmt_duration(Duration::from_millis(5)), "5.00ms");
        assert_eq!(fmt_duration(Duration::from_micros(7)), "7µs");
        assert_eq!(pct(0.614), "61.4%");
    }

    #[test]
    fn best_of_returns_result() {
        let (d, r) = time_best_of(3, || 40 + 2);
        assert_eq!(r, 42);
        assert!(d >= Duration::ZERO);
    }

    #[test]
    fn scale_default_when_unset() {
        std::env::remove_var("BLEND_SCALE");
        assert_eq!(scale_from_env(0.25), 0.25);
    }
}

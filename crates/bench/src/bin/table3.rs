//! Regenerate paper Table III (complex discovery tasks).
fn main() {
    let scale = blend_bench::scale_from_env(0.1);
    println!("{}", blend_bench::experiments::table3::run(scale));
}

//! Regenerate paper Table VII (correlation discovery).
fn main() {
    let scale = blend_bench::scale_from_env(0.3);
    println!("{}", blend_bench::experiments::table7::run(scale));
}

//! Regenerate paper Table II (lake statistics).
fn main() {
    let scale = blend_bench::scale_from_env(0.1);
    println!("{}", blend_bench::experiments::table2::run(scale));
}

//! Run every experiment in sequence — the one-shot reproduction driver.
//! Each section is also available as its own binary (table2..table9,
//! fig5..fig7). Scale via BLEND_SCALE.
fn main() {
    use blend_bench::experiments as e;
    let s = |d| blend_bench::scale_from_env(d);
    let sections: Vec<(&str, String)> = vec![
        ("Table II", e::table2::run(s(0.1))),
        ("Table III", e::table3::run(s(0.1))),
        ("Table IV", e::table4::run(s(0.08), 25)),
        ("Table V", e::table5::run(s(0.05), 40)),
        ("Table VI", e::table6::run(s(0.25))),
        ("Table VII", e::table7::run(s(0.3))),
        ("Table VIII", e::table8::run(s(0.08))),
        ("Table IX", blend_bench::user_study::render()),
        ("Fig. 5", e::fig5::run(s(0.15), 4)),
        ("Fig. 6", e::fig6::run(s(0.3))),
        ("Fig. 7", e::fig7::run(s(0.15))),
    ];
    for (name, body) in sections {
        println!("==================== {name} ====================\n");
        println!("{body}\n");
    }
}

//! Regenerate paper Table IV (optimizer effectiveness + z-test).
fn main() {
    let scale = blend_bench::scale_from_env(0.08);
    let plans = std::env::var("BLEND_PLANS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(25);
    println!("{}", blend_bench::experiments::table4::run(scale, plans));
}

//! Regenerate paper Fig. 6 (Lakebench join discovery comparison).
fn main() {
    let scale = blend_bench::scale_from_env(0.3);
    println!("{}", blend_bench::experiments::fig6::run(scale));
}

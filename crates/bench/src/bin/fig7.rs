//! Regenerate paper Fig. 7 (union search runtime).
fn main() {
    let scale = blend_bench::scale_from_env(0.15);
    println!("{}", blend_bench::experiments::fig7::run(scale));
}

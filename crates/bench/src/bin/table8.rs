//! Regenerate paper Table VIII (index storage).
fn main() {
    let scale = blend_bench::scale_from_env(0.08);
    println!("{}", blend_bench::experiments::table8::run(scale));
}

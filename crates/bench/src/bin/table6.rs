//! Regenerate paper Table VI (union search quality).
fn main() {
    let scale = blend_bench::scale_from_env(0.25);
    println!("{}", blend_bench::experiments::table6::run(scale));
}

//! Regenerate paper Table IX (user study; embedded published data).
fn main() {
    println!("{}", blend_bench::user_study::render());
}

//! Regenerate paper Table V (multi-column join precision).
fn main() {
    let scale = blend_bench::scale_from_env(0.05);
    println!("{}", blend_bench::experiments::table5::run(scale, 40));
}

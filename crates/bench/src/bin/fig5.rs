//! Regenerate paper Fig. 5 (SC join runtime vs query size).
fn main() {
    let scale = blend_bench::scale_from_env(0.15);
    println!("{}", blend_bench::experiments::fig5::run(scale, 4));
}

//! Fig. 5 — single-column join search runtime vs query size, on three lake
//! families, comparing BLEND on both storage engines against JOSIE.

use blend::{Blend, Plan, Seeker};
use blend_josie::JosieIndex;
use blend_lake::{web, workloads, WebLakeConfig};
use blend_storage::EngineKind;

use crate::harness::{fmt_duration, TextTable, Timer};

/// Run the sweep: for each lake and query-size bucket, average runtimes.
pub fn run(scale: f64, per_size: usize) -> String {
    let sizes = [10usize, 100, 1000];
    let mut t = TextTable::new(&["Lake", "|Q|", "BLEND (Row)", "BLEND (Column)", "JOSIE"]);
    for (label, cfg) in [
        ("WDC-like", WebLakeConfig::wdc_like(scale)),
        ("OpenData-like", WebLakeConfig::opendata_like(scale)),
        ("Gittables-like", WebLakeConfig::gittables_like(scale)),
    ] {
        let lake = web::generate(&cfg);
        let row = Blend::from_lake(&lake, EngineKind::Row);
        let col = Blend::from_lake(&lake, EngineKind::Column);
        let josie = JosieIndex::build(&lake);

        for (size, queries) in workloads::sc_queries(&lake, &sizes, per_size, 0xF160) {
            let mut t_row = Timer::new();
            let mut t_col = Timer::new();
            let mut t_josie = Timer::new();
            for q in &queries {
                let mut plan = Plan::new();
                plan.add_seeker("sc", Seeker::sc(q.clone()), 10).unwrap();
                t_row.measure(|| row.execute(&plan).unwrap());
                t_col.measure(|| col.execute(&plan).unwrap());
                t_josie.measure(|| josie.query(q, 10));
            }
            t.row(&[
                label.to_string(),
                size.to_string(),
                fmt_duration(t_row.mean()),
                fmt_duration(t_col.mean()),
                fmt_duration(t_josie.mean()),
            ]);
        }
    }
    format!(
        "Fig. 5 — SC join-search runtime vs query size at scale {scale} \
         (paper: BLEND(Column) consistently fastest; runtimes grow with |Q|)\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn runs_at_tiny_scale() {
        let out = super::run(0.01, 1);
        assert!(out.contains("WDC-like"));
        assert!(out.contains("1000"));
    }
}

//! Table VI — union-search quality: BLEND's syntactic union plan vs the
//! Starmie-style semantic baseline, at k = 10, 20, 50, 100.

use blend::{tasks, Blend};
use blend_common::stats::{average_precision_at_k, precision_at_k, recall_at_k};
use blend_common::TableId;
use blend_lake::{union_bench, UnionBenchConfig, UnionBenchmark};
use blend_starmie::{StarmieConfig, StarmieIndex};
use blend_storage::EngineKind;

use crate::harness::{pct, TextTable};

/// Quality triple at one k.
#[derive(Debug, Clone, Copy, Default)]
pub struct Quality {
    pub p: f64,
    pub r: f64,
    pub map: f64,
}

/// Evaluate both systems on one benchmark at several k.
pub fn evaluate(bench: &UnionBenchmark, ks: &[usize]) -> Vec<(usize, Quality, Quality)> {
    let system = Blend::from_lake(&bench.lake, EngineKind::Column);
    let starmie = StarmieIndex::build(&bench.lake, StarmieConfig::default());
    let max_k = ks.iter().copied().max().unwrap_or(10);

    let mut per_query: Vec<(
        Vec<TableId>,
        Vec<TableId>,
        std::collections::HashSet<TableId>,
    )> = Vec::new();
    for q in &bench.queries {
        let qt = bench.lake.table(*q);
        let plan = tasks::union_search(qt, max_k, max_k * 10).expect("plan");
        let blend_hits: Vec<TableId> = system
            .execute(&plan)
            .expect("execution")
            .iter()
            .map(|h| h.table)
            .filter(|t| t != q)
            .collect();
        let starmie_hits: Vec<TableId> = starmie
            .query(qt, max_k)
            .into_iter()
            .map(|(t, _)| t)
            .collect();
        let gt: std::collections::HashSet<TableId> =
            bench.ground_truth[q].iter().copied().collect();
        per_query.push((blend_hits, starmie_hits, gt));
    }

    ks.iter()
        .map(|&k| {
            let mut b = Quality::default();
            let mut s = Quality::default();
            for (bh, sh, gt) in &per_query {
                b.p += precision_at_k(bh, gt, k);
                b.r += recall_at_k(bh, gt, k);
                b.map += average_precision_at_k(bh, gt, k);
                s.p += precision_at_k(sh, gt, k);
                s.r += recall_at_k(sh, gt, k);
                s.map += average_precision_at_k(sh, gt, k);
            }
            let n = per_query.len().max(1) as f64;
            for q in [&mut b, &mut s] {
                q.p /= n;
                q.r /= n;
                q.map /= n;
            }
            (k, b, s)
        })
        .collect()
}

/// Run on SANTOS-like and TUS-like benchmarks.
pub fn run(scale: f64) -> String {
    let ks = [10usize, 20, 50, 100];
    let mut t = TextTable::new(&[
        "Lake",
        "k",
        "BLEND P@k",
        "BLEND R",
        "BLEND MAP",
        "Starmie P@k",
        "Starmie R",
        "Starmie MAP",
    ]);
    for (label, bench) in [
        (
            "SANTOS-like",
            union_bench::generate(&UnionBenchConfig::santos_like(scale)),
        ),
        (
            "TUS-like",
            union_bench::generate(&UnionBenchConfig::tus_like(scale)),
        ),
    ] {
        for (k, b, s) in evaluate(&bench, &ks) {
            t.row(&[
                label.to_string(),
                k.to_string(),
                pct(b.p),
                pct(b.r),
                pct(b.map),
                pct(s.p),
                pct(s.r),
                pct(s.map),
            ]);
        }
    }
    format!(
        "Table VI — union search quality at scale {scale} \
         (paper: Starmie slightly ahead at k=10, parity at k=20, BLEND ahead at k≥50; \
          TUS recall is low at small k because clusters are large)\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn evaluate_produces_all_ks() {
        let bench = blend_lake::union_bench::generate(&blend_lake::UnionBenchConfig {
            n_clusters: 3,
            tables_per_cluster: 4,
            noise_tables: 5,
            ..blend_lake::UnionBenchConfig::santos_like(0.05)
        });
        let rows = super::evaluate(&bench, &[5, 10]);
        assert_eq!(rows.len(), 2);
        for (_, b, s) in rows {
            assert!((0.0..=1.0).contains(&b.p));
            assert!((0.0..=1.0).contains(&s.p));
        }
    }
}

//! Fig. 7 — union-search runtime on the four benchmark lakes: Starmie vs
//! BLEND (Row) vs BLEND (Column).

use blend::{tasks, Blend};
use blend_lake::{union_bench, UnionBenchConfig};
use blend_starmie::{StarmieConfig, StarmieIndex};
use blend_storage::EngineKind;

use crate::harness::{fmt_duration, TextTable, Timer};

/// Run the comparison on the four lake presets.
pub fn run(scale: f64) -> String {
    let mut t = TextTable::new(&[
        "Lake",
        "queries",
        "Starmie",
        "BLEND (Row)",
        "BLEND (Column)",
    ]);
    let presets = [
        ("SANTOS-like", UnionBenchConfig::santos_like(scale)),
        (
            "SANTOS-Large-like",
            UnionBenchConfig::santos_large_like(scale * 0.5),
        ),
        ("TUS-like", UnionBenchConfig::tus_like(scale)),
        (
            "TUS-Large-like",
            UnionBenchConfig::tus_large_like(scale * 0.5),
        ),
    ];
    for (label, cfg) in presets {
        let bench = union_bench::generate(&cfg);
        let row = Blend::from_lake(&bench.lake, EngineKind::Row);
        let col = Blend::from_lake(&bench.lake, EngineKind::Column);
        let starmie = StarmieIndex::build(&bench.lake, StarmieConfig::default());

        let k = 10usize;
        let per_col_k = 100usize;
        let mut t_star = Timer::new();
        let mut t_row = Timer::new();
        let mut t_col = Timer::new();
        let n_queries = bench.queries.len().min(20);
        for q in bench.queries.iter().take(n_queries) {
            let qt = bench.lake.table(*q);
            t_star.measure(|| starmie.query(qt, k));
            let plan = tasks::union_search(qt, k, per_col_k).expect("plan");
            t_row.measure(|| row.execute(&plan).expect("row engine"));
            t_col.measure(|| col.execute(&plan).expect("column engine"));
        }
        t.row(&[
            label.to_string(),
            n_queries.to_string(),
            fmt_duration(t_star.mean()),
            fmt_duration(t_row.mean()),
            fmt_duration(t_col.mean()),
        ]);
    }
    format!(
        "Fig. 7 — union search runtime at scale {scale} \
         (paper: Starmie usually fastest thanks to its in-memory HNSW; \
          BLEND(Column) an order of magnitude faster than BLEND(Row))\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn runs_at_tiny_scale() {
        let out = super::run(0.04);
        assert!(out.contains("SANTOS-like"));
        assert!(out.contains("TUS-Large-like"));
    }
}

//! Table VIII — index storage: BLEND's single `AllTables` relation vs the
//! combined footprint of the state-of-the-art per-task indexes.

use blend_josie::JosieIndex;
use blend_lake::{
    corr_bench, union_bench, web, CorrBenchConfig, DataLake, UnionBenchConfig, WebLakeConfig,
};
use blend_mate::MateIndex;
use blend_qcr::QcrIndex;
use blend_starmie::{StarmieConfig, StarmieIndex};
use blend_storage::EngineKind;

use crate::harness::TextTable;

fn mib(bytes: usize) -> String {
    format!("{:.2} MiB", bytes as f64 / (1024.0 * 1024.0))
}

/// Measure one lake.
pub fn measure(lake: &DataLake) -> (usize, usize, Vec<(String, usize)>) {
    let blend_size = blend_index::IndexBuilder::new()
        .build(&lake.tables, EngineKind::Column)
        .size_bytes();
    let parts = vec![
        ("JOSIE".to_string(), JosieIndex::build(lake).size_bytes()),
        ("MATE".to_string(), MateIndex::build(lake).size_bytes()),
        ("QCR".to_string(), QcrIndex::build(lake, 256).size_bytes()),
        (
            "Starmie".to_string(),
            StarmieIndex::build(lake, StarmieConfig::default()).size_bytes(),
        ),
    ];
    let combined = parts.iter().map(|(_, b)| b).sum();
    (blend_size, combined, parts)
}

/// Run across the lake families.
pub fn run(scale: f64) -> String {
    let mut t = TextTable::new(&[
        "Data lake",
        "BLEND",
        "Combination of S.O.T.A.",
        "BLEND/combined",
        "breakdown",
    ]);
    let mut total_blend = 0usize;
    let mut total_combined = 0usize;
    let lakes: Vec<(&str, DataLake)> = vec![
        (
            "Gittables-like",
            web::generate(&WebLakeConfig::gittables_like(scale)),
        ),
        ("DWTC-like", web::generate(&WebLakeConfig::dwtc_like(scale))),
        (
            "OpenData-like",
            web::generate(&WebLakeConfig::opendata_like(scale)),
        ),
        (
            "SANTOS-like",
            union_bench::generate(&UnionBenchConfig::santos_like(scale)).lake,
        ),
        (
            "TUS-like",
            union_bench::generate(&UnionBenchConfig::tus_like(scale)).lake,
        ),
        (
            "NYC-like",
            corr_bench::generate(&CorrBenchConfig::nyc_cat_like(scale)).lake,
        ),
    ];
    for (label, lake) in &lakes {
        let (blend_size, combined, parts) = measure(lake);
        total_blend += blend_size;
        total_combined += combined;
        let breakdown = parts
            .iter()
            .map(|(n, b)| format!("{n}={}", mib(*b)))
            .collect::<Vec<_>>()
            .join(" ");
        t.row(&[
            label.to_string(),
            mib(blend_size),
            mib(combined),
            format!("{:.0}%", 100.0 * blend_size as f64 / combined as f64),
            breakdown,
        ]);
    }
    format!(
        "Table VIII — index storage at scale {scale} \
         (paper: BLEND needs on average 57% less storage than the combination)\n\n{}\
         \noverall: BLEND {} vs combination {} ({:.0}% of the combined footprint)\n",
        t.render(),
        mib(total_blend),
        mib(total_combined),
        100.0 * total_blend as f64 / total_combined.max(1) as f64,
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn blend_is_smaller_than_combination() {
        let lake = blend_lake::web::generate(&blend_lake::WebLakeConfig::gittables_like(0.02));
        let (blend_size, combined, parts) = super::measure(&lake);
        assert!(blend_size > 0);
        assert_eq!(parts.len(), 4);
        assert!(
            blend_size < combined,
            "unified index {blend_size} !< combined {combined}"
        );
    }
}

//! Table IV — optimizer effectiveness: random order vs BLEND vs an oracle,
//! per seeker type, plus the §VIII-C.4 z-test on ranking accuracy.

use std::time::Duration;

use rand::{Rng, SeedableRng};

use blend::{plan::Seeker, Blend, Combiner, OrderingMode, Plan};
use blend_common::stats::proportion_z_test;
use blend_lake::{web, workloads, DataLake, WebLakeConfig};
use blend_storage::EngineKind;

use crate::harness::{fmt_duration, pct, TextTable};

/// Seeker-pair families evaluated (paper rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    Mixed,
    Sc,
    Mc,
    C,
}

impl Family {
    fn label(&self) -> &'static str {
        match self {
            Family::Mixed => "Mixed",
            Family::Sc => "SC",
            Family::Mc => "MC",
            Family::C => "C",
        }
    }
}

/// Aggregated outcome of one family.
pub struct FamilyResult {
    pub family: Family,
    pub rand: Duration,
    pub blend: Duration,
    pub ideal: Duration,
    pub accuracy: f64,
    pub n: usize,
}

/// Extract a (keys, target) correlation query from a random lake table.
fn sample_c(lake: &DataLake, rng: &mut rand::rngs::StdRng) -> Option<Seeker> {
    use blend_common::ColumnType;
    for _ in 0..50 {
        let t = &lake.tables[rng.random_range(0..lake.len())];
        let cat = t
            .columns
            .iter()
            .position(|c| c.column_type() == ColumnType::Categorical);
        let num = t
            .columns
            .iter()
            .position(|c| c.column_type() == ColumnType::Numeric);
        let (Some(cat), Some(num)) = (cat, num) else {
            continue;
        };
        let mut keys = Vec::new();
        let mut target = Vec::new();
        for r in 0..t.n_rows() {
            if let (Some(k), Some(v)) = (t.cell(r, cat).normalized(), t.cell(r, num).as_f64()) {
                keys.push(k.into_owned());
                target.push(v);
            }
        }
        if keys.len() >= 4 {
            return Some(Seeker::c(keys, target));
        }
    }
    None
}

fn sample_pair(
    family: Family,
    lake: &DataLake,
    rng: &mut rand::rngs::StdRng,
) -> Option<(Seeker, Seeker)> {
    let sc = |rng: &mut rand::rngs::StdRng| {
        let size = *[4usize, 10, 25, 60]
            .get(rng.random_range(0..4usize))
            .expect("in range");
        workloads::sc_queries(lake, &[size], 1, rng.random())
            .pop()
            .and_then(|(_, mut qs)| qs.pop())
            .map(Seeker::sc)
    };
    let mc = |rng: &mut rand::rngs::StdRng| {
        workloads::mc_queries(lake, 1, 2, rng.random_range(3..8), rng.random())
            .pop()
            .map(|q| Seeker::mc(q.rows))
    };
    match family {
        Family::Sc => Some((sc(rng)?, sc(rng)?)),
        Family::Mc => Some((mc(rng)?, mc(rng)?)),
        Family::C => Some((sample_c(lake, rng)?, sample_c(lake, rng)?)),
        Family::Mixed => {
            // Two *different* types so the rule-based optimizer decides.
            let a = sc(rng)?;
            let b = match rng.random_range(0..2) {
                0 => mc(rng)?,
                _ => sample_c(lake, rng)?,
            };
            Some((a, b))
        }
    }
}

fn pair_plan(a: &Seeker, b: &Seeker, k: usize) -> Plan {
    let mut p = Plan::new();
    p.add_seeker("a", a.clone(), k).expect("valid seeker");
    p.add_seeker("b", b.clone(), k).expect("valid seeker");
    p.add_combiner("i", Combiner::Intersect, k, &["a", "b"])
        .expect("valid combiner");
    p
}

/// Evaluate one family with `n` random two-seeker intersection plans.
pub fn evaluate_family(
    family: Family,
    system: &mut Blend,
    lake: &DataLake,
    n: usize,
    seed: u64,
) -> FamilyResult {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut rand_total = Duration::ZERO;
    let mut blend_total = Duration::ZERO;
    let mut ideal_total = Duration::ZERO;
    let mut correct = 0usize;
    let mut done = 0usize;

    while done < n {
        let Some((a, b)) = sample_pair(family, lake, &mut rng) else {
            break;
        };
        let ab = pair_plan(&a, &b, 10);
        let ba = pair_plan(&b, &a, 10);

        // Fixed orders (rewriting active, no ranking): the oracle inputs.
        system.set_ordering(OrderingMode::PlanOrder);
        let run_fixed = |sys: &Blend, p: &Plan| {
            let (_, r) = sys.execute_with_report(p).expect("plan runs");
            (r.total, r.seeker_order().first().map(|s| s.to_string()))
        };
        let (t_ab, _) = run_fixed(system, &ab);
        let (t_ba, _) = run_fixed(system, &ba);
        let oracle_first = if t_ab <= t_ba { "a" } else { "b" };
        ideal_total += t_ab.min(t_ba);
        // Random order: coin flip between the two fixed orders.
        rand_total += if rng.random_bool(0.5) { t_ab } else { t_ba };

        // BLEND: ranked ordering (includes optimization overhead).
        system.set_ordering(OrderingMode::Ranked);
        let (hits_report, chosen) = {
            let (_, r) = system.execute_with_report(&ab).expect("plan runs");
            let first = r.seeker_order().first().map(|s| s.to_string());
            (r.total, first)
        };
        blend_total += hits_report;
        if chosen.as_deref() == Some(oracle_first) {
            correct += 1;
        }
        done += 1;
    }

    FamilyResult {
        family,
        rand: div(rand_total, done),
        blend: div(blend_total, done),
        ideal: div(ideal_total, done),
        accuracy: if done == 0 {
            0.0
        } else {
            correct as f64 / done as f64
        },
        n: done,
    }
}

fn div(d: Duration, n: usize) -> Duration {
    if n == 0 {
        Duration::ZERO
    } else {
        d / n as u32
    }
}

/// Run the full experiment.
pub fn run(scale: f64, plans_per_family: usize) -> String {
    let lake = web::generate(&WebLakeConfig::gittables_like(scale));
    let mut system = Blend::from_lake(&lake, EngineKind::Column);
    // Offline: train the cost models (paper: once per lake installation).
    system.train_cost_models(&lake, 16, 0x7AB4);

    let mut t = TextTable::new(&[
        "Seeker",
        "Rand",
        "BLEND",
        "Ideal",
        "Gain BLEND",
        "Gain Ideal",
        "Accuracy",
        "n",
    ]);
    let mut total_correct = 0.0;
    let mut total_n = 0usize;
    for family in [Family::Mixed, Family::Sc, Family::Mc, Family::C] {
        let r = evaluate_family(
            family,
            &mut system,
            &lake,
            plans_per_family,
            0xBEEF ^ family as u64,
        );
        let gain = |x: Duration| {
            if r.rand.is_zero() {
                0.0
            } else {
                1.0 - x.as_secs_f64() / r.rand.as_secs_f64()
            }
        };
        t.row(&[
            r.family.label().to_string(),
            fmt_duration(r.rand),
            fmt_duration(r.blend),
            fmt_duration(r.ideal),
            pct(gain(r.blend)),
            pct(gain(r.ideal)),
            pct(r.accuracy),
            r.n.to_string(),
        ]);
        total_correct += r.accuracy * r.n as f64;
        total_n += r.n;
    }

    // §VIII-C.4: z-test of pooled accuracy against the 50% random baseline.
    let p_hat = if total_n == 0 {
        0.0
    } else {
        total_correct / total_n as f64
    };
    let (z, p) = proportion_z_test(p_hat, 0.5, total_n.max(1));

    format!(
        "Table IV — optimizer effectiveness at scale {scale} \
         (paper: 61-75% runtime gain, 70-99.8% accuracy)\n\n{}\n\
         z-test of pooled accuracy {:.1}% vs 50% random (n={}): z = {:.2}, p = {:.2e} \
         (paper: z ≈ 45.6 at n=4000)\n",
        t.render(),
        p_hat * 100.0,
        total_n,
        z,
        p,
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn runs_at_tiny_scale() {
        let out = super::run(0.02, 3);
        assert!(out.contains("Mixed"));
        assert!(out.contains("z-test"));
    }
}

//! Fig. 6 — Lakebench-style comparison: JOSIE vs DeepJoin vs BLEND on
//! (a) runtime and (b) join-discovery effectiveness.
//!
//! The Lakebench ground truth rewards *semantic* joinability, so the
//! benchmark here is a clustered lake where joinable tables share column
//! domains without full value overlap. BLEND and JOSIE return identical
//! (exact-overlap) results — the paper's observation — while DeepJoin's
//! embeddings recover semantically joinable columns beyond literal overlap.

use blend::{Blend, Plan, Seeker};
use blend_common::stats::{precision_at_k, recall_at_k};
use blend_common::TableId;
use blend_deepjoin::{DeepJoinConfig, DeepJoinIndex};
use blend_josie::JosieIndex;
use blend_lake::{union_bench, UnionBenchConfig};
use blend_storage::EngineKind;

use crate::harness::{fmt_duration, pct, TextTable, Timer};

/// Run the comparison.
pub fn run(scale: f64) -> String {
    // Webtable-like lake with domain clusters = semantic join ground truth.
    let bench = union_bench::generate(&UnionBenchConfig {
        name: "webtable-large-like".into(),
        overlap: 0.35,
        ..UnionBenchConfig::santos_like(scale)
    });
    let lake = &bench.lake;
    let blend = Blend::from_lake(lake, EngineKind::Column);
    let josie = JosieIndex::build(lake);
    let deepjoin = DeepJoinIndex::build(lake, DeepJoinConfig::default());

    let ks = [5usize, 10, 15, 20];
    let max_k = 20usize;
    let mut t_blend = Timer::new();
    let mut t_josie = Timer::new();
    let mut t_dj = Timer::new();
    // per system, per k: (p, r)
    let mut scores = vec![vec![(0.0f64, 0.0f64); ks.len()]; 3];
    let mut outputs_identical = true;

    for q in &bench.queries {
        let qt = lake.table(*q);
        // Query = the first column of the query table (join-column search).
        let column: Vec<String> = qt.columns[0]
            .values
            .iter()
            .filter_map(|v| v.normalized().map(|n| n.into_owned()))
            .collect();
        let gt: std::collections::HashSet<TableId> =
            bench.ground_truth[q].iter().copied().collect();

        let mut plan = Plan::new();
        plan.add_seeker("sc", Seeker::sc(column.clone()), max_k)
            .unwrap();
        let blend_hits: Vec<TableId> = t_blend
            .measure(|| blend.execute(&plan).unwrap())
            .iter()
            .map(|h| h.table)
            .filter(|t| t != q)
            .collect();
        let josie_hits: Vec<TableId> = t_josie
            .measure(|| josie.query(&column, max_k))
            .into_iter()
            .map(|(t, _)| t)
            .filter(|t| t != q)
            .collect();
        let dj_hits: Vec<TableId> = t_dj
            .measure(|| deepjoin.query(&column, max_k))
            .into_iter()
            .map(|(t, _)| t)
            .filter(|t| t != q)
            .collect();

        // BLEND ≡ JOSIE up to the query table itself.
        let a: Vec<TableId> = blend_hits.iter().take(10).copied().collect();
        let b: Vec<TableId> = josie_hits.iter().take(10).copied().collect();
        if a != b {
            outputs_identical = false;
        }

        for (ki, &k) in ks.iter().enumerate() {
            for (si, hits) in [&blend_hits, &josie_hits, &dj_hits].iter().enumerate() {
                scores[si][ki].0 += precision_at_k(hits, &gt, k);
                scores[si][ki].1 += recall_at_k(hits, &gt, k);
            }
        }
    }

    let n = bench.queries.len().max(1) as f64;
    let mut table = TextTable::new(&[
        "System", "avg time", "metric", "k=5", "k=10", "k=15", "k=20",
    ]);
    let names = ["BLEND", "JOSIE", "DeepJoin"];
    let times = [t_blend.mean(), t_josie.mean(), t_dj.mean()];
    for (si, name) in names.iter().enumerate() {
        let p_cells: Vec<String> = (0..ks.len()).map(|ki| pct(scores[si][ki].0 / n)).collect();
        let r_cells: Vec<String> = (0..ks.len()).map(|ki| pct(scores[si][ki].1 / n)).collect();
        table.row(&[
            name.to_string(),
            fmt_duration(times[si]),
            "P@k".to_string(),
            p_cells[0].clone(),
            p_cells[1].clone(),
            p_cells[2].clone(),
            p_cells[3].clone(),
        ]);
        table.row(&[
            String::new(),
            String::new(),
            "R@k".to_string(),
            r_cells[0].clone(),
            r_cells[1].clone(),
            r_cells[2].clone(),
            r_cells[3].clone(),
        ]);
    }
    format!(
        "Fig. 6 — Lakebench-style join discovery at scale {scale} \
         (paper: DeepJoin fastest via HNSW and most effective on semantic \
          ground truth; BLEND and JOSIE outputs identical: {})\n\n{}",
        if outputs_identical {
            "confirmed"
        } else {
            "NOT confirmed"
        },
        table.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn runs_at_tiny_scale() {
        let out = super::run(0.05);
        assert!(out.contains("DeepJoin"));
        assert!(out.contains("identical: confirmed"), "{out}");
    }
}

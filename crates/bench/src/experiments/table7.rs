//! Table VII — correlation-based discovery on NYC-like benchmarks:
//! BLEND (convenience sampling), BLEND (rand) (pre-shuffled index), and
//! the QCR sketch baseline, with h = 256, k = 10.

use blend::{Blend, BlendOptions, Plan, Seeker};
use blend_common::stats::{precision_at_k, recall_at_k};
use blend_common::TableId;
use blend_lake::{corr_bench, CorrBenchConfig, CorrBenchmark};
use blend_qcr::QcrIndex;
use blend_storage::EngineKind;

use crate::harness::{fmt_duration, pct, TextTable, Timer};

struct SystemScore {
    p: f64,
    r: f64,
    time: std::time::Duration,
}

fn score_blend(bench: &CorrBenchmark, system: &Blend, k: usize) -> SystemScore {
    let mut p = 0.0;
    let mut r = 0.0;
    let mut timer = Timer::new();
    for q in &bench.queries {
        let mut plan = Plan::new();
        plan.add_seeker("c", Seeker::c(q.keys.clone(), q.target.clone()), k)
            .expect("valid");
        let hits = timer.measure(|| system.execute(&plan).expect("runs"));
        let retrieved: Vec<TableId> = hits.iter().map(|h| h.table).collect();
        let gt: std::collections::HashSet<TableId> =
            corr_bench::exact_topk_tables(&bench.lake, q, k, 5)
                .into_iter()
                .map(|(t, _)| t)
                .collect();
        p += precision_at_k(&retrieved, &gt, k);
        r += recall_at_k(&retrieved, &gt, k);
    }
    let n = bench.queries.len().max(1) as f64;
    SystemScore {
        p: p / n,
        r: r / n,
        time: timer.mean(),
    }
}

fn score_qcr(bench: &CorrBenchmark, qcr: &QcrIndex, k: usize) -> SystemScore {
    let mut p = 0.0;
    let mut r = 0.0;
    let mut timer = Timer::new();
    for q in &bench.queries {
        let hits = timer.measure(|| qcr.query(&q.keys, &q.target, k, 3));
        let retrieved: Vec<TableId> = hits.iter().map(|(t, _)| *t).collect();
        let gt: std::collections::HashSet<TableId> =
            corr_bench::exact_topk_tables(&bench.lake, q, k, 5)
                .into_iter()
                .map(|(t, _)| t)
                .collect();
        p += precision_at_k(&retrieved, &gt, k);
        r += recall_at_k(&retrieved, &gt, k);
    }
    let n = bench.queries.len().max(1) as f64;
    SystemScore {
        p: p / n,
        r: r / n,
        time: timer.mean(),
    }
}

/// Run both NYC-like variants.
pub fn run(scale: f64) -> String {
    let k = 10usize;
    let h = 256usize;
    let mut t = TextTable::new(&["Benchmark", "System", "P@10", "R@10", "avg time"]);
    for (label, cfg) in [
        ("NYC-like (All)", CorrBenchConfig::nyc_all_like(scale)),
        ("NYC-like (Cat.)", CorrBenchConfig::nyc_cat_like(scale)),
    ] {
        let bench = corr_bench::generate(&cfg);
        let opts = BlendOptions {
            h,
            ..Default::default()
        };
        let fact = blend_index::IndexBuilder::new().build(&bench.lake.tables, EngineKind::Column);
        let vanilla = Blend::with_options(fact, opts.clone());
        let shuffled_fact = blend_index::IndexBuilder::with_options(blend_index::IndexOptions {
            shuffle_rows: true,
            seed: 0x7AB7,
            ..Default::default()
        })
        .build(&bench.lake.tables, EngineKind::Column);
        let rand_variant = Blend::with_options(shuffled_fact, opts);
        let qcr = QcrIndex::build(&bench.lake, h);

        for (system, score) in [
            ("BLEND", score_blend(&bench, &vanilla, k)),
            ("BLEND (rand)", score_blend(&bench, &rand_variant, k)),
            ("QCR baseline", score_qcr(&bench, &qcr, k)),
        ] {
            t.row(&[
                label.to_string(),
                system.to_string(),
                pct(score.p),
                pct(score.r),
                fmt_duration(score.time),
            ]);
        }
    }
    format!(
        "Table VII — correlation discovery at scale {scale}, h={h}, k={k} \
         (paper: BLEND beats the baseline by ~18 points on (All) because the \
          baseline cannot index numeric join keys; near-parity on (Cat.); \
          BLEND(rand) ≥ BLEND)\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn runs_at_tiny_scale() {
        let out = super::run(0.05);
        assert!(out.contains("NYC-like (All)"));
        assert!(out.contains("BLEND (rand)"));
        assert!(out.contains("QCR baseline"));
    }
}

//! Table V — multi-column join precision: BLEND's MC seeker vs MATE,
//! counting filter-phase true/false positives per candidate row.

use blend::{Blend, Plan, Seeker};
use blend_lake::{web, workloads, WebLakeConfig};
use blend_mate::MateIndex;
use blend_storage::EngineKind;

use crate::harness::{fmt_duration, pct, TextTable, Timer};

/// Run on DWTC-like and OpenData-like lakes.
pub fn run(scale: f64, n_queries: usize) -> String {
    let mut t = TextTable::new(&[
        "Lake",
        "System",
        "TP",
        "FP",
        "Precision",
        "Recall",
        "avg time",
    ]);
    for (label, cfg) in [
        ("DWTC-like", WebLakeConfig::dwtc_like(scale)),
        ("OpenData-like", WebLakeConfig::opendata_like(scale * 0.5)),
    ] {
        let lake = web::generate(&cfg);
        let system = Blend::from_lake(&lake, EngineKind::Column);
        let mate = MateIndex::build(&lake);

        let mut blend_tp = 0usize;
        let mut blend_fp = 0usize;
        let mut mate_tp = 0usize;
        let mut mate_fp = 0usize;
        let mut t_blend = Timer::new();
        let mut t_mate = Timer::new();

        for q in workloads::mc_queries(&lake, n_queries, 2, 6, 0x7AB5) {
            let mut plan = Plan::new();
            plan.add_seeker("mc", Seeker::mc(q.rows.clone()), 10)
                .unwrap();
            let (_, report) = t_blend.measure(|| system.execute_with_report(&plan).unwrap());
            let stats = report.mc_totals();
            blend_tp += stats.validated;
            blend_fp += stats.candidates - stats.validated;

            let res = t_mate.measure(|| mate.query(&lake, &q.rows, 10));
            mate_tp += res.tp;
            mate_fp += res.fp;
        }

        let precision = |tp: usize, fp: usize| {
            if tp + fp == 0 {
                0.0
            } else {
                tp as f64 / (tp + fp) as f64
            }
        };
        t.row(&[
            label.to_string(),
            "BLEND".to_string(),
            blend_tp.to_string(),
            blend_fp.to_string(),
            pct(precision(blend_tp, blend_fp)),
            "100%".to_string(),
            fmt_duration(t_blend.mean()),
        ]);
        t.row(&[
            label.to_string(),
            "MATE".to_string(),
            mate_tp.to_string(),
            mate_fp.to_string(),
            pct(precision(mate_tp, mate_fp)),
            "100%".to_string(),
            fmt_duration(t_mate.mean()),
        ]);
    }
    format!(
        "Table V — MC join filter precision at scale {scale} \
         (paper: BLEND ≥99.7% vs MATE 61-73%, recall 100% for both)\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn runs_at_tiny_scale() {
        let out = super::run(0.01, 4);
        assert!(out.contains("BLEND"));
        assert!(out.contains("MATE"));
        assert!(out.contains("DWTC-like"));
    }
}

//! Table II — descriptive statistics of the (generated) data lakes.

use blend_lake::{corr_bench, union_bench, web, CorrBenchConfig, UnionBenchConfig, WebLakeConfig};

use crate::harness::TextTable;

/// Generate every lake family at `scale` and print its statistics next to
/// the paper's (unreachable) originals.
pub fn run(scale: f64) -> String {
    let mut t = TextTable::new(&[
        "data lake",
        "tables",
        "columns",
        "rows",
        "cells",
        "paper original (tables)",
    ]);
    let mut add = |name: &str, lake: &blend_lake::DataLake, paper: &str| {
        let s = lake.stats();
        t.row(&[
            name.to_string(),
            s.tables.to_string(),
            s.columns.to_string(),
            s.rows.to_string(),
            s.cells.to_string(),
            paper.to_string(),
        ]);
    };

    let gitt = web::generate(&WebLakeConfig::gittables_like(scale));
    add("Gittables-like", &gitt, "1.5M");
    let wdc = web::generate(&WebLakeConfig::wdc_like(scale));
    add("WDC-like", &wdc, "163M cols");
    let open = web::generate(&WebLakeConfig::opendata_like(scale));
    add("OpenData-like", &open, "17,144");
    let dwtc = web::generate(&WebLakeConfig::dwtc_like(scale));
    add("DWTC-like", &dwtc, "145M");
    let santos = union_bench::generate(&UnionBenchConfig::santos_like(scale));
    add("SANTOS-like", &santos.lake, "550");
    let santos_l = union_bench::generate(&UnionBenchConfig::santos_large_like(scale));
    add("SANTOS-Large-like", &santos_l.lake, "11,090");
    let tus = union_bench::generate(&UnionBenchConfig::tus_like(scale));
    add("TUS-like", &tus.lake, "1,530");
    let tus_l = union_bench::generate(&UnionBenchConfig::tus_large_like(scale));
    add("TUS-Large-like", &tus_l.lake, "5,043");
    let nyc = corr_bench::generate(&CorrBenchConfig::nyc_cat_like(scale));
    add("NYC-like (Cat.)", &nyc.lake, "1,063");
    let nyc_all = corr_bench::generate(&CorrBenchConfig::nyc_all_like(scale));
    add("NYC-like (All)", &nyc_all.lake, "1,063");

    format!(
        "Table II — generated data lakes at scale {scale} (paper lakes are \
         listed for reference; see DESIGN.md §4 for the substitution)\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn renders_all_lakes() {
        let out = super::run(0.02);
        assert!(out.contains("Gittables-like"));
        assert!(out.contains("NYC-like (All)"));
        assert_eq!(out.lines().filter(|l| l.contains("-like")).count(), 10);
    }
}

//! Table III — complex discovery tasks: BLEND vs B-NO vs the federated
//! baselines, comparing runtime, LOC, number of systems and indexes.

use std::time::Duration;

use rand::{Rng, SeedableRng};

use blend::Blend;
use blend_josie::JosieIndex;
use blend_lake::{
    corr_bench, union_bench, web, workloads, CorrBenchConfig, DataLake, UnionBenchConfig,
    WebLakeConfig,
};
use blend_mate::MateIndex;
use blend_qcr::QcrIndex;
use blend_starmie::{StarmieConfig, StarmieIndex};
use blend_storage::EngineKind;

use crate::harness::{fmt_duration, TextTable, Timer};
use crate::{federated, loc};

struct TaskRow {
    name: &'static str,
    blend: Duration,
    bno: Duration,
    baseline: Duration,
    blend_loc: usize,
    baseline_loc: usize,
    baseline_systems: usize,
}

fn blend_pair(lake: &DataLake) -> (Blend, Blend) {
    let optimized = Blend::from_lake(lake, EngineKind::Column);
    let mut naive = Blend::from_lake(lake, EngineKind::Column);
    naive.set_optimize(false);
    (optimized, naive)
}

/// Run all four tasks and render the table.
pub fn run(scale: f64) -> String {
    let rows = vec![
        negative_examples_task(scale),
        imputation_task(scale),
        feature_discovery_task(scale),
        multi_objective_task(scale),
    ];

    let mut t = TextTable::new(&[
        "task",
        "BLEND",
        "B-NO",
        "Baseline",
        "LOC (BLEND/Base)",
        "#Systems (BLEND/Base)",
        "#Indexes",
    ]);
    for r in &rows {
        t.row(&[
            r.name.to_string(),
            fmt_duration(r.blend),
            fmt_duration(r.bno),
            fmt_duration(r.baseline),
            format!("{} / {}", r.blend_loc, r.baseline_loc),
            format!("1 / {}", r.baseline_systems),
            "Single / Multi".to_string(),
        ]);
    }
    format!(
        "Table III — complex discovery tasks at scale {scale} \
         (paper: BLEND 2-8.5x faster than baselines, ~10x fewer LOC)\n\n{}",
        t.render()
    )
}

fn negative_examples_task(scale: f64) -> TaskRow {
    let bench = union_bench::generate(&UnionBenchConfig::santos_like(scale));
    let lake = &bench.lake;
    let (blend_sys, bno_sys) = blend_pair(lake);
    let mate = MateIndex::build(lake);
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x7AB3);

    let mut t_blend = Timer::new();
    let mut t_bno = Timer::new();
    let mut t_base = Timer::new();
    let n_queries = bench.queries.len().min(12);
    for q in bench.queries.iter().take(n_queries) {
        // Positives: rows of the query table; negatives: rows sampled from
        // one ground-truth mate (which therefore must be excluded).
        let qt = lake.table(*q);
        let positives: Vec<Vec<String>> = (0..qt.n_rows().min(4))
            .map(|r| {
                qt.row(r)
                    .take(2)
                    .filter_map(|v| v.normalized().map(|n| n.into_owned()))
                    .collect()
            })
            .filter(|r: &Vec<String>| r.len() == 2)
            .collect();
        // The paper uses ~1k negative examples per query; sample many rows
        // across several cluster mates (scaled down with the lake).
        let mut negatives: Vec<Vec<String>> = Vec::new();
        let mates: Vec<_> = bench.ground_truth[q].iter().copied().collect();
        for _ in 0..3 {
            let mate_table = mates[rng.random_range(0..mates.len())];
            let nt = lake.table(mate_table);
            for r in 0..nt.n_rows().min(20) {
                let row: Vec<String> = nt
                    .row(r)
                    .take(2)
                    .filter_map(|v| v.normalized().map(|n| n.into_owned()))
                    .collect();
                if row.len() == 2 {
                    negatives.push(row);
                }
            }
        }
        if positives.is_empty() || negatives.is_empty() {
            continue;
        }
        let plan = federated::blend_side::negative_examples(&positives, &negatives, 10).unwrap();
        t_blend.measure(|| blend_sys.execute(&plan).unwrap());
        t_bno.measure(|| bno_sys.execute(&plan).unwrap());
        t_base.measure(|| federated::negative_examples(lake, &mate, &positives, &negatives, 10));
    }
    TaskRow {
        name: "With Negative Examples",
        blend: t_blend.mean(),
        bno: t_bno.mean(),
        baseline: t_base.mean(),
        blend_loc: loc::count("blend_negative_examples"),
        baseline_loc: loc::count("baseline_negative_examples"),
        baseline_systems: 1, // MATE + app code (paper counts 1 system)
    }
}

fn imputation_task(scale: f64) -> TaskRow {
    let lake = web::generate(&WebLakeConfig::gittables_like(scale * 0.5));
    let (blend_sys, bno_sys) = blend_pair(&lake);
    let mate = MateIndex::build(&lake);
    let josie = JosieIndex::build(&lake);

    let mut t_blend = Timer::new();
    let mut t_bno = Timer::new();
    let mut t_base = Timer::new();
    for q in workloads::imputation_workload(&lake, 15, 5, 0x1407) {
        let plan = federated::blend_side::imputation(&q.examples, &q.queries, 10).unwrap();
        t_blend.measure(|| blend_sys.execute(&plan).unwrap());
        t_bno.measure(|| bno_sys.execute(&plan).unwrap());
        t_base.measure(|| federated::imputation(&lake, &mate, &josie, &q.examples, &q.queries, 10));
    }
    TaskRow {
        name: "Data Imputation",
        blend: t_blend.mean(),
        bno: t_bno.mean(),
        baseline: t_base.mean(),
        blend_loc: loc::count("blend_imputation"),
        baseline_loc: loc::count("baseline_imputation"),
        baseline_systems: 2, // MATE + JOSIE
    }
}

fn feature_discovery_task(scale: f64) -> TaskRow {
    let bench = corr_bench::generate(&CorrBenchConfig {
        n_queries: 6,
        ..CorrBenchConfig::nyc_cat_like(scale)
    });
    let lake = &bench.lake;
    let (blend_sys, bno_sys) = blend_pair(lake);
    let qcr = QcrIndex::build(lake, 256);
    let josie = JosieIndex::build(lake);
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xFEA7);

    let mut t_blend = Timer::new();
    let mut t_bno = Timer::new();
    let mut t_base = Timer::new();
    for q in &bench.queries {
        // Existing features: a noisy copy of the target plus an independent
        // one (the multicollinearity the task must avoid).
        let f1: Vec<f64> = q.target.iter().map(|t| t * 0.9 + 0.1).collect();
        let f2: Vec<f64> = q.target.iter().map(|_| rng.random::<f64>()).collect();
        let features = vec![f1, f2];
        let plan =
            federated::blend_side::feature_discovery(&q.keys, &q.target, &features, 10).unwrap();
        t_blend.measure(|| blend_sys.execute(&plan).unwrap());
        t_bno.measure(|| bno_sys.execute(&plan).unwrap());
        t_base.measure(|| {
            federated::feature_discovery(&qcr, &josie, &q.keys, &q.target, &features, 10)
        });
    }
    TaskRow {
        name: "Feature Discovery",
        blend: t_blend.mean(),
        bno: t_bno.mean(),
        baseline: t_base.mean(),
        blend_loc: loc::count("blend_feature_discovery"),
        baseline_loc: loc::count("baseline_feature_discovery"),
        baseline_systems: 2, // QCR + MATE/JOSIE
    }
}

fn multi_objective_task(scale: f64) -> TaskRow {
    let bench = union_bench::generate(&UnionBenchConfig::santos_like(scale));
    let lake = &bench.lake;
    let (blend_sys, bno_sys) = blend_pair(lake);
    let josie = JosieIndex::build(lake);
    let starmie = StarmieIndex::build(lake, StarmieConfig::default());
    let qcr = QcrIndex::build(lake, 256);

    // Correlation inputs sampled lake-wide (any categorical/numeric pair);
    // union-bench lakes are all-categorical, so reuse key strings with a
    // synthetic target — exercising the code path is what matters here.
    let mut t_blend = Timer::new();
    let mut t_bno = Timer::new();
    let mut t_base = Timer::new();
    let n_queries = bench.queries.len().min(10);
    for q in bench.queries.iter().take(n_queries) {
        let qt = lake.table(*q);
        let keywords: Vec<String> = qt.columns[0]
            .values
            .iter()
            .take(5)
            .filter_map(|v| v.normalized().map(|n| n.into_owned()))
            .collect();
        let keys: Vec<String> = qt.columns[0]
            .values
            .iter()
            .filter_map(|v| v.normalized().map(|n| n.into_owned()))
            .collect();
        let target: Vec<f64> = (0..keys.len()).map(|i| i as f64).collect();
        let plan =
            federated::blend_side::multi_objective(&keywords, qt, &keys, &target, 10).unwrap();
        t_blend.measure(|| blend_sys.execute(&plan).unwrap());
        t_bno.measure(|| bno_sys.execute(&plan).unwrap());
        t_base.measure(|| {
            federated::multi_objective(
                lake, &josie, &starmie, &qcr, &keywords, qt, &keys, &target, 10,
            )
        });
    }
    TaskRow {
        name: "Multi-Objective Discovery",
        blend: t_blend.mean(),
        bno: t_bno.mean(),
        baseline: t_base.mean(),
        blend_loc: loc::count("blend_multi_objective"),
        baseline_loc: loc::count("baseline_multi_objective"),
        baseline_systems: 3, // JOSIE + Starmie + QCR
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn runs_at_tiny_scale() {
        let out = super::run(0.02);
        assert!(out.contains("With Negative Examples"));
        assert!(out.contains("Multi-Objective Discovery"));
        assert!(out.contains("1 / 3"));
    }
}

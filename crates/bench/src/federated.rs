//! The "federated baseline" implementations for Table III: each complex
//! discovery task wired together from standalone systems plus application
//! glue, exactly the way a practitioner without BLEND would do it.
//!
//! `// LOC-BEGIN(...)` / `// LOC-END(...)` markers delimit the code counted
//! by the LOC column of Table III (see [`crate::loc`]); the BLEND
//! equivalents live in [`blend_side`] below with the same markers. The
//! baselines are real implementations — their runtimes are measured, their
//! outputs validated against BLEND's in the integration tests.

use blend_common::{FxHashSet, TableId};
use blend_josie::JosieIndex;
use blend_lake::DataLake;
use blend_mate::MateIndex;
use blend_qcr::QcrIndex;
use blend_starmie::StarmieIndex;

/// Task 1 — data discovery with negative examples: MATE for the positive
/// composite keys, then application-level row-by-row validation to drop
/// tables containing any negative example (the baseline's bottleneck).
pub fn negative_examples(
    lake: &DataLake,
    mate: &MateIndex,
    positives: &[Vec<String>],
    negatives: &[Vec<String>],
    k: usize,
) -> Vec<TableId> {
    // LOC-BEGIN(baseline_negative_examples)
    let candidates = mate.query(lake, positives, k * 4);
    let negative_sets: Vec<FxHashSet<&str>> = negatives
        .iter()
        .map(|row| row.iter().map(String::as_str).collect())
        .collect();
    let mut result = Vec::new();
    'tables: for (tid, _) in candidates.tables {
        let table = lake.table(tid);
        // Row-by-row validation: reject the table if any row contains all
        // values of any negative example.
        for r in 0..table.n_rows() {
            let row_vals: FxHashSet<String> = table
                .row(r)
                .filter_map(|v| v.normalized().map(|n| n.into_owned()))
                .collect();
            for neg in &negative_sets {
                if neg.iter().all(|v| row_vals.contains(*v)) {
                    continue 'tables;
                }
            }
        }
        result.push(tid);
        if result.len() >= k {
            break;
        }
    }
    result
    // LOC-END(baseline_negative_examples)
}

/// Task 2 — example-based data imputation: MATE finds tables containing the
/// complete example rows, JOSIE finds tables joinable on the incomplete
/// keys; the intersection is computed in application code.
pub fn imputation(
    lake: &DataLake,
    mate: &MateIndex,
    josie: &JosieIndex,
    examples: &[(String, String)],
    queries: &[String],
    k: usize,
) -> Vec<TableId> {
    // LOC-BEGIN(baseline_imputation)
    let example_rows: Vec<Vec<String>> = examples
        .iter()
        .map(|(a, b)| vec![a.clone(), b.clone()])
        .collect();
    let complete = mate.query(lake, &example_rows, k * 4);
    let partial = josie.query(queries, k * 4);
    // Application-level intersection, ranked by combined position.
    let partial_ranks: std::collections::HashMap<TableId, usize> = partial
        .iter()
        .enumerate()
        .map(|(i, (t, _))| (*t, i))
        .collect();
    let mut merged: Vec<(usize, TableId)> = complete
        .tables
        .iter()
        .enumerate()
        .filter_map(|(i, (t, _))| partial_ranks.get(t).map(|j| (i + j, *t)))
        .collect();
    merged.sort_by_key(|&(rank, t)| (rank, t.0));
    merged.into_iter().take(k).map(|(_, t)| t).collect()
    // LOC-END(baseline_imputation)
}

/// Task 3 — multicollinearity-aware feature discovery: repeated QCR-sketch
/// rounds (target, then each existing feature) with application-level
/// filtering, plus JOSIE for joinability, all intersected by hand.
pub fn feature_discovery(
    qcr: &QcrIndex,
    josie: &JosieIndex,
    keys: &[String],
    target: &[f64],
    features: &[Vec<f64>],
    k: usize,
) -> Vec<TableId> {
    // LOC-BEGIN(baseline_feature_discovery)
    let mut correlated: Vec<TableId> = qcr
        .query(keys, target, k * 4, 3)
        .into_iter()
        .map(|(t, _)| t)
        .collect();
    // One additional QCR round per existing feature; drop its hits.
    for feature in features {
        let collinear: FxHashSet<TableId> = qcr
            .query(keys, feature, k * 4, 3)
            .into_iter()
            .map(|(t, _)| t)
            .collect();
        correlated.retain(|t| !collinear.contains(t));
    }
    // Joinability via a separate join-discovery system.
    let joinable: FxHashSet<TableId> = josie
        .query(keys, k * 8)
        .into_iter()
        .map(|(t, _)| t)
        .collect();
    correlated.retain(|t| joinable.contains(t));
    correlated.truncate(k);
    correlated
    // LOC-END(baseline_feature_discovery)
}

/// Task 4 — multi-objective discovery: JOSIE (keyword + per-column union
/// voting), Starmie (semantic union), and the QCR sketch (correlation),
/// merged in application code — three systems, three indexes.
#[allow(clippy::too_many_arguments)]
pub fn multi_objective(
    lake: &DataLake,
    josie: &JosieIndex,
    starmie: &StarmieIndex,
    qcr: &QcrIndex,
    keywords: &[String],
    query_table: &blend_common::Table,
    keys: &[String],
    target: &[f64],
    k: usize,
) -> Vec<TableId> {
    // LOC-BEGIN(baseline_multi_objective)
    let mut seen: FxHashSet<TableId> = FxHashSet::default();
    let mut merged: Vec<TableId> = Vec::new();
    let push = |t: TableId, merged: &mut Vec<TableId>, seen: &mut FxHashSet<TableId>| {
        if seen.insert(t) {
            merged.push(t);
        }
    };
    // Keyword search approximated with the join system, as practitioners do.
    for (t, _) in josie.query(keywords, k) {
        push(t, &mut merged, &mut seen);
    }
    // Union search via the semantic system.
    for (t, _) in starmie.query(query_table, k) {
        push(t, &mut merged, &mut seen);
    }
    // Correlation via the sketch index.
    for (t, _) in qcr.query(keys, target, k, 3) {
        push(t, &mut merged, &mut seen);
    }
    let _ = lake;
    merged.truncate(4 * k);
    merged
    // LOC-END(baseline_multi_objective)
}

/// The BLEND-side implementations with the same LOC markers: these are the
/// plan definitions the paper counts (5–8 lines each).
pub mod blend_side {
    use blend::{tasks, Plan};
    use blend_common::{Result, Table};

    /// BLEND plan for task 1.
    pub fn negative_examples(
        positives: &[Vec<String>],
        negatives: &[Vec<String>],
        k: usize,
    ) -> Result<Plan> {
        tasks::negative_examples(positives, negatives, k)
    }

    /// BLEND plan for task 2.
    pub fn imputation(examples: &[(String, String)], queries: &[String], k: usize) -> Result<Plan> {
        tasks::imputation(examples, queries, k)
    }

    /// BLEND plan for task 3.
    pub fn feature_discovery(
        keys: &[String],
        target: &[f64],
        features: &[Vec<f64>],
        k: usize,
    ) -> Result<Plan> {
        tasks::feature_discovery(keys, target, features, k)
    }

    /// BLEND plan for task 4.
    pub fn multi_objective(
        keywords: &[String],
        query: &Table,
        keys: &[String],
        target: &[f64],
        k: usize,
    ) -> Result<Plan> {
        tasks::multi_objective(keywords, query, keys, target, k, 10 * k)
    }
}

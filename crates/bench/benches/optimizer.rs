//! Criterion ablation of the plan optimizer: optimized vs B-NO on a mixed
//! intersection plan — the design choice Table III/IV quantify.

use criterion::{criterion_group, criterion_main, Criterion};

use blend::{Blend, Combiner, Plan, Seeker};
use blend_lake::{web, workloads, WebLakeConfig};
use blend_storage::EngineKind;

fn mixed_plan(lake: &blend_lake::DataLake) -> Plan {
    let mc = workloads::mc_queries(lake, 1, 2, 5, 11).remove(0);
    let broad = workloads::sc_queries(lake, &[60], 1, 12)
        .remove(0)
        .1
        .remove(0);
    let narrow = workloads::sc_queries(lake, &[6], 1, 13)
        .remove(0)
        .1
        .remove(0);
    let mut plan = Plan::new();
    plan.add_seeker("mc", Seeker::mc(mc.rows), 10).unwrap();
    plan.add_seeker("broad", Seeker::sc(broad), 10).unwrap();
    plan.add_seeker("narrow", Seeker::sc(narrow), 10).unwrap();
    plan.add_combiner("i", Combiner::Intersect, 10, &["mc", "broad", "narrow"])
        .unwrap();
    plan
}

fn bench_optimizer(c: &mut Criterion) {
    let lake = web::generate(&WebLakeConfig::gittables_like(0.05));
    let plan = mixed_plan(&lake);

    let optimized = Blend::from_lake(&lake, EngineKind::Column);
    let mut naive = Blend::from_lake(&lake, EngineKind::Column);
    naive.set_optimize(false);

    let mut group = c.benchmark_group("optimizer");
    group.sample_size(20);
    group.bench_function("intersection_optimized", |b| {
        b.iter(|| optimized.execute(&plan).unwrap())
    });
    group.bench_function("intersection_b_no", |b| {
        b.iter(|| naive.execute(&plan).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_optimizer);
criterion_main!(benches);

//! Criterion benchmarks of the offline phase: XASH hashing throughput and
//! whole-lake index construction (sequential vs parallel).

use criterion::{criterion_group, criterion_main, Criterion};

use blend_index::{xash_value, IndexBuilder, IndexOptions};
use blend_lake::{web, WebLakeConfig};

fn bench_indexing(c: &mut Criterion) {
    let lake = web::generate(&WebLakeConfig::gittables_like(0.03));

    let mut group = c.benchmark_group("indexing");
    group.sample_size(15);

    group.bench_function("xash_value", |b| {
        b.iter(|| std::hint::black_box(xash_value("some moderately long value 42")))
    });

    group.bench_function("index_lake_sequential", |b| {
        let builder = IndexBuilder::with_options(IndexOptions {
            threads: 1,
            ..Default::default()
        });
        b.iter(|| builder.index_lake(&lake.tables))
    });

    group.bench_function("index_lake_parallel_4", |b| {
        let builder = IndexBuilder::with_options(IndexOptions {
            threads: 4,
            ..Default::default()
        });
        b.iter(|| builder.index_lake(&lake.tables))
    });

    group.bench_function("column_store_build", |b| {
        let rows = IndexBuilder::new().index_lake(&lake.tables);
        b.iter(|| blend_storage::ColumnStore::build(rows.clone()))
    });
    group.finish();
}

criterion_group!(benches, bench_indexing);
criterion_main!(benches);

//! `filter_kernels` Criterion group: batched selection-vector filter
//! kernels vs. the scalar per-position `fast_filters_pass` oracle, on the
//! SC scan shape at 150k fact rows, both storage engines, with a selective
//! and a non-selective filter each.
//!
//! Every configuration is parity-checked (batched output must equal the
//! scalar oracle byte-for-byte) before it is timed, the engines' memory
//! breakdowns are printed, and the measured speedups land in
//! `BENCH_filter_kernels.json` at the workspace root so the perf
//! trajectory is machine-readable across PRs.
//!
//! `--test` runs the CI smoke mode: same parity checks and JSON emission,
//! minimal timing (so kernel code cannot bit-rot without CI noticing).

use std::fmt::Write as _;
use std::time::Instant;

use criterion::Criterion;

use blend_bench::synthetic_rows;
use blend_sql::plan::{fast_filters_pass, FastFilters};
use blend_sql::SqlEngine;
use blend_storage::{build_engine, EngineKind, FactTable};

/// The two filter mixes: a selective SC-style IN-list (~0.5% of rows) and a
/// non-selective quadrant + table + rowid mix (~40% of rows).
fn filter_cases(table: &dyn FactTable) -> Vec<(&'static str, FastFilters)> {
    let selective_vals: Vec<String> = (0..5).map(|i| format!("v{}", i * 13)).collect();
    let refs: Vec<&str> = selective_vals.iter().map(String::as_str).collect();
    vec![
        (
            "selective",
            FastFilters {
                value_probe: Some(table.make_probe(&refs)),
                table_set: None,
                table_not_set: None,
                rowid_lt: None,
                quadrant_null: None,
            },
        ),
        (
            "non_selective",
            FastFilters {
                value_probe: None,
                table_set: None,
                table_not_set: Some([3u32, 57, 111].into_iter().collect()),
                rowid_lt: Some(200),
                quadrant_null: Some(true),
            },
        ),
    ]
}

/// Median-of-`iters` wall time of one full-table filter pass.
fn time_ns(iters: usize, mut f: impl FnMut() -> usize) -> u64 {
    let mut samples: Vec<u64> = (0..iters.max(1))
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(f());
            t0.elapsed().as_nanos() as u64
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

struct CaseResult {
    engine: &'static str,
    filter: &'static str,
    survivors: usize,
    scalar_ns: u64,
    batch_ns: u64,
    simd_on_ns: u64,
    simd_off_ns: u64,
}

impl CaseResult {
    fn speedup(&self) -> f64 {
        self.scalar_ns as f64 / self.batch_ns.max(1) as f64
    }

    /// SIMD-on vs SIMD-off speedup of the batched kernel itself.
    fn simd_speedup(&self) -> f64 {
        self.simd_off_ns as f64 / self.simd_on_ns.max(1) as f64
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    let iters = if smoke { 5 } else { 31 };
    let rows = synthetic_rows(120, 250, 5); // 150_000 fact rows
    let n_rows = rows.len();
    println!(
        "== bench `filter_kernels` (150k rows{})",
        if smoke { ", --test smoke mode" } else { "" }
    );

    let mut criterion = Criterion::default();
    let mut group = criterion.benchmark_group("filter_kernels");
    group.sample_size(if smoke { 2 } else { 20 });

    let mut results: Vec<CaseResult> = Vec::new();
    for kind in [EngineKind::Row, EngineKind::Column] {
        let table = build_engine(kind, rows.clone());
        // The memory_breakdown debug report (satellite of the kernel work:
        // dict payload + scan scratch are now accounted).
        println!("{}", table.memory_breakdown().report());

        for (filter, fast) in filter_cases(table.as_ref()) {
            let kernel = fast.compile_kernel();

            // Parity before timing: batched output == scalar oracle.
            let scalar = || -> Vec<u32> {
                (0..n_rows)
                    .filter(|&p| fast_filters_pass(table.as_ref(), p, &fast))
                    .map(|p| p as u32)
                    .collect()
            };
            let want = scalar();
            let mut sel: Vec<u32> = Vec::with_capacity(n_rows);
            table.filter_range(&kernel, 0, n_rows, &mut sel);
            assert_eq!(
                sel,
                want,
                "{}/{filter}: kernel diverged from oracle",
                kind.label()
            );
            // Parity under both forced dispatch paths: the SIMD block
            // kernels and their scalar twins must agree byte-for-byte.
            for vector in [false, true] {
                blend_simd::force(Some(vector));
                sel.clear();
                table.filter_range(&kernel, 0, n_rows, &mut sel);
                assert_eq!(
                    sel,
                    want,
                    "{}/{filter}: vector={vector} kernel diverged from oracle",
                    kind.label()
                );
            }
            blend_simd::force(None);

            let label = kind.label().to_lowercase();
            let scalar_ns = time_ns(iters, || scalar().len());
            let batch_ns = time_ns(iters, || {
                sel.clear();
                table.filter_range(&kernel, 0, n_rows, &mut sel);
                sel.len()
            });
            // SIMD A/B on the batched kernel: interleaved forced-on /
            // forced-off medians of the same pass.
            let (simd_on_ns, simd_off_ns) = blend_bench::simd_ab_ns(iters, || {
                sel.clear();
                table.filter_range(&kernel, 0, n_rows, &mut sel);
                std::hint::black_box(sel.len());
            });
            if !smoke {
                group.bench_function(format!("{label}_{filter}_scalar"), |b| {
                    b.iter(|| scalar().len())
                });
                group.bench_function(format!("{label}_{filter}_batch"), |b| {
                    b.iter(|| {
                        sel.clear();
                        table.filter_range(&kernel, 0, n_rows, &mut sel);
                        sel.len()
                    })
                });
            }
            let r = CaseResult {
                engine: kind.label(),
                filter,
                survivors: want.len(),
                scalar_ns,
                batch_ns,
                simd_on_ns,
                simd_off_ns,
            };
            println!(
                "  -> {label}/{filter}: {} survivors, compiled kernel {} B, \
                 scalar {:.3}ms, batch {:.3}ms, speedup {:.2}x, \
                 simd on {:.3}ms / off {:.3}ms ({:.2}x)",
                r.survivors,
                kernel.memory_bytes(),
                r.scalar_ns as f64 / 1e6,
                r.batch_ns as f64 / 1e6,
                r.speedup(),
                r.simd_on_ns as f64 / 1e6,
                r.simd_off_ns as f64 / 1e6,
                r.simd_speedup()
            );
            results.push(r);
        }
    }
    group.finish();

    // The acceptance bar this bench exists to hold: the batched kernel is
    // at least 2x the scalar path on the selective column-store scan.
    let selective_col = results
        .iter()
        .find(|r| r.engine == "Column" && r.filter == "selective")
        .expect("selective column case ran");
    assert!(
        selective_col.speedup() >= 2.0,
        "selective column-store kernel speedup {:.2}x < 2x",
        selective_col.speedup()
    );

    // SIMD acceptance bar: the vector kernels beat their scalar twins by
    // at least 1.3x on at least one shape. Smoke mode on shared CI
    // runners only rejects outright regressions (parity already held
    // above); full runs hold the real bar.
    let best_simd = results
        .iter()
        .max_by(|a, b| a.simd_speedup().total_cmp(&b.simd_speedup()))
        .expect("cases ran");
    let simd_bar = if smoke { 0.5 } else { 1.3 };
    println!(
        "  -> best simd speedup: {}/{} at {:.2}x",
        best_simd.engine,
        best_simd.filter,
        best_simd.simd_speedup()
    );
    assert!(
        best_simd.simd_speedup() >= simd_bar,
        "best SIMD-on/off speedup {:.2}x < {simd_bar}x ({}/{})",
        best_simd.simd_speedup(),
        best_simd.engine,
        best_simd.filter
    );

    // Observability overhead bar: the instrumented engine path (root
    // trace + scan span + metric cells) must not tax the hot selective
    // scan shape. Full runs hold the 5% contract; smoke mode on shared
    // CI runners only rejects outright regressions, matching the other
    // timing bars above.
    let obs_engine = SqlEngine::with_alltables(build_engine(EngineKind::Column, rows.clone()));
    let obs_sql = "SELECT TableId, RowId, CellValue FROM AllTables \
                   WHERE CellValue IN ('v0','v13','v26','v39','v52') \
                   ORDER BY TableId, RowId, CellValue LIMIT 50";
    let (obs_on_ns, obs_off_ns) = blend_bench::obs_overhead_ns(iters, || {
        std::hint::black_box(obs_engine.execute(obs_sql).expect("obs A/B query runs"));
    });
    let obs_slack = if smoke { 1.5 } else { 1.05 };
    println!(
        "  -> obs overhead: enabled {:.3}ms, disabled {:.3}ms ({:+.2}%)",
        obs_on_ns as f64 / 1e6,
        obs_off_ns as f64 / 1e6,
        100.0 * (obs_on_ns as f64 / obs_off_ns.max(1) as f64 - 1.0),
    );
    assert!(
        (obs_on_ns as f64) <= obs_slack * obs_off_ns as f64,
        "observability overhead blew the {obs_slack}x bar: \
         enabled {obs_on_ns}ns vs disabled {obs_off_ns}ns"
    );

    // Machine-readable perf trajectory at the workspace root.
    let mut json = String::from("{\n  \"bench\": \"filter_kernels\",\n");
    let _ = writeln!(json, "  \"rows\": {n_rows},");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    let _ = writeln!(json, "  \"obs_on_ns\": {obs_on_ns},");
    let _ = writeln!(json, "  \"obs_off_ns\": {obs_off_ns},");
    json.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"engine\": \"{}\", \"filter\": \"{}\", \"survivors\": {}, \
             \"scalar_ns\": {}, \"batch_ns\": {}, \"speedup\": {:.3}, \
             \"simd_on_ns\": {}, \"simd_off_ns\": {}, \"simd_speedup\": {:.3}}}{}",
            r.engine,
            r.filter,
            r.survivors,
            r.scalar_ns,
            r.batch_ns,
            r.speedup(),
            r.simd_on_ns,
            r.simd_off_ns,
            r.simd_speedup(),
            if i + 1 < results.len() { "," } else { "" }
        );
    }
    json.push_str("  ]\n}\n");
    let out =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_filter_kernels.json");
    std::fs::write(&out, json).expect("write BENCH_filter_kernels.json");
    println!("  wrote {}", out.display());
    blend_obs::dump_if_enabled();
}

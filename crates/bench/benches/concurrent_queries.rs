//! `concurrent_queries` Criterion group: throughput of many in-flight
//! SC-shape queries on one shared **persistent** worker pool vs. the
//! per-query **scoped** spawning baseline (the pre-persistent design,
//! retained as `WorkerPool::scoped`), on both storage engines.
//!
//! The serving scenario: `IN_FLIGHT` OS threads each fire SC-shape
//! queries back to back against one engine. Under the scoped baseline
//! every parallel phase of every query spawns and joins its own worker
//! threads, and concurrent queries oversubscribe the machine (N queries x
//! `THREADS` workers). Under the persistent pool the same phases draw
//! admission-controlled grants from `THREADS - 1` parked workers, so the
//! whole storm shares one thread budget.
//!
//! Every configuration is parity-checked first (shared-pool and scoped
//! results must equal the sequential single-query run byte-for-byte).
//! Measured numbers land in `BENCH_concurrent_queries.json` at the
//! workspace root, the serving-tier scenario (bounded queue, mixed
//! deadlines, overload shedding) lands in `BENCH_serving_storm.json`, and
//! the closed-loop Zipf template storm comparing the serving tier with the
//! result cache + coalescing on vs. off lands in `BENCH_query_cache.json`.
//! Acceptance bars held here:
//!
//! * shared persistent pool >= 1.3x scoped-baseline throughput at
//!   `IN_FLIGHT` concurrent queries on the column store;
//! * single-query latency on the persistent pool shows no regression vs.
//!   the scoped baseline, and stays within a catastrophic-only band of
//!   the flat join/group times recorded in `BENCH_join_group.json`;
//! * at Zipf skew s=1.0 over the template pool, cache-on throughput is at
//!   least 2x cache-off, while a cold miss (first sighting of a template)
//!   costs within 5% of the no-cache serving path.
//!
//! `--test` runs the CI smoke mode: same parity checks and JSON emission
//! with minimal timing, and the perf bars widened to reject only outright
//! regressions (shared CI runners make tight timing bars flaky).

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::Criterion;
use rand::SeedableRng;

use blend_bench::synthetic_rows;
use blend_common::zipf::Zipf;
use blend_common::BlendError;
use blend_parallel::{Admission, Deadline, ParallelCtx, WorkerPool};
use blend_serve::{ServeConfig, ServeQueue};
use blend_sql::{ExecPath, ResultSet, SqlEngine};
use blend_storage::{build_engine, EngineKind};

/// Worker budget per context (the serving pool width).
const THREADS: usize = 4;
/// Concurrently serving OS threads (in-flight queries).
const IN_FLIGHT: usize = 8;
/// Queries each serving thread fires per storm.
const QUERIES_PER_THREAD: usize = 4;
/// Parallel thresholds: small enough that every SC phase rides the pool
/// at this data size, identical for both contexts (the comparison is
/// pool backing, not tuning).
const MIN_PARALLEL: usize = 512;
const MORSEL_LEN: usize = 2048;

/// The SC seeker shape: broad IN-list scan + GROUP BY (TableId, ColumnId)
/// with a distinct count, ordered and limited (paper Listing 1).
fn sc_shape_sql() -> String {
    let vals: Vec<String> = (0..96u32)
        .map(|i| format!("'v{}'", (i * 5) % 997))
        .collect();
    format!(
        "SELECT TableId, COUNT(DISTINCT CellValue) AS score FROM AllTables \
         WHERE CellValue IN ({}) \
         GROUP BY TableId, ColumnId \
         ORDER BY COUNT(DISTINCT CellValue) DESC, TableId, ColumnId LIMIT 10",
        vals.join(",")
    )
}

/// Persistent-pool serving context: parked workers + admission budget.
fn shared_ctx() -> Arc<ParallelCtx> {
    Arc::new(ParallelCtx::with_admission(
        THREADS,
        MIN_PARALLEL,
        MORSEL_LEN,
        THREADS - 1,
    ))
}

/// Scoped-baseline context: identical tuning, but every `run` spawns and
/// joins its own threads and there is no machine-wide rationing — the
/// pre-persistent design this bench measures against, where N in-flight
/// queries oversubscribe to N x `THREADS` workers. The budget is sized so
/// no query is ever denied (the old design had no admission control).
fn scoped_ctx() -> Arc<ParallelCtx> {
    Arc::new(ParallelCtx::with_pool(
        WorkerPool::scoped(THREADS),
        MIN_PARALLEL,
        MORSEL_LEN,
        Admission::new(IN_FLIGHT * THREADS),
    ))
}

/// One storm: `IN_FLIGHT` threads x `QUERIES_PER_THREAD` queries against
/// `engine`. Returns queries per second.
fn storm_qps(engine: &SqlEngine, sql: &str) -> f64 {
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..IN_FLIGHT {
            scope.spawn(|| {
                for _ in 0..QUERIES_PER_THREAD {
                    std::hint::black_box(
                        engine
                            .execute_with_report_path(sql, ExecPath::Auto)
                            .expect("SC query runs"),
                    );
                }
            });
        }
    });
    (IN_FLIGHT * QUERIES_PER_THREAD) as f64 / t0.elapsed().as_secs_f64()
}

/// Median of `iters` samples of `f`.
fn median_f64(iters: usize, mut f: impl FnMut() -> f64) -> f64 {
    let mut samples: Vec<f64> = (0..iters.max(1)).map(|_| f()).collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

/// Median single-query wall time, in nanoseconds.
fn single_query_ns(iters: usize, engine: &SqlEngine, sql: &str) -> u64 {
    median_f64(iters, || {
        let t0 = Instant::now();
        std::hint::black_box(
            engine
                .execute_with_report_path(sql, ExecPath::Auto)
                .expect("SC query runs"),
        );
        t0.elapsed().as_nanos() as f64
    }) as u64
}

/// Pull `flat_ns` for (engine, shape) out of `BENCH_join_group.json`
/// without a JSON dependency (the file is emitted by our own bench, so
/// the line shape is known).
fn join_group_flat_ns(engine: &str, shape: &str) -> Option<u64> {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_join_group.json");
    let text = std::fs::read_to_string(path).ok()?;
    let line = text
        .lines()
        .find(|l| l.contains(&format!("\"engine\": \"{engine}\"")) && l.contains(shape))?;
    let tail = line.split("\"flat_ns\": ").nth(1)?;
    tail.split(|c: char| !c.is_ascii_digit())
        .next()?
        .parse()
        .ok()
}

/// Serving-tier scenario: a bounded [`ServeQueue`] in front of the shared
/// engine, offered 2x queue-depth waves with a third of the load on tiny
/// deadlines. Records throughput of completed requests plus typed-outcome
/// counts (ok / timeout / cancelled / shed) for the perf trajectory.
struct ServingStormResult {
    engine: &'static str,
    offered: usize,
    ok: usize,
    timeouts: usize,
    shed: usize,
    other_errors: usize,
    ok_qps: f64,
    median_ok_wait_ns: u64,
}

fn serving_storm(
    engine: Arc<SqlEngine>,
    label: &'static str,
    sql: &str,
    waves: usize,
) -> ServingStormResult {
    const DEPTH: usize = 4;
    let queue = ServeQueue::new(
        engine,
        ServeConfig {
            depth: DEPTH,
            workers: 2,
            // This scenario measures the bounded queue under overload on
            // the *execution* path; memoization is the cache storm's job
            // and would let repeats of the one template skip execution.
            result_cache_bytes: 0,
            coalesce: false,
            ..ServeConfig::default()
        },
    );
    let mut ok = 0usize;
    let mut timeouts = 0usize;
    let mut shed = 0usize;
    let mut other_errors = 0usize;
    let mut ok_waits_ns: Vec<u64> = Vec::new();
    let t0 = Instant::now();
    for wave in 0..waves {
        // 2x queue depth offered at once; every third request gets a
        // deliberately hopeless 1 ms budget so deadline handling is on the
        // measured path, the rest a generous one.
        let tickets: Vec<_> = (0..2 * DEPTH)
            .map(|i| {
                let deadline = if (i + wave) % 3 == 0 {
                    Deadline::after(std::time::Duration::from_millis(1))
                } else {
                    Deadline::after(std::time::Duration::from_secs(30))
                };
                queue.submit(sql, deadline)
            })
            .collect();
        for ticket in tickets {
            match ticket.and_then(|t| t.wait()) {
                Ok((rs, report)) => {
                    std::hint::black_box(rs);
                    ok += 1;
                    if let Some(serving) = report.serving {
                        ok_waits_ns.push(serving.queue_wait_nanos);
                    }
                }
                Err(BlendError::Timeout(_)) => timeouts += 1,
                Err(BlendError::Overloaded(_)) => shed += 1,
                Err(_) => other_errors += 1,
            }
        }
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let offered = waves * 2 * DEPTH;
    assert_eq!(
        ok + timeouts + shed + other_errors,
        offered,
        "{label}: serving storm lost a request"
    );
    assert!(ok > 0, "{label}: serving storm completed nothing");
    ok_waits_ns.sort_unstable();
    ServingStormResult {
        engine: label,
        offered,
        ok,
        timeouts,
        shed,
        other_errors,
        ok_qps: ok as f64 / elapsed,
        median_ok_wait_ns: ok_waits_ns.get(ok_waits_ns.len() / 2).copied().unwrap_or(0),
    }
}

/// Closed-loop clients in the query-cache storm.
const CACHE_CLIENTS: usize = 8;
/// Distinct query templates the Zipf sampler draws from.
const CACHE_TEMPLATES: usize = 32;
/// Zipf exponent over template popularity (s=1.0 per the acceptance bar:
/// natural-language-like skew, the head template gets ~25% of the load).
const CACHE_ZIPF_S: f64 = 1.0;

/// Template `i` of the cache storm: the SC seeker shape with a
/// template-specific IN list, so distinct templates fingerprint (and
/// cache) separately while repeats of one template are fingerprint-equal.
fn cache_template_sql(i: usize) -> String {
    let vals: Vec<String> = (0..8)
        .map(|j| format!("'v{}'", (i * 7 + j * 13) % 997))
        .collect();
    format!(
        "SELECT TableId, COUNT(DISTINCT CellValue) AS n FROM AllTables \
         WHERE CellValue IN ({}) GROUP BY TableId, ColumnId \
         ORDER BY COUNT(DISTINCT CellValue) DESC, TableId, ColumnId LIMIT 10",
        vals.join(",")
    )
}

/// One side of the cache comparison: QPS and latency percentiles of a
/// closed-loop Zipf storm through a [`ServeQueue`], plus the typed-outcome
/// split so the JSON records *why* the cached side is faster.
struct CacheStormSide {
    qps: f64,
    p50_ns: u64,
    p99_ns: u64,
    ok: u64,
    cache_hits: u64,
    coalesced_hits: u64,
}

/// Drive `CACHE_CLIENTS` closed-loop clients, each firing
/// `ops_per_client` Zipf-drawn template queries back to back. Every
/// result is parity-checked against the sequential reference; any shed,
/// timeout, or failure panics (the closed loop never outruns the queue).
fn cache_storm(
    engine: Arc<SqlEngine>,
    cached: bool,
    ops_per_client: usize,
    templates: &[String],
    expected: &[ResultSet],
) -> CacheStormSide {
    let queue = ServeQueue::new(
        engine,
        ServeConfig {
            depth: 64,
            workers: 2,
            result_cache_bytes: if cached { 32 << 20 } else { 0 },
            coalesce: cached,
            ..ServeConfig::default()
        },
    );
    let zipf = Zipf::new(CACHE_TEMPLATES, CACHE_ZIPF_S);
    let t0 = Instant::now();
    let mut latencies: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CACHE_CLIENTS)
            .map(|client| {
                let queue = &queue;
                let zipf = &zipf;
                scope.spawn(move || {
                    let mut rng = rand::rngs::StdRng::seed_from_u64(0xB1E2D + client as u64);
                    let mut lat = Vec::with_capacity(ops_per_client);
                    for _ in 0..ops_per_client {
                        let t = zipf.sample(&mut rng);
                        let q0 = Instant::now();
                        let (rs, _report) = queue
                            .submit(&templates[t], Deadline::after(Duration::from_secs(30)))
                            .expect("closed-loop storm never sheds")
                            .wait()
                            .expect("cache storm query succeeds");
                        lat.push(q0.elapsed().as_nanos() as u64);
                        assert_eq!(
                            rs, expected[t],
                            "cache storm result diverged from the sequential reference \
                             (template {t}, cached={cached})"
                        );
                    }
                    lat
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("cache storm client panicked"))
            .collect()
    });
    let elapsed = t0.elapsed().as_secs_f64();
    let stats = queue.stats();
    assert_eq!(
        stats.ok + stats.cache_hits + stats.coalesced_hits,
        (CACHE_CLIENTS * ops_per_client) as u64,
        "cache storm (cached={cached}) lost or failed a request"
    );
    if !cached {
        assert_eq!(
            stats.cache_hits + stats.coalesced_hits,
            0,
            "disabled cache must never serve memoized results"
        );
    }
    latencies.sort_unstable();
    CacheStormSide {
        qps: latencies.len() as f64 / elapsed,
        p50_ns: latencies[latencies.len() / 2],
        p99_ns: latencies[(latencies.len() * 99) / 100],
        ok: stats.ok,
        cache_hits: stats.cache_hits,
        coalesced_hits: stats.coalesced_hits,
    }
}

/// A cold-miss probe: the 96-literal join-seeker shape (the serving
/// tier's heavyweight query class — joinability scoring à la MATE) with a
/// probe-specific literal set, so every sighting is a first sighting on
/// both queues. Cold-path overhead is fingerprint + probe + insert, which
/// is independent of execution cost; holding the 5% bar against the query
/// class where a miss actually hurts is the honest comparison.
fn cold_probe_sql(i: usize) -> String {
    let vals: Vec<String> = (0..96u32)
        .map(|j| format!("'v{}'", (i as u32 * 11 + j * 5) % 997))
        .collect();
    format!(
        "SELECT a.TableId, COUNT(*) AS n FROM AllTables a \
         INNER JOIN AllTables b ON a.CellValue = b.CellValue \
         WHERE b.ColumnId = 0 AND b.CellValue IN ({}) \
         GROUP BY a.TableId ORDER BY n DESC, a.TableId LIMIT 10",
        vals.join(",")
    )
}

/// Median first-sighting latency, cache-on vs. cache-off. Each probe is
/// submitted once to *both* queues (separate caches, so both sightings
/// are cold), in alternating order so scheduler drift cancels instead of
/// biasing one side. With the cache on a probe pays fingerprint + probe +
/// insert on the serving path; with it off it is a plain execution — the
/// medians' ratio is the cache's cold-path overhead.
fn cold_miss_ns(engine: Arc<SqlEngine>, sqls: &[String]) -> (u64, u64) {
    let mk = |cached: bool| {
        ServeQueue::new(
            engine.clone(),
            ServeConfig {
                depth: 64,
                workers: 2,
                result_cache_bytes: if cached { 32 << 20 } else { 0 },
                coalesce: cached,
                ..ServeConfig::default()
            },
        )
    };
    let on = mk(true);
    let off = mk(false);
    let probe = |queue: &ServeQueue, sql: &str| {
        let t0 = Instant::now();
        std::hint::black_box(
            queue
                .submit(sql, Deadline::after(Duration::from_secs(30)))
                .expect("cold-miss probe never sheds")
                .wait()
                .expect("cold-miss probe succeeds"),
        );
        t0.elapsed().as_nanos() as u64
    };
    // Uncounted warm-up: serving threads parked-and-woken once, engine
    // paths hot, before any measured probe.
    let warm = cache_template_sql(4000);
    probe(&on, &warm);
    probe(&off, &warm);
    let mut on_ns = Vec::with_capacity(sqls.len());
    let mut off_ns = Vec::with_capacity(sqls.len());
    for (i, sql) in sqls.iter().enumerate() {
        if i % 2 == 0 {
            on_ns.push(probe(&on, sql));
            off_ns.push(probe(&off, sql));
        } else {
            off_ns.push(probe(&off, sql));
            on_ns.push(probe(&on, sql));
        }
    }
    on_ns.sort_unstable();
    off_ns.sort_unstable();
    (on_ns[on_ns.len() / 2], off_ns[off_ns.len() / 2])
}

struct CaseResult {
    engine: &'static str,
    scoped_qps: f64,
    shared_qps: f64,
    scoped_single_ns: u64,
    shared_single_ns: u64,
}

impl CaseResult {
    fn speedup(&self) -> f64 {
        self.shared_qps / self.scoped_qps.max(f64::MIN_POSITIVE)
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    let iters = if smoke { 3 } else { 9 };
    let rows = synthetic_rows(60, 120, 5); // 36_000 fact rows
    let n_rows = rows.len();
    let sql = sc_shape_sql();
    println!(
        "== bench `concurrent_queries` ({IN_FLIGHT} in-flight SC queries, {THREADS}-thread \
         budget, {n_rows} rows{})",
        if smoke { ", --test smoke mode" } else { "" }
    );

    let mut criterion = Criterion::default();
    let mut group = criterion.benchmark_group("concurrent_queries");
    group.sample_size(if smoke { 2 } else { 10 });

    let mut results: Vec<CaseResult> = Vec::new();
    let mut serving_results: Vec<ServingStormResult> = Vec::new();
    for kind in [EngineKind::Row, EngineKind::Column] {
        let fact = build_engine(kind, rows.clone());
        let label = kind.label().to_lowercase();

        let sequential = SqlEngine::with_alltables(fact.clone())
            .with_parallel(Arc::new(ParallelCtx::sequential()));
        let shared = SqlEngine::with_alltables(fact.clone()).with_parallel(shared_ctx());
        let scoped = SqlEngine::with_alltables(fact.clone()).with_parallel(scoped_ctx());

        // Parity before timing: both pool backings must reproduce the
        // sequential single-query result byte-for-byte.
        let (want, want_rep) = sequential
            .execute_with_report_path(&sql, ExecPath::Auto)
            .expect("SC query runs");
        assert_eq!(want_rep.path, "positional");
        for (mode, engine) in [("shared", &shared), ("scoped", &scoped)] {
            let (got, rep) = engine
                .execute_with_report_path(&sql, ExecPath::Auto)
                .expect("SC query runs");
            assert_eq!(
                got, want,
                "{label}/{mode}: pooled result diverged from sequential"
            );
            assert!(
                !rep.parallel.is_empty(),
                "{label}/{mode}: phases must actually ride the pool at this size"
            );
            // EXPLAIN ANALYZE: the span-tree profile of the SC shape,
            // printed once per engine (shared pool) as the human-readable
            // per-phase timing breakdown.
            if mode == "shared" {
                let profile = rep.profile.as_ref().expect("profile collected");
                println!("  {label} SC query profile:");
                for line in profile.render().lines() {
                    println!("    {line}");
                }
            }
        }

        // Warm, then measure storms (median over iters).
        let _ = storm_qps(&shared, &sql);
        let _ = storm_qps(&scoped, &sql);
        let shared_qps = median_f64(iters, || storm_qps(&shared, &sql));
        let scoped_qps = median_f64(iters, || storm_qps(&scoped, &sql));

        if !smoke {
            group.bench_function(format!("{label}_storm_shared_pool"), |b| {
                b.iter(|| storm_qps(&shared, &sql))
            });
            group.bench_function(format!("{label}_storm_scoped_baseline"), |b| {
                b.iter(|| storm_qps(&scoped, &sql))
            });
        }

        // Single-query latency: the persistent pool must cost nothing
        // when the machine is otherwise idle.
        let single_iters = if smoke { 9 } else { 31 };
        let shared_single_ns = single_query_ns(single_iters, &shared, &sql);
        let scoped_single_ns = single_query_ns(single_iters, &scoped, &sql);

        let r = CaseResult {
            engine: kind.label(),
            scoped_qps,
            shared_qps,
            scoped_single_ns,
            shared_single_ns,
        };
        println!(
            "  -> {label}: storm {:.0} q/s scoped, {:.0} q/s shared ({:.2}x); \
             single query {:.3}ms scoped, {:.3}ms shared",
            r.scoped_qps,
            r.shared_qps,
            r.speedup(),
            r.scoped_single_ns as f64 / 1e6,
            r.shared_single_ns as f64 / 1e6,
        );
        results.push(r);

        // Serving-tier storm on the shared persistent pool.
        let serve_engine =
            Arc::new(SqlEngine::with_alltables(fact.clone()).with_parallel(shared_ctx()));
        let sr = serving_storm(serve_engine, kind.label(), &sql, if smoke { 2 } else { 6 });
        println!(
            "  -> {label} serving storm: {} offered, {} ok ({:.0} q/s), {} timeout, \
             {} shed, {} failed; median ok queue wait {:.3}ms",
            sr.offered,
            sr.ok,
            sr.ok_qps,
            sr.timeouts,
            sr.shed,
            sr.other_errors,
            sr.median_ok_wait_ns as f64 / 1e6,
        );
        serving_results.push(sr);
    }
    group.finish();

    // Query-cache storm: closed-loop Zipf(s=1.0) template workload through
    // the serving tier, result cache + coalescing on vs. off, on the
    // column store. Parity first: every storm result is checked against
    // the sequential reference inside the loop.
    let fact = build_engine(EngineKind::Column, rows.clone());
    let cache_engine =
        Arc::new(SqlEngine::with_alltables(fact.clone()).with_parallel(shared_ctx()));
    let reference =
        SqlEngine::with_alltables(fact).with_parallel(Arc::new(ParallelCtx::sequential()));
    let templates: Vec<String> = (0..CACHE_TEMPLATES).map(cache_template_sql).collect();
    let expected: Vec<ResultSet> = templates
        .iter()
        .map(|sql| reference.execute(sql).expect("reference template runs"))
        .collect();

    let ops_per_client = if smoke { 12 } else { 60 };
    let cache_off = cache_storm(
        cache_engine.clone(),
        false,
        ops_per_client,
        &templates,
        &expected,
    );
    let cache_on = cache_storm(
        cache_engine.clone(),
        true,
        ops_per_client,
        &templates,
        &expected,
    );
    let cache_speedup = cache_on.qps / cache_off.qps.max(f64::MIN_POSITIVE);
    assert!(
        cache_on.cache_hits > 0,
        "Zipf storm repeated templates but the cache never hit"
    );

    // Cold-miss overhead: heavy SC-shape probes neither queue ever saw,
    // one sighting per queue, medians over the probe set.
    let cold_templates: Vec<String> = (0..if smoke { 17 } else { 65 })
        .map(cold_probe_sql)
        .collect();
    let (cold_on_ns, cold_off_ns) = cold_miss_ns(cache_engine.clone(), &cold_templates);
    let cold_ratio = cold_on_ns as f64 / (cold_off_ns as f64).max(f64::MIN_POSITIVE);

    println!(
        "  -> query-cache storm (Zipf s={CACHE_ZIPF_S}, {CACHE_TEMPLATES} templates, \
         {CACHE_CLIENTS} clients x {ops_per_client} ops): \
         {:.0} q/s off, {:.0} q/s on ({:.2}x); p50 {:.3}ms off vs {:.3}ms on; \
         on-side outcomes {} fresh / {} cache_hit / {} coalesced_hit; \
         cold miss {:.3}ms on vs {:.3}ms off ({:.3}x)",
        cache_off.qps,
        cache_on.qps,
        cache_speedup,
        cache_off.p50_ns as f64 / 1e6,
        cache_on.p50_ns as f64 / 1e6,
        cache_on.ok,
        cache_on.cache_hits,
        cache_on.coalesced_hits,
        cold_on_ns as f64 / 1e6,
        cold_off_ns as f64 / 1e6,
        cold_ratio,
    );

    // Bar 3: memoization pays at Zipf skew — >= 2x completed-request
    // throughput with the cache on at s=1.0. Smoke mode only rejects an
    // outright loss (shared CI runners), full runs hold the real bar.
    let cache_bar = if smoke { 1.2 } else { 2.0 };
    assert!(
        cache_speedup >= cache_bar,
        "query-cache speedup {cache_speedup:.2}x < {cache_bar}x at Zipf s={CACHE_ZIPF_S} \
         ({:.0} q/s off, {:.0} q/s on)",
        cache_off.qps,
        cache_on.qps
    );
    // Bar 4: the cold path must stay cheap — fingerprint + probe + insert
    // within 5% of the no-cache serving path (median over the probe set;
    // widened in smoke mode where one scheduler hiccup on a ~ms query
    // swamps a single-digit-percent bar).
    let cold_bar = if smoke { 1.5 } else { 1.05 };
    assert!(
        cold_ratio <= cold_bar,
        "cold-miss latency {:.3}ms is more than {cold_bar}x the no-cache path {:.3}ms",
        cold_on_ns as f64 / 1e6,
        cold_off_ns as f64 / 1e6
    );

    // Machine-readable cache trajectory at the workspace root.
    let mut json = String::from("{\n  \"bench\": \"query_cache\",\n");
    let _ = writeln!(json, "  \"rows\": {n_rows},");
    let _ = writeln!(json, "  \"clients\": {CACHE_CLIENTS},");
    let _ = writeln!(json, "  \"templates\": {CACHE_TEMPLATES},");
    let _ = writeln!(json, "  \"ops_per_client\": {ops_per_client},");
    let _ = writeln!(json, "  \"zipf_s\": {CACHE_ZIPF_S},");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    for (label, side) in [("cache_off", &cache_off), ("cache_on", &cache_on)] {
        let _ = writeln!(
            json,
            "  \"{label}\": {{\"qps\": {:.1}, \"p50_ns\": {}, \"p99_ns\": {}, \
             \"ok\": {}, \"cache_hits\": {}, \"coalesced_hits\": {}}},",
            side.qps, side.p50_ns, side.p99_ns, side.ok, side.cache_hits, side.coalesced_hits
        );
    }
    let _ = writeln!(json, "  \"speedup\": {cache_speedup:.3},");
    let _ = writeln!(
        json,
        "  \"cold_miss\": {{\"cache_on_ns\": {cold_on_ns}, \"cache_off_ns\": {cold_off_ns}, \
         \"ratio\": {cold_ratio:.4}}}"
    );
    json.push_str("}\n");
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_query_cache.json");
    std::fs::write(&out, json).expect("write BENCH_query_cache.json");
    println!("  wrote {}", out.display());

    // Bar 1: the persistent shared pool beats per-query scoped spawning
    // on concurrent throughput (column store) — >= 1.3x on a full run
    // (~1.8x measured; recorded in the JSON below). Smoke mode measures
    // storms with median-of-3 on whatever loaded CI runner it lands on,
    // where scheduler noise can eat most of the margin — there the bar
    // only rejects an outright loss (< 1.05x), while the parity checks
    // above run at full strength either way.
    let col = results
        .iter()
        .find(|r| r.engine == "Column")
        .expect("column case ran");
    let bar = if smoke { 1.05 } else { 1.3 };
    assert!(
        col.speedup() >= bar,
        "column-store concurrent throughput speedup {:.2}x < {bar}x \
         (scoped {:.0} q/s, shared {:.0} q/s)",
        col.speedup(),
        col.scoped_qps,
        col.shared_qps
    );

    // Bar 2: no single-query latency regression from going persistent —
    // in-process against the scoped baseline (25% noise allowance, 50%
    // in smoke mode on shared runners)...
    let latency_slack = if smoke { 1.5 } else { 1.25 };
    for r in &results {
        assert!(
            (r.shared_single_ns as f64) <= latency_slack * r.scoped_single_ns as f64,
            "{}: persistent pool regressed single-query latency: \
             {:.3}ms shared vs {:.3}ms scoped",
            r.engine,
            r.shared_single_ns as f64 / 1e6,
            r.scoped_single_ns as f64 / 1e6
        );
        // ...and a catastrophic-only guard against the recorded
        // `BENCH_join_group.json` trajectory: the whole SC query (scan +
        // group + sort) at `n_rows` must stay within a generous band of
        // the recorded 150k-row flat group-phase time, scaled by rows.
        if let Some(flat_ns) = join_group_flat_ns(r.engine, "sc_join_group") {
            let scaled = flat_ns as f64 * (n_rows as f64 / 150_000.0);
            let limit = (25.0 * scaled).max(20e6);
            assert!(
                (r.shared_single_ns as f64) <= limit,
                "{}: single-query latency {:.3}ms blows the BENCH_join_group.json band \
                 ({:.3}ms limit)",
                r.engine,
                r.shared_single_ns as f64 / 1e6,
                limit / 1e6
            );
        }
    }

    // Machine-readable perf trajectory at the workspace root.
    let mut json = String::from("{\n  \"bench\": \"concurrent_queries\",\n");
    let _ = writeln!(json, "  \"rows\": {n_rows},");
    let _ = writeln!(json, "  \"in_flight\": {IN_FLIGHT},");
    let _ = writeln!(json, "  \"threads\": {THREADS},");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    json.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"engine\": \"{}\", \"scoped_qps\": {:.1}, \"shared_qps\": {:.1}, \
             \"speedup\": {:.3}, \"scoped_single_ns\": {}, \"shared_single_ns\": {}}}{}",
            r.engine,
            r.scoped_qps,
            r.shared_qps,
            r.speedup(),
            r.scoped_single_ns,
            r.shared_single_ns,
            if i + 1 < results.len() { "," } else { "" }
        );
    }
    json.push_str("  ]\n}\n");
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../BENCH_concurrent_queries.json");
    std::fs::write(&out, json).expect("write BENCH_concurrent_queries.json");
    println!("  wrote {}", out.display());

    // Post-storm metrics snapshot: queue-wait and exec-time percentiles
    // from the process-global registry, accumulated over every storm this
    // run drove through the serving tier.
    let snap = blend_obs::registry().snapshot();
    let percentiles = |name: &str| -> (u64, u64, u64, u64) {
        let h = snap
            .histograms
            .get(name)
            .unwrap_or_else(|| panic!("missing histogram family `{name}`"));
        assert!(h.count > 0, "`{name}` recorded nothing during the storms");
        (h.count, h.quantile(0.5), h.quantile(0.9), h.quantile(0.99))
    };
    let queue_wait = percentiles("blend_serve_queue_wait_nanos");
    let exec_time = percentiles("blend_serve_exec_nanos");
    let submitted = snap.counter("blend_serve_submitted_total");
    let outcome_sum: u64 = [
        "shed",
        "ok",
        "cache_hit",
        "coalesced_hit",
        "timeout",
        "cancelled",
        "failed",
    ]
    .iter()
    .map(|o| snap.counter(&format!("blend_serve_outcomes_total{{outcome=\"{o}\"}}")))
    .sum();
    assert_eq!(
        outcome_sum, submitted,
        "post-storm snapshot: outcome counters must sum to submissions"
    );
    println!(
        "  -> post-storm metrics: {} submitted; queue wait p50 {:.3}ms p90 {:.3}ms \
         p99 {:.3}ms; exec p50 {:.3}ms p90 {:.3}ms p99 {:.3}ms",
        submitted,
        queue_wait.1 as f64 / 1e6,
        queue_wait.2 as f64 / 1e6,
        queue_wait.3 as f64 / 1e6,
        exec_time.1 as f64 / 1e6,
        exec_time.2 as f64 / 1e6,
        exec_time.3 as f64 / 1e6,
    );

    // Serving-tier trajectory: typed-outcome mix and completed-request
    // throughput through the bounded queue.
    let mut json = String::from("{\n  \"bench\": \"serving_storm\",\n");
    let _ = writeln!(json, "  \"rows\": {n_rows},");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    let _ = writeln!(json, "  \"metrics\": {{");
    let _ = writeln!(json, "    \"submitted\": {submitted},");
    let _ = writeln!(
        json,
        "    \"queue_wait_nanos\": {{\"count\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}}},",
        queue_wait.0, queue_wait.1, queue_wait.2, queue_wait.3
    );
    let _ = writeln!(
        json,
        "    \"exec_nanos\": {{\"count\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}}}",
        exec_time.0, exec_time.1, exec_time.2, exec_time.3
    );
    let _ = writeln!(json, "  }},");
    json.push_str("  \"results\": [\n");
    for (i, r) in serving_results.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"engine\": \"{}\", \"offered\": {}, \"ok\": {}, \"timeouts\": {}, \
             \"shed\": {}, \"other_errors\": {}, \"ok_qps\": {:.1}, \
             \"median_ok_wait_ns\": {}}}{}",
            r.engine,
            r.offered,
            r.ok,
            r.timeouts,
            r.shed,
            r.other_errors,
            r.ok_qps,
            r.median_ok_wait_ns,
            if i + 1 < serving_results.len() {
                ","
            } else {
                ""
            }
        );
    }
    json.push_str("  ]\n}\n");
    let out =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_serving_storm.json");
    std::fs::write(&out, json).expect("write BENCH_serving_storm.json");
    println!("  wrote {}", out.display());
    blend_obs::dump_if_enabled();
}

//! Criterion microbenchmarks: one per seeker type, on a fixed
//! Gittables-like lake. Complements the table/figure harnesses with
//! statistically grounded per-operator numbers.

use criterion::{criterion_group, criterion_main, Criterion};

use blend::{Blend, Plan, Seeker};
use blend_lake::{web, workloads, WebLakeConfig};
use blend_storage::EngineKind;

fn bench_seekers(c: &mut Criterion) {
    let lake = web::generate(&WebLakeConfig::gittables_like(0.05));
    let system = Blend::from_lake(&lake, EngineKind::Column);

    let sc_query = workloads::sc_queries(&lake, &[50], 1, 1)
        .remove(0)
        .1
        .remove(0);
    let kw_query = workloads::kw_queries(&lake, 1, 8, 2).remove(0);
    let mc_query = workloads::mc_queries(&lake, 1, 2, 5, 3).remove(0);
    // Correlation query from a numeric-bearing table.
    let c_seeker = find_c_seeker(&lake).expect("lake has numeric columns");

    let mut group = c.benchmark_group("seekers");
    group.sample_size(20);

    group.bench_function("sc_50_values", |b| {
        let mut plan = Plan::new();
        plan.add_seeker("s", Seeker::sc(sc_query.clone()), 10)
            .unwrap();
        b.iter(|| system.execute(&plan).unwrap());
    });
    group.bench_function("kw_8_keywords", |b| {
        let mut plan = Plan::new();
        plan.add_seeker("s", Seeker::kw(kw_query.clone()), 10)
            .unwrap();
        b.iter(|| system.execute(&plan).unwrap());
    });
    group.bench_function("mc_2col_5rows", |b| {
        let mut plan = Plan::new();
        plan.add_seeker("s", Seeker::mc(mc_query.rows.clone()), 10)
            .unwrap();
        b.iter(|| system.execute(&plan).unwrap());
    });
    group.bench_function("correlation", |b| {
        let mut plan = Plan::new();
        plan.add_seeker("s", c_seeker.clone(), 10).unwrap();
        b.iter(|| system.execute(&plan).unwrap());
    });
    group.finish();
}

fn find_c_seeker(lake: &blend_lake::DataLake) -> Option<Seeker> {
    use blend_common::ColumnType;
    for t in &lake.tables {
        let cat = t
            .columns
            .iter()
            .position(|c| c.column_type() == ColumnType::Categorical);
        let num = t
            .columns
            .iter()
            .position(|c| c.column_type() == ColumnType::Numeric);
        if let (Some(cat), Some(num)) = (cat, num) {
            let mut keys = Vec::new();
            let mut target = Vec::new();
            for r in 0..t.n_rows() {
                if let (Some(k), Some(v)) = (t.cell(r, cat).normalized(), t.cell(r, num).as_f64()) {
                    keys.push(k.into_owned());
                    target.push(v);
                }
            }
            if keys.len() >= 10 {
                return Some(Seeker::c(keys, target));
            }
        }
    }
    None
}

criterion_group!(benches, bench_seekers);
criterion_main!(benches);

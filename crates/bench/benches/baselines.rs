//! Criterion head-to-heads against the standalone baselines: BLEND SC vs
//! JOSIE, BLEND MC vs MATE, BLEND union plan vs Starmie.

use criterion::{criterion_group, criterion_main, Criterion};

use blend::{tasks, Blend, Plan, Seeker};
use blend_josie::JosieIndex;
use blend_lake::{union_bench, web, workloads, UnionBenchConfig, WebLakeConfig};
use blend_mate::MateIndex;
use blend_starmie::{StarmieConfig, StarmieIndex};
use blend_storage::EngineKind;

fn bench_baselines(c: &mut Criterion) {
    let lake = web::generate(&WebLakeConfig::gittables_like(0.04));
    let blend = Blend::from_lake(&lake, EngineKind::Column);
    let josie = JosieIndex::build(&lake);
    let mate = MateIndex::build(&lake);

    let sc_query = workloads::sc_queries(&lake, &[50], 1, 7)
        .remove(0)
        .1
        .remove(0);
    let mc_query = workloads::mc_queries(&lake, 1, 2, 5, 8).remove(0);

    let mut group = c.benchmark_group("baselines");
    group.sample_size(15);

    group.bench_function("sc_blend", |b| {
        let mut plan = Plan::new();
        plan.add_seeker("s", Seeker::sc(sc_query.clone()), 10)
            .unwrap();
        b.iter(|| blend.execute(&plan).unwrap())
    });
    group.bench_function("sc_josie", |b| b.iter(|| josie.query(&sc_query, 10)));

    group.bench_function("mc_blend", |b| {
        let mut plan = Plan::new();
        plan.add_seeker("s", Seeker::mc(mc_query.rows.clone()), 10)
            .unwrap();
        b.iter(|| blend.execute(&plan).unwrap())
    });
    group.bench_function("mc_mate", |b| {
        b.iter(|| mate.query(&lake, &mc_query.rows, 10))
    });

    // Union search on a clustered benchmark.
    let bench = union_bench::generate(&UnionBenchConfig {
        n_clusters: 6,
        tables_per_cluster: 6,
        noise_tables: 20,
        ..UnionBenchConfig::santos_like(0.1)
    });
    let ublend = Blend::from_lake(&bench.lake, EngineKind::Column);
    let starmie = StarmieIndex::build(&bench.lake, StarmieConfig::default());
    let qt = bench.lake.table(bench.queries[0]).clone();

    group.bench_function("union_blend", |b| {
        let plan = tasks::union_search(&qt, 10, 100).unwrap();
        b.iter(|| ublend.execute(&plan).unwrap())
    });
    group.bench_function("union_starmie", |b| b.iter(|| starmie.query(&qt, 10)));
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);

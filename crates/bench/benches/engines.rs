//! Criterion comparison of the two storage engines on the same SC query —
//! the row-vs-column gap behind Fig. 5 and Fig. 7.

use criterion::{criterion_group, criterion_main, Criterion};

use blend::{Blend, Plan, Seeker};
use blend_lake::{web, workloads, WebLakeConfig};
use blend_storage::EngineKind;

fn bench_engines(c: &mut Criterion) {
    let lake = web::generate(&WebLakeConfig::gittables_like(0.05));
    let row = Blend::from_lake(&lake, EngineKind::Row);
    let col = Blend::from_lake(&lake, EngineKind::Column);
    let query = workloads::sc_queries(&lake, &[100], 1, 5).remove(0).1.remove(0);
    let mut plan = Plan::new();
    plan.add_seeker("s", Seeker::sc(query), 10).unwrap();

    let mut group = c.benchmark_group("engines");
    group.sample_size(20);
    group.bench_function("sc_row_store", |b| b.iter(|| row.execute(&plan).unwrap()));
    group.bench_function("sc_column_store", |b| b.iter(|| col.execute(&plan).unwrap()));
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
